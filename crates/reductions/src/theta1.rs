//! Appendix B — encoding a linear-time counting Turing machine as an FO³
//! sentence Θ₁ with `FOMC(Θ₁, n) = n! · #accepting(n)`.
//!
//! The domain of size `n` plays three roles at once: it carries a guessed
//! linear order `<` (contributing the `n!` factor), it indexes the `n` time
//! steps of each of the `c` *epochs*, and it indexes the `n` tape cells of
//! each of the `c` *regions*. All machine-dependent structure (states, heads,
//! tape symbols, movement and frame bookkeeping) lives in predicates indexed
//! by state/tape/epoch/region, so the formula needs only three logical
//! variables.
//!
//! Differences from the paper's presentation, made so that the encoding is
//! *exactly* model-preserving (every accepting run corresponds to exactly one
//! model per linear order):
//!
//! * the `Unchanged` predicate is *defined* (with a ⇔) as "the head of this
//!   tape is not on this cell, or the current state does not operate on this
//!   tape", instead of only being implied, so its interpretation is forced;
//! * the `Left`/`Right` movement predicates are written as guarded
//!   bi-implications (`Succ(p',p) ⇒ (Left(t,p) ⇔ H(t,p'))` etc.), which is the
//!   reading intended by the paper's equations;
//! * states with no applicable transition produce an empty disjunction (⊥), so
//!   dead computation paths contribute no models — matching the simulator.

use wfomc_logic::builders::{and, atom, exists, forall, implies, not, or};
use wfomc_logic::syntax::Formula;
use wfomc_logic::vocabulary::Vocabulary;

use crate::tm::{CountingTm, Move};

/// Names of the predicates used by the Θ₁ encoding of a specific machine.
#[derive(Clone, Debug)]
pub struct Theta1Encoding {
    /// The sentence Θ₁.
    pub sentence: Formula,
    /// Its vocabulary.
    pub vocabulary: Vocabulary,
    /// The number of epochs/regions `c`.
    pub epochs: usize,
}

fn s_pred(q: usize, e: usize) -> String {
    format!("S_q{q}_e{e}")
}
fn h_pred(tape: usize, e: usize, r: usize) -> String {
    format!("H_t{tape}_e{e}_r{r}")
}
fn tape_pred(symbol: bool, tape: usize, e: usize, r: usize) -> String {
    format!("T{}_t{tape}_e{e}_r{r}", if symbol { 1 } else { 0 })
}
fn left_pred(tape: usize, e: usize, r: usize) -> String {
    format!("Left_t{tape}_e{e}_r{r}")
}
fn right_pred(tape: usize, e: usize, r: usize) -> String {
    format!("Right_t{tape}_e{e}_r{r}")
}
fn unchanged_pred(tape: usize, e: usize, r: usize) -> String {
    format!("Unch_t{tape}_e{e}_r{r}")
}

/// Builds the Θ₁ sentence for a counting TM.
///
/// # Panics
/// Panics if the machine fails [`CountingTm::validate`].
pub fn theta1(tm: &CountingTm) -> Theta1Encoding {
    tm.validate().expect("machine must be well-formed");
    let c = tm.epochs;
    let mut parts: Vec<Formula> = Vec::new();

    parts.extend(order_axioms());
    parts.extend(state_axioms(tm, c));
    parts.extend(head_axioms(tm, c));
    parts.extend(symbol_axioms(tm, c));
    parts.extend(initial_configuration(tm, c));
    parts.extend(transition_axioms(tm, c));
    parts.extend(other_head_frame_axioms(tm, c));
    parts.extend(movement_axioms(tm, c));
    parts.extend(unchanged_definition(tm, c));
    parts.extend(frame_axioms(tm, c));
    parts.push(acceptance_axiom(tm, c));

    let sentence = Formula::and_all(parts);
    let vocabulary = sentence.vocabulary();
    Theta1Encoding {
        sentence,
        vocabulary,
        epochs: c,
    }
}

/// Group 1–3: `<` is a strict linear order, `Min`/`Max` are its extremes and
/// `Succ` its successor relation.
fn order_axioms() -> Vec<Formula> {
    vec![
        // Totality, antisymmetry (via irreflexivity + trichotomy), transitivity.
        forall(
            ["x", "y"],
            implies(
                not(Formula::equals(
                    wfomc_logic::term::Term::var("x"),
                    wfomc_logic::term::Term::var("y"),
                )),
                or(vec![atom("Lt", &["x", "y"]), atom("Lt", &["y", "x"])]),
            ),
        ),
        forall(
            ["x", "y"],
            or(vec![
                not(atom("Lt", &["x", "y"])),
                not(atom("Lt", &["y", "x"])),
            ]),
        ),
        forall(["x"], not(atom("Lt", &["x", "x"]))),
        forall(
            ["x", "y", "z"],
            implies(
                and(vec![atom("Lt", &["x", "y"]), atom("Lt", &["y", "z"])]),
                atom("Lt", &["x", "z"]),
            ),
        ),
        // Min and Max.
        forall(
            ["x"],
            Formula::iff(
                atom("Min", &["x"]),
                not(exists(["y"], atom("Lt", &["y", "x"]))),
            ),
        ),
        forall(
            ["x"],
            Formula::iff(
                atom("Max", &["x"]),
                not(exists(["y"], atom("Lt", &["x", "y"]))),
            ),
        ),
        // Succ.
        forall(
            ["x", "y"],
            Formula::iff(
                atom("Succ", &["x", "y"]),
                and(vec![
                    atom("Lt", &["x", "y"]),
                    not(exists(
                        ["z"],
                        and(vec![atom("Lt", &["x", "z"]), atom("Lt", &["z", "y"])]),
                    )),
                ]),
            ),
        ),
    ]
}

/// Group 4: at any time (within each epoch) the machine is in exactly one
/// state.
fn state_axioms(tm: &CountingTm, c: usize) -> Vec<Formula> {
    let mut parts = Vec::new();
    for e in 0..c {
        for q1 in 0..tm.num_states {
            for q2 in (q1 + 1)..tm.num_states {
                parts.push(forall(
                    ["x"],
                    or(vec![
                        not(atom(&s_pred(q1, e), &["x"])),
                        not(atom(&s_pred(q2, e), &["x"])),
                    ]),
                ));
            }
        }
        parts.push(forall(
            ["x"],
            or((0..tm.num_states)
                .map(|q| atom(&s_pred(q, e), &["x"]))
                .collect()),
        ));
    }
    parts
}

/// Group 5: each head is in exactly one position (over all regions).
fn head_axioms(tm: &CountingTm, c: usize) -> Vec<Formula> {
    let mut parts = Vec::new();
    for tape in 0..tm.num_tapes {
        for e in 0..c {
            // At least one position.
            parts.push(forall(
                ["x"],
                exists(
                    ["y"],
                    or((0..c)
                        .map(|r| atom(&h_pred(tape, e, r), &["x", "y"]))
                        .collect()),
                ),
            ));
            // At most one region.
            for r1 in 0..c {
                for r2 in 0..c {
                    if r1 == r2 {
                        continue;
                    }
                    parts.push(forall(
                        ["x", "y", "z"],
                        implies(
                            atom(&h_pred(tape, e, r1), &["x", "y"]),
                            not(atom(&h_pred(tape, e, r2), &["x", "z"])),
                        ),
                    ));
                }
            }
            // At most one position within a region.
            for r in 0..c {
                parts.push(forall(
                    ["x", "y", "z"],
                    implies(
                        and(vec![
                            atom(&h_pred(tape, e, r), &["x", "y"]),
                            atom(&h_pred(tape, e, r), &["x", "z"]),
                        ]),
                        Formula::equals(
                            wfomc_logic::term::Term::var("y"),
                            wfomc_logic::term::Term::var("z"),
                        ),
                    ),
                ));
            }
        }
    }
    parts
}

/// Group 6: every tape cell holds exactly one symbol.
fn symbol_axioms(tm: &CountingTm, c: usize) -> Vec<Formula> {
    let mut parts = Vec::new();
    for tape in 0..tm.num_tapes {
        for e in 0..c {
            for r in 0..c {
                parts.push(forall(
                    ["x", "y"],
                    Formula::iff(
                        atom(&tape_pred(false, tape, e, r), &["x", "y"]),
                        not(atom(&tape_pred(true, tape, e, r), &["x", "y"])),
                    ),
                ));
            }
        }
    }
    parts
}

/// Group 7: the initial configuration — state q₁, heads on the first cell,
/// input tape `1ⁿ` in region 0 and zeros elsewhere.
fn initial_configuration(tm: &CountingTm, c: usize) -> Vec<Formula> {
    let mut parts = Vec::new();
    parts.push(forall(
        ["x"],
        implies(
            atom("Min", &["x"]),
            and(std::iter::once(atom(&s_pred(tm.initial_state, 0), &["x"]))
                .chain((0..tm.num_tapes).map(|tape| atom(&h_pred(tape, 0, 0), &["x", "x"])))
                .collect()),
        ),
    ));
    let mut contents = Vec::new();
    for tape in 0..tm.num_tapes {
        for r in 0..c {
            let symbol = tape == 0 && r == 0;
            contents.push(atom(&tape_pred(symbol, tape, 0, r), &["x", "y"]));
        }
    }
    parts.push(forall(
        ["x", "y"],
        implies(atom("Min", &["x"]), and(contents)),
    ));
    parts
}

/// Group 8(a)/(b): the transition relation, within epochs and across epoch
/// boundaries. A `(state, symbol)` pair with no choices yields an empty
/// disjunction (⊥), forbidding dead configurations before the final time.
fn transition_axioms(tm: &CountingTm, c: usize) -> Vec<Formula> {
    let mut parts = Vec::new();
    let empty: Vec<crate::tm::Choice> = Vec::new();
    for q in 0..tm.num_states {
        let tape = tm.tape_of_state[q];
        for symbol in [false, true] {
            let choices = tm.transitions.get(&(q, symbol)).unwrap_or(&empty);
            for e in 0..c {
                for r in 0..c {
                    let guard_common = |time_link: Vec<Formula>, e_from: usize| {
                        let mut g = vec![
                            atom(&s_pred(q, e_from), &["x"]),
                            atom(&h_pred(tape, e_from, r), &["x", "z"]),
                            atom(&tape_pred(symbol, tape, e_from, r), &["x", "z"]),
                        ];
                        g.extend(time_link);
                        and(g)
                    };
                    let outcome = |e_to: usize| {
                        or(choices
                            .iter()
                            .map(|choice| {
                                let move_pred = match choice.movement {
                                    Move::Left => left_pred(tape, e_to, r),
                                    Move::Right => right_pred(tape, e_to, r),
                                };
                                and(vec![
                                    atom(&s_pred(choice.next_state, e_to), &["y"]),
                                    atom(&move_pred, &["y", "z"]),
                                    atom(&tape_pred(choice.write, tape, e_to, r), &["y", "z"]),
                                ])
                            })
                            .collect())
                    };
                    // Within the epoch: Succ(x, y).
                    parts.push(forall(
                        ["x", "y", "z"],
                        implies(guard_common(vec![atom("Succ", &["x", "y"])], e), outcome(e)),
                    ));
                    // Across the epoch boundary: Max(x) ∧ Min(y).
                    if e + 1 < c {
                        parts.push(forall(
                            ["x", "y", "z"],
                            implies(
                                guard_common(vec![atom("Max", &["x"]), atom("Min", &["y"])], e),
                                outcome(e + 1),
                            ),
                        ));
                    }
                }
            }
        }
    }
    parts
}

/// Group 8(d): heads of tapes the current state does not operate on stay put.
fn other_head_frame_axioms(tm: &CountingTm, c: usize) -> Vec<Formula> {
    let mut parts = Vec::new();
    for q in 0..tm.num_states {
        let active = tm.tape_of_state[q];
        for tape in 0..tm.num_tapes {
            if tape == active {
                continue;
            }
            for e in 0..c {
                for r in 0..c {
                    parts.push(forall(
                        ["x", "y", "z"],
                        implies(
                            and(vec![
                                atom(&s_pred(q, e), &["x"]),
                                atom(&h_pred(tape, e, r), &["x", "z"]),
                                atom("Succ", &["x", "y"]),
                            ]),
                            atom(&h_pred(tape, e, r), &["y", "z"]),
                        ),
                    ));
                    if e + 1 < c {
                        parts.push(forall(
                            ["x", "y", "z"],
                            implies(
                                and(vec![
                                    atom(&s_pred(q, e), &["x"]),
                                    atom(&h_pred(tape, e, r), &["x", "z"]),
                                    atom("Max", &["x"]),
                                    atom("Min", &["y"]),
                                ]),
                                atom(&h_pred(tape, e + 1, r), &["y", "z"]),
                            ),
                        ));
                    }
                }
            }
        }
    }
    parts
}

/// Group 9: the movement predicates are defined from the head predicates.
fn movement_axioms(tm: &CountingTm, c: usize) -> Vec<Formula> {
    let mut parts = Vec::new();
    for tape in 0..tm.num_tapes {
        for e in 0..c {
            for r in 0..c {
                let left = left_pred(tape, e, r);
                let right = right_pred(tape, e, r);
                let h = h_pred(tape, e, r);
                // Left(t, p) with a predecessor p' inside the region: ⇔ H(t, p').
                parts.push(forall(
                    ["x", "y", "z"],
                    implies(
                        atom("Succ", &["z", "y"]),
                        Formula::iff(atom(&left, &["x", "y"]), atom(&h, &["x", "z"])),
                    ),
                ));
                // Right(t, p) with a successor p' inside the region: ⇔ H(t, p').
                parts.push(forall(
                    ["x", "y", "z"],
                    implies(
                        atom("Succ", &["y", "z"]),
                        Formula::iff(atom(&right, &["x", "y"]), atom(&h, &["x", "z"])),
                    ),
                ));
                if r == 0 {
                    // Left at the very first cell: the head stays.
                    parts.push(forall(
                        ["x", "y"],
                        implies(
                            atom("Min", &["y"]),
                            Formula::iff(atom(&left, &["x", "y"]), atom(&h, &["x", "y"])),
                        ),
                    ));
                } else {
                    // Left at the first cell of region r: head was at the last
                    // cell of region r−1.
                    let h_prev = h_pred(tape, e, r - 1);
                    parts.push(forall(
                        ["x", "y", "z"],
                        implies(
                            and(vec![atom("Min", &["y"]), atom("Max", &["z"])]),
                            Formula::iff(atom(&left, &["x", "y"]), atom(&h_prev, &["x", "z"])),
                        ),
                    ));
                }
                if r + 1 == c {
                    // Right at the very last cell: the head stays.
                    parts.push(forall(
                        ["x", "y"],
                        implies(
                            atom("Max", &["y"]),
                            Formula::iff(atom(&right, &["x", "y"]), atom(&h, &["x", "y"])),
                        ),
                    ));
                } else {
                    // Right at the last cell of region r: head moves to the
                    // first cell of region r+1... defined on that region's
                    // Right predicate instead (mirror of the Left case).
                    let h_next = h_pred(tape, e, r + 1);
                    parts.push(forall(
                        ["x", "y", "z"],
                        implies(
                            and(vec![atom("Max", &["y"]), atom("Min", &["z"])]),
                            Formula::iff(atom(&right, &["x", "y"]), atom(&h_next, &["x", "z"])),
                        ),
                    ));
                }
            }
        }
    }
    parts
}

/// The `Unchanged` predicate is defined: a cell is unchanged at time `t`
/// exactly when the head of its tape is elsewhere, or the current state does
/// not operate on this tape.
fn unchanged_definition(tm: &CountingTm, c: usize) -> Vec<Formula> {
    let mut parts = Vec::new();
    for tape in 0..tm.num_tapes {
        let active_states: Vec<usize> = (0..tm.num_states)
            .filter(|&q| tm.tape_of_state[q] == tape)
            .collect();
        for e in 0..c {
            for r in 0..c {
                let writing_here = and(vec![
                    atom(&h_pred(tape, e, r), &["x", "y"]),
                    or(active_states
                        .iter()
                        .map(|&q| atom(&s_pred(q, e), &["x"]))
                        .collect()),
                ]);
                parts.push(forall(
                    ["x", "y"],
                    Formula::iff(
                        atom(&unchanged_pred(tape, e, r), &["x", "y"]),
                        not(writing_here),
                    ),
                ));
            }
        }
    }
    parts
}

/// Group 10: unchanged cells keep their symbol, within epochs and across
/// epoch boundaries.
fn frame_axioms(tm: &CountingTm, c: usize) -> Vec<Formula> {
    let mut parts = Vec::new();
    for tape in 0..tm.num_tapes {
        for e in 0..c {
            for r in 0..c {
                let unch = unchanged_pred(tape, e, r);
                let t1 = tape_pred(true, tape, e, r);
                parts.push(forall(
                    ["x", "y", "z"],
                    implies(
                        and(vec![atom(&unch, &["x", "z"]), atom("Succ", &["x", "y"])]),
                        Formula::iff(atom(&t1, &["x", "z"]), atom(&t1, &["y", "z"])),
                    ),
                ));
                if e + 1 < c {
                    let t1_next = tape_pred(true, tape, e + 1, r);
                    parts.push(forall(
                        ["x", "y", "z"],
                        implies(
                            and(vec![
                                atom(&unch, &["x", "z"]),
                                atom("Max", &["x"]),
                                atom("Min", &["y"]),
                            ]),
                            Formula::iff(atom(&t1, &["x", "z"]), atom(&t1_next, &["y", "z"])),
                        ),
                    ));
                }
            }
        }
    }
    parts
}

/// Group 11: the machine is in an accepting state at the final time of the
/// final epoch.
fn acceptance_axiom(tm: &CountingTm, c: usize) -> Formula {
    forall(
        ["x"],
        implies(
            atom("Max", &["x"]),
            or(tm
                .accepting_states
                .iter()
                .map(|&q| atom(&s_pred(q, c - 1), &["x"]))
                .collect()),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tm::{coin_flip_machine, scanner_machine};
    use num_traits::ToPrimitive;
    use wfomc_ground::fomc;
    use wfomc_logic::weights::weight_int;

    fn small_factorial(n: usize) -> i64 {
        (1..=n as i64).product::<i64>().max(1)
    }

    #[test]
    fn encoding_is_in_fo3() {
        for tm in [scanner_machine(1), coin_flip_machine(2)] {
            let enc = theta1(&tm);
            assert!(
                enc.sentence.is_in_fo_k(3),
                "Θ₁ must use at most three variables, found {}",
                enc.sentence.distinct_variable_count()
            );
            assert!(enc.sentence.is_sentence());
        }
    }

    #[test]
    fn vocabulary_scales_with_epochs_and_tapes() {
        let small = theta1(&scanner_machine(1));
        let large = theta1(&scanner_machine(3));
        assert!(large.vocabulary.len() > small.vocabulary.len());
        assert!(large.sentence.size() > small.sentence.size());
        // The base order predicates are always present.
        for name in ["Lt", "Succ", "Min", "Max"] {
            assert!(small.vocabulary.contains(name), "missing {name}");
        }
        assert_eq!(small.epochs, 1);
    }

    #[test]
    fn sentence_size_is_independent_of_n() {
        // Data complexity: the formula is fixed; only the domain grows.
        let enc = theta1(&coin_flip_machine(1));
        let size = enc.sentence.size();
        assert!(size > 100, "the encoding should be a substantial sentence");
        assert_eq!(theta1(&coin_flip_machine(1)).sentence.size(), size);
    }

    /// The headline equation `FOMC(Θ₁, n) = n! · #accepting(n)`, verified by
    /// grounding. Expensive (the vocabulary has dozens of predicates), so it
    /// runs only for the deterministic scanner machine at n = 1 by default;
    /// the `--ignored` variant checks n = 2 and the nondeterministic machine.
    #[test]
    fn fomc_equals_factorial_times_accepting_runs_n1() {
        let tm = scanner_machine(1);
        let enc = theta1(&tm);
        let n = 1;
        let runs = tm.count_accepting(n).to_u64().unwrap() as i64;
        let counted = fomc(&enc.sentence, n);
        assert_eq!(counted, weight_int(runs * small_factorial(n)));
    }

    #[test]
    #[ignore = "grounding a ~40-atom vocabulary; run with --ignored (seconds in release mode)"]
    fn fomc_equals_factorial_times_accepting_runs_n2() {
        for tm in [scanner_machine(1), coin_flip_machine(1)] {
            let enc = theta1(&tm);
            let n = 2;
            let runs = tm.count_accepting(n).to_u64().unwrap() as i64;
            let counted = fomc(&enc.sentence, n);
            assert_eq!(
                counted,
                weight_int(runs * small_factorial(n)),
                "machine with {runs} accepting runs"
            );
        }
    }
}
