//! Wall-clock snapshot of the query service: requests/s and per-request
//! overhead of serving counts over loopback HTTP versus calling
//! `Plan::count` directly in-process. Boots an in-process daemon (no
//! persistence), registers the Table 1 sentence, and drives `k` count
//! requests at `n = 12` — once through a single worker with one sequential
//! client, once through a pooled daemon with concurrent clients. Prints
//! one JSON object per configuration for `BENCH_serve.json`. Run with
//! `cargo run --release -p wfomc-bench --bin serve_time [-- quick]`.

use std::env;
use std::time::Instant;

use wfomc::prelude::*;
use wfomc_bench::table1_workload;
use wfomc_serve::client;
use wfomc_serve::http::{Server, ServerConfig};
use wfomc_serve::json::Value;

const N: usize = 12;

fn main() {
    let quick = env::args().nth(1).as_deref() == Some("quick");
    let k = if quick { 8 } else { 32 };
    let sentence = table1_workload();

    // Bare baseline: one plan, k direct counts (the thing the service must
    // stay within 1.5x of, amortized).
    let plan = Problem::new(sentence.clone()).plan().expect("table1 plans");
    let _ = plan.count_default(N).expect("warm-up count");
    let start = Instant::now();
    let mut bare_values = Vec::with_capacity(k);
    for _ in 0..k {
        bare_values.push(plan.count_default(N).expect("bare count").value);
    }
    let bare_ms = start.elapsed().as_secs_f64() * 1e3;

    for (workers, clients) in [(1usize, 1usize), (4, 4)] {
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            capacity: 16,
            registry_path: None,
        })
        .expect("bind loopback");
        let handle = server.handle();
        let addr = server.local_addr();
        let daemon = std::thread::spawn(move || server.run());

        let body = format!(r#"{{"sentence": "{sentence}"}}"#);
        let reply = client::post(addr, "/v1/plans", &body).expect("register");
        assert_eq!(reply.status, 201, "{}", reply.body);
        let id = reply
            .json()
            .unwrap()
            .get("id")
            .and_then(Value::as_str)
            .expect("register returns an id")
            .to_string();
        // Warm up the bound weights once, like the bare loop does.
        let count_path = format!("/v1/plans/{id}/count");
        let count_body = format!(r#"{{"n": {N}}}"#);
        let reply = client::post(addr, &count_path, &count_body).expect("warm-up request");
        assert_eq!(reply.status, 200, "{}", reply.body);

        let start = Instant::now();
        let served_values: Vec<String> = if clients <= 1 {
            (0..k)
                .map(|_| count_once(addr, &count_path, &count_body))
                .collect()
        } else {
            let threads: Vec<_> = (0..clients)
                .map(|c| {
                    let (path, body) = (count_path.clone(), count_body.clone());
                    let quota = k / clients + usize::from(c < k % clients);
                    std::thread::spawn(move || {
                        (0..quota)
                            .map(|_| count_once(addr, &path, &body))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            threads
                .into_iter()
                .flat_map(|t| t.join().expect("client thread"))
                .collect()
        };
        let served_ms = start.elapsed().as_secs_f64() * 1e3;
        handle.shutdown();
        daemon.join().expect("daemon thread").expect("clean drain");

        for value in &served_values {
            assert_eq!(
                value,
                &bare_values[0].to_string(),
                "served value must be bit-identical to Plan::count"
            );
        }
        println!(
            "{{\"workload\": \"serve/table1-n12\", \"workers\": {workers}, \
             \"clients\": {clients}, \"k\": {k}, \"served_ms\": {served_ms:.2}, \
             \"bare_ms\": {bare_ms:.2}, \"per_request_ms\": {:.3}, \
             \"bare_per_request_ms\": {:.3}, \"requests_per_s\": {:.0}, \
             \"overhead\": {:.2}}}",
            served_ms / k as f64,
            bare_ms / k as f64,
            k as f64 / (served_ms / 1e3),
            served_ms / bare_ms
        );
    }
}

fn count_once(addr: std::net::SocketAddr, path: &str, body: &str) -> String {
    let reply = client::post(addr, path, body).expect("count request");
    assert_eq!(reply.status, 200, "{}", reply.body);
    reply
        .json()
        .unwrap()
        .get("value")
        .and_then(Value::as_str)
        .expect("count returns a value")
        .to_string()
}
