//! Lifted algorithms for conjunctive queries: the γ-acyclic algorithm of
//! Theorem 3.6 and the explicit linear-chain recurrence of Example 3.10.

pub mod chain;
pub mod gamma_acyclic;

pub use chain::chain_probability;
pub use gamma_acyclic::{
    gamma_acyclic_probability, gamma_acyclic_probability_multi,
    gamma_acyclic_probability_multi_memo, gamma_acyclic_probability_multi_memo_guarded,
    gamma_acyclic_wfomc, gamma_acyclic_wfomc_memo, gamma_acyclic_wfomc_memo_guarded, CqMemo,
};

use wfomc_hypergraph::Hypergraph;
use wfomc_logic::cq::ConjunctiveQuery;

/// Builds the query hypergraph (variables are nodes, atoms are hyperedges) of
/// §3.2.
pub fn query_hypergraph(query: &ConjunctiveQuery) -> Hypergraph {
    let mut hg = Hypergraph::new();
    let vars = query.variables();
    for v in &vars {
        hg.add_node(v.name());
    }
    for atom in &query.atoms {
        let nodes: Vec<usize> = atom
            .variables()
            .iter()
            .map(|v| vars.iter().position(|u| u == v).expect("variable indexed"))
            .collect();
        hg.add_edge(atom.predicate.name(), nodes);
    }
    hg
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_hypergraph::AcyclicityClass;
    use wfomc_logic::catalog;

    #[test]
    fn figure1_queries_classify_as_in_the_paper() {
        // Chains and stars are γ-acyclic.
        assert_eq!(
            query_hypergraph(&catalog::chain_query(3)).classify(),
            AcyclicityClass::Gamma
        );
        assert_eq!(
            query_hypergraph(&catalog::star_query(3)).classify(),
            AcyclicityClass::Gamma
        );
        // c_γ is γ-cyclic but β-acyclic (the paper's point: the PTIME frontier
        // is not exactly γ-acyclicity).
        assert_eq!(
            query_hypergraph(&catalog::c_gamma()).classify(),
            AcyclicityClass::Beta
        );
        // Typed cycles are fully cyclic.
        assert_eq!(
            query_hypergraph(&catalog::typed_cycle_cq(3)).classify(),
            AcyclicityClass::Cyclic
        );
        // c_jtdb is β-acyclic.
        let class = query_hypergraph(&catalog::c_jtdb()).classify();
        assert!(class >= AcyclicityClass::Beta);
    }
}
