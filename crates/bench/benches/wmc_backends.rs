//! Ablation — the propositional WMC backends underlying the grounded
//! pipeline: brute-force enumeration vs weighted DPLL with component caching
//! vs d-DNNF knowledge compilation, on the lineage of a catalog sentence and
//! on random 3-CNFs.
//!
//! The `amortized/*` group is the compile-once / evaluate-many scenario the
//! circuit backend exists for: one CNF evaluated at `k` different weight
//! vectors (the access pattern of the Lemma 3.5 equality-removal
//! interpolation, which needs `n² + 1` points of a single CNF). DPLL re-runs
//! its search per vector; the circuit backend compiles once and pays one
//! linear evaluation per vector.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wfomc::ground::Lineage;
use wfomc::prelude::*;
use wfomc::prop::cnf::Lit;
use wfomc::prop::counter::{wmc, CompiledWmc, WmcBackend};
use wfomc::prop::{Cnf, VarWeights};

fn random_cnf(num_vars: usize, num_clauses: usize, seed: u64) -> Cnf {
    let mut rng = StdRng::seed_from_u64(seed);
    let clauses = (0..num_clauses)
        .map(|_| {
            (0..3)
                .map(|_| Lit {
                    var: rng.gen_range(0..num_vars),
                    positive: rng.gen_bool(0.5),
                })
                .collect()
        })
        .collect();
    Cnf::new(num_vars, clauses)
}

/// `k` weight vectors sweeping one variable's weight — the equality-removal
/// interpolation access pattern.
fn weight_sweep(num_vars: usize, k: usize) -> Vec<VarWeights> {
    (0..k)
        .map(|z| {
            let mut w = VarWeights::ones(num_vars);
            w.set(0, weight_int(z as i64), weight_int(1));
            w
        })
        .collect()
}

const ALL_BACKENDS: [WmcBackend; 3] =
    [WmcBackend::Dpll, WmcBackend::Enumerate, WmcBackend::Circuit];

fn bench_wmc_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("wmc_backends");

    // Random 3-CNF instances, single evaluation.
    for &num_vars in &[12usize, 18] {
        let cnf = random_cnf(num_vars, num_vars * 3, 7);
        let weights = VarWeights::ones(cnf.num_vars);
        for backend in ALL_BACKENDS {
            let label = format!("{backend:?}").to_lowercase();
            group.bench_with_input(
                BenchmarkId::new(format!("{label}/random-3cnf"), num_vars),
                &backend,
                |b, &backend| b.iter(|| wmc(&cnf, &weights, backend)),
            );
        }
    }

    // The lineage of the Table 1 sentence at n = 3 (15 ground atoms).
    let sentence = catalog::table1_sentence();
    let voc = sentence.vocabulary();
    let lineage = Lineage::build(&sentence, &voc, 3);
    let weights = lineage.symmetric_weights(&Weights::ones());
    for backend in ALL_BACKENDS {
        group.bench_with_input(
            BenchmarkId::new("table1-lineage-n3", format!("{backend:?}")),
            &backend,
            |b, &backend| {
                b.iter(|| wfomc::prop::counter::wmc_formula_via(&lineage.prop, &weights, backend))
            },
        );
    }
    group.finish();

    // Compile-once / evaluate-many: one CNF, k weight vectors.
    let mut group = c.benchmark_group("amortized");
    let cnf = random_cnf(16, 40, 11);
    for &k in &[1usize, 5, 25] {
        let sweep = weight_sweep(cnf.num_vars, k);
        group.bench_with_input(BenchmarkId::new("dpll/k-vectors", k), &(), |b, _| {
            b.iter(|| {
                sweep
                    .iter()
                    .map(|w| wmc(&cnf, w, WmcBackend::Dpll))
                    .collect::<Vec<_>>()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("circuit-compile+eval/k-vectors", k),
            &(),
            |b, _| {
                b.iter(|| {
                    let compiled = CompiledWmc::compile(&cnf);
                    sweep.iter().map(|w| compiled.wmc(w)).collect::<Vec<_>>()
                })
            },
        );
    }
    // The marginal cost of one extra evaluation once compiled.
    let compiled = CompiledWmc::compile(&cnf);
    let sweep = weight_sweep(cnf.num_vars, 1);
    group.bench_with_input(BenchmarkId::new("circuit-eval-only", 1), &(), |b, _| {
        b.iter(|| compiled.wmc(&sweep[0]))
    });

    // The full equality-removal interpolation through the compiled pipeline
    // vs the per-point grounded oracle (n² + 1 = 5 points at n = 2).
    let eq_sentence = parse("forall x. forall y. (R(x,y) | x = y)").unwrap();
    let eq_voc = eq_sentence.vocabulary();
    group.bench_function("equality-removal/oracle-n2", |b| {
        b.iter(|| {
            wfomc_via_equality_removal_with_oracle(
                &eq_sentence,
                &eq_voc,
                2,
                &Weights::ones(),
                wfomc::ground::wfomc,
            )
        })
    });
    group.bench_function("equality-removal/compiled-n2", |b| {
        b.iter(|| wfomc_via_equality_removal_compiled(&eq_sentence, &eq_voc, 2, &Weights::ones()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_wmc_backends
}
criterion_main!(benches);
