//! Plan-then-execute solving: analyze a sentence once, count many times.
//!
//! The expensive part of symmetric WFOMC is the *sentence analysis* — method
//! selection, Skolemization and cell decomposition for FO², query-structure
//! recognition, grounding and knowledge compilation for the fallback — while
//! evaluating at a given domain size `n` and weight function is the cheap,
//! repeatable part. This module makes that split the shape of the API:
//!
//! ```
//! use wfomc_core::{Problem, Solver};
//! use wfomc_logic::catalog;
//! use wfomc_logic::weights::Weights;
//!
//! let problem = Problem::new(catalog::table1_sentence());
//! let plan = Solver::new().plan(&problem).unwrap();
//! for n in 1..=8 {
//!     let report = plan.count(n, &Weights::ones()).unwrap();
//!     assert_eq!(report.method, plan.method());
//! }
//! ```
//!
//! A [`Plan`] captures per-method prepared state:
//!
//! * **QS4** — the recognized sentence shape plus the factor for unused
//!   vocabulary predicates; each count runs the `O(n²)` dynamic program.
//! * **FO²** — the normalized sentence, Shannon branch matrices, valid cells
//!   and satisfying cross-assignment sets ([`crate::fo2::Fo2Prepared`]);
//!   each count binds the weights (cached) and runs the cell-sum engine.
//! * **γ-acyclic CQ** — the recognized query plus a shared reduction memo
//!   ([`crate::cq::CqMemo`]) reused across domain sizes and weights.
//! * **Ground** — a domain-size-keyed cache of groundings, each with a
//!   lazily compiled d-DNNF circuit for the circuit backend.
//!
//! [`crate::Solver::wfomc`] is a one-shot plan-then-count, so the dispatch
//! logic lives here exactly once.

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock};

use num_traits::{One, Zero};

use wfomc_ground::{CompiledWfomc, Lineage};
use wfomc_guard::{CancelToken, ExecutionLimits, Guard, Interrupt};
use wfomc_logic::algebra::{Algebra, AlgebraWeights, LogF64, LogF64xN, LogWeight, LOG_LANES};
use wfomc_logic::cq::ConjunctiveQuery;
use wfomc_logic::snap;
use wfomc_logic::syntax::Formula;
use wfomc_logic::vocabulary::{Predicate, Vocabulary};
use wfomc_logic::weights::{weight_pow, Weight, Weights};
use wfomc_prop::counter::{wmc_formula_via_guarded, wmc_formula_via_in};
use wfomc_prop::{PropFormula, WmcBackend};

use crate::cq::gamma_acyclic::{
    gamma_acyclic_probability, gamma_acyclic_wfomc_memo_guarded, CqMemo,
};
use crate::error::{LiftError, SolveError};
use crate::fo2::Fo2Prepared;
use crate::qs4::{is_qs4, wfomc_qs4, wfomc_qs4_in};
use crate::solver::{LimitsReport, Method, PlanCacheStats, Solver, SolverReport};

/// A counting problem: a sentence, the vocabulary it is counted over, and a
/// default weight function (used by [`Plan::probability`]; every count can
/// still override the weights).
///
/// Built in builder style:
///
/// ```
/// use wfomc_core::Problem;
/// use wfomc_logic::catalog;
/// use wfomc_logic::weights::Weights;
///
/// let problem = Problem::new(catalog::table1_sentence())
///     .with_weights(Weights::from_ints([("R", 2, 1)]));
/// let plan = problem.plan().unwrap();
/// assert!(plan.count(3, problem.weights()).is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct Problem {
    sentence: Formula,
    vocabulary: Vocabulary,
    weights: Weights,
}

impl Problem {
    /// A problem over the sentence's own vocabulary with all-ones weights.
    pub fn new(sentence: Formula) -> Problem {
        let vocabulary = sentence.vocabulary();
        Problem {
            sentence,
            vocabulary,
            weights: Weights::ones(),
        }
    }

    /// Counts over this vocabulary instead of the sentence's own (predicates
    /// beyond the sentence contribute the usual `(w + w̄)^{n^arity}` factor;
    /// the sentence's predicates are always included).
    pub fn with_vocabulary(mut self, vocabulary: Vocabulary) -> Problem {
        self.vocabulary = vocabulary;
        self
    }

    /// Sets the default weight function.
    pub fn with_weights(mut self, weights: Weights) -> Problem {
        self.weights = weights;
        self
    }

    /// The sentence to count.
    pub fn sentence(&self) -> &Formula {
        &self.sentence
    }

    /// The vocabulary the problem was declared over (not yet extended with
    /// the sentence's own predicates).
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// The default weight function.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Plans this problem with the default solver configuration.
    pub fn plan(&self) -> Result<Plan, LiftError> {
        Solver::new().plan(self)
    }
}

/// The per-method prepared state of a plan.
#[derive(Debug)]
enum PlanState {
    /// Theorem 3.7's sentence, recognized syntactically.
    Qs4 {
        /// Vocabulary predicates the dynamic program does not cover.
        extra: Vec<Predicate>,
    },
    /// The FO² analysis, prepared once.
    Fo2(Fo2Prepared),
    /// A recognized γ-acyclic conjunctive query.
    Cq {
        query: ConjunctiveQuery,
        /// Vocabulary predicates outside the query.
        extra: Vec<Predicate>,
        /// Reduction memo shared across all counts of this plan.
        memo: Mutex<CqMemo>,
    },
    /// No lifted method applies: every count grounds (with caching).
    Ground,
}

/// One cached grounding: the lineage at a fixed domain size, with the d-DNNF
/// circuit compiled lazily on the first circuit-backend evaluation.
#[derive(Debug)]
struct GroundInstance {
    lineage: Lineage,
    compiled: OnceLock<CompiledWfomc>,
}

/// The domain-size-keyed grounding cache (used by the Ground method and as
/// the weight-dependent fallback of the CQ method), with optional LRU
/// eviction for long-lived sweep processes
/// ([`crate::SolverBuilder::ground_cache_capacity`]).
#[derive(Debug, Default)]
struct GroundPrep {
    instances: Mutex<GroundCache>,
}

#[derive(Debug, Default)]
struct GroundCache {
    /// Instance plus last-use stamp, keyed by domain size.
    map: HashMap<usize, (Arc<GroundInstance>, u64)>,
    /// Monotone use counter backing the LRU stamps.
    clock: u64,
    /// Lifetime lookup hits — always-on accounting inside the lock the cache
    /// takes anyway, so reports see cache behavior without the `obs` feature.
    hits: u64,
    /// Lifetime lookup misses (each one ground the sentence).
    misses: u64,
}

impl GroundPrep {
    /// The cached instance for domain size `n`, building (inside the lock,
    /// so concurrent callers never ground twice) and evicting the least
    /// recently used entries beyond `capacity` on a miss. A build interrupted
    /// by an armed guard inserts *nothing*: the cache only ever holds
    /// completed groundings, so a retry after exhaustion rebuilds cleanly.
    fn try_instance(
        &self,
        n: usize,
        capacity: Option<usize>,
        build: impl FnOnce() -> Result<GroundInstance, Interrupt>,
    ) -> Result<Arc<GroundInstance>, Interrupt> {
        let mut cache = self.instances.lock().expect("ground cache poisoned");
        cache.clock += 1;
        let now = cache.clock;
        if let Some((instance, stamp)) = cache.map.get_mut(&n) {
            *stamp = now;
            let instance = instance.clone();
            cache.hits += 1;
            wfomc_obs::metrics::GROUND_CACHE_HITS.inc();
            return Ok(instance);
        }
        cache.misses += 1;
        wfomc_obs::metrics::GROUND_CACHE_MISSES.inc();
        let instance = {
            let _span = wfomc_obs::span("plan.ground_build");
            Arc::new(build()?)
        };
        cache.map.insert(n, (instance.clone(), now));
        if let Some(capacity) = capacity {
            while cache.map.len() > capacity.max(1) {
                let evict = cache
                    .map
                    .iter()
                    .min_by_key(|(_, (_, stamp))| *stamp)
                    .map(|(&k, _)| k)
                    .expect("non-empty cache has an LRU entry");
                cache.map.remove(&evict);
            }
        }
        wfomc_obs::metrics::GROUND_CACHE_LEN.set(cache.map.len() as u64);
        Ok(instance)
    }

    /// Number of groundings currently cached.
    fn len(&self) -> usize {
        self.instances
            .lock()
            .expect("ground cache poisoned")
            .map
            .len()
    }

    /// Lifetime `(hits, misses, currently cached)` of the grounding cache.
    fn stats(&self) -> (u64, u64, usize) {
        let cache = self.instances.lock().expect("ground cache poisoned");
        (cache.hits, cache.misses, cache.map.len())
    }
}

/// An analyzed counting problem, ready to be evaluated at many domain sizes
/// and weight functions. Built by [`Solver::plan`]; all the n-independent
/// work (method selection, normalization, cell decomposition, query
/// recognition) has already happened.
///
/// A `Plan` is `Sync`: [`Plan::count_batch`] fans independent points over
/// scoped threads, and the internal caches (FO² weight binding, CQ memo,
/// groundings and compiled circuits per domain size) are shared behind locks.
#[must_use = "a Plan only pays off when its count/probability methods are called"]
#[derive(Debug)]
pub struct Plan {
    sentence: Formula,
    /// The problem vocabulary extended with the sentence's own predicates.
    vocabulary: Vocabulary,
    default_weights: Weights,
    solver: Solver,
    state: PlanState,
    ground: GroundPrep,
}

impl Solver {
    /// Analyzes a problem once: runs method selection and all n-independent
    /// preprocessing, returning a [`Plan`] whose counts are cheap to repeat.
    ///
    /// Fails with [`LiftError::NotASentence`] on open formulas, with
    /// [`LiftError::PatternMismatch`] when no lifted method applies and the
    /// grounded fallback is disabled, and propagates internal errors of the
    /// FO² analysis.
    pub fn plan(&self, problem: &Problem) -> Result<Plan, LiftError> {
        Plan::new(*self, problem)
    }
}

impl Plan {
    /// Runs method selection and preprocessing (see [`Solver::plan`]).
    fn new(solver: Solver, problem: &Problem) -> Result<Plan, LiftError> {
        let sentence = problem.sentence().clone();
        if !sentence.is_sentence() {
            return Err(LiftError::NotASentence);
        }
        let vocabulary = problem.vocabulary().extended_with(&sentence.vocabulary());

        let state = Self::select_method(&solver, &sentence, &vocabulary)?;
        Ok(Plan {
            sentence,
            vocabulary,
            default_weights: problem.weights().clone(),
            solver,
            state,
            ground: GroundPrep::default(),
        })
    }

    /// The dispatch order of the paper's tractability landscape: QS4 → FO² →
    /// γ-acyclic CQ → grounding. Applicability of every lifted method is a
    /// property of the sentence alone, so it is decided here, once.
    fn select_method(
        solver: &Solver,
        sentence: &Formula,
        vocabulary: &Vocabulary,
    ) -> Result<PlanState, LiftError> {
        if solver.use_lifted {
            // 1. The QS4 special case.
            if is_qs4(sentence) {
                return Ok(PlanState::Qs4 {
                    extra: extra_predicates(vocabulary, &sentence.vocabulary()),
                });
            }

            // 2. The FO² algorithm.
            match Fo2Prepared::prepare(sentence, vocabulary) {
                Ok(prepared) => return Ok(PlanState::Fo2(prepared)),
                Err(LiftError::Internal(msg)) => return Err(LiftError::Internal(msg)),
                Err(_) => {}
            }

            // 3. The γ-acyclic CQ algorithm. Reducibility is structural, so a
            // probe at a tiny domain size decides applicability for every n;
            // weight pathologies (w + w̄ = 0) are handled per count.
            if let Some(query) = ConjunctiveQuery::from_formula(sentence) {
                let probe =
                    gamma_acyclic_probability(&query, 2, &std::collections::BTreeMap::new());
                if probe.is_ok() {
                    let extra = extra_predicates(vocabulary, &query.vocabulary());
                    return Ok(PlanState::Cq {
                        query,
                        extra,
                        memo: Mutex::new(CqMemo::default()),
                    });
                }
            }
        }

        // 4. Ground.
        if !solver.allow_ground_fallback {
            return Err(no_lifted_method());
        }
        Ok(PlanState::Ground)
    }

    /// The method the plan selected. Individual counts normally use it; the
    /// CQ method falls back to grounding for weight functions that admit no
    /// tuple probabilities (`w + w̄ = 0`), in which case the returned
    /// [`SolverReport::method`] records what actually ran.
    pub fn method(&self) -> Method {
        match &self.state {
            PlanState::Qs4 { .. } => Method::Qs4,
            PlanState::Fo2(_) => Method::Fo2,
            PlanState::Cq { .. } => Method::GammaAcyclicCq,
            PlanState::Ground => Method::Ground,
        }
    }

    /// The sentence this plan counts.
    pub fn sentence(&self) -> &Formula {
        &self.sentence
    }

    /// The full vocabulary (problem vocabulary extended with the sentence's).
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// The problem's default weight function.
    pub fn default_weights(&self) -> &Weights {
        &self.default_weights
    }

    /// Symmetric WFOMC at domain size `n` under `weights` — the cheap,
    /// repeatable half of the solve.
    pub fn count(&self, n: usize, weights: &Weights) -> Result<SolverReport, LiftError> {
        self.count_inner(n, weights, true)
    }

    /// [`count`](Self::count) with the problem's default weights.
    pub fn count_default(&self, n: usize) -> Result<SolverReport, LiftError> {
        self.count(n, &self.default_weights)
    }

    /// [`count`](Self::count) under [`ExecutionLimits`] and an optional
    /// [`CancelToken`] — the governed entry point.
    ///
    /// The limits are cooperative: every long-running loop in the pipeline
    /// (FO² cell-sum DFS and pair-structure preparation, DPLL, d-DNNF
    /// compilation, grounding, CQ reduction) consults a shared
    /// [`wfomc_guard::Guard`] built here, and exhaustion surfaces as a
    /// structured [`SolveError`] naming the phase that stopped. Exhaustion
    /// is not corruption — the plan's caches only ever hold completed
    /// entries, so retrying the same point with larger (or no) limits
    /// succeeds and agrees with an unbudgeted solve.
    ///
    /// ```
    /// use std::time::Duration;
    /// use wfomc_core::{ExecutionLimits, Problem, SolveError};
    /// use wfomc_logic::catalog;
    /// use wfomc_logic::weights::Weights;
    ///
    /// let plan = Problem::new(catalog::table1_sentence()).plan().unwrap();
    /// let generous = ExecutionLimits::none().with_deadline(Duration::from_secs(600));
    /// let report = plan
    ///     .count_with_limits(4, &Weights::ones(), &generous, None)
    ///     .unwrap();
    /// assert!(report.limits.is_some(), "armed solves report their budget");
    /// // An already-expired deadline cannot finish; the plan stays reusable.
    /// let expired = ExecutionLimits::none().with_deadline(Duration::ZERO);
    /// let err = plan
    ///     .count_with_limits(4, &Weights::ones(), &expired, None)
    ///     .unwrap_err();
    /// assert!(matches!(err, SolveError::DeadlineExceeded { .. }));
    /// assert_eq!(
    ///     plan.count(4, &Weights::ones()).unwrap().value,
    ///     report.value,
    /// );
    /// ```
    pub fn count_with_limits(
        &self,
        n: usize,
        weights: &Weights,
        limits: &ExecutionLimits,
        cancel: Option<CancelToken>,
    ) -> Result<SolverReport, SolveError> {
        let guard = Guard::new(limits, cancel);
        let mut report = self.count_point_guarded(n, weights, true, None, &guard)?;
        report.limits = limits_report(&guard, limits);
        Ok(report)
    }

    /// Evaluates many independent `(n, weights)` points, fanning them over
    /// scoped threads (each point then evaluates serially, so the machine is
    /// not oversubscribed). Results are in input order.
    ///
    /// CQ-method plans give each worker its own clone of the shared
    /// reduction memo and fold the workers' discoveries back in afterwards,
    /// so the points run truly concurrently instead of serializing on one
    /// memo lock.
    ///
    /// All-or-nothing shim over
    /// [`count_batch_results`][Self::count_batch_results]: the first
    /// per-point error loses the
    /// other points' reports. A panic while evaluating a point is resurfaced
    /// here (the per-point API reports it as [`SolveError::WorkerPanicked`]
    /// instead).
    pub fn count_batch(&self, points: &[(usize, Weights)]) -> Result<Vec<SolverReport>, LiftError> {
        self.count_batch_results(points)
            .into_iter()
            .map(|r| {
                r.map_err(|e| match e {
                    SolveError::Lift(e) => e,
                    SolveError::WorkerPanicked { message } => {
                        panic!("count_batch worker panicked: {message}")
                    }
                    other => unreachable!("an unarmed batch cannot report exhaustion: {other}"),
                })
            })
            .collect()
    }

    /// [`count_batch`](Self::count_batch) with per-point outcomes: each point
    /// gets its own `Result`, so one pathological point (an algorithmic
    /// error, or — contained via `catch_unwind` — a panic) no longer takes
    /// the whole batch down with it. Results are in input order.
    pub fn count_batch_results(
        &self,
        points: &[(usize, Weights)],
    ) -> Vec<Result<SolverReport, SolveError>> {
        self.count_batch_with_limits(points, &ExecutionLimits::none(), None)
    }

    /// [`count_batch_results`](Self::count_batch_results) under a *shared*
    /// budget: all points draw from one work/deadline pool, so the batch as
    /// a whole is bounded. Points evaluated after the pool is exhausted
    /// report exhaustion individually; completed points keep their reports.
    ///
    /// Worker panics are contained per point ([`SolveError::WorkerPanicked`])
    /// and never poison the plan's caches or the other points.
    pub fn count_batch_with_limits(
        &self,
        points: &[(usize, Weights)],
        limits: &ExecutionLimits,
        cancel: Option<CancelToken>,
    ) -> Vec<Result<SolverReport, SolveError>> {
        let guard = Guard::new(limits, cancel);
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let workers = cores.min(points.len());
        let mut results = if workers <= 1 {
            points
                .iter()
                .map(|(n, w)| self.count_point_contained(*n, w, true, None, &guard))
                .collect()
        } else {
            self.count_batch_parallel(points, workers, &guard)
        };
        if let Some(limits) = limits_report(&guard, limits) {
            for report in results.iter_mut().flatten() {
                report.limits = Some(limits);
            }
        }
        results
    }

    /// The scoped-thread fan-out behind the batch entry points.
    fn count_batch_parallel(
        &self,
        points: &[(usize, Weights)],
        workers: usize,
        guard: &Guard,
    ) -> Vec<Result<SolverReport, SolveError>> {
        let shared_memo = match &self.state {
            PlanState::Cq { memo, .. } => Some(memo),
            _ => None,
        };
        let (results, worker_memos) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|t| {
                    // Clone-in: a private memo snapshot per worker. The
                    // worker clone starts with zeroed hit/miss tallies so
                    // that `absorb` can sum them back without double
                    // counting the shared memo's own history.
                    let mut local: Option<CqMemo> = shared_memo
                        .map(|memo| memo.lock().expect("cq memo poisoned").clone_for_worker());
                    scope.spawn(move || {
                        let results = points
                            .iter()
                            .enumerate()
                            .skip(t)
                            .step_by(workers)
                            .map(|(i, (n, w))| {
                                (
                                    i,
                                    self.count_point_contained(*n, w, false, local.as_mut(), guard),
                                )
                            })
                            .collect::<Vec<_>>();
                        // Scope joins can outrun TLS destructors; push this
                        // worker's span stats to the global table explicitly.
                        wfomc_obs::flush_thread();
                        (results, local)
                    })
                })
                .collect();
            let mut slots: Vec<Option<Result<SolverReport, SolveError>>> =
                (0..points.len()).map(|_| None).collect();
            let mut locals = Vec::new();
            for (t, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok((results, local)) => {
                        for (i, result) in results {
                            slots[i] = Some(result);
                        }
                        locals.extend(local);
                    }
                    // A panic that escaped the per-point containment (e.g.
                    // in the memo clone or the obs flush) loses only this
                    // worker's points, reported structurally instead of
                    // tearing the whole batch down.
                    Err(payload) => {
                        let message = panic_message(payload.as_ref());
                        for slot in slots.iter_mut().skip(t).step_by(workers) {
                            slot.get_or_insert_with(|| {
                                Err(SolveError::WorkerPanicked {
                                    message: message.clone(),
                                })
                            });
                        }
                    }
                }
            }
            let results: Vec<Result<SolverReport, SolveError>> = slots
                .into_iter()
                .map(|r| r.expect("every point evaluated"))
                .collect();
            (results, locals)
        });
        // Merge-out: every residual shape any worker discovered becomes
        // available to future counts. Panics were contained per point, so
        // worker memos hold only completed reductions.
        if let Some(memo) = shared_memo {
            let mut memo = memo.lock().expect("cq memo poisoned");
            for local in worker_memos {
                memo.absorb(local);
            }
        }
        results
    }

    /// Lane-batched log-space batch evaluation: a same-`n` weight sweep
    /// binds once and runs **one** traversal per [`LOG_LANES`] points, with
    /// the weight vectors riding the lanes of the [`LogF64xN`] algebra
    /// through the unmodified generic paths (cell-sum DFS, circuit
    /// evaluation, DPLL, QS4 DP). Lane `i` of a chunk is bit-identical to a
    /// scalar [`LogF64`] run of point `i` — the lane algebra delegates every
    /// per-lane step to the scalar implementation — so this is a throughput
    /// optimization, not an approximation change. Mixed-`n` batches fall
    /// back to the per-point scoped-thread fan-out. Results are in input
    /// order.
    pub fn count_batch_log(
        &self,
        points: &[(usize, Weights)],
    ) -> Vec<Result<LogWeight, SolveError>> {
        self.count_batch_log_with_limits(points, &ExecutionLimits::none(), None)
    }

    /// [`count_batch_log`](Self::count_batch_log) under a *shared* budget
    /// and optional cancellation, mirroring
    /// [`count_batch_with_limits`](Self::count_batch_with_limits): all
    /// chunks draw from one work/deadline pool, exhaustion and contained
    /// panics surface per point, and completed points keep their values.
    pub fn count_batch_log_with_limits(
        &self,
        points: &[(usize, Weights)],
        limits: &ExecutionLimits,
        cancel: Option<CancelToken>,
    ) -> Vec<Result<LogWeight, SolveError>> {
        let guard = Guard::new(limits, cancel);
        if points.is_empty() {
            return Vec::new();
        }
        let n = points[0].0;
        if points.iter().any(|(m, _)| *m != n) {
            return self.count_batch_log_mixed(points, &guard);
        }
        wfomc_obs::metrics::BATCH_LANE_POINTS.add(points.len() as u64);
        let mut out = Vec::with_capacity(points.len());
        for chunk in points.chunks(LOG_LANES) {
            wfomc_obs::metrics::CELLSUM_LANE_BATCHES.inc();
            let lane_weights: Vec<&Weights> = chunk.iter().map(|(_, w)| w).collect();
            // A ragged final chunk repeats its last point in the tail lanes
            // (see `pack_weights`); only the real lanes are unpacked below.
            let packed = LogF64xN::pack_weights(&lane_weights);
            let result = catch_unwind(AssertUnwindSafe(|| {
                self.count_in_guarded_point(n, &LogF64xN, &packed, true, &guard)
            }))
            .unwrap_or_else(|payload| {
                Err(SolveError::WorkerPanicked {
                    message: panic_message(payload.as_ref()),
                })
            });
            match result {
                Ok(lanes) => out.extend((0..chunk.len()).map(|i| Ok(lanes.lane(i)))),
                Err(e) => out.extend((0..chunk.len()).map(|_| Err(e.clone()))),
            }
        }
        out
    }

    /// The mixed-`n` fallback of the lane batch: per-point scalar [`LogF64`]
    /// evaluation over scoped threads (each lane of work is a whole point,
    /// so nothing can share a traversal).
    fn count_batch_log_mixed(
        &self,
        points: &[(usize, Weights)],
        guard: &Guard,
    ) -> Vec<Result<LogWeight, SolveError>> {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let workers = cores.min(points.len());
        if workers <= 1 {
            return points
                .iter()
                .map(|(n, w)| self.count_log_point_contained(*n, w, true, guard))
                .collect();
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|t| {
                    scope.spawn(move || {
                        let results = points
                            .iter()
                            .enumerate()
                            .skip(t)
                            .step_by(workers)
                            .map(|(i, (n, w))| {
                                (i, self.count_log_point_contained(*n, w, false, guard))
                            })
                            .collect::<Vec<_>>();
                        wfomc_obs::flush_thread();
                        results
                    })
                })
                .collect();
            let mut slots: Vec<Option<Result<LogWeight, SolveError>>> =
                (0..points.len()).map(|_| None).collect();
            for (t, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(results) => {
                        for (i, result) in results {
                            slots[i] = Some(result);
                        }
                    }
                    Err(payload) => {
                        let message = panic_message(payload.as_ref());
                        for slot in slots.iter_mut().skip(t).step_by(workers) {
                            slot.get_or_insert_with(|| {
                                Err(SolveError::WorkerPanicked {
                                    message: message.clone(),
                                })
                            });
                        }
                    }
                }
            }
            slots
                .into_iter()
                .map(|r| r.expect("every point evaluated"))
                .collect()
        })
    }

    /// One scalar log-space point with panic containment, the per-point unit
    /// of the mixed-`n` fallback.
    fn count_log_point_contained(
        &self,
        n: usize,
        weights: &Weights,
        allow_parallel: bool,
        guard: &Guard,
    ) -> Result<LogWeight, SolveError> {
        catch_unwind(AssertUnwindSafe(|| {
            let lifted = AlgebraWeights::lift(&LogF64, weights);
            self.count_in_guarded_point(n, &LogF64, &lifted, allow_parallel, guard)
        }))
        .unwrap_or_else(|payload| {
            Err(SolveError::WorkerPanicked {
                message: panic_message(payload.as_ref()),
            })
        })
    }

    /// One governed evaluation point in an arbitrary algebra — the guarded
    /// counterpart of [`count_in_inner`](Self::count_in_inner), shared by
    /// the lane-batched path and its scalar fallback.
    fn count_in_guarded_point<A: Algebra>(
        &self,
        n: usize,
        algebra: &A,
        weights: &AlgebraWeights<A>,
        allow_parallel: bool,
        guard: &Guard,
    ) -> Result<A::Elem, SolveError> {
        wfomc_obs::metrics::PLAN_COUNTS.inc();
        let _span = wfomc_obs::span("plan.count");
        guard.check("plan.count")?;
        match &self.state {
            PlanState::Qs4 { extra } => Ok(algebra.mul(
                &wfomc_qs4_in(n, algebra, weights),
                &predicate_factor_in(extra, n, algebra, weights),
            )),
            PlanState::Fo2(prepared) => Ok(prepared
                .count_in_guarded(n, algebra, weights, allow_parallel, guard)?
                .0),
            PlanState::Cq { .. } if !self.solver.allow_ground_fallback => {
                Err(no_lifted_method().into())
            }
            PlanState::Cq { .. } | PlanState::Ground => {
                self.ground_count_in_guarded(n, algebra, weights, guard)
            }
        }
    }

    /// One point with panic containment: a panic anywhere inside the
    /// evaluation becomes [`SolveError::WorkerPanicked`] for this point
    /// alone. Sound to contain because every plan cache inserts only
    /// completed entries — an unwinding evaluation leaves them consistent.
    fn count_point_contained(
        &self,
        n: usize,
        weights: &Weights,
        allow_parallel: bool,
        cq_memo: Option<&mut CqMemo>,
        guard: &Guard,
    ) -> Result<SolverReport, SolveError> {
        catch_unwind(AssertUnwindSafe(|| {
            self.count_point_guarded(n, weights, allow_parallel, cq_memo, guard)
        }))
        .unwrap_or_else(|payload| {
            Err(SolveError::WorkerPanicked {
                message: panic_message(payload.as_ref()),
            })
        })
    }

    /// The probability of the sentence at domain size `n` under the problem's
    /// default weights: `Pr(Φ) = WFOMC(Φ) / WFOMC(true)`.
    pub fn probability(&self, n: usize) -> Result<SolverReport, LiftError> {
        let report = self.count_default(n)?;
        let normalization = self.default_weights.wfomc_of_true(&self.vocabulary, n);
        if normalization.is_zero() {
            return Err(LiftError::NoProbabilityNormalization {
                predicate: "<vocabulary>".to_string(),
            });
        }
        Ok(SolverReport {
            value: report.value / normalization,
            ..report
        })
    }

    /// The plan's lifetime cache accounting: FO² weight-binding LRU,
    /// per-domain-size grounding LRU, and γ-acyclic CQ reduction memo.
    ///
    /// Always on — these tallies ride inside locks the caches already take,
    /// so they cost nothing measurable and work without the `obs` feature.
    pub fn cache_stats(&self) -> PlanCacheStats {
        let mut stats = PlanCacheStats::default();
        match &self.state {
            PlanState::Fo2(prepared) => {
                let (hits, misses) = prepared.bind_cache_stats();
                stats.fo2_bind_hits = hits;
                stats.fo2_bind_misses = misses;
                stats.fo2_cached_bindings = prepared.cached_bindings();
            }
            PlanState::Cq { memo, .. } => {
                let memo = memo.lock().expect("cq memo poisoned");
                let (hits, misses) = memo.hit_stats();
                stats.cq_memo_hits = hits;
                stats.cq_memo_misses = misses;
                stats.cq_memo_len = memo.len();
            }
            PlanState::Qs4 { .. } | PlanState::Ground => {}
        }
        let (hits, misses, cached) = self.ground.stats();
        stats.ground_hits = hits;
        stats.ground_misses = misses;
        stats.ground_cached = cached;
        stats
    }

    /// A structured [`wfomc_obs::MetricsSnapshot`] for this plan: the
    /// process-global metric registry (all zeros unless the `obs` feature is
    /// enabled and [`wfomc_obs::set_enabled`] was called) overlaid with the
    /// plan's always-on cache accounting, labelled with the planned method.
    ///
    /// The cache-related entries are authoritative per plan rather than
    /// process-global, so two plans report their own hit rates even in one
    /// process.
    pub fn metrics(&self) -> wfomc_obs::MetricsSnapshot {
        let mut snap = wfomc_obs::snapshot().label("method", &self.method().to_string());
        let cache = self.cache_stats();
        snap.set_counter("fo2.bind.hits", cache.fo2_bind_hits);
        snap.set_counter("fo2.bind.misses", cache.fo2_bind_misses);
        snap.set_gauge("fo2.bind.cached", cache.fo2_cached_bindings as u64);
        snap.set_counter("plan.ground_cache.hits", cache.ground_hits);
        snap.set_counter("plan.ground_cache.misses", cache.ground_misses);
        snap.set_gauge("plan.ground_cache.len", cache.ground_cached as u64);
        snap.set_counter("cq.memo.hits", cache.cq_memo_hits);
        snap.set_counter("cq.memo.misses", cache.cq_memo_misses);
        snap.set_gauge("cq.memo.len", cache.cq_memo_len as u64);
        snap
    }

    /// A report of what was prepared and why, for humans.
    pub fn explain(&self) -> PlanReport {
        let mut details = vec![format!("sentence: {}", self.sentence)];
        match &self.state {
            PlanState::Qs4 { extra } => {
                details.push(
                    "sentence is syntactically QS4 (Theorem 3.7); each count runs the O(n²) \
                     dynamic program"
                        .to_string(),
                );
                if !extra.is_empty() {
                    details.push(format!(
                        "{} vocabulary predicate(s) outside the sentence contribute \
                         (w + w̄)^(n^arity) factors",
                        extra.len()
                    ));
                }
            }
            PlanState::Fo2(prepared) => {
                details.push(format!(
                    "FO² normal form prepared once: {} introduced predicate(s), {}/{} Shannon \
                     branch(es) survive, {} valid cell(s), {} satisfying pair assignment(s)",
                    prepared.introduced_predicates(),
                    prepared.branches_prepared(),
                    prepared.shannon_branches(),
                    prepared.total_cells(),
                    prepared.satisfying_pair_assignments(),
                ));
                details.push(
                    "each count binds the weight function (cached) and runs the prefix-sharing \
                     cell-sum engine"
                        .to_string(),
                );
            }
            PlanState::Cq { query, memo, .. } => {
                details.push(format!(
                    "γ-acyclic conjunctive query with {} atom(s); counts share one reduction \
                     memo ({} residual shape(s) cached so far)",
                    query.atoms.len(),
                    memo.lock().expect("cq memo poisoned").len(),
                ));
                details.push(
                    "weight functions with w + w̄ = 0 fall back to the grounded pipeline"
                        .to_string(),
                );
            }
            PlanState::Ground => {
                details.push(
                    "no lifted method applies (consistent with the paper's hardness results)"
                        .to_string(),
                );
                details.push(format!(
                    "counts ground per domain size with backend {:?}; {} grounding(s) cached, \
                     circuit-backend evaluations compile one d-DNNF per domain size",
                    self.solver.ground_backend,
                    self.ground.len(),
                ));
            }
        }
        PlanReport {
            method: self.method(),
            details,
        }
    }

    fn count_inner(
        &self,
        n: usize,
        weights: &Weights,
        allow_parallel: bool,
    ) -> Result<SolverReport, LiftError> {
        self.count_point(n, weights, allow_parallel, None)
    }

    /// One evaluation point through the ungoverned public API: the guarded
    /// path with nothing armed, so there is exactly one evaluation code path
    /// to test and benchmark.
    fn count_point(
        &self,
        n: usize,
        weights: &Weights,
        allow_parallel: bool,
        cq_memo: Option<&mut CqMemo>,
    ) -> Result<SolverReport, LiftError> {
        self.count_point_guarded(n, weights, allow_parallel, cq_memo, &Guard::unarmed())
            .map_err(demote)
    }

    /// One evaluation point. `cq_memo` optionally overrides the plan's
    /// shared CQ memo with a caller-private one (the batch workers' clone-in
    /// memos); `None` uses the shared memo behind its lock. The guard is
    /// consulted by every long-running loop underneath.
    fn count_point_guarded(
        &self,
        n: usize,
        weights: &Weights,
        allow_parallel: bool,
        cq_memo: Option<&mut CqMemo>,
        guard: &Guard,
    ) -> Result<SolverReport, SolveError> {
        wfomc_obs::metrics::PLAN_COUNTS.inc();
        let _span = wfomc_obs::span("plan.count");
        // An already-expired deadline or raised token fails fast, before any
        // method-specific work.
        guard.check("plan.count")?;
        let mut report = match &self.state {
            PlanState::Qs4 { extra } => {
                let value = wfomc_qs4(n, weights) * predicate_factor(extra, n, weights);
                SolverReport {
                    value,
                    method: Method::Qs4,
                    backend: None,
                    fo2_stats: None,
                    cache: None,
                    degraded: false,
                    limits: None,
                }
            }
            PlanState::Fo2(prepared) => {
                let (value, stats) = prepared.count_guarded(n, weights, allow_parallel, guard)?;
                SolverReport {
                    value,
                    method: Method::Fo2,
                    backend: None,
                    fo2_stats: Some(stats),
                    cache: None,
                    degraded: false,
                    limits: None,
                }
            }
            PlanState::Cq { query, extra, memo } => {
                let result = match cq_memo {
                    Some(local) => {
                        gamma_acyclic_wfomc_memo_guarded(query, n, weights, local, guard)
                    }
                    None => {
                        let mut memo = memo.lock().expect("cq memo poisoned");
                        gamma_acyclic_wfomc_memo_guarded(query, n, weights, &mut memo, guard)
                    }
                };
                match result {
                    Ok(value) => SolverReport {
                        value: value * predicate_factor(extra, n, weights),
                        method: Method::GammaAcyclicCq,
                        backend: None,
                        fo2_stats: None,
                        cache: None,
                        degraded: false,
                        limits: None,
                    },
                    // Exhaustion propagates: grounding after burning the
                    // budget on the reduction would only exhaust again.
                    Err(e) if e.is_exhaustion() => return Err(e),
                    // Weight pathologies (w + w̄ = 0) make the probability
                    // space undefined; mirror the one-shot dispatch and fall
                    // back to grounding.
                    Err(_) if self.solver.allow_ground_fallback => {
                        self.ground_count_guarded(n, weights, self.solver.ground_backend, guard)?
                    }
                    Err(_) => return Err(no_lifted_method().into()),
                }
            }
            PlanState::Ground => {
                self.ground_count_guarded(n, weights, self.solver.ground_backend, guard)?
            }
        };
        report.cache = Some(self.cache_stats());
        Ok(report)
    }

    /// The cached grounding for domain size `n` (built on first use, LRU
    /// eviction when the solver bounds the cache).
    fn ground_instance_guarded(
        &self,
        n: usize,
        guard: &Guard,
    ) -> Result<Arc<GroundInstance>, Interrupt> {
        self.ground
            .try_instance(n, self.solver.ground_cache_capacity, || {
                Ok(GroundInstance {
                    lineage: Lineage::build_guarded(&self.sentence, &self.vocabulary, n, guard)?,
                    compiled: OnceLock::new(),
                })
            })
    }

    /// One grounded evaluation: the lineage is cached per domain size, and
    /// the circuit backend additionally caches a compiled d-DNNF per `n`, so
    /// repeated counts cost one linear circuit pass each. `backend` is
    /// explicit (rather than read from the solver) so the degradation chain
    /// can force cheaper backends through the same caches.
    fn ground_count_guarded(
        &self,
        n: usize,
        weights: &Weights,
        backend: WmcBackend,
        guard: &Guard,
    ) -> Result<SolverReport, SolveError> {
        // Fail fast on an expired budget even when everything below is
        // cached, so the degradation stages honor their sub-budgets the
        // same way `count_point_guarded` honors the solve budget.
        guard.check("plan.ground")?;
        let instance = self.ground_instance_guarded(n, guard)?;
        let value = match backend {
            WmcBackend::Circuit => {
                // `OnceLock::get_or_init` cannot carry the interrupt out, so
                // compile first and publish only a *completed* circuit; a
                // concurrent winner's circuit is identical, so dropping the
                // loser is just wasted work, never wrong.
                let compiled = match instance.compiled.get() {
                    Some(compiled) => compiled,
                    None => {
                        let built =
                            CompiledWfomc::from_lineage_guarded(instance.lineage.clone(), guard)?;
                        instance.compiled.get_or_init(|| built)
                    }
                };
                compiled.wfomc(weights)
            }
            backend => wmc_formula_via_guarded(
                &instance.lineage.prop,
                &instance.lineage.symmetric_weights(weights),
                backend,
                guard,
            )?,
        };
        Ok(SolverReport {
            value,
            method: Method::Ground,
            backend: Some(backend),
            fo2_stats: None,
            cache: None,
            degraded: false,
            limits: None,
        })
    }

    /// [`count_with_limits`](Self::count_with_limits) with graceful
    /// degradation: when the planned method exhausts its sub-budget, cheaper
    /// stages of `policy` (grounded d-DNNF compilation, then plain DPLL) are
    /// tried in turn, each under its own sub-budget and the same optional
    /// cancellation token. A degraded answer is still *exact* — the stages
    /// trade the plan's preferred asymptotics for predictable worst-case
    /// behavior at small `n` — and is flagged via
    /// [`SolverReport::degraded`].
    ///
    /// Algorithmic errors (and a raised token) abort the chain immediately;
    /// only exhaustion degrades. When every stage exhausts, the error of the
    /// last stage tried is returned.
    pub fn count_degraded(
        &self,
        n: usize,
        weights: &Weights,
        policy: &DegradePolicy,
        cancel: Option<CancelToken>,
    ) -> Result<SolverReport, SolveError> {
        let primary = self.count_with_limits(n, weights, &policy.primary, cancel.clone());
        let mut last = match primary {
            Ok(report) => return Ok(report),
            Err(e) if e.is_exhaustion() && !matches!(e, SolveError::Cancelled { .. }) => e,
            Err(e) => return Err(e),
        };
        let stages = [
            (WmcBackend::Circuit, policy.circuit.as_ref()),
            (WmcBackend::Dpll, policy.dpll.as_ref()),
        ];
        for (backend, limits) in stages {
            let Some(limits) = limits else { continue };
            let guard = Guard::new(limits, cancel.clone());
            match self.ground_count_guarded(n, weights, backend, &guard) {
                Ok(mut report) => {
                    report.degraded = true;
                    report.cache = Some(self.cache_stats());
                    report.limits = limits_report(&guard, limits);
                    wfomc_obs::metrics::GUARD_DEGRADED_SOLVES.inc();
                    return Ok(report);
                }
                Err(e) if e.is_exhaustion() && !matches!(e, SolveError::Cancelled { .. }) => {
                    last = e;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// Symmetric WFOMC at domain size `n` in an arbitrary [`Algebra`] — the
    /// same plan, the same prepared analysis, a different ring:
    ///
    /// * **QS4** runs its dynamic program over the ring;
    /// * **FO²** binds the algebra-valued weights to the prepared cells and
    ///   signature multisets and runs the prefix-sharing engine;
    /// * **Ground** evaluates the cached lineage (or compiled d-DNNF, for
    ///   the circuit backend) in the ring;
    /// * **γ-acyclic CQ** plans ground here: the CQ reduction's probability
    ///   bookkeeping needs divisions an arbitrary ring may not have, while
    ///   grounded evaluation is fully ring-generic. (Exact counts keep using
    ///   the lifted CQ algorithm through [`count`](Self::count).) This
    ///   requires the solver's grounded fallback, which is on by default.
    ///
    /// For exact-rational evaluation prefer [`count`](Self::count): it keeps
    /// the FO² weight-binding LRU and the denominator-clearing fast path,
    /// which this generic entry point bypasses (identical values, slower).
    ///
    /// ```
    /// use wfomc_core::Problem;
    /// use wfomc_logic::algebra::{Algebra, AlgebraWeights, LogF64};
    /// use wfomc_logic::{catalog, weights::Weights};
    ///
    /// let plan = Problem::new(catalog::table1_sentence()).plan().unwrap();
    /// let exact = plan.count(4, &Weights::ones()).unwrap().value;
    /// let log = plan
    ///     .count_in(4, &LogF64, &AlgebraWeights::lift(&LogF64, &Weights::ones()))
    ///     .unwrap();
    /// assert!((log.ln_abs() - LogF64.from_weight(&exact).ln_abs()).abs() < 1e-9);
    /// ```
    pub fn count_in<A: Algebra>(
        &self,
        n: usize,
        algebra: &A,
        weights: &AlgebraWeights<A>,
    ) -> Result<A::Elem, LiftError> {
        self.count_in_inner(n, algebra, weights, true)
    }

    fn count_in_inner<A: Algebra>(
        &self,
        n: usize,
        algebra: &A,
        weights: &AlgebraWeights<A>,
        allow_parallel: bool,
    ) -> Result<A::Elem, LiftError> {
        match &self.state {
            PlanState::Qs4 { extra } => Ok(algebra.mul(
                &wfomc_qs4_in(n, algebra, weights),
                &predicate_factor_in(extra, n, algebra, weights),
            )),
            PlanState::Fo2(prepared) => {
                Ok(prepared.count_in(n, algebra, weights, allow_parallel).0)
            }
            PlanState::Cq { .. } if !self.solver.allow_ground_fallback => Err(no_lifted_method()),
            PlanState::Cq { .. } | PlanState::Ground => {
                Ok(self.ground_count_in(n, algebra, weights))
            }
        }
    }

    /// [`count_batch`](Self::count_batch) in an arbitrary [`Algebra`]:
    /// results are ring elements in input order.
    pub fn count_batch_in<A: Algebra>(
        &self,
        points: &[(usize, AlgebraWeights<A>)],
        algebra: &A,
    ) -> Result<Vec<A::Elem>, LiftError> {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let workers = cores.min(points.len());
        if workers <= 1 {
            return points
                .iter()
                .map(|(n, w)| self.count_in_inner(*n, algebra, w, true))
                .collect();
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|t| {
                    scope.spawn(move || {
                        let results = points
                            .iter()
                            .enumerate()
                            .skip(t)
                            .step_by(workers)
                            .map(|(i, (n, w))| (i, self.count_in_inner(*n, algebra, w, false)))
                            .collect::<Vec<_>>();
                        // Scope joins can outrun TLS destructors; push this
                        // worker's span stats to the global table explicitly.
                        wfomc_obs::flush_thread();
                        results
                    })
                })
                .collect();
            let mut slots: Vec<Option<Result<A::Elem, LiftError>>> =
                (0..points.len()).map(|_| None).collect();
            for handle in handles {
                // This API has no panic-shaped error (`LiftError` is purely
                // algorithmic), so resume the original payload rather than
                // replacing it with a generic join message.
                let results = handle
                    .join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
                for (i, result) in results {
                    slots[i] = Some(result);
                }
            }
            slots
                .into_iter()
                .map(|r| r.expect("every point evaluated"))
                .collect()
        })
    }

    /// [`probability`](Self::probability) in an arbitrary [`Algebra`] with
    /// division (e.g. [`wfomc_logic::algebra::LogF64`] for serving-speed
    /// marginals): `WFOMC(Φ) / WFOMC(true)` under the given weights.
    ///
    /// Fails with [`LiftError::NoProbabilityNormalization`] when the
    /// normalization constant is zero or the algebra cannot divide by it
    /// (e.g. a non-constant polynomial in the [`wfomc_logic::algebra::Poly`]
    /// algebra that does not divide the numerator).
    pub fn probability_in<A: Algebra>(
        &self,
        n: usize,
        algebra: &A,
        weights: &AlgebraWeights<A>,
    ) -> Result<A::Elem, LiftError> {
        let count = self.count_in(n, algebra, weights)?;
        let normalization = weights.wfomc_of_true(algebra, &self.vocabulary, n);
        algebra.try_div(&count, &normalization).ok_or_else(|| {
            LiftError::NoProbabilityNormalization {
                predicate: "<vocabulary>".to_string(),
            }
        })
    }

    /// One grounded evaluation in an arbitrary algebra, against the same
    /// per-domain-size lineage / d-DNNF cache as the exact path — compiling
    /// once serves every ring.
    fn ground_count_in<A: Algebra>(
        &self,
        n: usize,
        algebra: &A,
        weights: &AlgebraWeights<A>,
    ) -> A::Elem {
        self.ground_count_in_guarded(n, algebra, weights, &Guard::unarmed())
            .expect("an unarmed guard cannot interrupt")
    }

    /// [`ground_count_in`](Self::ground_count_in) under a resource [`Guard`]:
    /// the grounding and d-DNNF compilation are metered (and only *completed*
    /// circuits are published to the per-`n` cache), so governed lane
    /// batches stay interruptible on ground-method plans too.
    fn ground_count_in_guarded<A: Algebra>(
        &self,
        n: usize,
        algebra: &A,
        weights: &AlgebraWeights<A>,
        guard: &Guard,
    ) -> Result<A::Elem, SolveError> {
        guard.check("plan.ground")?;
        let instance = self.ground_instance_guarded(n, guard)?;
        Ok(match self.solver.ground_backend {
            WmcBackend::Circuit => {
                let compiled = match instance.compiled.get() {
                    Some(compiled) => compiled,
                    None => {
                        let built =
                            CompiledWfomc::from_lineage_guarded(instance.lineage.clone(), guard)?;
                        instance.compiled.get_or_init(|| built)
                    }
                };
                compiled.wfomc_in(algebra, weights)
            }
            backend => wmc_formula_via_in(
                &instance.lineage.prop,
                algebra,
                &instance.lineage.weights_in(algebra, weights),
                backend,
            ),
        })
    }
}

/// The human-readable output of [`Plan::explain`].
#[derive(Clone, Debug)]
pub struct PlanReport {
    /// The method the plan selected.
    pub method: Method,
    /// One line per prepared-state fact.
    pub details: Vec<String>,
}

impl fmt::Display for PlanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan: {}", self.method)?;
        for line in &self.details {
            write!(f, "\n  {line}")?;
        }
        Ok(())
    }
}

/// A graceful-degradation chain for [`Plan::count_degraded`]: the planned
/// method first, then progressively simpler grounded backends, each under
/// its own sub-budget.
///
/// The default chain gives each stage the same limits:
///
/// ```
/// use std::time::Duration;
/// use wfomc_core::DegradePolicy;
/// use wfomc_guard::ExecutionLimits;
///
/// let per_stage = ExecutionLimits::none().with_deadline(Duration::from_millis(250));
/// let policy = DegradePolicy::uniform(per_stage);
/// assert_eq!(policy.circuit, Some(per_stage));
/// assert_eq!(policy.dpll, Some(per_stage));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Sub-budget for the plan's own (usually lifted) method.
    pub primary: ExecutionLimits,
    /// Sub-budget for the grounded d-DNNF stage; `None` skips the stage.
    pub circuit: Option<ExecutionLimits>,
    /// Sub-budget for the grounded DPLL stage; `None` skips the stage.
    pub dpll: Option<ExecutionLimits>,
}

impl DegradePolicy {
    /// The full chain with the same sub-budget per stage.
    pub fn uniform(limits: ExecutionLimits) -> DegradePolicy {
        DegradePolicy {
            primary: limits,
            circuit: Some(limits),
            dpll: Some(limits),
        }
    }

    /// Only the planned method, no fallback stages (equivalent to
    /// [`Plan::count_with_limits`]).
    pub fn primary_only(limits: ExecutionLimits) -> DegradePolicy {
        DegradePolicy {
            primary: limits,
            circuit: None,
            dpll: None,
        }
    }
}

/// Unwraps a [`SolveError`] coming back through an *unarmed* guard, where
/// exhaustion is impossible by construction.
fn demote(e: SolveError) -> LiftError {
    match e {
        SolveError::Lift(e) => e,
        other => unreachable!("an unarmed guard cannot interrupt: {other}"),
    }
}

/// The [`LimitsReport`] for a finished governed solve, or `None` when
/// nothing was armed (so ungoverned reports stay bit-identical to the
/// pre-governance ones).
fn limits_report(guard: &Guard, limits: &ExecutionLimits) -> Option<LimitsReport> {
    guard.is_armed().then(|| LimitsReport {
        deadline: limits.deadline,
        work_cap: limits.work_cap,
        work_done: guard.work_done(),
        elapsed: guard.elapsed(),
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The error returned when no lifted method applies and grounding is
/// disabled (identical to the one-shot solver's).
fn no_lifted_method() -> LiftError {
    LiftError::PatternMismatch {
        expected: "a sentence covered by a lifted algorithm (QS4, FO², γ-acyclic CQ)".to_string(),
    }
}

/// Predicates of `full` that `counted` does not cover.
fn extra_predicates(full: &Vocabulary, counted: &Vocabulary) -> Vec<Predicate> {
    full.iter()
        .filter(|p| !counted.contains(p.name()))
        .cloned()
        .collect()
}

/// `(w + w̄)^{n^arity}` for predicates a lifted method did not account for.
fn predicate_factor(extra: &[Predicate], n: usize, weights: &Weights) -> Weight {
    let mut factor = Weight::one();
    for p in extra {
        factor *= weight_pow(&weights.pair_of(p).total(), p.num_ground_tuples(n));
    }
    factor
}

/// [`predicate_factor`] in an arbitrary algebra.
fn predicate_factor_in<A: Algebra>(
    extra: &[Predicate],
    n: usize,
    algebra: &A,
    weights: &AlgebraWeights<A>,
) -> A::Elem {
    let mut factor = algebra.one();
    for p in extra {
        let total = weights.total(algebra, p.name());
        algebra.mul_assign(&mut factor, &algebra.pow(&total, p.num_ground_tuples(n)));
    }
    factor
}

// ---- Snapshot codec (wfomc-snap/v1) ---------------------------------------
//
// A plan serializes to a flat payload covering everything `Solver::plan`
// computes plus the mutable caches worth keeping across restarts: the FO²
// prepared state (via `Fo2Prepared::snap_encode`), the ground lineage cache,
// and each cached grounding's compiled d-DNNF circuit. State that is cheap
// and deterministic to recompute — QS4 extras, the CQ query recognition, the
// Tseitin transform — is re-derived on decode instead of persisted, which
// keeps the format small and leaves fewer invariants to re-validate.

/// Format tags for [`PlanState`], stable across releases of the format.
const SNAP_STATE_QS4: u8 = 0;
const SNAP_STATE_FO2: u8 = 1;
const SNAP_STATE_CQ: u8 = 2;
const SNAP_STATE_GROUND: u8 = 3;

fn snap_backend_tag(backend: WmcBackend) -> u8 {
    match backend {
        WmcBackend::Enumerate => 0,
        WmcBackend::Dpll => 1,
        WmcBackend::Circuit => 2,
    }
}

fn snap_backend_from(tag: u8) -> snap::SnapResult<WmcBackend> {
    match tag {
        0 => Ok(WmcBackend::Enumerate),
        1 => Ok(WmcBackend::Dpll),
        2 => Ok(WmcBackend::Circuit),
        other => Err(snap::SnapError::new(format!("unknown backend tag {other}"))),
    }
}

fn snap_encode_vocabulary(enc: &mut snap::Enc, vocabulary: &Vocabulary) {
    enc.usize(vocabulary.len());
    for p in vocabulary.iter() {
        snap::encode_predicate(enc, p);
    }
}

fn snap_decode_vocabulary(dec: &mut snap::Dec<'_>) -> snap::SnapResult<Vocabulary> {
    let n = dec.len()?;
    let mut out = Vocabulary::new();
    for _ in 0..n {
        let p = snap::decode_predicate(dec)?;
        // `Vocabulary::add` panics on conflicting arities; reject the
        // corruption gracefully instead.
        if let Some(existing) = out.iter().find(|q| q.name() == p.name()) {
            if existing.arity() != p.arity() {
                return Err(snap::SnapError::new(format!(
                    "predicate {} has conflicting arities",
                    p.name()
                )));
            }
        }
        out.add(p);
    }
    Ok(out)
}

/// Encodes a propositional formula as a postfix op stream: children are
/// emitted before their operator, so decode is a simple stack machine that
/// rebuilds the *raw* enum variants (no smart-constructor simplification —
/// the formula must round-trip bit-identically).
fn snap_encode_prop(enc: &mut snap::Enc, f: &PropFormula) {
    enc.usize(f.size());
    let mut stack: Vec<(&PropFormula, bool)> = vec![(f, false)];
    while let Some((node, children_done)) = stack.pop() {
        if children_done {
            match node {
                PropFormula::Not(_) => enc.u8(3),
                PropFormula::And(gs) => {
                    enc.u8(4);
                    enc.usize(gs.len());
                }
                PropFormula::Or(gs) => {
                    enc.u8(5);
                    enc.usize(gs.len());
                }
                _ => unreachable!("only connectives are re-visited"),
            }
            continue;
        }
        match node {
            PropFormula::Top => enc.u8(0),
            PropFormula::Bottom => enc.u8(1),
            PropFormula::Var(v) => {
                enc.u8(2);
                enc.usize(*v);
            }
            PropFormula::Not(g) => {
                stack.push((node, true));
                stack.push((g, false));
            }
            PropFormula::And(gs) | PropFormula::Or(gs) => {
                stack.push((node, true));
                for g in gs.iter().rev() {
                    stack.push((g, false));
                }
            }
        }
    }
}

fn snap_decode_prop(dec: &mut snap::Dec<'_>) -> snap::SnapResult<PropFormula> {
    let ops = dec.len()?;
    let mut stack: Vec<PropFormula> = Vec::new();
    for _ in 0..ops {
        match dec.u8()? {
            0 => stack.push(PropFormula::Top),
            1 => stack.push(PropFormula::Bottom),
            2 => stack.push(PropFormula::Var(dec.usize()?)),
            3 => {
                let g = stack
                    .pop()
                    .ok_or_else(|| snap::SnapError::new("negation with empty stack"))?;
                stack.push(PropFormula::Not(Box::new(g)));
            }
            tag @ (4 | 5) => {
                let len = dec.usize()?;
                if len > stack.len() {
                    return Err(snap::SnapError::new("connective arity exceeds stack"));
                }
                let args = stack.split_off(stack.len() - len);
                stack.push(if tag == 4 {
                    PropFormula::And(args)
                } else {
                    PropFormula::Or(args)
                });
            }
            other => {
                return Err(snap::SnapError::new(format!(
                    "unknown prop formula tag {other}"
                )))
            }
        }
    }
    if stack.len() == 1 {
        Ok(stack.pop().expect("checked length"))
    } else {
        Err(snap::SnapError::new("prop formula stack not a singleton"))
    }
}

fn snap_encode_lineage(enc: &mut snap::Enc, lineage: &Lineage) {
    enc.usize(lineage.domain_size);
    enc.usize(lineage.atoms.len());
    for atom in &lineage.atoms {
        enc.str(&atom.predicate);
        enc.usize(atom.tuple.len());
        for &i in &atom.tuple {
            enc.usize(i);
        }
    }
    snap_encode_prop(enc, &lineage.prop);
}

fn snap_decode_lineage(dec: &mut snap::Dec<'_>) -> snap::SnapResult<Lineage> {
    let domain_size = dec.usize()?;
    let num_atoms = dec.len()?;
    let mut atoms = Vec::with_capacity(num_atoms);
    for _ in 0..num_atoms {
        let predicate = dec.str()?;
        let arity = dec.len()?;
        let mut tuple = Vec::with_capacity(arity);
        for _ in 0..arity {
            tuple.push(dec.usize()?);
        }
        atoms.push(wfomc_ground::GroundAtom { predicate, tuple });
    }
    let prop = snap_decode_prop(dec)?;
    if prop.num_vars() > atoms.len() {
        return Err(snap::SnapError::new(
            "lineage formula mentions variables beyond its atoms",
        ));
    }
    Ok(Lineage {
        prop,
        atoms,
        domain_size,
    })
}

fn snap_encode_compiled(enc: &mut snap::Enc, compiled: &CompiledWfomc) {
    use wfomc_circuit::Node;
    let inner = compiled.compiled().inner();
    let circuit = inner.circuit();
    enc.usize(circuit.len());
    for node in circuit.nodes() {
        match node {
            Node::False => enc.u8(0),
            Node::True => enc.u8(1),
            Node::Lit(lit) => {
                enc.u8(2);
                enc.usize(lit.var);
                enc.bool(lit.positive);
            }
            Node::And(children) => {
                enc.u8(3);
                enc.usize(children.len());
                for child in children.iter() {
                    enc.u32(child.0);
                }
            }
            Node::Decision { var, hi, lo } => {
                enc.u8(4);
                enc.usize(*var);
                enc.u32(hi.0);
                enc.u32(lo.0);
            }
        }
    }
    enc.u32(inner.root().0);
    enc.usize(inner.num_vars());
    let stats = inner.stats();
    enc.usize(stats.nodes);
    enc.usize(stats.edges);
    enc.usize(stats.decisions);
    enc.usize(stats.cache_hits);
}

fn snap_decode_compiled(
    dec: &mut snap::Dec<'_>,
    lineage: &Lineage,
) -> snap::SnapResult<CompiledWfomc> {
    use wfomc_circuit::{CLit, Circuit, CompileStats, CompiledCnf, Node, NodeId};
    let num_nodes = dec.len()?;
    let mut nodes = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        nodes.push(match dec.u8()? {
            0 => Node::False,
            1 => Node::True,
            2 => {
                let var = dec.usize()?;
                let positive = dec.bool()?;
                Node::Lit(CLit { var, positive })
            }
            3 => {
                let len = dec.len()?;
                let mut children = Vec::with_capacity(len);
                for _ in 0..len {
                    children.push(NodeId(dec.u32()?));
                }
                Node::And(children.into_boxed_slice())
            }
            4 => {
                let var = dec.usize()?;
                let hi = NodeId(dec.u32()?);
                let lo = NodeId(dec.u32()?);
                Node::Decision { var, hi, lo }
            }
            other => {
                return Err(snap::SnapError::new(format!(
                    "unknown circuit node tag {other}"
                )))
            }
        });
    }
    let root = NodeId(dec.u32()?);
    let num_vars = dec.usize()?;
    let stats = CompileStats {
        nodes: dec.usize()?,
        edges: dec.usize()?,
        decisions: dec.usize()?,
        cache_hits: dec.usize()?,
    };
    let circuit = Circuit::from_nodes(nodes)
        .ok_or_else(|| snap::SnapError::new("circuit arena violates d-DNNF invariants"))?;
    let inner = CompiledCnf::from_parts(circuit, root, num_vars, stats)
        .ok_or_else(|| snap::SnapError::new("compiled circuit parts are inconsistent"))?;
    CompiledWfomc::from_parts(
        lineage.clone(),
        wfomc_prop::counter::CompiledWmc::from_inner(inner),
    )
    .ok_or_else(|| snap::SnapError::new("circuit does not match its lineage"))
}

impl Plan {
    /// Serializes the plan's full prepared state — analysis plus the ground
    /// lineage cache and any compiled circuits — as a `wfomc-snap/v1`
    /// payload. The inverse is [`snap_decode`](Self::snap_decode); the
    /// weight-binding LRU and cache hit counters are not persisted (they
    /// restart cold, like a fresh plan).
    pub fn snap_encode(&self) -> Vec<u8> {
        let mut enc = snap::Enc::new();
        snap::encode_formula(&mut enc, &self.sentence);
        snap_encode_vocabulary(&mut enc, &self.vocabulary);
        snap::encode_weights(&mut enc, &self.default_weights);
        enc.bool(self.solver.allow_ground_fallback);
        enc.u8(snap_backend_tag(self.solver.ground_backend));
        enc.bool(self.solver.use_lifted);
        match self.solver.ground_cache_capacity {
            Some(capacity) => {
                enc.bool(true);
                enc.usize(capacity);
            }
            None => enc.bool(false),
        }
        match &self.state {
            PlanState::Qs4 { .. } => enc.u8(SNAP_STATE_QS4),
            PlanState::Fo2(prepared) => {
                enc.u8(SNAP_STATE_FO2);
                prepared.snap_encode(&mut enc);
            }
            PlanState::Cq { .. } => enc.u8(SNAP_STATE_CQ),
            PlanState::Ground => enc.u8(SNAP_STATE_GROUND),
        }
        // Ground cache entries in LRU order (oldest first), so decode can
        // reassign fresh stamps without disturbing eviction behavior.
        let cache = self.ground.instances.lock().expect("ground cache poisoned");
        let mut entries: Vec<_> = cache.map.iter().collect();
        entries.sort_by_key(|(_, (_, stamp))| *stamp);
        enc.usize(entries.len());
        for (&n, (instance, _)) in entries {
            enc.usize(n);
            snap_encode_lineage(&mut enc, &instance.lineage);
            match instance.compiled.get() {
                Some(compiled) => {
                    enc.bool(true);
                    snap_encode_compiled(&mut enc, compiled);
                }
                None => enc.bool(false),
            }
        }
        drop(cache);
        enc.into_bytes()
    }

    /// Rebuilds a plan from a [`snap_encode`](Self::snap_encode) payload.
    ///
    /// Analysis state that is deterministic given the sentence (QS4 extras,
    /// CQ recognition, Tseitin CNFs) is recomputed; everything else is
    /// validated structurally as it is read. Any inconsistency — truncation,
    /// unknown tags, broken circuit invariants — yields an error, never a
    /// panic or a wrong plan, so callers can always fall back to replanning.
    pub fn snap_decode(bytes: &[u8]) -> Result<Plan, snap::SnapError> {
        let mut dec = snap::Dec::new(bytes);
        let sentence = snap::decode_formula(&mut dec)?;
        if !sentence.is_sentence() {
            return Err(snap::SnapError::new("payload formula is not a sentence"));
        }
        let vocabulary = snap_decode_vocabulary(&mut dec)?;
        if !sentence.vocabulary().is_subvocabulary_of(&vocabulary) {
            return Err(snap::SnapError::new(
                "vocabulary does not cover the sentence",
            ));
        }
        let default_weights = snap::decode_weights(&mut dec)?;
        let allow_ground_fallback = dec.bool()?;
        let ground_backend = snap_backend_from(dec.u8()?)?;
        let use_lifted = dec.bool()?;
        let ground_cache_capacity = if dec.bool()? {
            Some(dec.usize()?)
        } else {
            None
        };
        let solver = Solver {
            allow_ground_fallback,
            ground_backend,
            use_lifted,
            ground_cache_capacity,
        };
        let state = match dec.u8()? {
            SNAP_STATE_QS4 => {
                if !is_qs4(&sentence) {
                    return Err(snap::SnapError::new("sentence is not QS4"));
                }
                PlanState::Qs4 {
                    extra: extra_predicates(&vocabulary, &sentence.vocabulary()),
                }
            }
            SNAP_STATE_FO2 => PlanState::Fo2(Fo2Prepared::snap_decode(&mut dec)?),
            SNAP_STATE_CQ => {
                let query = ConjunctiveQuery::from_formula(&sentence)
                    .ok_or_else(|| snap::SnapError::new("sentence is not a CQ"))?;
                let extra = extra_predicates(&vocabulary, &query.vocabulary());
                PlanState::Cq {
                    query,
                    extra,
                    memo: Mutex::new(CqMemo::default()),
                }
            }
            SNAP_STATE_GROUND => PlanState::Ground,
            other => {
                return Err(snap::SnapError::new(format!(
                    "unknown plan state tag {other}"
                )))
            }
        };
        let num_cached = dec.len()?;
        let mut cache = GroundCache::default();
        for _ in 0..num_cached {
            let n = dec.usize()?;
            let lineage = snap_decode_lineage(&mut dec)?;
            if lineage.domain_size != n {
                return Err(snap::SnapError::new("cached lineage at the wrong key"));
            }
            let compiled = OnceLock::new();
            if dec.bool()? {
                let circuit = snap_decode_compiled(&mut dec, &lineage)?;
                let _ = compiled.set(circuit);
            }
            cache.clock += 1;
            let stamp = cache.clock;
            cache
                .map
                .insert(n, (Arc::new(GroundInstance { lineage, compiled }), stamp));
        }
        dec.finish()?;
        Ok(Plan {
            sentence,
            vocabulary,
            default_weights,
            solver,
            state,
            ground: GroundPrep {
                instances: Mutex::new(cache),
            },
        })
    }

    /// A cheap fingerprint of the plan's mutable snapshot-relevant state:
    /// the number of cached groundings and how many of them carry a
    /// compiled circuit. A snapshot written at stamp `s` is *dirty* once the
    /// live plan's stamp differs — the serve layer uses this to decide which
    /// plans to rewrite on graceful shutdown.
    pub fn snap_stamp(&self) -> u64 {
        let cache = self.ground.instances.lock().expect("ground cache poisoned");
        let compiled = cache
            .map
            .values()
            .filter(|(instance, _)| instance.compiled.get().is_some())
            .count() as u64;
        ((cache.map.len() as u64) << 32) | compiled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use wfomc_logic::catalog;
    use wfomc_logic::weights::{weight_int, weight_ratio};

    /// The four-method workload: one sentence per dispatch target, with the
    /// largest domain size the test should use for it.
    fn four_methods() -> Vec<(Formula, Method, usize)> {
        vec![
            (catalog::qs4(), Method::Qs4, 4),
            (catalog::table1_sentence(), Method::Fo2, 4),
            (
                catalog::chain_query(3).to_formula(),
                Method::GammaAcyclicCq,
                2,
            ),
            (catalog::transitivity(), Method::Ground, 2),
        ]
    }

    #[test]
    fn plan_selects_the_one_shot_method() {
        let solver = Solver::new();
        for (sentence, method, n) in four_methods() {
            let plan = solver.plan(&Problem::new(sentence.clone())).unwrap();
            assert_eq!(plan.method(), method, "plan method for {sentence}");
            let one_shot = solver.fomc(&sentence, n).unwrap();
            assert_eq!(one_shot.method, method, "one-shot method for {sentence}");
        }
    }

    #[test]
    fn plan_count_matches_one_shot_across_n() {
        let solver = Solver::new();
        for (sentence, _, max_n) in four_methods() {
            let plan = solver.plan(&Problem::new(sentence.clone())).unwrap();
            for n in 0..=max_n {
                let planned = plan.count(n, &Weights::ones()).unwrap();
                let one_shot = solver.fomc(&sentence, n).unwrap();
                assert_eq!(planned.value, one_shot.value, "{sentence} at n={n}");
                if n > 0 {
                    assert_eq!(planned.method, one_shot.method, "{sentence} at n={n}");
                }
            }
        }
    }

    #[test]
    fn one_plan_serves_many_weight_functions() {
        let solver = Solver::new();
        let weight_sets = [
            Weights::ones(),
            Weights::from_ints([("R", 2, 1), ("S", 1, 3), ("T", 5, 1)]),
            Weights::from_ints([("R", 0, 1), ("S", -1, 2), ("T", 2, 2)]),
            Weights::from_ints([("R", 1, -1), ("S", 2, 1), ("T", 1, 1)]),
        ];
        for (sentence, _, max_n) in four_methods() {
            let plan = solver.plan(&Problem::new(sentence.clone())).unwrap();
            for weights in &weight_sets {
                for n in 0..=max_n {
                    let planned = plan.count(n, weights).unwrap();
                    let one_shot = solver
                        .wfomc(&sentence, &sentence.vocabulary(), n, weights)
                        .unwrap();
                    assert_eq!(planned.value, one_shot.value, "{sentence} at n={n}");
                    if n > 0 {
                        assert_eq!(planned.method, one_shot.method, "{sentence} at n={n}");
                    }
                }
            }
        }
    }

    #[test]
    fn count_batch_matches_sequential_counts_in_order() {
        let plan = Problem::new(catalog::table1_sentence()).plan().unwrap();
        let points: Vec<(usize, Weights)> = (0..=6)
            .map(|n| (n, Weights::from_ints([("R", n as i64, 1)])))
            .collect();
        let batch = plan.count_batch(&points).unwrap();
        assert_eq!(batch.len(), points.len());
        for (report, (n, w)) in batch.iter().zip(&points) {
            assert_eq!(report.value, plan.count(*n, w).unwrap().value, "n = {n}");
        }
    }

    #[test]
    fn count_batch_log_mixed_n_falls_back_and_matches_scalar() {
        use wfomc_logic::algebra::LogF64;
        let plan = Problem::new(catalog::table1_sentence()).plan().unwrap();
        // Mixed domain sizes force the per-point fallback path.
        let points: Vec<(usize, Weights)> = (0..=5)
            .map(|n| (n, Weights::from_ints([("R", n as i64 - 2, 1)])))
            .collect();
        let batch = plan.count_batch_log(&points);
        assert_eq!(batch.len(), points.len());
        for (i, ((n, w), lane)) in points.iter().zip(&batch).enumerate() {
            let scalar = plan
                .count_in(*n, &LogF64, &AlgebraWeights::lift(&LogF64, w))
                .unwrap();
            let lane = lane.as_ref().expect("mixed-n point");
            assert_eq!(lane.signum(), scalar.signum(), "point {i}");
            assert_eq!(
                lane.ln_abs().to_bits(),
                scalar.ln_abs().to_bits(),
                "point {i}"
            );
        }
        assert!(plan.count_batch_log(&[]).is_empty());
    }

    #[test]
    fn count_batch_log_with_limits_reports_exhaustion_per_point() {
        let plan = Problem::new(catalog::table1_sentence()).plan().unwrap();
        let points: Vec<(usize, Weights)> = (0..12).map(|_| (6, Weights::ones())).collect();
        let expired = ExecutionLimits::none().with_deadline(std::time::Duration::ZERO);
        let results = plan.count_batch_log_with_limits(&points, &expired, None);
        assert_eq!(results.len(), points.len());
        for result in &results {
            assert!(
                matches!(result, Err(e) if e.is_exhaustion()),
                "expired budget must exhaust every lane point"
            );
        }
        // The plan stays reusable after an exhausted lane batch.
        assert!(plan.count_batch_log(&points).iter().all(Result::is_ok));
    }

    #[test]
    fn cq_plans_fall_back_to_ground_on_zero_total_weights() {
        let sentence = catalog::chain_query(2).to_formula();
        let solver = Solver::new();
        let plan = solver.plan(&Problem::new(sentence.clone())).unwrap();
        assert_eq!(plan.method(), Method::GammaAcyclicCq);
        // Skolem-style weights make tuple probabilities undefined; both the
        // plan and the one-shot dispatch must ground instead.
        let weights = Weights::from_ints([("R1", 1, -1)]);
        let planned = plan.count(2, &weights).unwrap();
        let one_shot = solver
            .wfomc(&sentence, &sentence.vocabulary(), 2, &weights)
            .unwrap();
        assert_eq!(planned.method, Method::Ground);
        assert_eq!(one_shot.method, Method::Ground);
        assert_eq!(planned.value, one_shot.value);
    }

    #[test]
    fn ground_plan_reuses_one_circuit_per_domain_size() {
        let solver = Solver::builder()
            .ground_backend(WmcBackend::Circuit)
            .build();
        let plan = solver.plan(&Problem::new(catalog::transitivity())).unwrap();
        let w1 = Weights::from_ints([("R", 2, 1)]);
        let w2 = Weights::from_ints([("R", 1, 3)]);
        let a = plan.count(2, &w1).unwrap();
        let b = plan.count(2, &w2).unwrap();
        assert_eq!(a.backend, Some(WmcBackend::Circuit));
        assert_eq!(
            a.value,
            Solver::ground_only()
                .wfomc(
                    &catalog::transitivity(),
                    &catalog::transitivity().vocabulary(),
                    2,
                    &w1
                )
                .unwrap()
                .value
        );
        assert_eq!(
            b.value,
            Solver::ground_only()
                .wfomc(
                    &catalog::transitivity(),
                    &catalog::transitivity().vocabulary(),
                    2,
                    &w2
                )
                .unwrap()
                .value
        );
        let explain = plan.explain().to_string();
        assert!(explain.contains("grounded-wmc"), "{explain}");
        assert!(explain.contains("1 grounding(s) cached"), "{explain}");
    }

    #[test]
    fn plan_probability_matches_solver_probability() {
        let sentence = catalog::exists_unary();
        let voc = sentence.vocabulary();
        let mut weights = Weights::ones();
        weights.set_probability("S", weight_ratio(1, 3));
        let problem = Problem::new(sentence.clone())
            .with_vocabulary(voc.clone())
            .with_weights(weights.clone());
        let plan = Solver::new().plan(&problem).unwrap();
        for n in 1..=3 {
            let planned = plan.probability(n).unwrap();
            let one_shot = Solver::new()
                .probability(&sentence, &voc, n, &weights)
                .unwrap();
            assert_eq!(planned.value, one_shot.value, "n = {n}");
            assert_eq!(planned.method, one_shot.method, "n = {n}");
        }
        assert_eq!(plan.probability(2).unwrap().value, weight_ratio(5, 9));
    }

    #[test]
    fn lifted_only_plans_error_at_plan_time() {
        let solver = Solver::builder().ground_fallback(false).build();
        let err = solver
            .plan(&Problem::new(catalog::transitivity()))
            .unwrap_err();
        assert!(matches!(err, LiftError::PatternMismatch { .. }));
        // But FO² sentences still plan fine.
        assert!(solver
            .plan(&Problem::new(catalog::table1_sentence()))
            .is_ok());
    }

    #[test]
    fn open_formulas_are_rejected_at_plan_time() {
        let open = wfomc_logic::builders::atom("R", &["x"]);
        assert!(matches!(
            Problem::new(open).plan(),
            Err(LiftError::NotASentence)
        ));
    }

    #[test]
    fn extra_vocabulary_predicates_multiply_through_plans() {
        let problem = Problem::new(catalog::qs4())
            .with_vocabulary(Vocabulary::from_pairs([("S", 2), ("Unused", 1)]));
        let plan = problem.plan().unwrap();
        // 14 · 2² (for the unused unary predicate).
        assert_eq!(
            plan.count(2, &Weights::ones()).unwrap().value,
            weight_int(56)
        );
    }

    #[test]
    fn explain_mentions_the_prepared_state() {
        let plan = Problem::new(catalog::table1_sentence()).plan().unwrap();
        let report = plan.explain();
        assert_eq!(report.method, Method::Fo2);
        let text = report.to_string();
        assert!(text.contains("fo2-cells"), "{text}");
        assert!(text.contains("valid cell"), "{text}");

        let cq = Problem::new(catalog::chain_query(3).to_formula())
            .plan()
            .unwrap();
        assert!(cq.explain().to_string().contains("γ-acyclic"), "cq explain");
    }

    #[test]
    fn count_in_matches_exact_across_all_methods() {
        use wfomc_logic::algebra::{Algebra, AlgebraWeights, Exact, LogF64, Poly};

        let solver = Solver::new();
        let weights = Weights::from_ints([("R", 2, 1), ("S", 1, 3), ("T", 5, 1), ("R1", 2, 1)]);
        for (sentence, method, max_n) in four_methods() {
            let plan = solver.plan(&Problem::new(sentence.clone())).unwrap();
            for n in 0..=max_n {
                let exact = plan.count(n, &weights).unwrap().value;
                // Exact algebra through the generic entry point.
                let generic = plan
                    .count_in(n, &Exact, &AlgebraWeights::lift(&Exact, &weights))
                    .unwrap();
                assert_eq!(exact, generic, "{sentence} ({method:?}) at n={n}");
                // Log-space floats track the exact value.
                let log = plan
                    .count_in(n, &LogF64, &AlgebraWeights::lift(&LogF64, &weights))
                    .unwrap();
                let expected = LogF64.from_weight(&exact);
                assert_eq!(log.signum(), expected.signum(), "{sentence} at n={n}");
                if !exact.is_zero() {
                    assert!(
                        (log.ln_abs() - expected.ln_abs()).abs() < 1e-9,
                        "{sentence} at n={n}"
                    );
                }
                // Constant polynomials give a degree-0 polynomial.
                let poly = plan
                    .count_in(n, &Poly, &AlgebraWeights::lift(&Poly, &weights))
                    .unwrap();
                assert_eq!(poly.coeff(0), exact, "{sentence} at n={n}");
            }
        }
    }

    #[test]
    fn count_batch_in_matches_count_in() {
        use wfomc_logic::algebra::{AlgebraWeights, Poly};
        use wfomc_logic::poly::Polynomial;

        let plan = Problem::new(catalog::table1_sentence()).plan().unwrap();
        // Polynomial weight sweeps: R's weight is the indeterminate.
        let points: Vec<(usize, AlgebraWeights<Poly>)> = (0..=5)
            .map(|n| {
                let mut w = AlgebraWeights::lift(&Poly, &Weights::ones());
                w.set("R", Polynomial::x(), Polynomial::one());
                (n, w)
            })
            .collect();
        let batch = plan.count_batch_in(&points, &Poly).unwrap();
        assert_eq!(batch.len(), points.len());
        for (result, (n, w)) in batch.iter().zip(&points) {
            assert_eq!(result, &plan.count_in(*n, &Poly, w).unwrap(), "n = {n}");
        }
        // The polynomial evaluated at a sample point matches an exact count
        // with that weight.
        let at_three = batch[4].eval(&weight_int(3));
        let exact = plan
            .count(4, &Weights::from_ints([("R", 3, 1)]))
            .unwrap()
            .value;
        assert_eq!(at_three, exact);
    }

    #[test]
    fn probability_in_divides_by_the_normalization() {
        use wfomc_logic::algebra::{AlgebraWeights, Exact, LogF64};

        let sentence = catalog::exists_unary();
        let mut weights = Weights::ones();
        weights.set_probability("S", weight_ratio(1, 3));
        let plan = Problem::new(sentence)
            .with_weights(weights.clone())
            .plan()
            .unwrap();
        let exact = plan
            .probability_in(2, &Exact, &AlgebraWeights::lift(&Exact, &weights))
            .unwrap();
        assert_eq!(exact, weight_ratio(5, 9));
        let log = plan
            .probability_in(2, &LogF64, &AlgebraWeights::lift(&LogF64, &weights))
            .unwrap();
        assert!((log.to_f64() - 5.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn cq_plans_ground_under_generic_algebras() {
        use wfomc_logic::algebra::{AlgebraWeights, Exact, LogF64};

        let sentence = catalog::chain_query(3).to_formula();
        let plan = Solver::new().plan(&Problem::new(sentence.clone())).unwrap();
        assert_eq!(plan.method(), Method::GammaAcyclicCq);
        let weights = Weights::from_ints([("R1", 2, 1), ("R2", 1, 3)]);
        let exact = plan.count(2, &weights).unwrap().value;
        let generic = plan
            .count_in(2, &Exact, &AlgebraWeights::lift(&Exact, &weights))
            .unwrap();
        assert_eq!(exact, generic);
        let log = plan
            .count_in(2, &LogF64, &AlgebraWeights::lift(&LogF64, &weights))
            .unwrap();
        let expected = LogF64.from_weight(&exact);
        assert_eq!(log.signum(), expected.signum());
        assert!((log.ln_abs() - expected.ln_abs()).abs() < 1e-9);
        // Lifted-only solvers refuse: the generic CQ path needs grounding.
        let lifted_only = Solver::builder().ground_fallback(false).build();
        let plan = lifted_only.plan(&Problem::new(sentence)).unwrap();
        assert!(plan
            .count_in(2, &LogF64, &AlgebraWeights::lift(&LogF64, &weights))
            .is_err());
    }

    #[test]
    fn ground_cache_capacity_bounds_and_evicts_lru() {
        let solver = Solver::builder().ground_cache_capacity(2).build();
        let plan = solver.plan(&Problem::new(catalog::transitivity())).unwrap();
        for n in [1usize, 2, 3] {
            let _ = plan.count(n, &Weights::ones()).unwrap();
        }
        assert_eq!(plan.ground.len(), 2, "capacity bounds the cache");
        // n = 1 was the least recently used, so it was evicted; touching
        // n = 3 then adding n = 1 must evict n = 2.
        let _ = plan.count(3, &Weights::ones()).unwrap();
        let _ = plan.count(1, &Weights::ones()).unwrap();
        assert_eq!(plan.ground.len(), 2);
        let cached: Vec<usize> = {
            let cache = plan.ground.instances.lock().unwrap();
            let mut keys: Vec<usize> = cache.map.keys().copied().collect();
            keys.sort_unstable();
            keys
        };
        assert_eq!(cached, vec![1, 3]);
        // Unbounded by default.
        let unbounded = Solver::new()
            .plan(&Problem::new(catalog::transitivity()))
            .unwrap();
        for n in [1usize, 2, 3] {
            let _ = unbounded.count(n, &Weights::ones()).unwrap();
        }
        assert_eq!(unbounded.ground.len(), 3);
    }

    #[test]
    fn cq_count_batch_merges_worker_memos() {
        let plan = Problem::new(catalog::chain_query(3).to_formula())
            .plan()
            .unwrap();
        assert_eq!(plan.method(), Method::GammaAcyclicCq);
        let points: Vec<(usize, Weights)> = (1..=6)
            .map(|n| (n, Weights::from_ints([("R1", n as i64, 1)])))
            .collect();
        let batch = plan.count_batch(&points).unwrap();
        for (report, (n, w)) in batch.iter().zip(&points) {
            assert_eq!(report.value, plan.count(*n, w).unwrap().value, "n = {n}");
        }
        // The workers' discoveries were folded back into the shared memo.
        let memo_len = match &plan.state {
            PlanState::Cq { memo, .. } => memo.lock().unwrap().len(),
            _ => unreachable!(),
        };
        assert!(memo_len > 0, "batch evaluation populates the shared memo");
    }

    #[test]
    fn unarmed_limits_report_nothing_and_match_plain_counts() {
        let plan = Problem::new(catalog::table1_sentence()).plan().unwrap();
        let plain = plan.count(4, &Weights::ones()).unwrap();
        let governed = plan
            .count_with_limits(4, &Weights::ones(), &ExecutionLimits::none(), None)
            .unwrap();
        assert_eq!(plain.value, governed.value);
        assert!(governed.limits.is_none(), "nothing armed, nothing reported");
        assert!(!governed.degraded);
    }

    #[test]
    fn armed_limits_are_reported_and_displayed() {
        let plan = Problem::new(catalog::table1_sentence()).plan().unwrap();
        let limits = ExecutionLimits::none()
            .with_deadline(std::time::Duration::from_secs(600))
            .with_work_cap(u64::MAX);
        let report = plan
            .count_with_limits(5, &Weights::ones(), &limits, None)
            .unwrap();
        let recorded = report.limits.expect("armed solves report their budget");
        assert_eq!(recorded.work_cap, Some(u64::MAX));
        assert!(recorded.deadline.is_some());
        let text = report.to_string();
        assert!(text.contains("limits"), "{text}");
        assert!(text.contains("work="), "{text}");
        assert!(text.contains("elapsed="), "{text}");
    }

    #[test]
    fn expired_deadline_interrupts_every_method_and_leaves_the_plan_reusable() {
        let expired = ExecutionLimits::none().with_deadline(std::time::Duration::ZERO);
        for (sentence, _, n) in four_methods() {
            let plan = Problem::new(sentence.clone()).plan().unwrap();
            let err = plan
                .count_with_limits(n, &Weights::ones(), &expired, None)
                .unwrap_err();
            assert!(
                matches!(err, SolveError::DeadlineExceeded { .. }),
                "{sentence}: {err}"
            );
            // Retrying without limits agrees with a fresh plan's solve.
            let retried = plan.count(n, &Weights::ones()).unwrap().value;
            let fresh = Problem::new(sentence.clone())
                .plan()
                .unwrap()
                .count(n, &Weights::ones())
                .unwrap()
                .value;
            assert_eq!(retried, fresh, "{sentence}");
        }
    }

    #[test]
    fn cancellation_interrupts_and_a_fresh_token_recovers() {
        let plan = Problem::new(catalog::transitivity()).plan().unwrap();
        let token = CancelToken::new();
        token.cancel();
        let err = plan
            .count_with_limits(2, &Weights::ones(), &ExecutionLimits::none(), Some(token))
            .unwrap_err();
        assert!(matches!(err, SolveError::Cancelled { .. }), "{err}");
        // Same plan, fresh token: succeeds and matches the ungoverned count.
        let report = plan
            .count_with_limits(
                2,
                &Weights::ones(),
                &ExecutionLimits::none(),
                Some(CancelToken::new()),
            )
            .unwrap();
        assert_eq!(report.value, plan.count(2, &Weights::ones()).unwrap().value);
    }

    #[test]
    fn a_100ms_deadline_cuts_a_multi_second_workload_off_quickly() {
        // fo2-table1-30 (the perf-gate workload) runs ~2s uncapped; the
        // acceptance bar is an error within 150ms of the 100ms deadline.
        let plan = Problem::new(catalog::table1_sentence()).plan().unwrap();
        let limits = ExecutionLimits::none().with_deadline(std::time::Duration::from_millis(100));
        let started = std::time::Instant::now();
        let result = plan.count_with_limits(30, &Weights::ones(), &limits, None);
        let elapsed = started.elapsed();
        let err = result.expect_err("30-domain table1 cannot finish in 100ms");
        assert!(matches!(err, SolveError::DeadlineExceeded { .. }), "{err}");
        assert!(
            elapsed < std::time::Duration::from_millis(150),
            "deadline honored within 150ms, took {elapsed:?}"
        );
        // The interrupted plan still answers smaller points correctly.
        assert_eq!(
            plan.count(3, &Weights::ones()).unwrap().value,
            Problem::new(catalog::table1_sentence())
                .plan()
                .unwrap()
                .count(3, &Weights::ones())
                .unwrap()
                .value
        );
    }

    #[test]
    fn count_batch_results_matches_count_batch_on_clean_points() {
        let plan = Problem::new(catalog::table1_sentence()).plan().unwrap();
        let points: Vec<(usize, Weights)> = (0..=6)
            .map(|n| (n, Weights::from_ints([("R", n as i64, 1)])))
            .collect();
        let all = plan.count_batch(&points).unwrap();
        let per_point = plan.count_batch_results(&points);
        assert_eq!(all.len(), per_point.len());
        for (a, b) in all.iter().zip(&per_point) {
            assert_eq!(a.value, b.as_ref().unwrap().value);
        }
    }

    #[test]
    fn batch_under_a_shared_expired_deadline_fails_per_point_not_wholesale() {
        let plan = Problem::new(catalog::table1_sentence()).plan().unwrap();
        let points: Vec<(usize, Weights)> = (2..=5).map(|n| (n, Weights::ones())).collect();
        let expired = ExecutionLimits::none().with_deadline(std::time::Duration::ZERO);
        let results = plan.count_batch_with_limits(&points, &expired, None);
        assert_eq!(results.len(), points.len());
        for result in &results {
            let err = result.as_ref().unwrap_err();
            assert!(matches!(err, SolveError::DeadlineExceeded { .. }), "{err}");
        }
        // The batch pool being exhausted never corrupts the plan.
        let clean = plan.count_batch_results(&points);
        for (result, (n, w)) in clean.iter().zip(&points) {
            assert_eq!(
                result.as_ref().unwrap().value,
                plan.count(*n, w).unwrap().value
            );
        }
    }

    #[test]
    fn count_degraded_falls_back_to_ground_and_flags_the_report() {
        // Starve the lifted FO² method at a size it cannot finish instantly,
        // but give the grounded stages room at a small n: use a plan whose
        // primary deadline is already expired, so degradation is forced
        // deterministically.
        let plan = Problem::new(catalog::table1_sentence()).plan().unwrap();
        let policy = DegradePolicy {
            primary: ExecutionLimits::none().with_deadline(std::time::Duration::ZERO),
            circuit: Some(ExecutionLimits::none()),
            dpll: Some(ExecutionLimits::none()),
        };
        let report = plan
            .count_degraded(3, &Weights::ones(), &policy, None)
            .unwrap();
        assert!(report.degraded);
        assert_eq!(report.method, Method::Ground);
        assert_eq!(report.backend, Some(WmcBackend::Circuit));
        assert_eq!(report.value, plan.count(3, &Weights::ones()).unwrap().value);
        assert!(report.to_string().contains("degraded"));
        // When every stage is starved, the last stage's error surfaces.
        let starved = DegradePolicy::uniform(
            ExecutionLimits::none().with_deadline(std::time::Duration::ZERO),
        );
        let err = plan
            .count_degraded(3, &Weights::ones(), &starved, None)
            .unwrap_err();
        assert!(err.is_exhaustion(), "{err}");
        // A clean primary never degrades.
        let clean = plan
            .count_degraded(3, &Weights::ones(), &DegradePolicy::default(), None)
            .unwrap();
        assert!(!clean.degraded);
        assert_eq!(clean.method, Method::Fo2);
    }

    #[test]
    fn mem_estimate_cap_stops_grounding_before_allocation() {
        let plan = Problem::new(catalog::transitivity()).plan().unwrap();
        let limits = ExecutionLimits::none().with_mem_estimate_cap(1);
        let err = plan
            .count_with_limits(3, &Weights::ones(), &limits, None)
            .unwrap_err();
        assert!(
            matches!(err, SolveError::MemEstimateExceeded { .. }),
            "{err}"
        );
        // Retry uncapped: the cache holds no partial grounding.
        assert_eq!(
            plan.count(3, &Weights::ones()).unwrap().value,
            Problem::new(catalog::transitivity())
                .plan()
                .unwrap()
                .count(3, &Weights::ones())
                .unwrap()
                .value
        );
    }

    /// Deterministic pseudo-random weights including zero and negative
    /// rationals, over the predicate names the test sentences use.
    fn seeded_weights(seed: u64) -> Weights {
        let mut s = seed as i64 + 1;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            weight_ratio((s % 5) - 1, 1 + (s % 3).unsigned_abs() as i64)
        };
        let mut w = Weights::ones();
        for name in ["R", "S", "T", "R1", "R2", "R3"] {
            let pos = next();
            let neg = next();
            w.set(name, pos, neg);
        }
        w
    }

    /// `ln Π_R (|w_R| + |w̄_R| + 1)^{n^arity}` — an upper bound on the log
    /// magnitude of any intermediate term a count over `vocabulary` can
    /// produce, used to calibrate the LogF64 comparison tolerance (float
    /// cancellation is relative to the *terms*, not the final sum).
    fn ln_term_scale(vocabulary: &Vocabulary, weights: &Weights, n: usize) -> f64 {
        use num_traits::Signed;
        use wfomc_logic::algebra::{Algebra, LogF64};
        let mut scale = 0.0f64;
        for p in vocabulary.iter() {
            let pair = weights.pair_of(p);
            let bound = pair.pos.abs() + pair.neg.abs() + Weight::one();
            scale += LogF64.from_weight(&bound).ln_abs() * p.num_ground_tuples(n) as f64;
        }
        scale
    }

    #[test]
    fn snapshot_round_trip_preserves_ground_cache_and_circuits() {
        let mut solver = Solver::new();
        solver.ground_backend = WmcBackend::Circuit;
        let plan = solver.plan(&Problem::new(catalog::transitivity())).unwrap();
        let weights = Weights::from_ints([("R", 2, 1)]);
        // Populate the ground cache and compile a circuit per domain size.
        for n in 0..=2 {
            let _ = plan.count(n, &weights).unwrap();
        }
        let stamp = plan.snap_stamp();
        assert_ne!(stamp, 0, "counts populated the cache");

        let bytes = plan.snap_encode();
        let decoded = Plan::snap_decode(&bytes).expect("round trip");
        assert_eq!(decoded.method(), Method::Ground);
        assert_eq!(
            decoded.snap_stamp(),
            stamp,
            "groundings and compiled circuits survive the round trip"
        );
        for n in 0..=2 {
            let fresh = decoded.count(n, &weights).unwrap();
            assert_eq!(fresh.value, plan.count(n, &weights).unwrap().value);
            let cache = fresh.cache.expect("plan counts report cache stats");
            assert_eq!(cache.ground_misses, 0, "decoded cache serves n={n}");
        }
    }

    #[test]
    fn snapshot_decode_rejects_corruption_gracefully() {
        let plan = Solver::new()
            .plan(&Problem::new(catalog::table1_sentence()))
            .unwrap();
        let bytes = plan.snap_encode();
        // Truncation at every prefix length must error, never panic.
        for cut in 0..bytes.len().min(64) {
            assert!(Plan::snap_decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
        assert!(Plan::snap_decode(&bytes[..bytes.len() - 1]).is_err());
        // Trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(Plan::snap_decode(&padded).is_err());
        // And the pristine payload still decodes.
        assert!(Plan::snap_decode(&bytes).is_ok());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Snapshot round-trip (encode → decode) reproduces bit-identical
        /// counts across all four methods, under random weights including
        /// zeros and negatives.
        #[test]
        fn snapshot_round_trip_is_bit_identical(seed in 0u64..5000) {
            let solver = Solver::new();
            let weights = seeded_weights(seed);
            for (sentence, method, max_n) in four_methods() {
                let plan = solver.plan(&Problem::new(sentence.clone())).unwrap();
                let bytes = plan.snap_encode();
                let decoded = Plan::snap_decode(&bytes).expect("round trip");
                prop_assert_eq!(decoded.method(), method);
                for n in 0..=max_n {
                    let expected = plan.count(n, &weights).unwrap().value;
                    let got = decoded.count(n, &weights).unwrap().value;
                    prop_assert_eq!(got, expected, "{} at n={}", sentence, n);
                }
            }
        }

        /// LogF64 evaluation of one plan matches exact evaluation within
        /// relative tolerance, for all four methods, under random weights
        /// including zeros and negatives.
        #[test]
        fn differential_logf64_vs_exact(seed in 0u64..5000) {
            use wfomc_logic::algebra::{Algebra, AlgebraWeights, LogF64};
            let solver = Solver::new();
            let weights = seeded_weights(seed);
            for (sentence, _, max_n) in four_methods() {
                let plan = solver.plan(&Problem::new(sentence.clone())).unwrap();
                let lifted = AlgebraWeights::lift(&LogF64, &weights);
                for n in 0..=max_n {
                    let exact = plan.count(n, &weights).unwrap().value;
                    let log = plan.count_in(n, &LogF64, &lifted).unwrap();
                    let expected = LogF64.from_weight(&exact);
                    let scale = ln_term_scale(plan.vocabulary(), &weights, n);
                    if exact.is_zero() || expected.ln_abs() < scale - 26.0 {
                        // Exactly (or relatively) zero: floating cancellation
                        // may leave noise, but it must be noise — many orders
                        // of magnitude below the term scale.
                        prop_assert!(
                            log.is_zero() || log.ln_abs() < scale - 13.0,
                            "{} at n={}: residue {} vs scale {}",
                            sentence, n, log, scale
                        );
                    } else {
                        prop_assert_eq!(
                            log.signum(), expected.signum(),
                            "sign mismatch for {} at n={}", sentence, n
                        );
                        prop_assert!(
                            (log.ln_abs() - expected.ln_abs()).abs() < 1e-6,
                            "{} at n={}: {} vs {}", sentence, n, log, expected
                        );
                    }
                }
            }
        }

        /// Lane-batched `LogF64xN` evaluation is **bit-identical** to scalar
        /// `LogF64`, lane by lane, across all four methods — including zero
        /// and negative weights (the seeded generator produces both) and
        /// ragged final chunks (`k % LOG_LANES ≠ 0`).
        #[test]
        fn differential_lane_batch_vs_scalar_logf64(seed in 0u64..5000, k in 1usize..20) {
            use wfomc_logic::algebra::LogF64;
            let solver = Solver::new();
            for (sentence, _, max_n) in four_methods() {
                let plan = solver.plan(&Problem::new(sentence.clone())).unwrap();
                let points: Vec<(usize, Weights)> = (0..k)
                    .map(|i| (max_n, seeded_weights(seed.wrapping_add(i as u64))))
                    .collect();
                let lanes = plan.count_batch_log(&points);
                prop_assert_eq!(lanes.len(), k);
                for (i, ((n, w), lane)) in points.iter().zip(&lanes).enumerate() {
                    let scalar = plan
                        .count_in(*n, &LogF64, &AlgebraWeights::lift(&LogF64, w))
                        .unwrap();
                    let lane = lane.as_ref().expect("lane point");
                    prop_assert_eq!(
                        lane.signum(), scalar.signum(),
                        "sign mismatch for {} lane {}", sentence, i
                    );
                    prop_assert_eq!(
                        lane.ln_abs().to_bits(), scalar.ln_abs().to_bits(),
                        "magnitude bits differ for {} lane {}: {} vs {}",
                        sentence, i, lane, scalar
                    );
                }
            }
        }

        /// Poly evaluation with one predicate's weight left symbolic equals
        /// exact evaluation at sampled points, for all four methods, under
        /// random weights including zeros and negatives.
        #[test]
        fn differential_poly_vs_exact_at_sampled_points(seed in 0u64..5000) {
            use wfomc_logic::algebra::{AlgebraWeights, Poly};
            use wfomc_logic::poly::Polynomial;
            let solver = Solver::new();
            let weights = seeded_weights(seed);
            // Sample points including zero and a negative rational.
            let samples = [weight_int(0), weight_int(2), weight_ratio(-3, 2)];
            for (sentence, _, max_n) in four_methods() {
                let plan = solver.plan(&Problem::new(sentence.clone())).unwrap();
                // Leave the first vocabulary predicate's present-weight
                // symbolic: w(P) = z, w̄(P) unchanged.
                let symbolic = plan
                    .vocabulary()
                    .iter()
                    .next()
                    .expect("test sentences have predicates")
                    .clone();
                let mut poly_weights = AlgebraWeights::lift(&Poly, &weights);
                poly_weights.set(
                    symbolic.name(),
                    Polynomial::x(),
                    Poly.from_weight(&weights.pair(symbolic.name()).neg),
                );
                for n in 0..=max_n {
                    let f = plan.count_in(n, &Poly, &poly_weights).unwrap();
                    for point in &samples {
                        let mut at_point = weights.clone();
                        at_point.set(
                            symbolic.name(),
                            point.clone(),
                            weights.pair(symbolic.name()).neg,
                        );
                        let exact = plan.count(n, &at_point).unwrap().value;
                        prop_assert_eq!(
                            f.eval(point), exact,
                            "{} at n={} with w({})={}", sentence, n, symbolic.name(), point
                        );
                    }
                }
            }
        }

        /// Cache consistency under exhaustion: a governed solve under a
        /// random (often hopeless) budget either agrees with an unbudgeted
        /// solve or reports exhaustion — and in *both* cases the same plan
        /// retried uncapped matches a fresh plan's answer, for all four
        /// methods under random weights including zeros and negatives.
        #[test]
        fn interrupted_plans_stay_consistent_and_retry_clean(
            seed in 0u64..5000,
            // Values past the sentinel mean "this limit unarmed", so the
            // cases cover caps alone, deadlines alone, both, and neither.
            work_cap in 0u64..5120,
            deadline_us in 0u64..640,
        ) {
            let solver = Solver::new();
            let weights = seeded_weights(seed);
            let mut limits = ExecutionLimits::none();
            if work_cap < 4096 {
                limits = limits.with_work_cap(work_cap);
            }
            if deadline_us < 512 {
                limits = limits.with_deadline(std::time::Duration::from_micros(deadline_us));
            }
            for (sentence, _, max_n) in four_methods() {
                let plan = solver.plan(&Problem::new(sentence.clone())).unwrap();
                let fresh = solver
                    .plan(&Problem::new(sentence.clone()))
                    .unwrap()
                    .count(max_n, &weights)
                    .unwrap()
                    .value;
                match plan.count_with_limits(max_n, &weights, &limits, None) {
                    Ok(report) => prop_assert_eq!(
                        &report.value, &fresh,
                        "governed solve disagrees for {}", sentence
                    ),
                    Err(e) => prop_assert!(
                        e.is_exhaustion(),
                        "{}: unexpected error {}", sentence, e
                    ),
                }
                // The retry contract: uncapped re-run on the *same* plan
                // (same caches, possibly warmed or interrupted) matches a
                // fresh plan's solve.
                let retried = plan.count(max_n, &weights).unwrap().value;
                prop_assert_eq!(
                    &retried, &fresh,
                    "retry after budgeted run disagrees for {}", sentence
                );
            }
        }

        /// One plan reused across all domain sizes and a random weight
        /// function (including zero and negative rationals) matches fresh
        /// one-shot solves, for all four methods.
        #[test]
        fn differential_plan_vs_one_shot(seed in 0u64..5000) {
            let solver = Solver::new();
            let weights = seeded_weights(seed);
            for (sentence, _, max_n) in four_methods() {
                let plan = solver.plan(&Problem::new(sentence.clone())).unwrap();
                for n in 0..=max_n {
                    let planned = plan.count(n, &weights).unwrap();
                    let one_shot = solver
                        .wfomc(&sentence, &sentence.vocabulary(), n, &weights)
                        .unwrap();
                    prop_assert_eq!(
                        &planned.value, &one_shot.value,
                        "value mismatch for {} at n={}", sentence, n
                    );
                    if n > 0 {
                        prop_assert_eq!(
                            planned.method, one_shot.method,
                            "method mismatch for {} at n={}", sentence, n
                        );
                    }
                }
            }
        }
    }
}
