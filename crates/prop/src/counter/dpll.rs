//! Weighted DPLL model counting with unit propagation, connected-component
//! decomposition and component caching.
//!
//! The algorithm maintains the invariant that [`count`] computes the weighted
//! model count of a clause set *over exactly the variables mentioned in it*.
//! Whenever a step (unit propagation, conditioning) makes a variable disappear
//! from all clauses without assigning it, the caller multiplies in the factor
//! `w(v) + w̄(v)` for that "freed" variable. Unmentioned variables of the
//! original universe are handled once at the top level.

use std::collections::{BTreeSet, HashMap};

use wfomc_guard::{Guard, Interrupt};
use wfomc_logic::algebra::{Algebra, Exact, VarPairs};
use wfomc_logic::weights::Weight;

use crate::cnf::{Cnf, Lit};
use crate::formula::Var;
use crate::weights::VarWeights;

type ClauseSet = Vec<Vec<Lit>>;

/// Guard phase name for the DPLL search loops.
const PHASE: &str = "prop.dpll";

/// Weighted model count of a CNF over the universe `0..max(cnf.num_vars,
/// weights.len())`.
///
/// The weight table may be shorter or longer than `cnf.num_vars`: variables
/// beyond the table carry the implicit pair `(1, 1)` (they are counted,
/// unweighted), and table entries beyond the CNF's universe are unconstrained
/// variables contributing `w + w̄` each. This matches the enumeration
/// backend's contract exactly.
pub fn wmc_dpll(cnf: &Cnf, weights: &VarWeights) -> Weight {
    wmc_dpll_in(cnf, &Exact, weights)
}

/// [`wmc_dpll`] in an arbitrary [`Algebra`]: the identical search (the
/// branching order, propagation and component decomposition never look at a
/// weight), with every accumulation done by the algebra's ring operations.
pub fn wmc_dpll_in<A: Algebra, W: VarPairs<A> + ?Sized>(
    cnf: &Cnf,
    algebra: &A,
    weights: &W,
) -> A::Elem {
    wmc_dpll_guarded_in(cnf, algebra, weights, &Guard::unarmed())
        .expect("an unarmed guard cannot interrupt")
}

/// [`wmc_dpll`] under a resource [`Guard`]: the identical search, ticking
/// the guard once per sub-problem and per decision so deadlines, work caps
/// and cancellation are honored mid-search. An interrupt leaves no shared
/// state behind (the component cache is call-local), so retrying is safe.
pub fn wmc_dpll_guarded(
    cnf: &Cnf,
    weights: &VarWeights,
    guard: &Guard,
) -> Result<Weight, Interrupt> {
    wmc_dpll_guarded_in(cnf, &Exact, weights, guard)
}

/// [`wmc_dpll_guarded`] in an arbitrary [`Algebra`].
pub fn wmc_dpll_guarded_in<A: Algebra, W: VarPairs<A> + ?Sized>(
    cnf: &Cnf,
    algebra: &A,
    weights: &W,
    guard: &Guard,
) -> Result<A::Elem, Interrupt> {
    let universe = cnf.num_vars.max(weights.table_len());

    // Normalize clauses: dedupe literals, drop tautological clauses.
    let mut clauses: ClauseSet = Vec::with_capacity(cnf.clauses.len());
    for clause in &cnf.clauses {
        let mut lits: Vec<Lit> = clause.clone();
        lits.sort();
        lits.dedup();
        let tautological = lits
            .windows(2)
            .any(|w| w[0].var == w[1].var && w[0].positive != w[1].positive);
        if !tautological {
            clauses.push(lits);
        }
    }

    // Variables never mentioned (or only mentioned in tautological clauses)
    // contribute w + w̄ each.
    let mentioned_after: BTreeSet<Var> = clauses.iter().flatten().map(|l| l.var).collect();
    let mut factor = algebra.one();
    for v in 0..universe {
        if !mentioned_after.contains(&v) {
            algebra.mul_assign(&mut factor, &weights.var_total(algebra, v));
        }
    }

    canonicalize(&mut clauses);
    wfomc_guard::failpoint(PHASE)?;
    let mut cache: HashMap<ClauseSet, A::Elem> = HashMap::new();
    let inner = count(&clauses, algebra, weights, &mut cache, guard)?;
    Ok(algebra.mul(&factor, &inner))
}

fn canonicalize(clauses: &mut ClauseSet) {
    for c in clauses.iter_mut() {
        c.sort();
    }
    clauses.sort();
}

fn clause_vars(clauses: &[Vec<Lit>]) -> BTreeSet<Var> {
    clauses.iter().flatten().map(|l| l.var).collect()
}

/// Conditions a clause set on `var = value`. Returns `None` if an empty
/// clause (conflict) is produced.
fn condition(clauses: &[Vec<Lit>], var: Var, value: bool) -> Option<ClauseSet> {
    let mut out = Vec::with_capacity(clauses.len());
    for c in clauses {
        if c.iter().any(|l| l.var == var && l.satisfied_by(value)) {
            continue; // satisfied
        }
        let reduced: Vec<Lit> = c.iter().copied().filter(|l| l.var != var).collect();
        if reduced.is_empty() {
            return None;
        }
        out.push(reduced);
    }
    Some(out)
}

/// Weighted model count of `clauses` over exactly the variables mentioned in
/// `clauses`. `clauses` must be canonical (sorted clauses, sorted literal
/// lists, no tautologies, no duplicate literals).
fn count<A: Algebra, W: VarPairs<A> + ?Sized>(
    clauses: &ClauseSet,
    algebra: &A,
    weights: &W,
    cache: &mut HashMap<ClauseSet, A::Elem>,
    guard: &Guard,
) -> Result<A::Elem, Interrupt> {
    if clauses.is_empty() {
        return Ok(algebra.one());
    }
    if clauses.iter().any(Vec::is_empty) {
        return Ok(algebra.zero());
    }
    if let Some(hit) = cache.get(clauses) {
        return Ok(hit.clone());
    }
    guard.tick(PHASE, 1)?;

    let scope = clause_vars(clauses);

    // Unit propagation, with bookkeeping of which variables got assigned (as
    // opposed to freed because every clause containing them was satisfied).
    let mut factor = algebra.one();
    let mut current: ClauseSet = clauses.clone();
    let mut assigned_vars: BTreeSet<Var> = BTreeSet::new();
    loop {
        let unit = current.iter().find(|c| c.len() == 1).map(|c| c[0]);
        let Some(lit) = unit else { break };
        algebra.mul_assign(
            &mut factor,
            &weights.var_weight(algebra, lit.var, lit.positive),
        );
        assigned_vars.insert(lit.var);
        match condition(&current, lit.var, lit.positive) {
            Some(next) => current = next,
            None => {
                cache.insert(clauses.clone(), algebra.zero());
                return Ok(algebra.zero());
            }
        }
    }
    let remaining_vars = clause_vars(&current);
    for v in scope.iter() {
        if !assigned_vars.contains(v) && !remaining_vars.contains(v) {
            algebra.mul_assign(&mut factor, &weights.var_total(algebra, *v));
        }
    }

    let result = if current.is_empty() {
        factor
    } else {
        // Connected-component decomposition over the primal graph.
        let components = split_components(&current);
        let mut product = factor;
        for mut comp in components {
            canonicalize(&mut comp);
            let c = count_component(&comp, algebra, weights, cache, guard)?;
            algebra.mul_assign(&mut product, &c);
        }
        product
    };

    cache.insert(clauses.clone(), result.clone());
    Ok(result)
}

/// Counts a single connected component by branching on a variable.
fn count_component<A: Algebra, W: VarPairs<A> + ?Sized>(
    comp: &ClauseSet,
    algebra: &A,
    weights: &W,
    cache: &mut HashMap<ClauseSet, A::Elem>,
    guard: &Guard,
) -> Result<A::Elem, Interrupt> {
    if comp.is_empty() {
        return Ok(algebra.one());
    }
    if let Some(hit) = cache.get(comp) {
        return Ok(hit.clone());
    }
    guard.tick(PHASE, 1)?;
    let scope = clause_vars(comp);

    // Branch on the most frequently occurring variable.
    let mut occurrence: HashMap<Var, usize> = HashMap::new();
    for c in comp {
        for l in c {
            *occurrence.entry(l.var).or_insert(0) += 1;
        }
    }
    let (&branch_var, _) = occurrence
        .iter()
        .max_by_key(|(v, count)| (**count, usize::MAX - **v))
        .expect("non-empty component has variables");
    wfomc_obs::metrics::DPLL_DECISIONS.inc();

    let mut total = algebra.zero();
    for value in [true, false] {
        let weight = weights.var_weight(algebra, branch_var, value);
        if let Some(mut cond) = condition(comp, branch_var, value) {
            canonicalize(&mut cond);
            // Variables freed by this conditioning step.
            let cond_vars = clause_vars(&cond);
            let mut branch = weight;
            for v in scope.iter() {
                if *v != branch_var && !cond_vars.contains(v) {
                    algebra.mul_assign(&mut branch, &weights.var_total(algebra, *v));
                }
            }
            let sub = count(&cond, algebra, weights, cache, guard)?;
            algebra.mul_assign(&mut branch, &sub);
            algebra.add_assign(&mut total, &branch);
        }
    }
    cache.insert(comp.clone(), total.clone());
    Ok(total)
}

/// Splits a clause set into connected components of its primal graph
/// (clauses are connected when they share a variable).
fn split_components(clauses: &ClauseSet) -> Vec<ClauseSet> {
    let n = clauses.len();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }

    // Union clauses sharing a variable via a var → first clause map.
    let mut owner: HashMap<Var, usize> = HashMap::new();
    for (i, c) in clauses.iter().enumerate() {
        for l in c {
            match owner.get(&l.var) {
                Some(&j) => {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    if a != b {
                        parent[a] = b;
                    }
                }
                None => {
                    owner.insert(l.var, i);
                }
            }
        }
    }

    let mut groups: HashMap<usize, ClauseSet> = HashMap::new();
    for (i, c) in clauses.iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(c.clone());
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::wmc_enumerate;
    use wfomc_logic::weights::weight_int;

    fn cnf(num_vars: usize, clauses: &[&[(usize, bool)]]) -> Cnf {
        Cnf::new(
            num_vars,
            clauses
                .iter()
                .map(|c| {
                    c.iter()
                        .map(|&(v, pos)| Lit {
                            var: v,
                            positive: pos,
                        })
                        .collect()
                })
                .collect(),
        )
    }

    #[test]
    fn empty_cnf_counts_all_assignments() {
        let c = Cnf::trivial(4);
        assert_eq!(wmc_dpll(&c, &VarWeights::ones(4)), weight_int(16));
    }

    #[test]
    fn unsat_cnf_counts_zero() {
        let c = cnf(2, &[&[(0, true)], &[(0, false)]]);
        assert_eq!(wmc_dpll(&c, &VarWeights::ones(2)), weight_int(0));
    }

    #[test]
    fn freed_variables_are_counted() {
        // (x0 ∨ x1): branching on x0=true frees x1.
        let c = cnf(2, &[&[(0, true), (1, true)]]);
        assert_eq!(wmc_dpll(&c, &VarWeights::ones(2)), weight_int(3));
    }

    #[test]
    fn component_decomposition_multiplies() {
        // (x0 ∨ x1) ∧ (x2 ∨ x3): 3 · 3 = 9 models.
        let c = cnf(4, &[&[(0, true), (1, true)], &[(2, true), (3, true)]]);
        assert_eq!(wmc_dpll(&c, &VarWeights::ones(4)), weight_int(9));
    }

    #[test]
    fn tautological_clause_is_ignored() {
        // (x0 ∨ ¬x0) ∧ (x1) → x1 fixed, x0 free → 2 models.
        let c = cnf(2, &[&[(0, true), (0, false)], &[(1, true)]]);
        assert_eq!(wmc_dpll(&c, &VarWeights::ones(2)), weight_int(2));
    }

    #[test]
    fn matches_enumeration_on_structured_instances() {
        // Pigeonhole-ish and chain instances.
        let instances = vec![
            cnf(
                4,
                &[
                    &[(0, true), (1, true)],
                    &[(1, false), (2, true)],
                    &[(2, false), (3, true)],
                    &[(0, false), (3, false)],
                ],
            ),
            cnf(
                5,
                &[
                    &[(0, true), (1, true), (2, true)],
                    &[(2, false), (3, false)],
                    &[(3, true), (4, true)],
                ],
            ),
        ];
        for c in instances {
            let w = VarWeights::ones(c.num_vars);
            assert_eq!(wmc_dpll(&c, &w), wmc_enumerate(&c, &w));
        }
    }

    #[test]
    fn negative_weights_are_exact() {
        // Skolemization-style weights: w(x0)=1, w̄(x0)=−1; the count of
        // (x0 ∨ x1) is w(x0)(w(x1)+w̄(x1)) + w̄(x0)w(x1) = 2 − 1 = 1.
        let c = cnf(2, &[&[(0, true), (1, true)]]);
        let w = VarWeights::from_vecs(
            vec![weight_int(1), weight_int(1)],
            vec![weight_int(-1), weight_int(1)],
        );
        assert_eq!(wmc_dpll(&c, &w), weight_int(1));
        assert_eq!(wmc_enumerate(&c, &w), weight_int(1));
    }

    #[test]
    fn short_weight_tables_count_remaining_vars_unweighted() {
        // (x0 ∨ x1) over 3 variables, weights only for x0: the other two
        // variables carry the implicit pair (1, 1).
        let c = cnf(3, &[&[(0, true), (1, true)]]);
        let w = VarWeights::from_vecs(vec![weight_int(3)], vec![weight_int(2)]);
        // (3·2 + 2·1) · 2 = 16 over x2's two values: x0 branch weights
        // (3 when true frees x1 → ·2; 2 when false forces x1 → ·1).
        let expected = weight_int(16);
        assert_eq!(wmc_dpll(&c, &w), expected);
        assert_eq!(wmc_enumerate(&c, &w), expected);
        // An empty table degenerates to plain model counting.
        assert_eq!(
            wmc_dpll(&c, &VarWeights::from_vecs(vec![], vec![])),
            weight_int(6)
        );
    }

    #[test]
    fn unit_propagation_chain() {
        // x0 ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2): forces all true → 1 model.
        let c = cnf(
            3,
            &[
                &[(0, true)],
                &[(0, false), (1, true)],
                &[(1, false), (2, true)],
            ],
        );
        assert_eq!(wmc_dpll(&c, &VarWeights::ones(3)), weight_int(1));
    }
}
