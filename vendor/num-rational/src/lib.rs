//! Offline stand-in for the `num-rational` crate.
//!
//! Provides [`BigRational`] — an exact rational number over
//! `num_bigint::BigInt` — kept in canonical form (denominator positive,
//! numerator and denominator coprime, zero represented as `0/1`), with the
//! arithmetic-operator coverage (all value/reference combinations), ordering,
//! formatting and `num-traits` implementations this workspace uses.

#![forbid(unsafe_code)]

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use num_bigint::BigInt;
use num_traits::{One, Signed, ToPrimitive, Zero};

/// An exact rational number with arbitrary-precision numerator and
/// denominator, always stored in canonical form.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BigRational {
    numer: BigInt,
    denom: BigInt,
}

fn gcd(a: &BigInt, b: &BigInt) -> BigInt {
    BigInt::from(a.magnitude().gcd(b.magnitude()))
}

impl BigRational {
    /// Creates `numer / denom` in canonical form.
    ///
    /// # Panics
    /// Panics if `denom` is zero.
    pub fn new(numer: BigInt, denom: BigInt) -> BigRational {
        assert!(!denom.is_zero(), "rational with zero denominator");
        let mut numer = numer;
        let mut denom = denom;
        if denom.is_negative() {
            numer = -numer;
            denom = -denom;
        }
        if numer.is_zero() {
            return BigRational {
                numer,
                denom: BigInt::one(),
            };
        }
        // Integers are already canonical — skip the gcd entirely.
        if denom.is_one() {
            return BigRational { numer, denom };
        }
        let g = gcd(&numer, &denom);
        if g.is_one() {
            return BigRational { numer, denom };
        }
        BigRational {
            numer: numer / &g,
            denom: denom / &g,
        }
    }

    /// Creates the rational `i / 1`.
    pub fn from_integer(i: BigInt) -> BigRational {
        BigRational {
            numer: i,
            denom: BigInt::one(),
        }
    }

    /// The canonical numerator.
    pub fn numer(&self) -> &BigInt {
        &self.numer
    }

    /// The canonical (positive) denominator.
    pub fn denom(&self) -> &BigInt {
        &self.denom
    }

    /// True if the denominator is 1.
    pub fn is_integer(&self) -> bool {
        self.denom.is_one()
    }

    /// Truncates toward zero.
    pub fn to_integer(&self) -> BigInt {
        &self.numer / &self.denom
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    pub fn recip(&self) -> BigRational {
        BigRational::new(self.denom.clone(), self.numer.clone())
    }

    // Addition via the classical gcd-of-denominators trick: with
    // g = gcd(d1, d2) and both inputs canonical, the only common factor the
    // sum can share with the denominator divides g, so the final reduction
    // works on small numbers instead of the full cross products.
    fn add_sub(&self, other: &BigRational, negate: bool) -> BigRational {
        // Zero operands (pruned terms, empty accumulators) skip the gcds.
        if other.numer.is_zero() {
            return self.clone();
        }
        if self.numer.is_zero() {
            return if negate {
                -other.clone()
            } else {
                other.clone()
            };
        }
        let rhs_numer = if negate {
            -&other.numer
        } else {
            other.numer.clone()
        };
        if self.denom.is_one() && other.denom.is_one() {
            return BigRational::from_integer(&self.numer + rhs_numer);
        }
        let g = gcd(&self.denom, &other.denom);
        if g.is_one() {
            return BigRational {
                numer: &self.numer * &other.denom + rhs_numer * &self.denom,
                denom: &self.denom * &other.denom,
            };
        }
        let d1g = &self.denom / &g;
        let d2g = &other.denom / &g;
        let t = &self.numer * &d2g + rhs_numer * &d1g;
        let g2 = gcd(&t, &g);
        BigRational {
            numer: t / &g2,
            denom: d1g * (&other.denom / g2),
        }
    }

    fn add_rat(&self, other: &BigRational) -> BigRational {
        self.add_sub(other, false)
    }

    fn sub_rat(&self, other: &BigRational) -> BigRational {
        self.add_sub(other, true)
    }

    // Multiplication with cross-reduction: cancel gcd(n1, d2) and
    // gcd(n2, d1) first so the result is canonical without a gcd of the full
    // products. Zero and ±1 operands — the overwhelmingly common factors in
    // the counting hot loops (pruned terms, unweighted predicates, binomial
    // edges) — skip the gcds entirely.
    fn mul_rat(&self, other: &BigRational) -> BigRational {
        if self.numer.is_zero() || other.numer.is_zero() {
            return BigRational::zero();
        }
        if self.is_integer() {
            if self.numer.is_one() {
                return other.clone();
            }
            if other.denom.is_one() {
                return BigRational::from_integer(&self.numer * &other.numer);
            }
        } else if other.is_integer() && other.numer.is_one() {
            return self.clone();
        }
        let g1 = gcd(&self.numer, &other.denom);
        let g2 = gcd(&other.numer, &self.denom);
        BigRational {
            numer: (&self.numer / &g1) * (&other.numer / &g2),
            denom: (&self.denom / &g2) * (&other.denom / &g1),
        }
    }

    fn div_rat(&self, other: &BigRational) -> BigRational {
        assert!(!other.numer.is_zero(), "division by zero rational");
        self.mul_rat(&other.recip())
    }
}

impl Default for BigRational {
    fn default() -> Self {
        BigRational::zero()
    }
}

impl From<BigInt> for BigRational {
    fn from(i: BigInt) -> Self {
        BigRational::from_integer(i)
    }
}

impl PartialOrd for BigRational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Denominators are positive by the canonical-form invariant; equal
        // denominators (integers in particular) need no cross products.
        if self.denom == other.denom {
            return self.numer.cmp(&other.numer);
        }
        (&self.numer * &other.denom).cmp(&(&other.numer * &self.denom))
    }
}

impl Neg for BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        BigRational {
            numer: -self.numer,
            denom: self.denom,
        }
    }
}

impl Neg for &BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        -self.clone()
    }
}

macro_rules! forward_rat_binop {
    ($trait:ident, $method:ident, $inner:ident) => {
        impl $trait<&BigRational> for &BigRational {
            type Output = BigRational;
            fn $method(self, rhs: &BigRational) -> BigRational {
                self.$inner(rhs)
            }
        }
        impl $trait<BigRational> for &BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational {
                self.$inner(&rhs)
            }
        }
        impl $trait<&BigRational> for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: &BigRational) -> BigRational {
                self.$inner(rhs)
            }
        }
        impl $trait<BigRational> for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational {
                self.$inner(&rhs)
            }
        }
    };
}

forward_rat_binop!(Add, add, add_rat);
forward_rat_binop!(Sub, sub, sub_rat);
forward_rat_binop!(Mul, mul, mul_rat);
forward_rat_binop!(Div, div, div_rat);

macro_rules! forward_rat_assign {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<&BigRational> for BigRational {
            fn $method(&mut self, rhs: &BigRational) {
                *self = &*self $op rhs;
            }
        }
        impl $trait<BigRational> for BigRational {
            fn $method(&mut self, rhs: BigRational) {
                *self = &*self $op &rhs;
            }
        }
    };
}

forward_rat_assign!(AddAssign, add_assign, +);
forward_rat_assign!(SubAssign, sub_assign, -);
forward_rat_assign!(MulAssign, mul_assign, *);
forward_rat_assign!(DivAssign, div_assign, /);

impl Zero for BigRational {
    fn zero() -> Self {
        BigRational::from_integer(BigInt::zero())
    }
    fn is_zero(&self) -> bool {
        self.numer.is_zero()
    }
}

impl One for BigRational {
    fn one() -> Self {
        BigRational::from_integer(BigInt::one())
    }
}

impl Signed for BigRational {
    fn abs(&self) -> Self {
        BigRational {
            numer: self.numer.abs(),
            denom: self.denom.clone(),
        }
    }
    fn signum(&self) -> Self {
        BigRational::from_integer(self.numer.signum())
    }
    fn is_positive(&self) -> bool {
        self.numer.is_positive()
    }
    fn is_negative(&self) -> bool {
        self.numer.is_negative()
    }
}

impl ToPrimitive for BigRational {
    fn to_i64(&self) -> Option<i64> {
        if self.is_integer() {
            self.numer.to_i64()
        } else {
            None
        }
    }
    fn to_u64(&self) -> Option<u64> {
        if self.is_integer() {
            self.numer.to_u64()
        } else {
            None
        }
    }
    fn to_f64(&self) -> Option<f64> {
        Some(self.numer.to_f64()? / self.denom.to_f64()?)
    }
}

// Matches the real crate: integers print without a denominator.
impl fmt::Display for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.numer)
        } else {
            write!(f, "{}/{}", self.numer, self.denom)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> BigRational {
        BigRational::new(BigInt::from(n), BigInt::from(d))
    }

    #[test]
    fn canonical_form() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(1, -2), r(-1, 2));
        assert_eq!(r(0, 5).denom(), &BigInt::from(1));
        assert_eq!(r(-6, -4), r(3, 2));
    }

    #[test]
    fn field_arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        let mut x = r(1, 1);
        x += &r(1, 2);
        x -= r(1, 4);
        x *= &r(4, 5);
        x /= r(1, 5);
        assert_eq!(x, r(5, 1));
    }

    #[test]
    fn negative_weights_behave() {
        assert_eq!(r(1, 1) + r(-1, 1), r(0, 1));
        assert!(r(-1, 2).is_negative());
        assert_eq!((-r(3, 4)).abs(), r(3, 4));
        assert_eq!(r(-3, 4).signum(), r(-1, 1));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(0, 1));
        assert!(r(7, 1) > r(13, 2));
    }

    #[test]
    fn integer_conversion_truncates() {
        assert_eq!(r(7, 2).to_integer(), BigInt::from(3));
        assert_eq!(r(-7, 2).to_integer(), BigInt::from(-3));
        assert!(r(4, 2).is_integer());
        assert_eq!(r(4, 2).to_i64(), Some(2));
        assert_eq!(r(1, 2).to_i64(), None);
    }

    #[test]
    fn display_matches_num_rational() {
        assert_eq!(r(3, 1).to_string(), "3");
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(r(-1, 2).to_string(), "-1/2");
    }
}
