//! Smoothing: make every decision node's branches mention the same
//! variables, and the root mention the whole universe.
//!
//! A d-DNNF circuit is *smooth* when for every decision node
//! `(v ∧ hi) ∨ (¬v ∧ lo)` the two branches have equal variable support, and
//! the root's support is the full universe. On a smooth circuit, weighted
//! model counting is the plain bottom-up recurrence — literal ↦ weight,
//! And ↦ product, decision ↦ `w(v)·hi + w̄(v)·lo` — with no per-edge
//! "gap factor" bookkeeping for variables that a branch fails to mention.
//!
//! The pass rewrites bottom-up: wherever a branch is missing variables
//! relative to its sibling (or the root relative to the universe), the
//! missing variables are conjoined in as "free variable" gadgets
//! `(v ∧ ⊤) ∨ (¬v ∧ ⊤)`, each of which evaluates to `w(v) + w̄(v)`. Thanks to
//! structural hashing the gadgets are shared across the whole circuit.

use crate::ir::{Circuit, Node, NodeId, Var};

/// Smooths the circuit under `root` over the universe `0..num_vars`,
/// returning the new root. Nodes are appended to the same arena; existing
/// nodes are never mutated, so other roots into the arena stay valid.
///
/// # Panics
/// Panics if the sub-circuit under `root` mentions a variable `>= num_vars`.
pub fn smooth(circuit: &mut Circuit, root: NodeId, num_vars: usize) -> NodeId {
    let supports = circuit.supports();
    if let Some(&v) = supports[root.index()].last() {
        assert!(
            v < num_vars,
            "circuit mentions x{v} outside the universe of {num_vars} variables"
        );
    }
    let reachable = circuit.reachable(root);

    // Rewrite in arena order (children first). `rewritten[id]` is the
    // smoothed replacement of node `id`.
    let mut rewritten: Vec<NodeId> = (0..circuit.len() as u32).map(NodeId).collect();
    for index in 0..circuit.len() {
        if !reachable[index] {
            continue;
        }
        let id = NodeId(index as u32);
        match circuit.node(id).clone() {
            Node::False | Node::True | Node::Lit(_) => {}
            Node::And(children) => {
                let new_children: Vec<NodeId> =
                    children.iter().map(|c| rewritten[c.index()]).collect();
                rewritten[index] = circuit.mk_and(new_children);
            }
            Node::Decision { var, hi, lo } => {
                // Each branch is padded up to the union of both supports.
                let hi_support = &supports[hi.index()];
                let lo_support = &supports[lo.index()];
                let new_hi = pad(circuit, rewritten[hi.index()], lo_support, hi_support, var);
                let new_lo = pad(circuit, rewritten[lo.index()], hi_support, lo_support, var);
                rewritten[index] = circuit.mk_decision(var, new_hi, new_lo);
            }
        }
    }

    // Pad the root up to the full universe.
    let root_support = supports[root.index()].clone();
    let new_root = rewritten[root.index()];
    let missing: Vec<Var> = (0..num_vars)
        .filter(|v| root_support.binary_search(v).is_err())
        .collect();
    pad_with(circuit, new_root, &missing)
}

/// Conjoins `node` with free-variable gadgets for every variable in `want`
/// that is absent from `have` (excluding the decision variable itself).
fn pad(
    circuit: &mut Circuit,
    node: NodeId,
    want: &[Var],
    have: &[Var],
    decision_var: Var,
) -> NodeId {
    // `node` may be a rewrite of the node `have` describes, but smoothing
    // only ever *adds* variables, so `have` remains a lower bound — exactly
    // what is needed to find the gap.
    let missing: Vec<Var> = want
        .iter()
        .copied()
        .filter(|v| *v != decision_var && have.binary_search(v).is_err())
        .collect();
    pad_with(circuit, node, &missing)
}

fn pad_with(circuit: &mut Circuit, node: NodeId, missing: &[Var]) -> NodeId {
    if missing.is_empty() {
        return node;
    }
    if node == circuit.ff() {
        // False absorbs: 0 times anything is 0, and keeping the branch dead
        // avoids growing the circuit.
        return node;
    }
    let mut parts = vec![node];
    for &v in missing {
        let gadget = circuit.mk_free(v);
        parts.push(gadget);
    }
    circuit.mk_and(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, SliceWeights};
    use crate::ir::CLit;
    use wfomc_logic::weights::weight_int;

    /// After smoothing, every reachable decision's branches must have equal
    /// support and the root must cover the universe (False branches excepted:
    /// they absorb multiplicatively, so padding them is unnecessary).
    fn assert_smooth(circuit: &Circuit, root: NodeId, num_vars: usize) {
        let supports = circuit.supports();
        let reachable = circuit.reachable(root);
        for (index, node) in circuit.nodes().iter().enumerate() {
            if !reachable[index] {
                continue;
            }
            if let Node::Decision { hi, lo, .. } = node {
                if *hi != circuit.ff() && *lo != circuit.ff() {
                    assert_eq!(
                        supports[hi.index()],
                        supports[lo.index()],
                        "unsmoothed decision at node {index}"
                    );
                }
            }
        }
        if root != circuit.ff() {
            let expected: Vec<usize> = (0..num_vars).collect();
            assert_eq!(
                supports[root.index()],
                expected,
                "root does not cover universe"
            );
        }
    }

    #[test]
    fn pads_asymmetric_decision_branches() {
        let mut c = Circuit::new();
        // (v ∧ ⊤) ∨ (¬v ∧ u): the hi branch is missing u.
        let u = c.mk_lit(CLit::pos(1));
        let tt = c.tt();
        let d = c.mk_decision(0, tt, u);
        let smoothed = smooth(&mut c, d, 2);
        assert_smooth(&c, smoothed, 2);
        // 3 models of (v ∨ u) over 2 vars.
        assert_eq!(
            evaluate(&c, smoothed, &SliceWeights::ones(2)),
            weight_int(3)
        );
    }

    #[test]
    fn pads_root_to_universe() {
        let mut c = Circuit::new();
        let x = c.mk_lit(CLit::pos(0));
        let smoothed = smooth(&mut c, x, 4);
        assert_smooth(&c, smoothed, 4);
        // x0 over 4 variables: 8 models.
        assert_eq!(
            evaluate(&c, smoothed, &SliceWeights::ones(4)),
            weight_int(8)
        );
    }

    #[test]
    fn true_root_becomes_product_of_totals() {
        let mut c = Circuit::new();
        let tt = c.tt();
        let smoothed = smooth(&mut c, tt, 3);
        let w = SliceWeights::from_vecs(
            vec![weight_int(2), weight_int(1), weight_int(1)],
            vec![weight_int(3), weight_int(1), weight_int(-1)],
        );
        // (2+3)·(1+1)·(1−1) = 0.
        assert_eq!(evaluate(&c, smoothed, &w), weight_int(0));
    }

    #[test]
    fn false_root_stays_false() {
        let mut c = Circuit::new();
        let ff = c.ff();
        let smoothed = smooth(&mut c, ff, 3);
        assert_eq!(smoothed, ff);
        assert_eq!(
            evaluate(&c, smoothed, &SliceWeights::ones(3)),
            weight_int(0)
        );
    }

    #[test]
    #[should_panic(expected = "outside the universe")]
    fn universe_too_small_panics() {
        let mut c = Circuit::new();
        let x = c.mk_lit(CLit::pos(5));
        smooth(&mut c, x, 2);
    }
}
