//! Shared hand-written JSON building blocks.
//!
//! The workspace serializes everything by hand (no serde, consistent with the
//! vendored-deps-only policy), and by PR 8 three subsystems were each growing
//! their own copy of the same two idioms: escaping strings for embedding in a
//! JSON literal, and comma-tracked `{"k":v,...}` assembly. This module is the
//! one shared home — [`crate::MetricsSnapshot::to_json`] (the `wfomc-obs/v1`
//! schema), `SolverReport::to_json` (`wfomc-report/v1`) and the `wfomc-serve`
//! wire protocol (`wfomc-serve/v1`) all build on it.
//!
//! The writers emit deterministic output: fields appear exactly in the order
//! they are added, so schema producers sort their keys once at the call site
//! and two identical inputs serialize byte-for-byte identically.
//!
//! ```
//! use wfomc_obs::json::JsonObject;
//!
//! let mut obj = JsonObject::new();
//! obj.field_str("schema", "example/v1");
//! obj.field_u64("count", 3);
//! obj.field_bool("done", true);
//! assert_eq!(obj.finish(), r#"{"schema":"example/v1","count":3,"done":true}"#);
//! ```

use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A complete JSON string literal: `"` + [`json_escape`] + `"`.
pub fn json_string(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

/// An incremental `{...}` builder that tracks the separating commas so call
/// sites only state keys and values. Values are either primitives (with a
/// typed `field_*` method each) or pre-serialized JSON spliced in verbatim
/// via [`JsonObject::field_raw`] — which is how objects nest.
#[derive(Debug)]
pub struct JsonObject {
    out: String,
    first: bool,
}

impl JsonObject {
    /// An empty object, ready for fields.
    pub fn new() -> JsonObject {
        JsonObject {
            out: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        let _ = write!(self.out, "\"{}\":", json_escape(key));
    }

    /// Adds a string field (escaped).
    pub fn field_str(&mut self, key: &str, value: &str) {
        self.key(key);
        let _ = write!(self.out, "\"{}\"", json_escape(value));
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) {
        self.key(key);
        let _ = write!(self.out, "{value}");
    }

    /// Adds a float field rendered with a fixed number of decimals (JSON has
    /// no float-precision notion of its own; fixing it keeps output stable).
    pub fn field_f64(&mut self, key: &str, value: f64, decimals: usize) {
        self.key(key);
        let _ = write!(self.out, "{value:.decimals$}");
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) {
        self.key(key);
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// Adds a `null` field.
    pub fn field_null(&mut self, key: &str) {
        self.key(key);
        self.out.push_str("null");
    }

    /// Splices a pre-serialized JSON value (an object, array, or other
    /// already-valid JSON text) under `key` verbatim.
    pub fn field_raw(&mut self, key: &str, raw: &str) {
        self.key(key);
        self.out.push_str(raw);
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

/// The matching `[...]` builder: elements are pre-serialized JSON values.
#[derive(Debug)]
pub struct JsonArray {
    out: String,
    first: bool,
}

impl JsonArray {
    /// An empty array, ready for elements.
    pub fn new() -> JsonArray {
        JsonArray {
            out: String::from("["),
            first: true,
        }
    }

    /// Appends a pre-serialized JSON value.
    pub fn push_raw(&mut self, raw: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push_str(raw);
    }

    /// Appends a string element (escaped).
    pub fn push_str(&mut self, value: &str) {
        let quoted = json_string(value);
        self.push_raw(&quoted);
    }

    /// Closes the array and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.out.push(']');
        self.out
    }
}

impl Default for JsonArray {
    fn default() -> Self {
        JsonArray::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_and_control_characters() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn object_builder_tracks_commas_and_types() {
        let mut obj = JsonObject::new();
        obj.field_str("s", "v\"q");
        obj.field_u64("n", 42);
        obj.field_f64("f", 1.5, 3);
        obj.field_bool("b", false);
        obj.field_null("z");
        obj.field_raw("o", "{\"inner\":1}");
        assert_eq!(
            obj.finish(),
            r#"{"s":"v\"q","n":42,"f":1.500,"b":false,"z":null,"o":{"inner":1}}"#
        );
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn array_builder_tracks_commas() {
        let mut arr = JsonArray::new();
        arr.push_raw("1");
        arr.push_str("two");
        arr.push_raw("[3]");
        assert_eq!(arr.finish(), r#"[1,"two",[3]]"#);
        assert_eq!(JsonArray::new().finish(), "[]");
    }
}
