//! Pretty-printing of formulas.
//!
//! The output syntax is the same one accepted by [`crate::parser`], so
//! `parse(&f.to_string())` round-trips (modulo flattening of nested
//! conjunctions/disjunctions).

use std::fmt;

use crate::syntax::Formula;

/// Operator precedence levels used to minimize parentheses.
#[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy)]
enum Prec {
    Iff,
    Implies,
    Or,
    And,
    Unary,
}

fn print(f: &Formula, out: &mut fmt::Formatter<'_>, parent: Prec) -> fmt::Result {
    let prec = precedence(f);
    let needs_parens = prec < parent;
    if needs_parens {
        write!(out, "(")?;
    }
    match f {
        Formula::Top => write!(out, "true")?,
        Formula::Bottom => write!(out, "false")?,
        Formula::Atom(a) => write!(out, "{a}")?,
        Formula::Equals(x, y) => write!(out, "{x} = {y}")?,
        Formula::Not(g) => {
            write!(out, "!")?;
            print(g, out, Prec::Unary)?;
        }
        Formula::And(parts) => {
            if parts.is_empty() {
                write!(out, "true")?;
            }
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    write!(out, " & ")?;
                }
                print(p, out, next_level(Prec::And))?;
            }
        }
        Formula::Or(parts) => {
            if parts.is_empty() {
                write!(out, "false")?;
            }
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    write!(out, " | ")?;
                }
                print(p, out, next_level(Prec::Or))?;
            }
        }
        Formula::Implies(a, b) => {
            print(a, out, next_level(Prec::Implies))?;
            write!(out, " -> ")?;
            print(b, out, Prec::Implies)?;
        }
        Formula::Iff(a, b) => {
            // `<->` parses left-associatively, so a nested `Iff` (or a
            // quantifier, which swallows everything to its right) on the
            // right-hand side must be parenthesized to round-trip.
            print(a, out, next_level(Prec::Iff))?;
            write!(out, " <-> ")?;
            print(b, out, next_level(Prec::Iff))?;
        }
        Formula::Forall(v, g) => {
            write!(out, "forall {v}. ")?;
            print(g, out, Prec::Iff)?;
        }
        Formula::Exists(v, g) => {
            write!(out, "exists {v}. ")?;
            print(g, out, Prec::Iff)?;
        }
    }
    if needs_parens {
        write!(out, ")")?;
    }
    Ok(())
}

fn precedence(f: &Formula) -> Prec {
    match f {
        Formula::Iff(..) | Formula::Forall(..) | Formula::Exists(..) => Prec::Iff,
        Formula::Implies(..) => Prec::Implies,
        Formula::Or(..) => Prec::Or,
        Formula::And(..) => Prec::And,
        _ => Prec::Unary,
    }
}

fn next_level(p: Prec) -> Prec {
    match p {
        Prec::Iff => Prec::Implies,
        Prec::Implies => Prec::Or,
        Prec::Or => Prec::And,
        Prec::And => Prec::Unary,
        Prec::Unary => Prec::Unary,
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        print(self, f, Prec::Iff)
    }
}

#[cfg(test)]
mod tests {
    use crate::builders::*;
    use crate::syntax::Formula;

    #[test]
    fn displays_connectives() {
        let f = forall(
            ["x", "y"],
            or(vec![
                atom("R", &["x"]),
                not(atom("S", &["x", "y"])),
                atom("T", &["y"]),
            ]),
        );
        assert_eq!(f.to_string(), "forall x. forall y. R(x) | !S(x,y) | T(y)");
    }

    #[test]
    fn parenthesizes_by_precedence() {
        let f = and(vec![
            or(vec![atom("R", &["x"]), atom("S", &["x"])]),
            atom("T", &["x"]),
        ]);
        assert_eq!(f.to_string(), "(R(x) | S(x)) & T(x)");
    }

    #[test]
    fn displays_constants_and_quantifier_bodies() {
        let f = exists(["x"], and(vec![atom("R", &["x", "#0"]), eq("x", "y")]));
        assert_eq!(f.to_string(), "exists x. R(x,#0) & x = y");
        assert_eq!(Formula::Top.to_string(), "true");
        assert_eq!(Formula::Bottom.to_string(), "false");
    }

    #[test]
    fn implication_associates_right() {
        let f = implies(atom("A", &[]), implies(atom("B", &[]), atom("C", &[])));
        assert_eq!(f.to_string(), "A -> B -> C");
        let g = implies(implies(atom("A", &[]), atom("B", &[])), atom("C", &[]));
        assert_eq!(g.to_string(), "(A -> B) -> C");
    }
}
