//! Conjunctive normal form.

use std::collections::BTreeSet;
use std::fmt;

use crate::formula::{PropFormula, Var};

/// A propositional literal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Lit {
    /// The variable index.
    pub var: Var,
    /// True for a positive literal.
    pub positive: bool,
}

impl Lit {
    /// A positive literal.
    pub fn pos(var: Var) -> Lit {
        Lit {
            var,
            positive: true,
        }
    }

    /// A negative literal.
    pub fn neg(var: Var) -> Lit {
        Lit {
            var,
            positive: false,
        }
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// True if the literal is satisfied by assigning `value` to its variable.
    pub fn satisfied_by(self, value: bool) -> bool {
        self.positive == value
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// A CNF formula: a conjunction of clauses, each clause a disjunction of
/// literals. `num_vars` records the variable universe (which may exceed the
/// variables actually mentioned — unconstrained variables still contribute
/// `w + w̄` to weighted counts).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cnf {
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
    /// Size of the variable universe (variables are `0..num_vars`).
    pub num_vars: usize,
}

impl Cnf {
    /// Creates a CNF over `num_vars` variables.
    pub fn new(num_vars: usize, clauses: Vec<Vec<Lit>>) -> Self {
        let cnf = Cnf { clauses, num_vars };
        debug_assert!(
            cnf.mentioned_vars().iter().all(|&v| v < num_vars),
            "clause mentions a variable outside the universe"
        );
        cnf
    }

    /// An empty (trivially true) CNF over `num_vars` variables.
    pub fn trivial(num_vars: usize) -> Self {
        Cnf {
            clauses: vec![],
            num_vars,
        }
    }

    /// Adds a clause.
    pub fn add_clause(&mut self, clause: Vec<Lit>) {
        self.clauses.push(clause);
    }

    /// The variables actually mentioned in some clause.
    pub fn mentioned_vars(&self) -> BTreeSet<Var> {
        self.clauses
            .iter()
            .flat_map(|c| c.iter().map(|l| l.var))
            .collect()
    }

    /// True if some clause is empty (the CNF is unsatisfiable).
    pub fn has_empty_clause(&self) -> bool {
        self.clauses.iter().any(Vec::is_empty)
    }

    /// Evaluates the CNF under a total assignment.
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.satisfied_by(assignment[l.var])))
    }

    /// Converts the CNF back into a [`PropFormula`] (useful for cross-checking
    /// the counters against each other).
    pub fn to_formula(&self) -> PropFormula {
        PropFormula::and_all(self.clauses.iter().map(|c| {
            PropFormula::or_all(c.iter().map(|l| {
                if l.positive {
                    PropFormula::var(l.var)
                } else {
                    PropFormula::not(PropFormula::var(l.var))
                }
            }))
        }))
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// True if there are no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "(")?;
            for (j, l) in c.iter().enumerate() {
                if j > 0 {
                    write!(f, " ∨ ")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_basics() {
        let l = Lit::pos(3);
        assert!(l.satisfied_by(true));
        assert!(!l.satisfied_by(false));
        assert_eq!(l.negated(), Lit::neg(3));
        assert_eq!(l.negated().negated(), l);
    }

    #[test]
    fn cnf_evaluation() {
        // (x0 ∨ ¬x1) ∧ (x1 ∨ x2)
        let cnf = Cnf::new(
            3,
            vec![
                vec![Lit::pos(0), Lit::neg(1)],
                vec![Lit::pos(1), Lit::pos(2)],
            ],
        );
        assert!(cnf.evaluate(&[true, true, false]));
        assert!(!cnf.evaluate(&[false, true, false]));
        assert!(cnf.evaluate(&[false, false, true]));
        assert_eq!(cnf.mentioned_vars().len(), 3);
        assert_eq!(cnf.len(), 2);
        assert!(!cnf.has_empty_clause());
    }

    #[test]
    fn to_formula_agrees_with_cnf_eval() {
        let cnf = Cnf::new(2, vec![vec![Lit::pos(0)], vec![Lit::neg(0), Lit::pos(1)]]);
        let f = cnf.to_formula();
        for a in 0..4u8 {
            let assignment = [(a & 1) != 0, (a & 2) != 0];
            assert_eq!(cnf.evaluate(&assignment), f.evaluate(&assignment));
        }
    }

    #[test]
    fn empty_clause_detection() {
        let mut cnf = Cnf::trivial(1);
        assert!(cnf.is_empty());
        cnf.add_clause(vec![]);
        assert!(cnf.has_empty_clause());
        assert!(!cnf.evaluate(&[true]));
    }
}
