//! The decision problem associated with (W)FOMC: spectrum membership,
//! "given Φ and n, does Φ have a model over a domain of size n?"
//!
//! The paper's results: with the formula fixed (data complexity) this is the
//! classical spectrum membership problem, equal to NP₁ in tally notation; with
//! the formula part of the input (combined complexity) it is NP-complete for
//! FO² and PSPACE-complete for full FO (Theorem 4.1(2)). This module provides
//! two deciders — one through model counting (`FOMC(Φ, n) > 0`, the reduction
//! observed by Jaeger and Van den Broeck) and one by direct search over
//! structures — plus a helper that computes an initial segment of the
//! spectrum.

use num_traits::Zero;

use wfomc_core::Solver;
use wfomc_ground::enumerate::all_structures;
use wfomc_ground::evaluate::evaluate;
use wfomc_logic::syntax::Formula;

/// Decides `n ∈ Spec(Φ)` by checking `FOMC(Φ, n) > 0` (the counting
/// reduction). Uses the lifted solver when possible.
pub fn in_spectrum_via_counting(sentence: &Formula, n: usize) -> bool {
    let report = Solver::new()
        .fomc(sentence, n)
        .expect("the solver always has a grounded fallback");
    !report.value.is_zero()
}

/// Decides `n ∈ Spec(Φ)` by searching for a model directly (early exit on the
/// first model found). Exponential, but often faster than counting because it
/// can stop early.
pub fn in_spectrum_via_search(sentence: &Formula, n: usize) -> bool {
    let voc = sentence.vocabulary();
    let found = all_structures(&voc, n).any(|s| evaluate(sentence, &s));
    found
}

/// The initial segment `Spec(Φ) ∩ {0, …, max_n}` (via the counting decider).
pub fn spectrum_prefix(sentence: &Formula, max_n: usize) -> Vec<usize> {
    (0..=max_n)
        .filter(|&n| in_spectrum_via_counting(sentence, n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_logic::builders::*;
    use wfomc_logic::catalog;

    #[test]
    fn conjunctive_queries_have_full_spectrum() {
        // §3.1: every CQ has a model over any domain of size ≥ 1.
        let f = catalog::typed_triangles();
        assert_eq!(spectrum_prefix(&f, 3), vec![1, 2, 3]);
    }

    #[test]
    fn even_cardinality_spectrum() {
        // ∀x∃y (R(x,y) ∧ R(y,x) ∧ x ≠ y) ∧ ∀x∀y∀z … is the classic "even
        // domain" example; we use the FO² fragment of it: a perfect matching
        // exists only on even domains. Encoding a perfect matching needs
        // functionality constraints:
        //   ∀x ¬R(x,x), ∀x∃y R(x,y), ∀x∀y (R(x,y) → R(y,x)).
        // This is necessary but not sufficient for even cardinality, so
        // instead we use a simpler guaranteed example: Φ = ∃x∃y (x ≠ y) has
        // spectrum {2, 3, …}.
        let f = exists(["x", "y"], neq("x", "y"));
        assert_eq!(spectrum_prefix(&f, 4), vec![2, 3, 4]);
    }

    #[test]
    fn unsatisfiable_sentence_has_empty_spectrum() {
        let f = and(vec![
            forall(["x"], atom("R", &["x"])),
            exists(["x"], not(atom("R", &["x"]))),
        ]);
        // Not satisfiable at any size: the ∃ conjunct fails on the empty
        // domain and contradicts the ∀ conjunct on non-empty domains.
        assert_eq!(spectrum_prefix(&f, 3), Vec::<usize>::new());
        assert!(!in_spectrum_via_counting(&f, 2));
        assert!(!in_spectrum_via_search(&f, 2));
    }

    #[test]
    fn counting_and_search_deciders_agree() {
        let sentences = vec![
            catalog::forall_exists_edge(),
            catalog::table1_sentence(),
            catalog::transitivity(),
            exists(["x", "y"], and(vec![neq("x", "y"), atom("R", &["x", "y"])])),
        ];
        for f in sentences {
            for n in 0..=2 {
                assert_eq!(
                    in_spectrum_via_counting(&f, n),
                    in_spectrum_via_search(&f, n),
                    "disagreement for {f} at n = {n}"
                );
            }
        }
    }
}
