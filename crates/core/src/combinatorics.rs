//! Exact combinatorics on big integers: factorials, binomials, multinomials
//! and compositions. These are the building blocks of every counting formula
//! in the paper (the Table 1 sums, the FO² cell decomposition, the QS4 dynamic
//! program, the γ-acyclic rule (b)).

use std::cell::RefCell;
use std::sync::Arc;

use num_bigint::BigInt;
use num_rational::BigRational;
use num_traits::{One, Zero};

use wfomc_logic::weights::Weight;

thread_local! {
    /// Memoized factorial table, grown on demand: `FACTORIALS[i] = i!`.
    static FACTORIALS: RefCell<Vec<BigInt>> = RefCell::new(vec![BigInt::one()]);
}

/// `n!` as a big integer, memoized in a thread-local growable table so
/// repeated calls (every [`multinomial`] evaluates one factorial per part)
/// cost one table lookup instead of `n` multiplications.
pub fn factorial(n: usize) -> BigInt {
    FACTORIALS.with(|cell| {
        let mut table = cell.borrow_mut();
        while table.len() <= n {
            let next =
                table.last().expect("factorial table is non-empty") * BigInt::from(table.len());
            table.push(next);
        }
        table[n].clone()
    })
}

/// Binomial coefficient `C(n, k)` as a big integer (0 when `k > n`).
pub fn binomial(n: usize, k: usize) -> BigInt {
    if k > n {
        return BigInt::zero();
    }
    let k = k.min(n - k);
    let mut num = BigInt::one();
    let mut den = BigInt::one();
    for i in 0..k {
        num *= BigInt::from(n - i);
        den *= BigInt::from(i + 1);
    }
    num / den
}

/// Multinomial coefficient `n! / (parts₁! · … · parts_k!)`.
///
/// # Panics
/// Panics if the parts do not sum to `n`.
pub fn multinomial(n: usize, parts: &[usize]) -> BigInt {
    assert_eq!(
        parts.iter().sum::<usize>(),
        n,
        "multinomial parts must sum to n"
    );
    let mut result = factorial(n);
    for &p in parts {
        result /= factorial(p);
    }
    result
}

/// Converts a big integer into a rational [`Weight`].
pub fn weight_from_bigint(i: BigInt) -> Weight {
    BigRational::from_integer(i)
}

/// Binomial coefficient as a [`Weight`].
pub fn binomial_weight(n: usize, k: usize) -> Weight {
    weight_from_bigint(binomial(n, k))
}

/// Multinomial coefficient as a [`Weight`].
pub fn multinomial_weight(n: usize, parts: &[usize]) -> Weight {
    weight_from_bigint(multinomial(n, parts))
}

thread_local! {
    /// Memoized Pascal's triangle, grown on demand and shared via `Arc` so
    /// repeated cell sums (one per Shannon branch, one per solver call) do
    /// not rebuild it.
    static TRIANGLE: RefCell<Arc<Vec<Vec<Weight>>>> =
        RefCell::new(Arc::new(vec![vec![Weight::one()]]));
}

/// Pascal's triangle containing at least rows `0..=n`:
/// `triangle[r][c] = C(r, c)` as [`Weight`]s.
///
/// The FO² cell-sum engine consumes binomials as rationals on its hot path;
/// the rows are computed once per thread (each entry a single big-integer
/// addition), grown on demand, and handed out as a shared `Arc` — no
/// per-hit clone of the rows, far cheaper than re-deriving multinomials per
/// composition. Entries that do get cloned downstream (an engine lifting
/// the rows into its evaluation algebra) are allocation-free for every
/// binomial that fits a machine word, thanks to the vendored bignum's
/// inline small-value representation — `C(n, k)` for `n ≤ 62` never touches
/// the heap. The returned triangle may contain rows beyond `n` from
/// earlier, larger requests.
pub fn binomial_weight_triangle(n: usize) -> Arc<Vec<Vec<Weight>>> {
    TRIANGLE.with(|cell| {
        let mut shared = cell.borrow_mut();
        if shared.len() <= n {
            // Clones the existing rows only if another Arc is still alive.
            let triangle = Arc::make_mut(&mut shared);
            while triangle.len() <= n {
                let prev = triangle.last().expect("triangle is non-empty");
                let r = prev.len();
                let mut row = Vec::with_capacity(r + 1);
                row.push(Weight::one());
                for c in 1..r {
                    row.push(&prev[c - 1] + &prev[c]);
                }
                row.push(Weight::one());
                triangle.push(row);
            }
        }
        shared.clone()
    })
}

/// The number of compositions of `n` into `k` non-negative parts,
/// `C(n+k−1, k−1)`, saturating at `usize::MAX` (used for statistics only).
pub fn num_compositions(n: usize, k: usize) -> usize {
    if k == 0 {
        return usize::from(n == 0);
    }
    let mut acc: u128 = 1;
    for i in 0..(k - 1) {
        acc = acc.saturating_mul((n + k - 1 - i) as u128) / (i + 1) as u128;
        if acc > usize::MAX as u128 {
            return usize::MAX;
        }
    }
    acc as usize
}

/// Iterator over all compositions of `n` into exactly `k` non-negative parts,
/// i.e. all vectors `(n₁, …, n_k)` with `Σ nᵢ = n`. There are `C(n+k−1, k−1)`
/// of them. For `k = 0` the iterator yields a single empty composition when
/// `n = 0` and nothing otherwise.
///
/// Each item is a freshly allocated `Vec`; hot paths should prefer the
/// non-allocating visitor [`for_each_composition`].
pub fn compositions(n: usize, k: usize) -> Compositions {
    Compositions {
        n,
        k,
        current: None,
        pivot: None,
        done: false,
    }
}

/// See [`compositions`].
pub struct Compositions {
    n: usize,
    k: usize,
    current: Option<Vec<usize>>,
    /// Rightmost non-zero index among positions `0..k-1` (the invariant
    /// maintained by [`advance_composition`]), or `None` when those positions
    /// are all zero. Tracking it makes the successor O(1) instead of an O(k)
    /// suffix-sum rescan per step.
    pivot: Option<usize>,
    done: bool,
}

/// Advances `current` to the next composition in the stars-and-bars order,
/// maintaining `pivot` = rightmost non-zero index before the last slot.
/// Returns `false` when `current` was the final composition.
fn advance_composition(current: &mut [usize], pivot: &mut Option<usize>) -> bool {
    let k = current.len();
    if k <= 1 {
        return false;
    }
    if current[k - 1] > 0 {
        // Move one unit from the tail into the second-to-last slot.
        current[k - 2] += 1;
        current[k - 1] -= 1;
        *pivot = Some(k - 2);
        return true;
    }
    // The tail is empty: shift one unit left from the pivot and dump the rest
    // of its mass back into the tail. All slots strictly between the pivot and
    // the last are already zero.
    let Some(j) = *pivot else { return false };
    if j == 0 {
        return false;
    }
    let mass = current[j];
    current[j] = 0;
    current[j - 1] += 1;
    current[k - 1] = mass - 1;
    *pivot = Some(j - 1);
    true
}

impl Iterator for Compositions {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        match &mut self.current {
            None => {
                // First composition: everything in the last slot.
                if self.k == 0 {
                    self.done = true;
                    return if self.n == 0 { Some(vec![]) } else { None };
                }
                let mut first = vec![0; self.k];
                first[self.k - 1] = self.n;
                self.current = Some(first.clone());
                Some(first)
            }
            Some(current) => {
                if advance_composition(current, &mut self.pivot) {
                    Some(current.clone())
                } else {
                    self.done = true;
                    None
                }
            }
        }
    }
}

/// Visits every composition of `n` into `k` non-negative parts without
/// allocating per item: the callback borrows one scratch buffer that is
/// advanced in place. Same order as [`compositions`].
pub fn for_each_composition<F: FnMut(&[usize])>(n: usize, k: usize, mut f: F) {
    if k == 0 {
        if n == 0 {
            f(&[]);
        }
        return;
    }
    let mut current = vec![0; k];
    current[k - 1] = n;
    let mut pivot = None;
    loop {
        f(&current);
        if !advance_composition(&mut current, &mut pivot) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorials() {
        assert_eq!(factorial(0), BigInt::from(1));
        assert_eq!(factorial(5), BigInt::from(120));
        assert_eq!(factorial(20), BigInt::from(2432902008176640000u64));
    }

    #[test]
    fn binomials() {
        assert_eq!(binomial(5, 2), BigInt::from(10));
        assert_eq!(binomial(5, 0), BigInt::from(1));
        assert_eq!(binomial(5, 5), BigInt::from(1));
        assert_eq!(binomial(5, 6), BigInt::from(0));
        assert_eq!(
            binomial(50, 25),
            "126410606437752".parse::<BigInt>().unwrap()
        );
    }

    #[test]
    fn multinomials() {
        assert_eq!(multinomial(4, &[2, 2]), BigInt::from(6));
        assert_eq!(multinomial(6, &[1, 2, 3]), BigInt::from(60));
        assert_eq!(multinomial(0, &[0, 0]), BigInt::from(1));
    }

    #[test]
    #[should_panic(expected = "must sum to n")]
    fn multinomial_bad_parts_panics() {
        multinomial(4, &[1, 1]);
    }

    #[test]
    fn compositions_enumerate_stars_and_bars() {
        let all: Vec<_> = compositions(3, 2).collect();
        assert_eq!(all, vec![vec![0, 3], vec![1, 2], vec![2, 1], vec![3, 0]]);
        // C(n+k-1, k-1) counts.
        assert_eq!(compositions(5, 3).count(), 21);
        assert_eq!(compositions(0, 4).count(), 1);
        assert_eq!(compositions(4, 1).count(), 1);
        assert_eq!(compositions(0, 0).count(), 1);
        assert_eq!(compositions(2, 0).count(), 0);
    }

    #[test]
    fn compositions_each_sum_to_n() {
        for comp in compositions(6, 4) {
            assert_eq!(comp.iter().sum::<usize>(), 6);
            assert_eq!(comp.len(), 4);
        }
        // No duplicates.
        let all: Vec<_> = compositions(6, 4).collect();
        let dedup: std::collections::BTreeSet<_> = all.iter().cloned().collect();
        assert_eq!(all.len(), dedup.len());
    }

    #[test]
    fn visitor_matches_iterator() {
        for (n, k) in [(0usize, 0usize), (0, 3), (3, 1), (5, 3), (6, 4), (2, 0)] {
            let mut visited: Vec<Vec<usize>> = Vec::new();
            for_each_composition(n, k, |c| visited.push(c.to_vec()));
            let iterated: Vec<Vec<usize>> = compositions(n, k).collect();
            assert_eq!(visited, iterated, "n = {n}, k = {k}");
            assert_eq!(
                visited.len(),
                num_compositions(n, k),
                "count for n = {n}, k = {k}"
            );
        }
    }

    #[test]
    fn composition_counts() {
        assert_eq!(num_compositions(5, 3), 21);
        assert_eq!(num_compositions(0, 4), 1);
        assert_eq!(num_compositions(0, 0), 1);
        assert_eq!(num_compositions(2, 0), 0);
        // C(111, 11): the composition space of the 12-cell scaling benchmark.
        assert_eq!(num_compositions(100, 12), 473_239_787_751_081);
        // Saturates instead of overflowing.
        assert_eq!(num_compositions(1_000_000, 24), usize::MAX);
    }

    #[test]
    fn binomial_triangle_matches_binomial() {
        let triangle = binomial_weight_triangle(12);
        // The memo may hold more rows than requested, never fewer.
        assert!(triangle.len() >= 13);
        for (r, row) in triangle.iter().enumerate().take(13) {
            assert_eq!(row.len(), r + 1);
            for (c, entry) in row.iter().enumerate() {
                assert_eq!(entry, &binomial_weight(r, c), "C({r}, {c})");
            }
        }
        // Growing after a smaller request keeps earlier rows intact.
        let bigger = binomial_weight_triangle(20);
        assert_eq!(bigger[20][10], binomial_weight(20, 10));
        assert_eq!(bigger[12][5], binomial_weight(12, 5));
    }

    #[test]
    fn factorial_memo_is_consistent_after_growth() {
        // Growing the table in one call must not corrupt earlier entries.
        let big = factorial(30);
        assert_eq!(factorial(5), BigInt::from(120));
        assert_eq!(&factorial(29) * BigInt::from(30), big);
    }

    #[test]
    fn weight_conversions() {
        assert_eq!(binomial_weight(4, 2), Weight::from_integer(6.into()));
        assert_eq!(
            multinomial_weight(3, &[1, 1, 1]),
            Weight::from_integer(6.into())
        );
    }
}
