//! A small JSON *reader* for request bodies.
//!
//! The workspace's shared [`wfomc_obs::json`] module covers the writing
//! side; the service is the first subsystem that must also accept JSON from
//! untrusted clients, so this module adds the matching recursive-descent
//! parser — std-only, with a nesting cap (the same defensive posture as the
//! formula parser's `MAX_DEPTH`) and byte-offset error reporting.
//!
//! Numbers keep their integer identity: `10` parses as [`Value::Int`], and
//! fractional or exponent forms are preserved as [`Value::Float`] so schema
//! code can reject them with a typed message where an integer is required
//! (domain sizes, budgets). Arbitrary-precision weight values travel as
//! strings (`"22/7"`), never as JSON numbers.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fraction or exponent part, within `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (duplicate keys keep the last entry).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (`None` on other variants or missing key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a signed integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float (integers widen losslessly up to 2⁵³).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object fields, in source order.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A JSON syntax error with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset at which it was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum value nesting the parser accepts — requests are shallow
/// (objects of scalars, one level of weight-pair arrays), so anything deep
/// is adversarial.
const MAX_DEPTH: usize = 64;

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.error("trailing input after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("value nesting too deep"));
        }
        let result = self.value_inner();
        self.depth -= 1;
        result
    }

    fn value_inner(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') | Some(b'f') => {
                if self.eat_word("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_word("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("expected a JSON value"))
                }
            }
            Some(b'n') => {
                if self.eat_word("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("expected a JSON value"))
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(Value::Obj(fields));
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(Value::Arr(items));
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&first) {
                                // A high surrogate must pair with `\uXXXX`.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let second = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(first)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                // Raw control characters are invalid inside JSON strings.
                0x00..=0x1f => return Err(self.error("control character in string")),
                _ => {
                    // Collect the full UTF-8 sequence the byte starts.
                    let start = self.pos - 1;
                    while let Some(next) = self.peek() {
                        if next & 0xc0 == 0x80 {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.error("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.error("truncated unicode escape"));
            };
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(self.error("invalid hex digit in unicode escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.error("expected digits in number"));
        }
        let mut integral = true;
        if self.eat(b'.') {
            integral = false;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if integral {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => Err(JsonError {
                    message: "integer out of range (send large values as strings)".to_string(),
                    offset: start,
                }),
            }
        } else {
            match text.parse::<f64>() {
                Ok(f) => Ok(Value::Float(f)),
                Err(_) => Err(JsonError {
                    message: "malformed number".to_string(),
                    offset: start,
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".to_string()));
        assert_eq!(
            parse("[1, 2, [3]]").unwrap(),
            Value::Arr(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Arr(vec![Value::Int(3)])
            ])
        );
        let obj = parse(r#"{"n": 10, "weights": {"R": [1, 2]}}"#).unwrap();
        assert_eq!(obj.get("n").unwrap().as_u64(), Some(10));
        assert_eq!(
            obj.get("weights").unwrap().get("R").unwrap().as_arr(),
            Some(&[Value::Int(1), Value::Int(2)][..])
        );
        assert!(obj.get("missing").is_none());
    }

    #[test]
    fn decodes_escapes_and_unicode() {
        assert_eq!(
            parse(r#""\"\\\/\b\f\n\r\t""#).unwrap(),
            Value::Str("\"\\/\u{8}\u{c}\n\r\t".to_string())
        );
        assert_eq!(parse(r#""é""#).unwrap(), Value::Str("é".to_string()));
        // A surrogate pair.
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("😀".to_string()));
        assert!(parse(r#""\ud83d""#).is_err());
        assert_eq!(parse("\"héllo\"").unwrap(), Value::Str("héllo".to_string()));
    }

    #[test]
    fn reports_typed_errors_with_offsets() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"\u{1}\"").is_err(), "raw control char rejected");
        let err = parse("99999999999999999999999999").unwrap_err();
        assert!(err.message.contains("integer out of range"), "{err}");
        let deep = format!("{}1{}", "[".repeat(1000), "]".repeat(1000));
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting too deep"), "{err}");
    }

    #[test]
    fn duplicate_keys_keep_the_last_entry() {
        let obj = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(obj.get("k").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn round_trips_obs_writer_output() {
        // The two halves of the shared JSON story agree: what the workspace
        // writers emit, this reader accepts.
        let mut obj = wfomc_obs::json::JsonObject::new();
        obj.field_str("s", "quote \" backslash \\ tab\t");
        obj.field_u64("n", i64::MAX as u64);
        obj.field_bool("b", true);
        obj.field_null("z");
        let text = obj.finish();
        let parsed = parse(&text).unwrap();
        assert_eq!(
            parsed.get("s").unwrap().as_str(),
            Some("quote \" backslash \\ tab\t")
        );
        assert_eq!(parsed.get("n").unwrap().as_i64(), Some(i64::MAX));
        assert_eq!(parsed.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(parsed.get("z"), Some(&Value::Null));
    }
}
