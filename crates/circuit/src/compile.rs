//! Top-down d-DNNF compilation by tracing the weighted DPLL search.
//!
//! The compiler performs exactly the search of `wfomc-prop`'s DPLL counter —
//! unit propagation, connected-component decomposition, most-occurrences
//! branching, and a component cache — but instead of multiplying weights it
//! **records** the search as circuit nodes:
//!
//! * a unit-propagated literal becomes a [`Node::Lit`] conjunct;
//! * component decomposition becomes a decomposable [`Node::And`];
//! * a branch on `v` becomes a deterministic [`Node::Decision`];
//! * the component cache maps canonical clause sets to **circuit node ids**,
//!   so repeated sub-problems share one sub-circuit in the DAG.
//!
//! Variables that disappear without being assigned ("freed" variables) simply
//! drop out of a node's support; the [smoothing pass](crate::smooth) later
//! reintroduces them explicitly so evaluation needs no gap bookkeeping.
//!
//! [`Node::Lit`]: crate::ir::Node::Lit
//! [`Node::And`]: crate::ir::Node::And
//! [`Node::Decision`]: crate::ir::Node::Decision

use std::collections::HashMap;

use wfomc_guard::{Guard, Interrupt};
use wfomc_logic::algebra::{Algebra, VarPairs};
use wfomc_logic::weights::Weight;

use crate::eval::{evaluate, evaluate_in, LitWeights};
use crate::ir::{CLit, Circuit, NodeId, Var};
use crate::smooth::smooth;

type ClauseSet = Vec<Vec<CLit>>;

/// Guard phase name for the compiler's search loops.
const PHASE: &str = "circuit.compile";

/// Counters describing one compilation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Total arena nodes in the finished (smoothed) circuit.
    pub nodes: usize,
    /// Total child edges in the finished circuit.
    pub edges: usize,
    /// Decision nodes emitted by the search (before smoothing gadgets).
    pub decisions: usize,
    /// Component-cache hits during compilation.
    pub cache_hits: usize,
}

/// A CNF compiled to a smoothed d-DNNF circuit, ready for repeated weighted
/// evaluation.
#[derive(Clone, Debug)]
pub struct CompiledCnf {
    circuit: Circuit,
    root: NodeId,
    num_vars: usize,
    stats: CompileStats,
}

impl CompiledCnf {
    /// Reassembles a compiled circuit from decoded parts, validating that
    /// the root id lies inside the arena and that no node mentions a
    /// variable outside the smoothed universe. Returns `None` on violation —
    /// the snapshot decoder's last line of defense before evaluation.
    pub fn from_parts(
        circuit: Circuit,
        root: NodeId,
        num_vars: usize,
        stats: CompileStats,
    ) -> Option<CompiledCnf> {
        if root.index() >= circuit.len() {
            return None;
        }
        let in_universe = circuit.nodes().iter().all(|node| match node {
            crate::ir::Node::Lit(lit) => lit.var < num_vars,
            crate::ir::Node::Decision { var, .. } => *var < num_vars,
            _ => true,
        });
        if !in_universe {
            return None;
        }
        Some(CompiledCnf {
            circuit,
            root,
            num_vars,
            stats,
        })
    }

    /// Weighted model count over the circuit's `num_vars`-variable universe
    /// under the given weights. Linear in circuit size; callable any number
    /// of times with different weight vectors.
    pub fn wmc<W: LitWeights>(&self, weights: &W) -> Weight {
        evaluate(&self.circuit, self.root, weights)
    }

    /// [`wmc`](Self::wmc) in an arbitrary [`Algebra`] — one compilation
    /// serves any number of weight vectors in any number of algebras.
    pub fn wmc_in<A: Algebra, W: VarPairs<A> + ?Sized>(&self, algebra: &A, weights: &W) -> A::Elem {
        evaluate_in(&self.circuit, self.root, algebra, weights)
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The smoothed root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Size of the variable universe the circuit is smoothed over.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Compilation statistics.
    pub fn stats(&self) -> &CompileStats {
        &self.stats
    }
}

/// Compiles a CNF over the universe `0..num_vars` into a smoothed d-DNNF
/// circuit.
///
/// Clauses may contain duplicate literals and tautologies; they are
/// normalized away exactly as the DPLL counter does.
///
/// # Panics
/// Panics if a clause mentions a variable `>= num_vars`.
pub fn compile(num_vars: usize, clauses: &[Vec<CLit>]) -> CompiledCnf {
    compile_guarded(num_vars, clauses, &Guard::unarmed())
        .expect("an unarmed guard cannot interrupt")
}

/// [`compile`] under a resource [`Guard`]: the identical trace-based
/// compilation, ticking the guard once per sub-problem and per decision. An
/// interrupt abandons the partial arena (nothing is shared), so callers can
/// simply retry with a larger budget.
///
/// # Panics
/// Panics if a clause mentions a variable `>= num_vars`.
pub fn compile_guarded(
    num_vars: usize,
    clauses: &[Vec<CLit>],
    guard: &Guard,
) -> Result<CompiledCnf, Interrupt> {
    let _span = wfomc_obs::span("circuit.compile");
    wfomc_guard::failpoint(PHASE)?;
    // Normalize: dedupe literals, drop tautological clauses.
    let mut normalized: ClauseSet = Vec::with_capacity(clauses.len());
    for clause in clauses {
        let mut lits: Vec<CLit> = clause.clone();
        for l in &lits {
            assert!(
                l.var < num_vars,
                "clause mentions x{} outside the universe of {num_vars} variables",
                l.var
            );
        }
        lits.sort();
        lits.dedup();
        let tautological = lits
            .windows(2)
            .any(|w| w[0].var == w[1].var && w[0].positive != w[1].positive);
        if !tautological {
            normalized.push(lits);
        }
    }
    canonicalize(&mut normalized);

    let mut compiler = Compiler {
        circuit: Circuit::new(),
        cache: HashMap::new(),
        decisions: 0,
        cache_hits: 0,
        guard,
    };
    let raw_root = compiler.compile_set(&normalized)?;
    let smoothed = smooth(&mut compiler.circuit, raw_root, num_vars);
    // Compilation and smoothing leave superseded nodes in the arena; keep
    // only the live circuit so every evaluation is a plain arena scan.
    let (circuit, root) = compiler.circuit.pruned(smoothed);
    let stats = CompileStats {
        nodes: circuit.len(),
        edges: circuit.edge_count(),
        decisions: compiler.decisions,
        cache_hits: compiler.cache_hits,
    };
    wfomc_obs::metrics::CIRCUIT_COMPILES.inc();
    wfomc_obs::metrics::CIRCUIT_NODES.add(stats.nodes as u64);
    wfomc_obs::metrics::CIRCUIT_EDGES.add(stats.edges as u64);
    wfomc_obs::metrics::CIRCUIT_CACHE_HITS.add(stats.cache_hits as u64);
    Ok(CompiledCnf {
        circuit,
        root,
        num_vars,
        stats,
    })
}

struct Compiler<'a> {
    circuit: Circuit,
    /// Component cache: canonical clause set → compiled sub-circuit.
    cache: HashMap<ClauseSet, NodeId>,
    decisions: usize,
    cache_hits: usize,
    guard: &'a Guard,
}

fn canonicalize(clauses: &mut ClauseSet) {
    for c in clauses.iter_mut() {
        c.sort();
    }
    clauses.sort();
}

/// Conditions a clause set on `var = value`; `None` signals a conflict.
fn condition(clauses: &[Vec<CLit>], var: Var, value: bool) -> Option<ClauseSet> {
    let mut out = Vec::with_capacity(clauses.len());
    for c in clauses {
        if c.iter().any(|l| l.var == var && l.positive == value) {
            continue; // satisfied
        }
        let reduced: Vec<CLit> = c.iter().copied().filter(|l| l.var != var).collect();
        if reduced.is_empty() {
            return None;
        }
        out.push(reduced);
    }
    Some(out)
}

impl Compiler<'_> {
    /// Compiles a canonical clause set (the analogue of the DPLL `count`).
    fn compile_set(&mut self, clauses: &ClauseSet) -> Result<NodeId, Interrupt> {
        if clauses.is_empty() {
            return Ok(self.circuit.tt());
        }
        if clauses.iter().any(Vec::is_empty) {
            return Ok(self.circuit.ff());
        }
        if let Some(&hit) = self.cache.get(clauses) {
            self.cache_hits += 1;
            return Ok(hit);
        }
        self.guard.tick(PHASE, 1)?;

        // Unit propagation; each propagated literal becomes a conjunct.
        let mut parts: Vec<NodeId> = Vec::new();
        let mut current: ClauseSet = clauses.clone();
        loop {
            let unit = current.iter().find(|c| c.len() == 1).map(|c| c[0]);
            let Some(lit) = unit else { break };
            let lit_node = self.circuit.mk_lit(lit);
            parts.push(lit_node);
            match condition(&current, lit.var, lit.positive) {
                Some(next) => current = next,
                None => {
                    let ff = self.circuit.ff();
                    self.cache.insert(clauses.clone(), ff);
                    return Ok(ff);
                }
            }
        }

        // Connected-component decomposition; the components' circuits are
        // conjoined decomposably with the propagated literals.
        if !current.is_empty() {
            for mut comp in split_components(&current) {
                canonicalize(&mut comp);
                let node = self.compile_component(&comp)?;
                parts.push(node);
            }
        }
        let result = self.circuit.mk_and(parts);
        self.cache.insert(clauses.clone(), result);
        Ok(result)
    }

    /// Compiles one connected component by branching (the analogue of the
    /// DPLL `count_component`).
    fn compile_component(&mut self, comp: &ClauseSet) -> Result<NodeId, Interrupt> {
        if comp.is_empty() {
            return Ok(self.circuit.tt());
        }
        if let Some(&hit) = self.cache.get(comp) {
            self.cache_hits += 1;
            return Ok(hit);
        }
        self.guard.tick(PHASE, 1)?;

        // Branch on the most frequently occurring variable (same heuristic
        // and tie-break as the DPLL counter, so the search trees coincide).
        let mut occurrence: HashMap<Var, usize> = HashMap::new();
        for c in comp {
            for l in c {
                *occurrence.entry(l.var).or_insert(0) += 1;
            }
        }
        let (&branch_var, _) = occurrence
            .iter()
            .max_by_key(|(v, count)| (**count, usize::MAX - **v))
            .expect("non-empty component has variables");
        self.decisions += 1;

        let mut branch = |value: bool| -> Result<NodeId, Interrupt> {
            match condition(comp, branch_var, value) {
                None => Ok(self.circuit.ff()),
                Some(mut cond) => {
                    canonicalize(&mut cond);
                    self.compile_set(&cond)
                }
            }
        };
        let hi = branch(true)?;
        let lo = branch(false)?;
        let result = self.circuit.mk_decision(branch_var, hi, lo);
        self.cache.insert(comp.clone(), result);
        Ok(result)
    }
}

/// Splits a clause set into connected components of its primal graph
/// (clauses are connected when they share a variable).
fn split_components(clauses: &ClauseSet) -> Vec<ClauseSet> {
    let n = clauses.len();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }

    let mut owner: HashMap<Var, usize> = HashMap::new();
    for (i, c) in clauses.iter().enumerate() {
        for l in c {
            match owner.get(&l.var) {
                Some(&j) => {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    if a != b {
                        parent[a] = b;
                    }
                }
                None => {
                    owner.insert(l.var, i);
                }
            }
        }
    }

    let mut groups: HashMap<usize, ClauseSet> = HashMap::new();
    for (i, c) in clauses.iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(c.clone());
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::SliceWeights;
    use crate::ir::Node;
    use wfomc_logic::weights::weight_int;

    fn cnf(clauses: &[&[(usize, bool)]]) -> Vec<Vec<CLit>> {
        clauses
            .iter()
            .map(|c| {
                c.iter()
                    .map(|&(v, pos)| CLit {
                        var: v,
                        positive: pos,
                    })
                    .collect()
            })
            .collect()
    }

    /// Brute-force WMC for cross-checking (exponential, test-only).
    fn brute_force(num_vars: usize, clauses: &[Vec<CLit>], w: &SliceWeights) -> Weight {
        use num_traits::Zero;
        let mut total = Weight::zero();
        for bits in 0u64..(1 << num_vars) {
            let assignment: Vec<bool> = (0..num_vars).map(|v| (bits >> v) & 1 == 1).collect();
            let satisfied = clauses
                .iter()
                .all(|c| c.iter().any(|l| l.positive == assignment[l.var]));
            if satisfied {
                let mut weight = wfomc_logic::weights::weight_int(1);
                for (v, &value) in assignment.iter().enumerate() {
                    weight *= w.weight(v, value);
                }
                total += weight;
            }
        }
        total
    }

    #[test]
    fn empty_cnf_counts_all_assignments() {
        let compiled = compile(4, &[]);
        assert_eq!(compiled.wmc(&SliceWeights::ones(4)), weight_int(16));
    }

    #[test]
    fn unsat_cnf_counts_zero() {
        let compiled = compile(2, &cnf(&[&[(0, true)], &[(0, false)]]));
        assert_eq!(compiled.wmc(&SliceWeights::ones(2)), weight_int(0));
    }

    #[test]
    fn freed_variables_are_smoothed_in() {
        // (x0 ∨ x1): branching on x0=true frees x1.
        let compiled = compile(2, &cnf(&[&[(0, true), (1, true)]]));
        assert_eq!(compiled.wmc(&SliceWeights::ones(2)), weight_int(3));
    }

    #[test]
    fn component_decomposition_multiplies() {
        let compiled = compile(4, &cnf(&[&[(0, true), (1, true)], &[(2, true), (3, true)]]));
        assert_eq!(compiled.wmc(&SliceWeights::ones(4)), weight_int(9));
    }

    #[test]
    fn negative_weights_are_exact() {
        // Skolemization-style weights (w̄ = −1).
        let compiled = compile(2, &cnf(&[&[(0, true), (1, true)]]));
        let w = SliceWeights::from_vecs(
            vec![weight_int(1), weight_int(1)],
            vec![weight_int(-1), weight_int(1)],
        );
        assert_eq!(compiled.wmc(&w), weight_int(1));
    }

    #[test]
    fn one_compilation_serves_many_weight_vectors() {
        let clauses = cnf(&[
            &[(0, true), (1, true)],
            &[(1, false), (2, true)],
            &[(0, false), (2, false), (3, true)],
        ]);
        let compiled = compile(4, &clauses);
        // Sweep z = 0..8 as the equality-removal interpolation does; the
        // circuit is shared across every evaluation.
        for z in 0..8i64 {
            let w = SliceWeights::from_vecs(
                vec![weight_int(z), weight_int(1), weight_int(2), weight_int(-1)],
                vec![
                    weight_int(1),
                    weight_int(z - 3),
                    weight_int(1),
                    weight_int(2),
                ],
            );
            assert_eq!(compiled.wmc(&w), brute_force(4, &clauses, &w), "z = {z}");
        }
    }

    #[test]
    fn matches_brute_force_on_structured_instances() {
        let instances = vec![
            (
                4,
                cnf(&[
                    &[(0, true), (1, true)],
                    &[(1, false), (2, true)],
                    &[(2, false), (3, true)],
                    &[(0, false), (3, false)],
                ]),
            ),
            (
                5,
                cnf(&[
                    &[(0, true), (1, true), (2, true)],
                    &[(2, false), (3, false)],
                    &[(3, true), (4, true)],
                ]),
            ),
            // Tautologies and duplicate literals are normalized away.
            (2, cnf(&[&[(0, true), (0, false)], &[(1, true), (1, true)]])),
        ];
        for (num_vars, clauses) in instances {
            let compiled = compile(num_vars, &clauses);
            let w = SliceWeights::ones(num_vars);
            assert_eq!(compiled.wmc(&w), brute_force(num_vars, &clauses, &w));
        }
    }

    #[test]
    fn circuit_is_decomposable_and_deterministic() {
        let compiled = compile(
            5,
            &cnf(&[
                &[(0, true), (1, true)],
                &[(1, false), (2, true)],
                &[(3, true), (4, true)],
            ]),
        );
        let circuit = compiled.circuit();
        let supports = circuit.supports();
        for node in circuit.nodes() {
            match node {
                Node::And(children) => {
                    // Pairwise disjoint supports.
                    let mut seen: Vec<usize> = Vec::new();
                    for child in children.iter() {
                        for v in &supports[child.index()] {
                            assert!(!seen.contains(v), "And child supports overlap on x{v}");
                            seen.push(*v);
                        }
                    }
                }
                Node::Decision { var, hi, lo } => {
                    assert!(!supports[hi.index()].contains(var));
                    assert!(!supports[lo.index()].contains(var));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn cache_shares_repeated_components_and_reports_stats() {
        // Two disjoint copies of the same sub-problem share one sub-circuit.
        let compiled = compile(4, &cnf(&[&[(0, true), (1, true)], &[(2, true), (3, true)]]));
        let stats = compiled.stats();
        assert!(stats.nodes >= 4);
        assert!(stats.decisions >= 1);
        assert_eq!(stats.nodes, compiled.circuit().len());
        assert_eq!(stats.edges, compiled.circuit().edge_count());
    }

    #[test]
    #[should_panic(expected = "outside the universe")]
    fn out_of_universe_variable_panics() {
        compile(1, &cnf(&[&[(3, true)]]));
    }

    use proptest::prelude::*;

    fn arb_clauses(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Vec<Vec<CLit>>> {
        let clause = proptest::collection::vec((0..max_vars, any::<bool>()), 0..4);
        proptest::collection::vec(clause, 0..max_clauses).prop_map(|raw| {
            raw.into_iter()
                .map(|c| {
                    c.into_iter()
                        .map(|(var, positive)| CLit { var, positive })
                        .collect()
                })
                .collect()
        })
    }

    /// Deterministic pseudo-random weights including negative rationals.
    fn seeded_weights(num_vars: usize, seed: u64) -> SliceWeights {
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        let mut s = seed as i64 + 1;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            wfomc_logic::weights::weight_ratio((s % 7) - 2, 1 + (s % 3).unsigned_abs() as i64)
        };
        for _ in 0..num_vars {
            pos.push(next());
            neg.push(next());
        }
        SliceWeights::from_vecs(pos, neg)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn random_cnfs_match_brute_force_under_random_weights(
            clauses in arb_clauses(6, 8),
            seed in 0u64..1000,
        ) {
            let num_vars = 6;
            let compiled = compile(num_vars, &clauses);
            let w = seeded_weights(num_vars, seed);
            prop_assert_eq!(compiled.wmc(&w), brute_force(num_vars, &clauses, &w));
        }

        #[test]
        fn compiled_circuits_are_smooth(clauses in arb_clauses(5, 7)) {
            let compiled = compile(5, &clauses);
            let circuit = compiled.circuit();
            let supports = circuit.supports();
            let reachable = circuit.reachable(compiled.root());
            for (index, node) in circuit.nodes().iter().enumerate() {
                if !reachable[index] {
                    continue;
                }
                if let Node::Decision { hi, lo, .. } = node {
                    if *hi != circuit.ff() && *lo != circuit.ff() {
                        prop_assert_eq!(&supports[hi.index()], &supports[lo.index()]);
                    }
                }
            }
            if compiled.root() != circuit.ff() {
                let universe: Vec<usize> = (0..compiled.num_vars()).collect();
                prop_assert_eq!(&supports[compiled.root().index()], &universe);
            }
        }
    }
}
