//! # wfomc-circuit
//!
//! Knowledge compilation for **compile-once / evaluate-many** weighted model
//! counting.
//!
//! The grounded WFOMC pipeline and the Lemma 3.5 equality-removal oracle both
//! evaluate the *same* propositional formula under many different weight
//! vectors — equality removal alone needs `n² + 1` evaluation points of one
//! CNF. Re-running a DPLL-style counter from scratch for every weight vector
//! repeats the identical search. This crate instead records the search
//! **once** as a circuit in *deterministic decomposable negation normal form*
//! (d-DNNF), after which each weighted evaluation is a single linear pass over
//! the circuit — the classical c2d / sharpSAT trace architecture.
//!
//! The pieces:
//!
//! * [`ir`] — an arena-based NNF circuit IR ([`Circuit`]) with True/False/
//!   literal/And/decision nodes and structural hashing;
//! * [`mod@compile`] — a top-down compiler mirroring the weighted DPLL search of
//!   `wfomc-prop` (unit propagation, connected-component decomposition, and a
//!   component cache keyed by circuit node ids) that emits d-DNNF;
//! * [`smooth`] — the smoothing pass that makes every decision node's
//!   branches mention the same variables, so weighted evaluation needs no
//!   gap-factor bookkeeping;
//! * [`eval`] — the linear-time evaluator over arbitrary rational weight
//!   vectors (negative weights included), via the [`LitWeights`] trait.
//!
//! The crate deliberately sits *below* `wfomc-prop` in the crate graph: it
//! defines its own minimal literal type ([`CLit`]) and weight-lookup trait so
//! that `wfomc-prop` can depend on it and dispatch its `WmcBackend::Circuit`
//! natively.
//!
//! ```
//! use wfomc_circuit::{compile, CLit, SliceWeights};
//!
//! // (x0 ∨ x1) ∧ (¬x1 ∨ x2), compiled once…
//! let cnf = vec![
//!     vec![CLit::pos(0), CLit::pos(1)],
//!     vec![CLit::neg(1), CLit::pos(2)],
//! ];
//! let compiled = compile(3, &cnf);
//! // …then evaluated under as many weight vectors as needed.
//! let ones = SliceWeights::ones(3);
//! assert_eq!(compiled.wmc(&ones), wfomc_logic::weights::weight_int(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod eval;
pub mod ir;
pub mod smooth;

pub use compile::{compile, compile_guarded, CompileStats, CompiledCnf};
pub use eval::{evaluate_in, LitWeights, SliceWeights};
pub use ir::{CLit, Circuit, Node, NodeId};
