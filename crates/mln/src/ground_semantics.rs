//! The textbook (ground) semantics of an MLN, used as ground truth.
//!
//! `W(D) = Π_{(w,ϕ(x̄)) soft, ā : D ⊨ ϕ[ā/x̄]} w` for structures `D` satisfying
//! every grounding of every hard constraint, and `W(D) = 0` otherwise.
//! `Pr(Φ) = W(Φ) / W(true)` where `W(Φ)` sums `W(D)` over the models of `Φ`.
//!
//! Everything here enumerates structures explicitly and is exponential in
//! `|Tup(n)|`; it exists to validate the WFOMC reduction path.

use std::collections::HashMap;

use num_traits::{One, Zero};

use wfomc_ground::enumerate::all_structures;
use wfomc_ground::evaluate::{evaluate, evaluate_with};
use wfomc_ground::structure::{all_tuples, Structure};
use wfomc_logic::syntax::Formula;
use wfomc_logic::weights::Weight;

use crate::network::{ConstraintWeight, MarkovLogicNetwork};

/// The MLN weight of a single structure.
pub fn world_weight(mln: &MarkovLogicNetwork, structure: &Structure) -> Weight {
    let n = structure.domain_size();
    let mut weight = Weight::one();
    for c in mln.constraints() {
        for tuple in all_tuples(n, c.variables.len()) {
            let assignment: HashMap<_, _> = c
                .variables
                .iter()
                .cloned()
                .zip(tuple.iter().copied())
                .collect();
            let holds = evaluate_with(&c.formula, structure, &assignment);
            match (&c.weight, holds) {
                (ConstraintWeight::Hard, false) => return Weight::zero(),
                (ConstraintWeight::Hard, true) => {}
                (ConstraintWeight::Soft(w), true) => weight *= w,
                (ConstraintWeight::Soft(_), false) => {}
            }
        }
    }
    weight
}

/// The partition function `W(true) = Σ_D W(D)` by brute-force enumeration.
pub fn partition_function_brute(mln: &MarkovLogicNetwork, n: usize) -> Weight {
    let voc = mln.vocabulary();
    let mut total = Weight::zero();
    for structure in all_structures(&voc, n) {
        total += world_weight(mln, &structure);
    }
    total
}

/// `W(Φ)` by brute-force enumeration: the sum of `W(D)` over models of the
/// query sentence.
pub fn query_weight_brute(mln: &MarkovLogicNetwork, query: &Formula, n: usize) -> Weight {
    let voc = mln.vocabulary().extended_with(&query.vocabulary());
    let mut total = Weight::zero();
    for structure in all_structures(&voc, n) {
        if evaluate(query, &structure) {
            total += world_weight(mln, &structure);
        }
    }
    total
}

/// `Pr_MLN(Φ) = W(Φ) / W(true)` by brute-force enumeration.
///
/// # Panics
/// Panics if the partition function is zero (contradictory hard constraints).
pub fn probability_brute(mln: &MarkovLogicNetwork, query: &Formula, n: usize) -> Weight {
    let z = partition_function_brute(mln, n);
    assert!(
        !z.is_zero(),
        "the MLN's hard constraints are unsatisfiable over a domain of size {n}"
    );
    query_weight_brute(mln, query, n) / z
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_logic::builders::*;
    use wfomc_logic::weights::{weight_int, weight_ratio};

    fn spouse_mln(weight: i64) -> MarkovLogicNetwork {
        let mut mln = MarkovLogicNetwork::new();
        mln.add_soft(
            weight_int(weight),
            implies(
                and(vec![atom("Spouse", &["x", "y"]), atom("Female", &["x"])]),
                atom("Male", &["y"]),
            ),
        );
        mln
    }

    #[test]
    fn world_weight_counts_satisfied_groundings() {
        // Example 1.1: the weight of a world is 3^N where N is the number of
        // satisfied groundings of the spouse constraint.
        let mln = spouse_mln(3);
        let mut d = Structure::empty(1);
        // Spouse(0,0), Female(0), Male(0) absent → the implication is
        // (⊥ ∧ ?) ⇒ ? = true → weight 3.
        assert_eq!(world_weight(&mln, &d), weight_int(3));
        // Make the implication false: Spouse(0,0), Female(0), ¬Male(0).
        d.insert("Spouse", vec![0, 0]);
        d.insert("Female", vec![0]);
        assert_eq!(world_weight(&mln, &d), weight_int(1));
        d.insert("Male", vec![0]);
        assert_eq!(world_weight(&mln, &d), weight_int(3));
    }

    #[test]
    fn hard_constraints_zero_out_violating_worlds() {
        let mut mln = MarkovLogicNetwork::new();
        mln.add_hard(not(atom("Spouse", &["x", "x"])));
        let mut d = Structure::empty(2);
        assert_eq!(world_weight(&mln, &d), weight_int(1));
        d.insert("Spouse", vec![1, 1]);
        assert_eq!(world_weight(&mln, &d), weight_int(0));
    }

    #[test]
    fn empty_mln_is_uniform() {
        let mln = MarkovLogicNetwork::new();
        // Empty vocabulary → a single empty structure of weight 1.
        assert_eq!(partition_function_brute(&mln, 2), weight_int(1));
    }

    #[test]
    fn partition_function_of_single_unary_soft_constraint() {
        // MLN with one soft constraint (2, Female(x)): each element doubles
        // the weight when Female holds: Z = Σ_D 2^{|Female|} = (1+2)ⁿ.
        let mut mln = MarkovLogicNetwork::new();
        mln.add_soft(weight_int(2), atom("Female", &["x"]));
        for n in 0..=3 {
            assert_eq!(
                partition_function_brute(&mln, n),
                wfomc_logic::weights::weight_pow(&weight_int(3), n),
                "n = {n}"
            );
        }
    }

    #[test]
    fn probability_of_query() {
        // One soft constraint (2, Female(x)) over n = 1:
        // Pr(Female(c0)) = 2 / 3.
        let mut mln = MarkovLogicNetwork::new();
        mln.add_soft(weight_int(2), atom("Female", &["x"]));
        let q = atom("Female", &["#0"]);
        assert_eq!(probability_brute(&mln, &q, 1), weight_ratio(2, 3));
    }
}
