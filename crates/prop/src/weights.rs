//! Per-variable weight pairs for propositional weighted model counting.
//!
//! This is the `WMC(F, w, w̄)` setting of §2 Eq. (2)–(3): variable `Xᵢ`
//! contributes `w(Xᵢ)` when true and `w̄(Xᵢ)` when false, and the weight of an
//! assignment is the product over all variables. Weights are exact rationals
//! and may be negative.

use num_traits::One;
use wfomc_logic::algebra::{Exact, VarPairs};
use wfomc_logic::weights::Weight;

/// Weight pairs for a dense block of variables `0..len`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarWeights {
    pos: Vec<Weight>,
    neg: Vec<Weight>,
}

impl VarWeights {
    /// All-ones weights for `n` variables (plain model counting).
    pub fn ones(n: usize) -> Self {
        VarWeights {
            pos: vec![Weight::one(); n],
            neg: vec![Weight::one(); n],
        }
    }

    /// Builds weights from parallel `(pos, neg)` vectors.
    ///
    /// # Panics
    /// Panics if the vectors have different lengths.
    pub fn from_vecs(pos: Vec<Weight>, neg: Vec<Weight>) -> Self {
        assert_eq!(pos.len(), neg.len(), "weight vectors must align");
        VarWeights { pos, neg }
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True if no variables are covered.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Extends the weight table with one more variable.
    pub fn push(&mut self, pos: Weight, neg: Weight) {
        self.pos.push(pos);
        self.neg.push(neg);
    }

    /// Weight of variable `v` being true.
    ///
    /// # Panics
    /// Panics if `v` is outside the table; use [`VarWeights::literal_weight`]
    /// for the total (default-to-one) accessor.
    pub fn pos(&self, v: usize) -> &Weight {
        &self.pos[v]
    }

    /// Weight of variable `v` being false.
    ///
    /// # Panics
    /// Panics if `v` is outside the table; use [`VarWeights::literal_weight`]
    /// for the total (default-to-one) accessor.
    pub fn neg(&self, v: usize) -> &Weight {
        &self.neg[v]
    }

    /// Sets the weight pair of variable `v`.
    pub fn set(&mut self, v: usize, pos: Weight, neg: Weight) {
        self.pos[v] = pos;
        self.neg[v] = neg;
    }

    /// The weight of `v` under a specific truth value.
    ///
    /// Variables beyond the table carry the implicit weight pair `(1, 1)`,
    /// so a weight table shorter than a CNF's universe means "count the
    /// remaining variables unweighted" rather than an error.
    pub fn literal_weight(&self, v: usize, value: bool) -> Weight {
        let table = if value { &self.pos } else { &self.neg };
        match table.get(v) {
            Some(w) => w.clone(),
            None => Weight::one(),
        }
    }

    /// `w(v) + w̄(v)` — the contribution of an unconstrained variable.
    ///
    /// Like [`VarWeights::literal_weight`], variables beyond the table get
    /// the implicit pair `(1, 1)` and therefore contribute `2`.
    pub fn total(&self, v: usize) -> Weight {
        match (self.pos.get(v), self.neg.get(v)) {
            (Some(p), Some(n)) => p + n,
            _ => Weight::one() + Weight::one(),
        }
    }

    /// The weight of a complete assignment (Eq. (3) in the paper).
    pub fn assignment_weight(&self, assignment: &[bool]) -> Weight {
        let mut w = Weight::one();
        for (v, &value) in assignment.iter().enumerate() {
            w *= self.literal_weight(v, value);
        }
        w
    }

    /// The product `Π_v (w(v) + w̄(v))` over a set of variables — the weighted
    /// count of all assignments to those variables.
    pub fn total_over<I: IntoIterator<Item = usize>>(&self, vars: I) -> Weight {
        let mut w = Weight::one();
        for v in vars {
            w *= self.total(v);
        }
        w
    }
}

/// [`VarWeights`] is the [`Exact`]-algebra instance of the generic
/// per-variable weight-pair interface, so the exact counters and the
/// algebra-generic `_in` counters share one implementation.
impl VarPairs<Exact> for VarWeights {
    fn var_weight(&self, _algebra: &Exact, var: usize, value: bool) -> Weight {
        self.literal_weight(var, value)
    }

    fn var_total(&self, _algebra: &Exact, var: usize) -> Weight {
        self.total(var)
    }

    fn table_len(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_logic::weights::{weight_int, weight_ratio};

    #[test]
    fn assignment_weight_is_product() {
        let w = VarWeights::from_vecs(
            vec![weight_int(2), weight_int(3)],
            vec![weight_int(1), weight_ratio(1, 2)],
        );
        // x0 = true (2), x1 = false (1/2) → 1.
        assert_eq!(w.assignment_weight(&[true, false]), weight_int(1));
        assert_eq!(w.assignment_weight(&[true, true]), weight_int(6));
        assert_eq!(w.total(0), weight_int(3));
        assert_eq!(w.total_over([0, 1]), weight_ratio(21, 2));
    }

    #[test]
    fn ones_defaults() {
        let mut w = VarWeights::ones(2);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.assignment_weight(&[true, false]), weight_int(1));
        w.push(weight_int(5), weight_int(-1));
        assert_eq!(w.len(), 3);
        assert_eq!(w.total(2), weight_int(4));
        w.set(2, weight_int(1), weight_int(-1));
        assert_eq!(w.total(2), weight_int(0));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_vectors_panic() {
        VarWeights::from_vecs(vec![weight_int(1)], vec![]);
    }

    #[test]
    fn variables_beyond_the_table_are_unweighted() {
        let w = VarWeights::from_vecs(vec![weight_int(5)], vec![weight_int(7)]);
        assert_eq!(w.literal_weight(0, true), weight_int(5));
        assert_eq!(w.literal_weight(3, true), weight_int(1));
        assert_eq!(w.literal_weight(3, false), weight_int(1));
        assert_eq!(w.total(3), weight_int(2));
        // An assignment longer than the table multiplies in implicit ones.
        assert_eq!(w.assignment_weight(&[false, true, true]), weight_int(7));
    }
}
