//! Example 3.10 — the explicit recurrence for linear chain queries
//! `Q = ∃x₀ … ∃x_m R₁(x₀,x₁) ∧ … ∧ R_m(x_{m−1},x_m)`.
//!
//! This is an independent, closed-form implementation of what the general
//! γ-acyclic algorithm computes on chains, used to cross-check the generic
//! reduction and to benchmark the two against each other.
//!
//! Writing `q_j(d) = 1 − (1 − p_j)^d` for the probability that a fixed element
//! has an `R_j`-successor among `d` candidates, the recurrence is
//!
//! ```text
//! g(0, d) = 1
//! g(1, d) = 1 − (1 − p₁)^{n₀ · d}
//! g(j, d) = Σ_{k=0}^{n_{j−1}} C(n_{j−1}, k) · q_j(d)^k · (1 − q_j(d))^{n_{j−1}−k} · g(j−1, k)
//! ```
//!
//! and `Pr(Q) = g(m, n_m)`.

use std::collections::HashMap;

use num_traits::One;

use wfomc_logic::weights::{weight_pow, Weight};

use crate::combinatorics::binomial_weight;

/// Probability of the length-`m` chain query where variable `xⱼ` ranges over a
/// domain of size `domains[j]` (`domains.len() == probabilities.len() + 1`)
/// and every tuple of `R_j` is present independently with probability
/// `probabilities[j−1]`.
///
/// # Panics
/// Panics if the domain and probability slices have inconsistent lengths.
pub fn chain_probability(domains: &[usize], probabilities: &[Weight]) -> Weight {
    assert_eq!(
        domains.len(),
        probabilities.len() + 1,
        "a chain with m atoms has m+1 variables"
    );
    let mut memo: HashMap<(usize, usize), Weight> = HashMap::new();
    g(
        probabilities.len(),
        *domains.last().expect("non-empty"),
        domains,
        probabilities,
        &mut memo,
    )
}

/// Probability of the length-`m` chain over a single shared domain of size `n`.
pub fn chain_probability_uniform(m: usize, n: usize, probabilities: &[Weight]) -> Weight {
    assert_eq!(probabilities.len(), m);
    chain_probability(&vec![n; m + 1], probabilities)
}

fn g(
    j: usize,
    d: usize,
    domains: &[usize],
    probabilities: &[Weight],
    memo: &mut HashMap<(usize, usize), Weight>,
) -> Weight {
    if j == 0 {
        return Weight::one();
    }
    if let Some(hit) = memo.get(&(j, d)) {
        return hit.clone();
    }
    let p = &probabilities[j - 1];
    let result = if j == 1 {
        Weight::one() - weight_pow(&(Weight::one() - p), domains[0] * d)
    } else {
        // q = 1 − (1 − p_j)^d: probability that a fixed x_{j−1} has some
        // R_j-successor in x_j's (restricted) domain.
        let q = Weight::one() - weight_pow(&(Weight::one() - p), d);
        let not_q = Weight::one() - &q;
        let n_prev = domains[j - 1];
        let mut total = Weight::from_integer(0.into());
        for k in 0..=n_prev {
            let sub = g(j - 1, k, domains, probabilities, memo);
            let coeff =
                binomial_weight(n_prev, k) * weight_pow(&q, k) * weight_pow(&not_q, n_prev - k);
            total += coeff * sub;
        }
        total
    };
    memo.insert((j, d), result.clone());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use wfomc_logic::catalog;
    use wfomc_logic::weights::weight_ratio;

    use crate::cq::gamma_acyclic::gamma_acyclic_probability;
    use wfomc_ground::probability as ground_probability;
    use wfomc_logic::weights::Weights;

    #[test]
    fn single_atom_chain_closed_form() {
        // Pr(∃x₀∃x₁ R₁(x₀,x₁)) = 1 − (1 − p)^{n²}.
        let p = weight_ratio(1, 3);
        for n in 0..=4 {
            let direct = chain_probability_uniform(1, n, std::slice::from_ref(&p));
            let expected = Weight::one() - weight_pow(&weight_ratio(2, 3), n * n);
            assert_eq!(direct, expected, "n = {n}");
        }
    }

    #[test]
    fn matches_generic_gamma_acyclic_algorithm() {
        for m in 1..=4 {
            let q = catalog::chain_query(m);
            let probs: Vec<Weight> = (0..m).map(|i| weight_ratio(1, 2 + i as i64)).collect();
            let by_name: BTreeMap<String, Weight> = (0..m)
                .map(|i| (format!("R{}", i + 1), probs[i].clone()))
                .collect();
            for n in 0..=4 {
                let closed = chain_probability_uniform(m, n, &probs);
                let generic = gamma_acyclic_probability(&q, n, &by_name).unwrap();
                assert_eq!(closed, generic, "m = {m}, n = {n}");
            }
        }
    }

    #[test]
    fn matches_grounded_probability() {
        let m = 2;
        let q = catalog::chain_query(m);
        let f = q.to_formula();
        let voc = f.vocabulary();
        let mut weights = Weights::ones();
        weights.set_probability("R1", weight_ratio(1, 3));
        weights.set_probability("R2", weight_ratio(1, 4));
        for n in 1..=2 {
            let closed = chain_probability_uniform(m, n, &[weight_ratio(1, 3), weight_ratio(1, 4)]);
            let grounded = ground_probability(&f, &voc, n, &weights);
            assert_eq!(closed, grounded, "n = {n}");
        }
    }

    #[test]
    fn long_chain_large_domain_is_fast() {
        // The recurrence is polynomial: m = 7, n = 14 is far beyond anything
        // the grounded baselines could touch, yet runs in well under a second
        // even in debug builds (the exact rationals grow large, which is the
        // real cost here, not the number of recurrence steps).
        let probs: Vec<Weight> = (0..7).map(|_| weight_ratio(1, 3)).collect();
        let p = chain_probability_uniform(7, 14, &probs);
        assert!(p > Weight::from_integer(0.into()) && p < Weight::one());
    }

    #[test]
    #[should_panic(expected = "m+1 variables")]
    fn inconsistent_lengths_panic() {
        chain_probability(&[2, 2], &[weight_ratio(1, 2), weight_ratio(1, 2)]);
    }
}
