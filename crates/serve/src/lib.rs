//! `wfomc-serve`: a plan-registry query service over HTTP.
//!
//! The library's plan-then-execute split (`Problem` → [`wfomc_core::Plan`])
//! amortizes sentence analysis across evaluations; this crate amortizes it
//! across *processes*: a daemon keeps planned sentences in a sharded,
//! LRU-bounded registry keyed by the canonical sentence hash, serves counts
//! over a hand-rolled HTTP/1.1 API (std-only — no framework, no async
//! runtime, no new dependencies), and persists registrations to a JSONL log
//! so a restart replays straight back to the same plan ids.
//!
//! # Quickstart
//!
//! Boot an in-process server, register a sentence, and count:
//!
//! ```
//! use wfomc_serve::http::{Server, ServerConfig};
//!
//! let server = Server::bind(&ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     workers: 2,
//!     capacity: 64,
//!     registry_path: None, // no persistence for this example
//! })
//! .unwrap();
//! let handle = server.handle();
//! let addr = server.local_addr();
//! let daemon = std::thread::spawn(move || server.run());
//!
//! // POST /v1/plans {"sentence": "..."} → {"id": "...", ...}
//! let sentence = "forall x. forall y. S(x) | N(x,y) | S(y)";
//! let body = format!(r#"{{"sentence": "{sentence}"}}"#);
//! let reply = wfomc_serve::client::post(addr, "/v1/plans", &body).unwrap();
//! assert_eq!(reply.status, 201);
//! let id = reply.json().unwrap().get("id").unwrap().as_str().unwrap().to_string();
//!
//! // POST /v1/plans/{id}/count {"n": 5} → {"value": "...", "report": {...}}
//! let reply =
//!     wfomc_serve::client::post(addr, &format!("/v1/plans/{id}/count"), r#"{"n": 5}"#).unwrap();
//! let value = reply.json().unwrap().get("value").unwrap().as_str().unwrap().to_string();
//!
//! // Served values are bit-identical to a direct `Plan::count`.
//! let direct = wfomc_core::Problem::new(wfomc_logic::parser::parse(sentence).unwrap())
//!     .plan()
//!     .unwrap()
//!     .count_default(5)
//!     .unwrap();
//! assert_eq!(value, direct.value.to_string());
//!
//! handle.shutdown();
//! daemon.join().unwrap().unwrap();
//! ```
//!
//! Per-request [`wfomc_guard::ExecutionLimits`] map from `timeout_ms`,
//! `work_cap`, and `mem_cap` body members; a tripped limit comes back as a
//! typed 422 (`deadline_exceeded`, `work_cap_exceeded`, …) and the plan
//! stays registered and reusable. See the repository README's "Serving"
//! section for the endpoint table and curl examples.

pub mod client;
pub mod http;
pub mod json;
pub mod registry;
pub mod snap;
pub mod store;
pub mod wire;

pub use http::{Server, ServerConfig, ServerHandle};
pub use registry::{PlanRegistry, RegisteredPlan, RegistryStats};
pub use snap::{SnapStats, SnapshotStore};
pub use store::RegistryLog;
pub use wire::SCHEMA;
