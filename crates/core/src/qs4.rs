//! Theorem 3.7 — the dynamic program for the sentence
//! `QS4 = ∀x₁∀x₂∀y₁∀y₂ (S(x₁,y₁) ∨ ¬S(x₂,y₁) ∨ S(x₂,y₂) ∨ ¬S(x₁,y₂))`.
//!
//! The paper shows every model of the (domain-restricted) sentence satisfies
//! either `Pa` (some row of `S` is full) or `Pb` (some column of `S` is
//! empty), and these cases are exclusive. Writing `f(n₁, n₂)` and `g(n₁, n₂)`
//! for the weighted counts of the two cases, the recurrences are
//!
//! ```text
//! f(n₁, 0) = 1      f(n₁, n₂) = Σ_{k=1}^{n₁} C(n₁,k) · w^{k·n₂} · g(n₁−k, n₂)
//! g(0, n₂) = 1      g(n₁, n₂) = Σ_{ℓ=1}^{n₂} C(n₂,ℓ) · w̄^{n₁·ℓ} · f(n₁, n₂−ℓ)
//! ```
//!
//! and `WFOMC(QS4, n, w, w̄) = f(n, n) + g(n, n)` for `n ≥ 1`.
//!
//! This sentence matters because (per the paper) no existing set of lifted
//! inference rules computes it — it needs this bespoke dynamic program, which
//! is evidence that a complete rule set for symmetric WFOMC is still unknown.

use num_traits::One;

use wfomc_logic::algebra::{Algebra, AlgebraWeights, Exact};
use wfomc_logic::catalog;
use wfomc_logic::syntax::Formula;
use wfomc_logic::weights::{Weight, Weights};

use crate::combinatorics::binomial_weight;
use crate::error::LiftError;

/// True if the sentence is (syntactically) the paper's QS4 sentence.
///
/// The check is deliberately conservative: it compares against the catalog
/// formula after normalizing the quantifier variable names, so reorderings of
/// the disjuncts are not recognized. The [`crate::solver::Solver`] only uses
/// this as a fast path; unrecognized but equivalent sentences simply fall back
/// to grounding.
pub fn is_qs4(sentence: &Formula) -> bool {
    sentence == &catalog::qs4()
}

/// `WFOMC(QS4, n, w, w̄)` in time `O(n²)` arithmetic operations.
pub fn wfomc_qs4(n: usize, weights: &Weights) -> Weight {
    let pair = weights.pair("S");
    wfomc_qs4_weights(n, &pair.pos, &pair.neg)
}

/// [`wfomc_qs4`] in an arbitrary [`Algebra`]: the recurrences of
/// Theorem 3.7 only add and multiply, so the same `O(n²)` dynamic program
/// runs over any ring.
pub fn wfomc_qs4_in<A: Algebra>(n: usize, algebra: &A, weights: &AlgebraWeights<A>) -> A::Elem {
    let (w, w_bar) = weights.pair(algebra, "S");
    if n == 0 {
        // A single empty structure of weight 1.
        return algebra.one();
    }
    let (f, g) = qs4_tables_in(n, n, algebra, &w, &w_bar);
    algebra.add(&f[n][n], &g[n][n])
}

/// As [`wfomc_qs4`], with the weight pair for `S` given explicitly.
pub fn wfomc_qs4_weights(n: usize, w: &Weight, w_bar: &Weight) -> Weight {
    if n == 0 {
        // A single empty structure of weight 1.
        return Weight::one();
    }
    let (f, g) = qs4_tables(n, n, w, w_bar);
    f[n][n].clone() + g[n][n].clone()
}

/// The generalized count of the proof, over a bipartite-style restriction
/// where the `x` variables range over `[n₁]` and the `y` variables over
/// `[n₂]`; returns `f(n₁,n₂) + g(n₁,n₂)`.
pub fn wfomc_qs4_rectangular(n1: usize, n2: usize, w: &Weight, w_bar: &Weight) -> Weight {
    if n1 == 0 || n2 == 0 {
        return Weight::one();
    }
    let (f, g) = qs4_tables(n1, n2, w, w_bar);
    f[n1][n2].clone() + g[n1][n2].clone()
}

/// Dispatcher-friendly entry: checks the sentence is QS4 and evaluates it.
pub fn wfomc_qs4_sentence(
    sentence: &Formula,
    n: usize,
    weights: &Weights,
) -> Result<Weight, LiftError> {
    if !is_qs4(sentence) {
        return Err(LiftError::PatternMismatch {
            expected: "the QS4 sentence of Theorem 3.7".to_string(),
        });
    }
    Ok(wfomc_qs4(n, weights))
}

/// Fills the `f` and `g` tables bottom-up (the [`Exact`] instance of
/// [`qs4_tables_in`]).
fn qs4_tables(
    max1: usize,
    max2: usize,
    w: &Weight,
    w_bar: &Weight,
) -> (Vec<Vec<Weight>>, Vec<Vec<Weight>>) {
    qs4_tables_in(max1, max2, &Exact, w, w_bar)
}

/// Fills the `f` and `g` tables bottom-up in an arbitrary algebra.
#[allow(clippy::needless_range_loop, clippy::type_complexity)]
fn qs4_tables_in<A: Algebra>(
    max1: usize,
    max2: usize,
    algebra: &A,
    w: &A::Elem,
    w_bar: &A::Elem,
) -> (Vec<Vec<A::Elem>>, Vec<Vec<A::Elem>>) {
    let mut f = vec![vec![algebra.one(); max2 + 1]; max1 + 1];
    let mut g = vec![vec![algebra.one(); max2 + 1]; max1 + 1];
    for n1 in 0..=max1 {
        for n2 in 0..=max2 {
            if n2 > 0 {
                let mut total = algebra.zero();
                for k in 1..=n1 {
                    let mut term = algebra.from_weight(&binomial_weight(n1, k));
                    algebra.mul_assign(&mut term, &algebra.pow(w, k * n2));
                    algebra.mul_assign(&mut term, &g[n1 - k][n2]);
                    algebra.add_assign(&mut total, &term);
                }
                f[n1][n2] = total;
            }
            if n1 > 0 {
                let mut total = algebra.zero();
                for l in 1..=n2 {
                    let mut term = algebra.from_weight(&binomial_weight(n2, l));
                    algebra.mul_assign(&mut term, &algebra.pow(w_bar, n1 * l));
                    algebra.mul_assign(&mut term, &f[n1][n2 - l]);
                    algebra.add_assign(&mut total, &term);
                }
                g[n1][n2] = total;
            }
        }
    }
    (f, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_ground::{brute_force_wfomc, wfomc as ground_wfomc};
    use wfomc_logic::weights::{weight_int, weight_ratio};

    #[test]
    fn unweighted_small_counts() {
        // n = 1: both structures satisfy QS4 → 2.
        assert_eq!(wfomc_qs4(1, &Weights::ones()), weight_int(2));
        // n = 2: 16 structures, exactly 2 violate (the two "crossing"
        // patterns) → 14.
        assert_eq!(wfomc_qs4(2, &Weights::ones()), weight_int(14));
        // n = 0: the empty structure.
        assert_eq!(wfomc_qs4(0, &Weights::ones()), weight_int(1));
    }

    #[test]
    fn matches_brute_force_enumeration() {
        let f = catalog::qs4();
        let voc = f.vocabulary();
        for n in 0..=3 {
            let dp = wfomc_qs4(n, &Weights::ones());
            let brute = brute_force_wfomc(&f, &voc, n, &Weights::ones());
            assert_eq!(dp, brute, "n = {n}");
        }
    }

    #[test]
    fn matches_grounded_wfomc_with_weights() {
        let f = catalog::qs4();
        let voc = f.vocabulary();
        for (w, wb) in [(2i64, 1i64), (1, 3), (3, 2)] {
            let weights = Weights::from_ints([("S", w, wb)]);
            for n in 1..=3 {
                let dp = wfomc_qs4(n, &weights);
                let grounded = ground_wfomc(&f, &voc, n, &weights);
                assert_eq!(dp, grounded, "w = {w}, w̄ = {wb}, n = {n}");
            }
        }
    }

    #[test]
    fn rational_and_negative_weights() {
        let f = catalog::qs4();
        let voc = f.vocabulary();
        let mut weights = Weights::ones();
        weights.set("S", weight_ratio(1, 3), weight_ratio(2, 3));
        for n in 1..=2 {
            assert_eq!(wfomc_qs4(n, &weights), ground_wfomc(&f, &voc, n, &weights));
        }
        let weights = Weights::from_ints([("S", -1, 2)]);
        for n in 1..=2 {
            assert_eq!(wfomc_qs4(n, &weights), ground_wfomc(&f, &voc, n, &weights));
        }
    }

    #[test]
    fn rectangular_variant_agrees_on_squares() {
        let w = weight_int(1);
        let wb = weight_int(1);
        for n in 1..=4 {
            assert_eq!(
                wfomc_qs4_rectangular(n, n, &w, &wb),
                wfomc_qs4(n, &Weights::ones())
            );
        }
        // 1×2 rectangle: every 2-bit row trivially satisfies the constraint
        // (there is only one row) → 4 structures.
        assert_eq!(wfomc_qs4_rectangular(1, 2, &w, &wb), weight_int(4));
    }

    #[test]
    fn sentence_dispatcher_checks_the_pattern() {
        assert!(is_qs4(&catalog::qs4()));
        assert!(!is_qs4(&catalog::table1_sentence()));
        assert!(wfomc_qs4_sentence(&catalog::qs4(), 3, &Weights::ones()).is_ok());
        assert!(matches!(
            wfomc_qs4_sentence(&catalog::table1_sentence(), 3, &Weights::ones()),
            Err(LiftError::PatternMismatch { .. })
        ));
    }

    #[test]
    fn polynomial_scaling_smoke_test() {
        // n = 24 is far beyond any grounded method (2^{576} structures); the
        // DP finishes in well under a second even in debug builds. Larger n
        // are exercised by the release-mode benchmarks.
        let value = wfomc_qs4(24, &Weights::ones());
        assert!(value > weight_int(0));
    }
}
