//! E5 — Theorem 3.7: the QS4 dynamic program versus the grounded baseline.
//! The DP is polynomial (O(n²) table with O(n) work per entry); grounding is
//! doubly exponential and stops at n = 3.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfomc::core::qs4::wfomc_qs4;
use wfomc::ground::GroundSolver;
use wfomc::prelude::*;

fn bench_qs4(c: &mut Criterion) {
    let mut group = c.benchmark_group("qs4");
    let sentence = catalog::qs4();
    let weights = Weights::from_ints([("S", 2, 1)]);

    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("dynamic-program", n), &n, |b, &n| {
            b.iter(|| wfomc_qs4(n, &weights))
        });
    }
    for n in [2usize, 3] {
        group.bench_with_input(BenchmarkId::new("grounded", n), &n, |b, &n| {
            b.iter(|| GroundSolver::new().wfomc(&sentence, &sentence.vocabulary(), n, &weights))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_qs4
}
criterion_main!(benches);
