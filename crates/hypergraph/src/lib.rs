//! # wfomc-hypergraph
//!
//! Hypergraphs and Fagin's degrees of acyclicity.
//!
//! §3.2 of *Symmetric Weighted First-Order Model Counting* (PODS 2015)
//! classifies conjunctive queries by the acyclicity of their associated
//! hypergraph (variables are nodes, atoms are hyperedges):
//!
//! * **γ-acyclic** queries have PTIME symmetric WFOMC (Theorem 3.6);
//! * **β-acyclic** queries are conjectured to be the tractability frontier;
//! * **α-acyclic** queries are as hard as arbitrary self-join-free queries.
//!
//! This crate implements the three acyclicity tests:
//!
//! * [`Hypergraph::is_alpha_acyclic`] — GYO ear-removal;
//! * [`Hypergraph::is_beta_acyclic`] — every edge-subset is α-acyclic
//!   (Fagin's characterization), plus [`Hypergraph::find_weak_beta_cycle`]
//!   which produces the witness used by the paper's C_k-hardness reduction;
//! * [`Hypergraph::is_gamma_acyclic`] — Fagin's reduction rules (a)–(e), the
//!   exact rule set the Theorem 3.6 counting algorithm follows.
//!
//! The crate is self-contained (no logic dependency); `wfomc-core` converts
//! conjunctive queries into [`Hypergraph`] values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acyclicity;
pub mod hypergraph;

pub use acyclicity::{AcyclicityClass, GammaReductionTrace, ReductionStep};
pub use hypergraph::{EdgeId, Hypergraph, NodeId};
