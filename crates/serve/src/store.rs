//! JSONL persistence for the plan registry.
//!
//! Every *fresh* registration appends one line to the registry log
//! (default `.wfomc/registry.jsonl`); on boot the log is replayed through
//! [`PlanRegistry::register`](crate::registry::PlanRegistry::register), so
//! a restarted daemon serves the same plan ids it did before the restart
//! (ids are content hashes, so they are stable across replays by
//! construction).
//!
//! Crash tolerance follows the usual append-only-log contract: a torn or
//! corrupt line can only be the *tail* of the file (lines are written with
//! a single flushed write), so replay stops at the first line that fails
//! to parse and truncates the file there. A line that parses but no longer
//! *plans* (e.g. a registry written by a build with different dispatch
//! rules) is skipped with a warning instead — the file is not the thing
//! that is wrong.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

use wfomc_logic::weights::Weights;
use wfomc_obs::json::JsonObject;

use crate::json::{parse, Value};
use crate::wire::{weights_from_json, weights_to_json, SCHEMA};

/// One replayable registration.
#[derive(Clone, Debug, PartialEq)]
pub struct LogRecord {
    /// Canonical sentence text.
    pub sentence: String,
    /// Default weights registered with it.
    pub weights: Weights,
}

/// What [`RegistryLog::replay`] found.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReplayOutcome {
    /// Well-formed records, in file order.
    pub records: Vec<LogRecord>,
    /// Byte offset the file was truncated to, when a corrupt tail was cut.
    pub truncated_at: Option<u64>,
}

/// An append-only JSONL registry log.
#[derive(Debug)]
pub struct RegistryLog {
    path: PathBuf,
    file: Option<File>,
}

impl RegistryLog {
    /// A log at `path`; nothing is opened or created until the first
    /// append (so read-only replays of a missing file stay side-effect
    /// free).
    pub fn new(path: impl Into<PathBuf>) -> RegistryLog {
        RegistryLog {
            path: path.into(),
            file: None,
        }
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Serializes one registration as a single JSONL line (no trailing
    /// newline; the appender adds it).
    pub fn encode_record(sentence: &str, weights: &Weights) -> String {
        let mut obj = JsonObject::new();
        obj.field_str("schema", SCHEMA);
        obj.field_str("kind", "register");
        obj.field_str("sentence", sentence);
        obj.field_raw("weights", &weights_to_json(weights));
        obj.finish()
    }

    fn decode_record(line: &str) -> Result<LogRecord, String> {
        let value = parse(line).map_err(|e| e.to_string())?;
        let obj = match &value {
            Value::Obj(_) => &value,
            _ => return Err("record is not a JSON object".into()),
        };
        match obj.get("kind").and_then(Value::as_str) {
            Some("register") => {}
            Some(other) => return Err(format!("unknown record kind `{other}`")),
            None => return Err("record has no `kind`".into()),
        }
        let sentence = obj
            .get("sentence")
            .and_then(Value::as_str)
            .ok_or("record has no `sentence` string")?
            .to_string();
        let weights = match obj.get("weights") {
            Some(w) => weights_from_json(w).map_err(|e| e.message)?,
            None => Weights::ones(),
        };
        Ok(LogRecord { sentence, weights })
    }

    /// Replays the log. Returns the well-formed prefix of records; if a
    /// corrupt line is found, the file is truncated at that line's byte
    /// offset (dropping it and everything after) and the offset is
    /// reported in the outcome.
    pub fn replay(&self) -> io::Result<ReplayOutcome> {
        let mut outcome = ReplayOutcome::default();
        let mut bytes = Vec::new();
        match File::open(&self.path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(outcome),
            Err(e) => return Err(e),
        }

        let mut offset = 0usize;
        while offset < bytes.len() {
            let rest = &bytes[offset..];
            let line_len = rest.iter().position(|&b| b == b'\n').unwrap_or(rest.len());
            let line_bytes = &rest[..line_len];
            let next_offset = offset + line_len + 1; // +1 skips the newline
            let parsed = std::str::from_utf8(line_bytes)
                .map_err(|_| "line is not UTF-8".to_string())
                .and_then(|s| {
                    if s.trim().is_empty() {
                        Ok(None)
                    } else {
                        Self::decode_record(s).map(Some)
                    }
                });
            match parsed {
                Ok(Some(record)) => outcome.records.push(record),
                Ok(None) => {}
                Err(message) => {
                    // Corrupt tail: cut the file back to the last good line.
                    eprintln!(
                        "wfomc-serve: registry log {}: corrupt line at byte {offset} \
                         ({message}); truncating",
                        self.path.display()
                    );
                    OpenOptions::new()
                        .write(true)
                        .open(&self.path)?
                        .set_len(offset as u64)?;
                    outcome.truncated_at = Some(offset as u64);
                    return Ok(outcome);
                }
            }
            offset = next_offset;
        }
        Ok(outcome)
    }

    /// Appends one registration and flushes it (one `write` call per line,
    /// so a crash can tear at most the final line).
    pub fn append(&mut self, sentence: &str, weights: &Weights) -> io::Result<()> {
        if self.file.is_none() {
            if let Some(dir) = self.path.parent() {
                if !dir.as_os_str().is_empty() {
                    fs::create_dir_all(dir)?;
                }
            }
            self.file = Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)?,
            );
        }
        let file = self.file.as_mut().expect("file opened above");
        let mut line = Self::encode_record(sentence, weights);
        line.push('\n');
        file.write_all(line.as_bytes())?;
        file.flush()
    }

    /// Rewrites the log to exactly `entries` (the registrations still live
    /// in the registry), dropping superseded and evicted lines. Run on
    /// graceful shutdown, after the last worker has drained.
    ///
    /// The rewrite goes through a temp file in the same directory followed
    /// by an atomic rename, so a crash mid-compaction leaves either the old
    /// log or the new one intact — never a torn mixture. Any open append
    /// handle is dropped first and reopened lazily on the next append.
    pub fn compact(&mut self, entries: &[(String, Weights)]) -> io::Result<()> {
        self.file = None; // reopen against the compacted file on next append
        if entries.is_empty() && !self.path.exists() {
            return Ok(()); // nothing logged, nothing to rewrite
        }
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let tmp = self.path.with_extension("jsonl.tmp");
        {
            let mut file = File::create(&tmp)?;
            let mut buf = String::new();
            for (sentence, weights) in entries {
                buf.push_str(&Self::encode_record(sentence, weights));
                buf.push('\n');
            }
            file.write_all(buf.as_bytes())?;
            file.flush()?;
        }
        fs::rename(&tmp, &self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use wfomc_logic::weights::{weight_int, weight_ratio};

    fn temp_path(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "wfomc-serve-store-{tag}-{}-{n}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = temp_path("roundtrip");
        let mut log = RegistryLog::new(&path);
        let mut w = Weights::ones();
        w.set("R", weight_int(2), weight_ratio(1, 3));
        log.append("forall x. R(x)", &w).unwrap();
        log.append("forall x. exists y. S(x,y)", &Weights::ones())
            .unwrap();

        let outcome = RegistryLog::new(&path).replay().unwrap();
        assert_eq!(outcome.truncated_at, None);
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(outcome.records[0].sentence, "forall x. R(x)");
        assert_eq!(outcome.records[0].weights, w);
        assert_eq!(outcome.records[1].weights, Weights::ones());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_replays_empty() {
        let outcome = RegistryLog::new(temp_path("missing")).replay().unwrap();
        assert_eq!(outcome, ReplayOutcome::default());
    }

    #[test]
    fn corrupt_tail_is_truncated_and_prefix_kept() {
        let path = temp_path("corrupt");
        let mut log = RegistryLog::new(&path);
        log.append("forall x. R(x)", &Weights::ones()).unwrap();
        log.append("forall x. P()", &Weights::ones()).unwrap();
        drop(log);
        let good_len = fs::metadata(&path).unwrap().len();
        // Simulate a torn write: half a JSON object, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"schema\":\"wfomc-serve/v1\",\"kind\":\"regi")
            .unwrap();
        drop(f);

        let outcome = RegistryLog::new(&path).replay().unwrap();
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(outcome.truncated_at, Some(good_len));
        assert_eq!(fs::metadata(&path).unwrap().len(), good_len);
        // A second replay is clean.
        let again = RegistryLog::new(&path).replay().unwrap();
        assert_eq!(again.records.len(), 2);
        assert_eq!(again.truncated_at, None);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn unplannable_but_well_formed_lines_are_not_truncation() {
        // decode_record accepts any parseable sentence string; whether it
        // plans is the registry's concern. A wrong `kind` is corruption.
        let record = RegistryLog::decode_record(
            "{\"schema\":\"wfomc-serve/v1\",\"kind\":\"register\",\
             \"sentence\":\"R(x) & S(x,y)\",\"weights\":{}}",
        )
        .unwrap();
        assert_eq!(record.sentence, "R(x) & S(x,y)");
        assert!(RegistryLog::decode_record("{\"kind\":\"nope\"}").is_err());
        assert!(RegistryLog::decode_record("not json").is_err());
    }

    #[test]
    fn compact_keeps_only_live_entries_and_replay_agrees() {
        let path = temp_path("compact");
        let mut log = RegistryLog::new(&path);
        log.append("forall x. R(x)", &Weights::ones()).unwrap();
        log.append("forall x. P()", &Weights::ones()).unwrap();
        // The same sentence re-registered with different weights: the log
        // now holds a superseded line that compaction should drop.
        let mut w = Weights::ones();
        w.set("R", weight_int(2), weight_int(1));
        log.append("forall x. R(x)", &w).unwrap();

        let live = vec![
            ("forall x. P()".to_string(), Weights::ones()),
            ("forall x. R(x)".to_string(), w.clone()),
        ];
        log.compact(&live).unwrap();
        let outcome = RegistryLog::new(&path).replay().unwrap();
        assert_eq!(outcome.truncated_at, None);
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(outcome.records[0].sentence, "forall x. P()");
        assert_eq!(outcome.records[1].weights, w);
        // Appending after compaction reopens the compacted file.
        log.append("forall x. exists y. S(x,y)", &Weights::ones())
            .unwrap();
        assert_eq!(RegistryLog::new(&path).replay().unwrap().records.len(), 3);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_compaction_leaves_the_old_log_intact() {
        // Mirrors `corrupt_tail_is_truncated_and_prefix_kept`, but for the
        // rewrite path: a crash mid-compaction means the rename never
        // happened, so the orphaned temp file must not disturb replay.
        let path = temp_path("torn-compact");
        let mut log = RegistryLog::new(&path);
        log.append("forall x. R(x)", &Weights::ones()).unwrap();
        log.append("forall x. P()", &Weights::ones()).unwrap();
        drop(log);
        // Simulate the crash: a half-written temp file next to the log.
        let tmp = path.with_extension("jsonl.tmp");
        fs::write(&tmp, b"{\"schema\":\"wfomc-serve/v1\",\"kind\":\"regi").unwrap();

        let outcome = RegistryLog::new(&path).replay().unwrap();
        assert_eq!(outcome.records.len(), 2, "old log replays untouched");
        assert_eq!(outcome.truncated_at, None);
        // The next compaction overwrites the orphan and completes.
        let mut log = RegistryLog::new(&path);
        log.compact(&[("forall x. R(x)".to_string(), Weights::ones())])
            .unwrap();
        assert!(!tmp.exists(), "compaction consumed the temp file");
        let outcome = RegistryLog::new(&path).replay().unwrap();
        assert_eq!(outcome.records.len(), 1);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_to_empty_truncates_and_missing_log_stays_missing() {
        let path = temp_path("compact-empty");
        let mut log = RegistryLog::new(&path);
        log.compact(&[]).unwrap();
        assert!(!path.exists(), "no log, no file created");
        log.append("forall x. R(x)", &Weights::ones()).unwrap();
        log.compact(&[]).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), 0);
        assert!(RegistryLog::new(&path).replay().unwrap().records.is_empty());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn encode_is_stable() {
        let mut w = Weights::ones();
        w.set("R", weight_int(2), weight_int(1));
        let line = RegistryLog::encode_record("forall x. R(x)", &w);
        assert_eq!(
            line,
            "{\"schema\":\"wfomc-serve/v1\",\"kind\":\"register\",\
             \"sentence\":\"forall x. R(x)\",\"weights\":{\"R\":[\"2\",\"1\"]}}"
        );
        assert_eq!(RegistryLog::decode_record(&line).unwrap().weights, w);
    }
}
