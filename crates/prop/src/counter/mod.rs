//! Exact weighted model counters.
//!
//! Two interchangeable backends are provided:
//!
//! * [`WmcBackend::Enumerate`] — brute-force enumeration of all assignments.
//!   Simple and obviously correct; exponential in the number of variables.
//!   Used as the ground truth in tests and as a baseline in the
//!   `wmc_backends` ablation bench.
//! * [`WmcBackend::Dpll`] — a weighted DPLL search with unit propagation,
//!   connected-component decomposition and component caching. This is the
//!   counter used by the grounded WFOMC pipeline.
//!
//! Both backends compute `WMC(F, w, w̄) = Σ_{θ ⊨ F} Π_i w-or-w̄(Xᵢ)` exactly,
//! with arbitrary (possibly negative) rational weights.

mod dpll;
mod enumerate;

pub use dpll::wmc_dpll;
pub use enumerate::{wmc_enumerate, wmc_formula};

use crate::cnf::Cnf;
use crate::formula::PropFormula;
use crate::tseitin::to_cnf;
use crate::weights::VarWeights;
use wfomc_logic::weights::Weight;

/// Selects a weighted model counting backend.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WmcBackend {
    /// Brute-force enumeration of all assignments.
    Enumerate,
    /// Weighted DPLL with unit propagation, component decomposition and
    /// caching.
    #[default]
    Dpll,
}

/// Computes the weighted model count of a CNF with the chosen backend.
pub fn wmc(cnf: &Cnf, weights: &VarWeights, backend: WmcBackend) -> Weight {
    match backend {
        WmcBackend::Enumerate => wmc_enumerate(cnf, weights),
        WmcBackend::Dpll => wmc_dpll(cnf, weights),
    }
}

/// Computes the weighted model count of an arbitrary propositional formula.
///
/// The enumerate backend evaluates the formula directly; the DPLL backend
/// first applies the count-preserving Tseitin transform.
pub fn wmc_formula_via(formula: &PropFormula, weights: &VarWeights, backend: WmcBackend) -> Weight {
    match backend {
        WmcBackend::Enumerate => wmc_formula(formula, weights),
        WmcBackend::Dpll => {
            let t = to_cnf(formula, weights);
            wmc_dpll(&t.cnf, &t.weights)
        }
    }
}

/// Unweighted model count of a CNF (all weights 1).
pub fn count_models(cnf: &Cnf, backend: WmcBackend) -> Weight {
    wmc(cnf, &VarWeights::ones(cnf.num_vars), backend)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Lit;
    use proptest::prelude::*;
    use wfomc_logic::weights::{weight_int, weight_ratio};

    #[test]
    fn backends_agree_on_simple_cnf() {
        // (x0 ∨ x1) ∧ (¬x1 ∨ x2)
        let cnf = Cnf::new(
            3,
            vec![vec![Lit::pos(0), Lit::pos(1)], vec![Lit::neg(1), Lit::pos(2)]],
        );
        let w = VarWeights::ones(3);
        let a = wmc(&cnf, &w, WmcBackend::Enumerate);
        let b = wmc(&cnf, &w, WmcBackend::Dpll);
        assert_eq!(a, b);
        // Truth-table check: assignments satisfying both clauses.
        assert_eq!(a, weight_int(4));
    }

    #[test]
    fn count_models_matches_known_value() {
        // x0 ∨ x1 has 3 models over 2 vars.
        let cnf = Cnf::new(2, vec![vec![Lit::pos(0), Lit::pos(1)]]);
        assert_eq!(count_models(&cnf, WmcBackend::Dpll), weight_int(3));
        assert_eq!(count_models(&cnf, WmcBackend::Enumerate), weight_int(3));
    }

    #[test]
    fn formula_backends_agree() {
        let f = PropFormula::iff(
            PropFormula::var(0),
            PropFormula::or(PropFormula::var(1), PropFormula::not(PropFormula::var(2))),
        );
        let w = VarWeights::from_vecs(
            vec![weight_int(2), weight_ratio(1, 2), weight_int(3)],
            vec![weight_int(1), weight_int(1), weight_int(-1)],
        );
        assert_eq!(
            wmc_formula_via(&f, &w, WmcBackend::Enumerate),
            wmc_formula_via(&f, &w, WmcBackend::Dpll)
        );
    }

    /// Random CNF generator for property tests.
    fn arb_cnf(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Cnf> {
        let clause = proptest::collection::vec((0..max_vars, any::<bool>()), 0..4);
        proptest::collection::vec(clause, 0..max_clauses).prop_map(move |raw| {
            let clauses = raw
                .into_iter()
                .map(|c| {
                    c.into_iter()
                        .map(|(v, pos)| Lit { var: v, positive: pos })
                        .collect()
                })
                .collect();
            Cnf::new(max_vars, clauses)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn dpll_matches_enumeration_on_random_cnfs(cnf in arb_cnf(6, 8)) {
            let w = VarWeights::ones(cnf.num_vars);
            prop_assert_eq!(
                wmc(&cnf, &w, WmcBackend::Dpll),
                wmc(&cnf, &w, WmcBackend::Enumerate)
            );
        }

        #[test]
        fn dpll_matches_enumeration_with_weights(cnf in arb_cnf(5, 6), seed in 0u64..1000) {
            // Deterministic pseudo-random weights derived from the seed,
            // including negative ones.
            let mut pos = Vec::new();
            let mut neg = Vec::new();
            let mut s = seed as i64 + 1;
            for _ in 0..cnf.num_vars {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                pos.push(weight_int((s % 5) - 1));
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                neg.push(weight_int((s % 5) - 1));
            }
            let w = VarWeights::from_vecs(pos, neg);
            prop_assert_eq!(
                wmc(&cnf, &w, WmcBackend::Dpll),
                wmc(&cnf, &w, WmcBackend::Enumerate)
            );
        }
    }
}
