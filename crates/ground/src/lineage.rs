//! Lineage construction: the grounding `F_{Φ,n}` of §2.
//!
//! The lineage of a sentence Φ over a domain of size `n` is the propositional
//! formula obtained by expanding `∀x` into a conjunction and `∃x` into a
//! disjunction over the domain, mapping each ground atom to a propositional
//! variable, and evaluating equality atoms on the spot. For a fixed sentence
//! its size is polynomial in `n`.

use std::collections::HashMap;

use wfomc_guard::{Guard, Interrupt};
use wfomc_logic::algebra::{Algebra, AlgebraWeights, ElemWeights};
use wfomc_logic::term::{Term, Variable};
use wfomc_logic::weights::{Weight, Weights};
use wfomc_logic::{Formula, Vocabulary};
use wfomc_prop::{PropFormula, VarWeights};

use crate::structure::all_tuples;

/// A ground atom: predicate name plus a tuple of domain constants.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GroundAtom {
    /// Predicate name.
    pub predicate: String,
    /// The argument tuple.
    pub tuple: Vec<usize>,
}

impl std::fmt::Display for GroundAtom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, c) in self.tuple.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// The lineage of a sentence: a propositional formula over the ground atoms of
/// `Tup(n)`, together with the atom ↔ variable correspondence.
#[derive(Clone, Debug)]
pub struct Lineage {
    /// The propositional lineage formula.
    pub prop: PropFormula,
    /// `atoms[v]` is the ground atom of propositional variable `v`. The list
    /// covers *all* of `Tup(n)` for the supplied vocabulary, not just the
    /// atoms mentioned by the formula, so weighted counts over the lineage
    /// equal WFOMC over the full vocabulary.
    pub atoms: Vec<GroundAtom>,
    /// Domain size.
    pub domain_size: usize,
}

impl Lineage {
    /// Grounds `formula` over a domain of size `n`, using `vocabulary` as the
    /// tuple universe.
    ///
    /// # Panics
    /// Panics if the formula mentions predicates outside the vocabulary, has
    /// free variables, or uses constants outside the domain.
    pub fn build(formula: &Formula, vocabulary: &Vocabulary, n: usize) -> Lineage {
        Self::build_guarded(formula, vocabulary, n, &Guard::unarmed())
            .expect("an unarmed guard cannot interrupt")
    }

    /// [`build`](Self::build) under a resource [`Guard`]: the guard is
    /// ticked per ground-atom expansion, its memory-estimate cap is checked
    /// against `|Tup(n)|` before allocating the atom universe, and an
    /// interrupt abandons the partial grounding (nothing is shared).
    ///
    /// # Panics
    /// Same contract as [`build`](Self::build).
    pub fn build_guarded(
        formula: &Formula,
        vocabulary: &Vocabulary,
        n: usize,
        guard: &Guard,
    ) -> Result<Lineage, Interrupt> {
        const PHASE: &str = "ground.lineage";
        let _span = wfomc_obs::span("ground.lineage");
        wfomc_guard::failpoint(PHASE)?;
        assert!(
            formula.is_sentence(),
            "lineage construction requires a sentence"
        );
        assert!(
            formula.vocabulary().is_subvocabulary_of(vocabulary),
            "the sentence mentions predicates outside the supplied vocabulary"
        );
        // |Tup(n)| = Σ_R n^arity(R); refuse before allocating when the
        // caller bounded the grounding's footprint.
        let universe: u64 = vocabulary
            .iter()
            .map(|p| (n as u64).saturating_pow(p.arity() as u32))
            .fold(0u64, u64::saturating_add);
        guard.check_mem(PHASE, universe)?;
        let mut atoms = Vec::new();
        let mut index: HashMap<GroundAtom, usize> = HashMap::new();
        for p in vocabulary.iter() {
            for tuple in all_tuples(n, p.arity()) {
                let atom = GroundAtom {
                    predicate: p.name().to_string(),
                    tuple,
                };
                index.insert(atom.clone(), atoms.len());
                atoms.push(atom);
            }
        }
        let prop = ground(formula, n, &index, &HashMap::new(), guard)?;
        wfomc_obs::metrics::LINEAGE_BUILT.inc();
        wfomc_obs::metrics::LINEAGE_VARS.add(atoms.len() as u64);
        wfomc_obs::metrics::LINEAGE_PROP_NODES.add(prop.size() as u64);
        Ok(Lineage {
            prop,
            atoms,
            domain_size: n,
        })
    }

    /// Number of propositional variables (`|Tup(n)|`).
    pub fn num_vars(&self) -> usize {
        self.atoms.len()
    }

    /// The variable index of a ground atom, if it is part of the universe.
    pub fn var_of(&self, atom: &GroundAtom) -> Option<usize> {
        self.atoms.iter().position(|a| a == atom)
    }

    /// Symmetric per-variable weights: every ground atom of relation `R`
    /// receives `(w_R, w̄_R)`.
    pub fn symmetric_weights(&self, weights: &Weights) -> VarWeights {
        let mut vw = VarWeights::ones(0);
        for atom in &self.atoms {
            let pair = weights.pair(&atom.predicate);
            vw.push(pair.pos, pair.neg);
        }
        vw
    }

    /// Symmetric per-variable weights in an arbitrary [`Algebra`]: every
    /// ground atom of relation `R` receives `R`'s pair of ring elements.
    pub fn weights_in<A: Algebra>(
        &self,
        algebra: &A,
        weights: &AlgebraWeights<A>,
    ) -> ElemWeights<A> {
        let mut ew = ElemWeights::new();
        for atom in &self.atoms {
            let (pos, neg) = weights.pair(algebra, &atom.predicate);
            ew.push(pos, neg);
        }
        ew
    }

    /// Asymmetric per-variable weights: each ground tuple gets its own pair,
    /// supplied by the callback (the Table 1 "asymmetric WFOMC" row).
    pub fn asymmetric_weights(
        &self,
        mut weight_of: impl FnMut(&GroundAtom) -> (Weight, Weight),
    ) -> VarWeights {
        let mut vw = VarWeights::ones(0);
        for atom in &self.atoms {
            let (pos, neg) = weight_of(atom);
            vw.push(pos, neg);
        }
        vw
    }
}

fn ground(
    formula: &Formula,
    n: usize,
    index: &HashMap<GroundAtom, usize>,
    env: &HashMap<Variable, usize>,
    guard: &Guard,
) -> Result<PropFormula, Interrupt> {
    guard.tick("ground.lineage", 1)?;
    Ok(match formula {
        Formula::Top => PropFormula::Top,
        Formula::Bottom => PropFormula::Bottom,
        Formula::Atom(a) => {
            let tuple: Vec<usize> = a.args.iter().map(|t| resolve(t, env, n)).collect();
            let ga = GroundAtom {
                predicate: a.predicate.name().to_string(),
                tuple,
            };
            let var = *index
                .get(&ga)
                .unwrap_or_else(|| panic!("ground atom {ga} missing from the universe"));
            PropFormula::var(var)
        }
        Formula::Equals(x, y) => {
            if resolve(x, env, n) == resolve(y, env, n) {
                PropFormula::Top
            } else {
                PropFormula::Bottom
            }
        }
        Formula::Not(g) => PropFormula::not(ground(g, n, index, env, guard)?),
        Formula::And(gs) => {
            let parts: Vec<PropFormula> = gs
                .iter()
                .map(|g| ground(g, n, index, env, guard))
                .collect::<Result<_, _>>()?;
            PropFormula::and_all(parts)
        }
        Formula::Or(gs) => {
            let parts: Vec<PropFormula> = gs
                .iter()
                .map(|g| ground(g, n, index, env, guard))
                .collect::<Result<_, _>>()?;
            PropFormula::or_all(parts)
        }
        Formula::Implies(a, b) => PropFormula::implies(
            ground(a, n, index, env, guard)?,
            ground(b, n, index, env, guard)?,
        ),
        Formula::Iff(a, b) => PropFormula::iff(
            ground(a, n, index, env, guard)?,
            ground(b, n, index, env, guard)?,
        ),
        Formula::Forall(v, g) => {
            let parts: Vec<PropFormula> = (0..n)
                .map(|c| {
                    let mut ext = env.clone();
                    ext.insert(v.clone(), c);
                    ground(g, n, index, &ext, guard)
                })
                .collect::<Result<_, _>>()?;
            PropFormula::and_all(parts)
        }
        Formula::Exists(v, g) => {
            let parts: Vec<PropFormula> = (0..n)
                .map(|c| {
                    let mut ext = env.clone();
                    ext.insert(v.clone(), c);
                    ground(g, n, index, &ext, guard)
                })
                .collect::<Result<_, _>>()?;
            PropFormula::or_all(parts)
        }
    })
}

fn resolve(term: &Term, env: &HashMap<Variable, usize>, n: usize) -> usize {
    let value = match term {
        Term::Const(c) => c.index(),
        Term::Var(v) => *env
            .get(v)
            .unwrap_or_else(|| panic!("unbound variable {v} during grounding")),
    };
    assert!(value < n, "constant {value} outside domain of size {n}");
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_logic::builders::*;
    use wfomc_logic::catalog;
    use wfomc_logic::weights::weight_int;

    #[test]
    fn lineage_of_forall_exists_edge() {
        // ∀x∃y R(x,y) over n=2: (R00 ∨ R01) ∧ (R10 ∨ R11).
        let f = catalog::forall_exists_edge();
        let voc = f.vocabulary();
        let lin = Lineage::build(&f, &voc, 2);
        assert_eq!(lin.num_vars(), 4);
        match &lin.prop {
            PropFormula::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected conjunction, got {other:?}"),
        }
        assert_eq!(lin.domain_size, 2);
        assert!(lin
            .var_of(&GroundAtom {
                predicate: "R".into(),
                tuple: vec![1, 0]
            })
            .is_some());
    }

    #[test]
    fn lineage_size_is_polynomial_in_n() {
        let f = catalog::table1_sentence();
        let voc = f.vocabulary();
        let s3 = Lineage::build(&f, &voc, 3).prop.size();
        let s6 = Lineage::build(&f, &voc, 6).prop.size();
        // Quadratic growth: roughly 4x when doubling n.
        assert!(s6 > 3 * s3 && s6 < 6 * s3, "sizes {s3} vs {s6}");
    }

    #[test]
    fn equality_is_resolved_during_grounding() {
        // ∀x∀y (x = y ∨ R(x,y)) over n=2 should constrain only off-diagonal
        // atoms.
        let f = forall(["x", "y"], or(vec![eq("x", "y"), atom("R", &["x", "y"])]));
        let voc = f.vocabulary();
        let lin = Lineage::build(&f, &voc, 2);
        let vars = lin.prop.variables();
        // Diagonal atoms R(0,0), R(1,1) are unconstrained.
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn symmetric_weights_follow_predicates() {
        let f = catalog::table1_sentence();
        let voc = f.vocabulary();
        let lin = Lineage::build(&f, &voc, 2);
        let weights = Weights::from_ints([("R", 2, 1), ("S", 3, 1), ("T", 5, 7)]);
        let vw = lin.symmetric_weights(&weights);
        assert_eq!(vw.len(), lin.num_vars());
        // Find a T-atom and check its weights.
        let t_var = lin
            .var_of(&GroundAtom {
                predicate: "T".into(),
                tuple: vec![1],
            })
            .unwrap();
        assert_eq!(vw.pos(t_var), &weight_int(5));
        assert_eq!(vw.neg(t_var), &weight_int(7));
    }

    #[test]
    fn asymmetric_weights_vary_per_tuple() {
        let f = catalog::exists_unary();
        let voc = f.vocabulary();
        let lin = Lineage::build(&f, &voc, 3);
        let vw =
            lin.asymmetric_weights(|atom| (weight_int(atom.tuple[0] as i64 + 1), weight_int(1)));
        assert_eq!(vw.pos(0), &weight_int(1));
        assert_eq!(vw.pos(2), &weight_int(3));
    }

    #[test]
    #[should_panic(expected = "requires a sentence")]
    fn open_formula_is_rejected() {
        let f = atom("R", &["x"]);
        Lineage::build(&f, &f.vocabulary(), 2);
    }
}
