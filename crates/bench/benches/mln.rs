//! E8 — Examples 1.1/1.2: MLN inference via the reduction to symmetric WFOMC.
//! The lifted path (reduction + FO²) scales polynomially with the domain; the
//! direct ground semantics is the exponential reference.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfomc::mln::ground_semantics::partition_function_brute;
use wfomc::prelude::*;
use wfomc_bench::smokers_mln;

fn bench_mln(c: &mut Criterion) {
    let mut group = c.benchmark_group("mln");
    let mln = smokers_mln();
    let engine = MlnEngine::new(&mln).unwrap();
    let query = exists(["x"], atom("Smokes", &["x"]));

    for n in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::new("partition/lifted", n), &n, |b, &n| {
            b.iter(|| engine.partition_function(n).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("marginal/lifted", n), &n, |b, &n| {
            b.iter(|| engine.probability(&query, n).unwrap())
        });
    }
    for n in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::new("partition/ground-semantics", n),
            &n,
            |b, &n| b.iter(|| partition_function_brute(&mln, n)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_mln
}
criterion_main!(benches);
