//! Terms of the logic: variables and domain constants.
//!
//! The paper works over finite domains `[n] = {0, 1, …, n−1}`; constants are
//! therefore represented as natural numbers. Variables carry symbolic names
//! (`x`, `y`, `x1`, …).

use std::fmt;
use std::sync::Arc;

/// A first-order variable, identified by name.
///
/// Variables are cheap to clone (the name is reference-counted) and compare by
/// name, so `Variable::new("x") == Variable::new("x")`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(Arc<str>);

impl Variable {
    /// Creates a variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Variable(Arc::from(name.as_ref()))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// Produces a fresh variable derived from this one that does not collide
    /// with any variable in `taken`.
    pub fn fresh_avoiding<'a, I>(&self, taken: I) -> Variable
    where
        I: IntoIterator<Item = &'a Variable>,
    {
        let taken: std::collections::HashSet<&str> = taken.into_iter().map(|v| v.name()).collect();
        if !taken.contains(self.name()) {
            return self.clone();
        }
        for i in 0.. {
            let candidate = format!("{}_{}", self.name(), i);
            if !taken.contains(candidate.as_str()) {
                return Variable::new(candidate);
            }
        }
        unreachable!("unbounded loop always returns")
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Variable {
    fn from(s: &str) -> Self {
        Variable::new(s)
    }
}

/// A domain constant. The domain of size `n` is `{Constant(0), …, Constant(n-1)}`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Constant(pub usize);

impl Constant {
    /// The underlying index into the domain.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Constant {
    /// Prints the parser's own constant syntax (`#k`), so formatting a
    /// formula and parsing it back round-trips. (Earlier versions printed
    /// `c0`, which the parser read as a *variable* named `c0` — fatal for
    /// anything keyed on the canonical sentence text, like the serve
    /// registry.)
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<usize> for Constant {
    fn from(i: usize) -> Self {
        Constant(i)
    }
}

/// A term: either a variable or a domain constant.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A first-order variable.
    Var(Variable),
    /// A domain constant.
    Const(Constant),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: impl AsRef<str>) -> Term {
        Term::Var(Variable::new(name))
    }

    /// Convenience constructor for a constant term.
    pub fn constant(i: usize) -> Term {
        Term::Const(Constant(i))
    }

    /// Returns the variable if this term is one.
    pub fn as_var(&self) -> Option<&Variable> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Returns the constant if this term is one.
    pub fn as_const(&self) -> Option<Constant> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(*c),
        }
    }

    /// True if the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// True if the term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Variable> for Term {
    fn from(v: Variable) -> Self {
        Term::Var(v)
    }
}

impl From<Constant> for Term {
    fn from(c: Constant) -> Self {
        Term::Const(c)
    }
}

impl From<&str> for Term {
    fn from(s: &str) -> Self {
        Term::var(s)
    }
}

impl From<usize> for Term {
    fn from(i: usize) -> Self {
        Term::constant(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_compare_by_name() {
        assert_eq!(Variable::new("x"), Variable::new("x"));
        assert_ne!(Variable::new("x"), Variable::new("y"));
    }

    #[test]
    fn fresh_variable_avoids_collisions() {
        let x = Variable::new("x");
        let taken = [Variable::new("x"), Variable::new("x_0")];
        let fresh = x.fresh_avoiding(taken.iter());
        assert_eq!(fresh.name(), "x_1");
    }

    #[test]
    fn fresh_variable_keeps_name_when_free() {
        let x = Variable::new("x");
        let taken = [Variable::new("y")];
        assert_eq!(x.fresh_avoiding(taken.iter()), x);
    }

    #[test]
    fn term_accessors() {
        let t = Term::var("x");
        assert!(t.is_var());
        assert_eq!(t.as_var().unwrap().name(), "x");
        assert!(t.as_const().is_none());

        let c = Term::constant(3);
        assert!(c.is_const());
        assert_eq!(c.as_const().unwrap().index(), 3);
        assert!(c.as_var().is_none());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Term::var("x").to_string(), "x");
        assert_eq!(Term::constant(2).to_string(), "#2");
        assert_eq!(format!("{:?}", Variable::new("z")), "?z");
    }

    #[test]
    fn conversions() {
        let t: Term = "x".into();
        assert!(t.is_var());
        let t: Term = 7usize.into();
        assert_eq!(t.as_const(), Some(Constant(7)));
        let v: Variable = "y".into();
        let t: Term = v.clone().into();
        assert_eq!(t.as_var(), Some(&v));
    }
}
