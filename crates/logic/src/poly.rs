//! Dense univariate polynomials over the exact rationals.
//!
//! The equality-removal argument of Lemma 3.5 turns a WFOMC question into a
//! question about a *polynomial*: with `w(E) = z`, `WFOMC(Φ′, n)` is a
//! polynomial `f(z)` of degree ≤ n², and the answer is one of its
//! coefficients. The seed implementation recovered `f` by evaluating at
//! `n² + 1` points and interpolating; with the [`crate::algebra::Poly`]
//! evaluation algebra the same lifted algorithms compute `f` *symbolically*
//! in a single run, because every step of the algorithms is a ring operation.
//!
//! Coefficients are stored low-degree-first with no trailing zeros, so the
//! zero polynomial is the empty coefficient vector and `degree` is
//! `coeffs.len() − 1` for non-zero polynomials.

use std::fmt;

use num_traits::{One, Zero};

use crate::weights::{Weight, Weights};

/// A dense univariate polynomial over [`Weight`] (exact rationals),
/// low-degree-first, normalized to have no trailing zero coefficients.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Polynomial {
    coeffs: Vec<Weight>,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Polynomial {
        Polynomial { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Polynomial {
        Polynomial::constant(Weight::one())
    }

    /// The indeterminate `z` — the polynomial with coefficients `[0, 1]`.
    ///
    /// This is the weight to give the fresh equality predicate of Lemma 3.5
    /// so a single lifted evaluation computes the whole Eq-weight polynomial.
    pub fn x() -> Polynomial {
        Polynomial {
            coeffs: vec![Weight::zero(), Weight::one()],
        }
    }

    /// A constant (degree-0) polynomial.
    pub fn constant(c: Weight) -> Polynomial {
        if c.is_zero() {
            Polynomial::zero()
        } else {
            Polynomial { coeffs: vec![c] }
        }
    }

    /// Builds a polynomial from low-degree-first coefficients, trimming
    /// trailing zeros.
    pub fn from_coeffs(mut coeffs: Vec<Weight>) -> Polynomial {
        while coeffs.last().is_some_and(Zero::is_zero) {
            coeffs.pop();
        }
        Polynomial { coeffs }
    }

    /// True for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The degree, with the convention `degree(0) = 0`.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// The coefficient of `z^k` (zero beyond the stored degree).
    pub fn coeff(&self, k: usize) -> Weight {
        self.coeffs.get(k).cloned().unwrap_or_else(Weight::zero)
    }

    /// The coefficients, low degree first (empty for the zero polynomial).
    pub fn coeffs(&self) -> &[Weight] {
        &self.coeffs
    }

    /// Pointwise sum.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let (longer, shorter) = if self.coeffs.len() >= other.coeffs.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut coeffs = longer.coeffs.clone();
        for (slot, c) in coeffs.iter_mut().zip(&shorter.coeffs) {
            *slot += c;
        }
        Polynomial::from_coeffs(coeffs)
    }

    /// Additive inverse.
    pub fn neg(&self) -> Polynomial {
        Polynomial {
            coeffs: self.coeffs.iter().map(|c| -c).collect(),
        }
    }

    /// Difference `self − other`.
    pub fn sub(&self, other: &Polynomial) -> Polynomial {
        self.add(&other.neg())
    }

    /// Schoolbook product (the degrees in the WFOMC workloads stay small
    /// enough — at most `n²` — that no FFT is warranted). Constant factors —
    /// the binomials and cell weights that dominate the cell-sum engine's
    /// `Poly` runs — scale coefficientwise without the convolution loop, and
    /// the coefficient arithmetic itself rides the bignum's inline
    /// small-value representation.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        if self.is_zero() || other.is_zero() {
            return Polynomial::zero();
        }
        let scale = |p: &Polynomial, c: &Weight| {
            Polynomial::from_coeffs(p.coeffs.iter().map(|a| a * c).collect())
        };
        if self.coeffs.len() == 1 {
            return scale(other, &self.coeffs[0]);
        }
        if other.coeffs.len() == 1 {
            return scale(self, &other.coeffs[0]);
        }
        let mut coeffs = vec![Weight::zero(); self.coeffs.len() + other.coeffs.len() - 1];
        for (i, a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, b) in other.coeffs.iter().enumerate() {
                if b.is_zero() {
                    continue;
                }
                coeffs[i + j] += a * b;
            }
        }
        Polynomial::from_coeffs(coeffs)
    }

    /// Exact division: `Some(q)` with `self = q · divisor` when the division
    /// leaves no remainder, `None` otherwise (or when `divisor` is zero).
    pub fn div_exact(&self, divisor: &Polynomial) -> Option<Polynomial> {
        if divisor.is_zero() {
            return None;
        }
        if self.is_zero() {
            return Some(Polynomial::zero());
        }
        if self.coeffs.len() < divisor.coeffs.len() {
            return None;
        }
        let lead = divisor.coeffs.last().expect("non-zero divisor has a lead");
        let mut rem = self.coeffs.clone();
        let qlen = rem.len() - divisor.coeffs.len() + 1;
        let mut quot = vec![Weight::zero(); qlen];
        for k in (0..qlen).rev() {
            let q = &rem[k + divisor.coeffs.len() - 1] / lead;
            if !q.is_zero() {
                for (j, d) in divisor.coeffs.iter().enumerate() {
                    rem[k + j] -= &q * d;
                }
            }
            quot[k] = q;
        }
        if rem.iter().any(|c| !c.is_zero()) {
            return None;
        }
        Some(Polynomial::from_coeffs(quot))
    }

    /// Evaluates the polynomial at a rational point (Horner's scheme).
    pub fn eval(&self, at: &Weight) -> Weight {
        let mut acc = Weight::zero();
        for c in self.coeffs.iter().rev() {
            acc = acc * at + c;
        }
        acc
    }
}

impl From<Weight> for Polynomial {
    fn from(c: Weight) -> Polynomial {
        Polynomial::constant(c)
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (k, c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match k {
                0 => write!(f, "{c}")?,
                1 => write!(f, "{c}·z")?,
                _ => write!(f, "{c}·z^{k}")?,
            }
        }
        Ok(())
    }
}

/// A weight function whose entries may be polynomials: what
/// [`crate::algebra::AlgebraWeights`] specializes to under the
/// [`crate::algebra::Poly`] algebra. Provided as a convenience constructor
/// for the common "lift the rationals, make one predicate the indeterminate"
/// pattern of equality removal and weight sweeps.
pub fn lift_with_indeterminate(
    weights: &Weights,
    indeterminate_predicate: &str,
) -> crate::algebra::AlgebraWeights<crate::algebra::Poly> {
    let algebra = crate::algebra::Poly;
    let mut lifted = crate::algebra::AlgebraWeights::lift(&algebra, weights);
    lifted.set(indeterminate_predicate, Polynomial::x(), Polynomial::one());
    lifted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{weight_int, weight_ratio};

    fn poly(cs: &[i64]) -> Polynomial {
        Polynomial::from_coeffs(cs.iter().map(|&c| weight_int(c)).collect())
    }

    #[test]
    fn normalization_trims_trailing_zeros() {
        let p = poly(&[1, 2, 0, 0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeff(1), weight_int(2));
        assert_eq!(p.coeff(5), weight_int(0));
        assert!(Polynomial::from_coeffs(vec![Weight::zero()]).is_zero());
    }

    #[test]
    fn ring_operations() {
        let p = poly(&[1, 2]); // 1 + 2z
        let q = poly(&[3, 0, 1]); // 3 + z²
        assert_eq!(p.add(&q), poly(&[4, 2, 1]));
        assert_eq!(p.sub(&p), Polynomial::zero());
        // (1 + 2z)(3 + z²) = 3 + 6z + z² + 2z³.
        assert_eq!(p.mul(&q), poly(&[3, 6, 1, 2]));
        assert_eq!(p.mul(&Polynomial::zero()), Polynomial::zero());
        // Constant factors take the coefficientwise fast path (both sides).
        assert_eq!(q.mul(&poly(&[-2])), poly(&[-6, 0, -2]));
        assert_eq!(poly(&[-2]).mul(&q), poly(&[-6, 0, -2]));
        assert_eq!(poly(&[0]).mul(&q), Polynomial::zero());
    }

    #[test]
    fn evaluation_matches_expansion() {
        let p = poly(&[2, -3, 0, 1]); // 2 − 3z + z³
        assert_eq!(p.eval(&weight_int(0)), weight_int(2));
        assert_eq!(p.eval(&weight_int(2)), weight_int(4));
        assert_eq!(
            p.eval(&weight_ratio(1, 2)),
            weight_ratio(2 * 8 - 3 * 4 + 1, 8)
        );
    }

    #[test]
    fn exact_division() {
        let p = poly(&[3, 6, 1, 2]);
        let q = poly(&[1, 2]);
        assert_eq!(p.div_exact(&q).unwrap(), poly(&[3, 0, 1]));
        // Non-divisible: remainder left over.
        assert!(poly(&[1, 1]).div_exact(&poly(&[0, 1])).is_none());
        // Division by zero.
        assert!(p.div_exact(&Polynomial::zero()).is_none());
        // Zero divided by anything non-zero is zero.
        assert_eq!(
            Polynomial::zero().div_exact(&q).unwrap(),
            Polynomial::zero()
        );
        // Constant divisor scales every coefficient.
        assert_eq!(poly(&[2, 4]).div_exact(&poly(&[2])).unwrap(), poly(&[1, 2]));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(poly(&[0, 0, 5]).to_string(), "5·z^2");
        assert_eq!(poly(&[1, 2]).to_string(), "1 + 2·z");
        assert_eq!(Polynomial::zero().to_string(), "0");
    }
}
