//! The HTTP/1.1 front end: a `std::net` listener, a fixed worker pool,
//! and hand-rolled request parsing — no framework, no async runtime.
//!
//! One connection carries one request (`Connection: close`), which keeps
//! the parser trivial and matches the service's unit of work: a count
//! request is CPU-bound for milliseconds-to-seconds, so connection reuse
//! would buy nothing. The accept loop hands accepted sockets to
//! `workers` threads over an `mpsc` channel; graceful shutdown flips a
//! flag, cancels the shared [`CancelToken`] (so in-flight evaluations
//! return [`SolveError::Cancelled`](wfomc_core::SolveError::Cancelled) instead
//! of being abandoned), wakes the
//! blocking `accept` with a self-connection, and joins every worker after
//! the queue drains.
//!
//! # Endpoints (`wfomc-serve/v1`)
//!
//! | Method | Path                   | Meaning                                   |
//! |--------|------------------------|-------------------------------------------|
//! | POST   | `/v1/plans`            | parse + plan a sentence, return its id    |
//! | GET    | `/v1/plans`            | list registered plans                     |
//! | POST   | `/v1/plans/{id}/count` | evaluate one `n` (optional limits)        |
//! | POST   | `/v1/plans/{id}/batch` | evaluate many points under one budget     |
//! | GET    | `/v1/plans/{id}/stats` | plan cache stats + metrics snapshot       |
//! | GET    | `/v1/metrics`          | global `wfomc-obs/v1` snapshot            |
//! | GET    | `/v1/healthz`          | liveness                                  |
//! | POST   | `/v1/shutdown`         | graceful drain + exit                     |

use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use wfomc_guard::CancelToken;
use wfomc_logic::weights::Weights;
use wfomc_obs::json::{JsonArray, JsonObject};
use wfomc_obs::metrics as obs;

use wfomc_core::Plan;

use crate::json::{parse, Value};
use crate::registry::{PlanRegistry, RegisteredPlan};
use crate::snap::SnapshotStore;
use crate::store::RegistryLog;
use crate::wire::{limits_from_json, n_from_json, weights_from_json, ApiError, SCHEMA};

/// Request headers larger than this are rejected.
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Request bodies larger than this are rejected with 413.
const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Per-socket read/write timeout, so a stalled client cannot pin a worker.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

/// How to run the service.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Plan-registry LRU capacity.
    pub capacity: usize,
    /// JSONL registry log; `None` disables persistence.
    pub registry_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            capacity: 256,
            registry_path: Some(PathBuf::from(".wfomc/registry.jsonl")),
        }
    }
}

/// Always-on request accounting (plain atomics; independent of the `obs`
/// feature so `/v1/metrics` is never empty).
#[derive(Debug, Default)]
pub struct ServeStats {
    requests: AtomicU64,
    errors: AtomicU64,
    latency_ns: AtomicU64,
}

impl ServeStats {
    /// Requests handled so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests that produced an error body.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Total handler latency in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.latency_ns.load(Ordering::Relaxed)
    }
}

struct ServerCtx {
    registry: PlanRegistry,
    log: Option<Mutex<RegistryLog>>,
    /// Plan-state snapshots (`wfomc-snap/v1`), enabled alongside the log:
    /// a `snapshots/` directory next to the registry JSONL.
    snap: Option<SnapshotStore>,
    stats: ServeStats,
    shutdown: AtomicBool,
    cancel: CancelToken,
    addr: SocketAddr,
}

impl ServerCtx {
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // already draining
        }
        self.cancel.cancel();
        // Wake the blocking accept so the loop observes the flag. The
        // connection is accepted, sees the flag, and is dropped.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A handle for poking a running [`Server`] from another thread: resolved
/// address, live stats, and graceful shutdown.
#[derive(Clone)]
pub struct ServerHandle {
    ctx: Arc<ServerCtx>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// Begins a graceful shutdown: stop accepting, cancel in-flight
    /// evaluations, drain queued connections, join workers.
    pub fn shutdown(&self) {
        self.ctx.begin_shutdown();
    }

    /// Always-on request accounting.
    pub fn stats(&self) -> &ServeStats {
        &self.ctx.stats
    }

    /// How many plans are currently registered.
    pub fn plans(&self) -> usize {
        self.ctx.registry.len()
    }
}

/// A bound (but not yet running) query service.
pub struct Server {
    listener: TcpListener,
    workers: usize,
    ctx: Arc<ServerCtx>,
}

impl Server {
    /// Binds the listener and replays the registry log (if configured).
    /// Each logged record first tries its `wfomc-snap/v1` snapshot — one
    /// read plus a validated decode — and only replans when the snapshot
    /// is missing, version-skewed, corrupt, or does not match the record,
    /// so the daemon serves the same plan ids (and warm caches) it did
    /// before a restart. Records that no longer plan are skipped with a
    /// warning; a corrupt log tail is truncated (see [`RegistryLog::replay`]).
    pub fn bind(config: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let registry = PlanRegistry::new(config.capacity);
        let (log, snap) = match &config.registry_path {
            Some(path) => {
                let snap = SnapshotStore::for_registry(path);
                let log = RegistryLog::new(path);
                let outcome = log.replay()?;
                for record in outcome.records {
                    if replay_from_snapshot(&registry, &snap, &record.sentence, &record.weights) {
                        continue;
                    }
                    match registry.register(&record.sentence, record.weights) {
                        Ok((registered, created)) => {
                            if created {
                                write_snapshot(&snap, &registered);
                            }
                        }
                        Err(e) => eprintln!(
                            "wfomc-serve: skipping logged sentence `{}`: {}",
                            record.sentence, e.message
                        ),
                    }
                }
                (Some(Mutex::new(log)), Some(snap))
            }
            None => (None, None),
        };
        let ctx = Arc::new(ServerCtx {
            registry,
            log,
            snap,
            stats: ServeStats::default(),
            shutdown: AtomicBool::new(false),
            cancel: CancelToken::new(),
            addr,
        });
        Ok(Server {
            listener,
            workers: config.workers.max(1),
            ctx,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// A cloneable handle for shutdown and stats.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            ctx: Arc::clone(&self.ctx),
        }
    }

    /// Runs the accept loop until a graceful shutdown, then drains queued
    /// connections and joins every worker. Returns `Ok(())` on a clean
    /// drain.
    pub fn run(self) -> io::Result<()> {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..self.workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let ctx = Arc::clone(&self.ctx);
                std::thread::Builder::new()
                    .name(format!("wfomc-serve-{i}"))
                    .spawn(move || loop {
                        let next = rx.lock().expect("worker queue poisoned").recv();
                        match next {
                            Ok(stream) => handle_connection(&ctx, stream),
                            Err(_) => break, // sender dropped: drained
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        for stream in self.listener.incoming() {
            if self.ctx.shutdown.load(Ordering::SeqCst) {
                break; // the waking connection (or any racer) is dropped
            }
            match stream {
                Ok(stream) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) => eprintln!("wfomc-serve: accept failed: {e}"),
            }
        }
        drop(tx); // workers finish the queue, then exit
        for worker in workers {
            let _ = worker.join();
        }
        self.shutdown_persistence();
        Ok(())
    }

    /// Graceful-shutdown persistence sweep, run after the last worker has
    /// drained: rewrite snapshots for dirty plans (whose caches or compiled
    /// circuits grew since their last write) and compact the JSONL log down
    /// to the entries still live in the registry.
    fn shutdown_persistence(&self) {
        let plans = self.ctx.registry.plans();
        if let Some(snap) = &self.ctx.snap {
            for registered in &plans {
                if registered.snapshot_dirty() {
                    write_snapshot(snap, registered);
                }
            }
        }
        if let Some(log) = &self.ctx.log {
            let mut log = log.lock().expect("registry log poisoned");
            let live: Vec<(String, Weights)> = plans
                .iter()
                .map(|r| (r.sentence.clone(), r.weights.clone()))
                .collect();
            if let Err(e) = log.compact(&live) {
                eprintln!(
                    "wfomc-serve: failed to compact {}: {e}",
                    log.path().display()
                );
            }
        }
    }
}

/// Boot-replay fast path: registers a logged record straight from its
/// snapshot when one exists, validates, decodes, and matches the record's
/// canonical sentence and weights exactly. Returns `false` (replan) on any
/// shortfall; a snapshot can never change which plans are served, only how
/// fast they come back.
fn replay_from_snapshot(
    registry: &PlanRegistry,
    snap: &SnapshotStore,
    sentence: &str,
    weights: &Weights,
) -> bool {
    let canonical = match PlanRegistry::canonicalize(sentence) {
        Ok(canonical) => canonical,
        Err(_) => return false, // register() will report the parse error
    };
    let key = PlanRegistry::hash_sentence(&canonical);
    let id = PlanRegistry::format_id(key);
    let payload = match snap.load(&id, key) {
        Some(payload) => payload,
        None => return false,
    };
    let plan = match Plan::snap_decode(&payload) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("wfomc-serve: snapshot {id} failed to decode ({e}); replanning");
            snap.note_invalid();
            return false;
        }
    };
    if plan.sentence().to_string() != canonical || plan.default_weights() != weights {
        // A valid snapshot for a different registration (e.g. the logged
        // weights changed since it was written): replan and overwrite.
        snap.note_invalid();
        return false;
    }
    registry.register_preplanned(canonical, weights.clone(), plan);
    true
}

/// Encodes and writes a plan's snapshot — always outside any shard lock —
/// marking the entry clean at the stamp captured *before* encoding (so
/// state that races in mid-encode leaves the plan dirty for the shutdown
/// sweep rather than silently unsnapshotted).
fn write_snapshot(snap: &SnapshotStore, registered: &RegisteredPlan) {
    let stamp = registered.plan.snap_stamp();
    let payload = registered.plan.snap_encode();
    match snap.write(&registered.id, registered.key, &payload) {
        Ok(_) => registered.mark_snapshotted(stamp),
        Err(e) => eprintln!(
            "wfomc-serve: snapshot write failed for {}: {e}",
            registered.id
        ),
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

fn handle_connection(ctx: &ServerCtx, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let started = Instant::now();
    let (status, body) = match read_request(&mut stream) {
        Ok(request) => match dispatch(ctx, &request) {
            Ok(ok) => ok,
            Err(e) => (e.status, e.to_body()),
        },
        Err(e) => (e.status, e.to_body()),
    };
    ctx.stats.requests.fetch_add(1, Ordering::Relaxed);
    obs::SERVE_REQUESTS.inc();
    if status >= 400 {
        ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
        obs::SERVE_ERRORS.inc();
    }
    let elapsed = started.elapsed().as_nanos() as u64;
    ctx.stats.latency_ns.fetch_add(elapsed, Ordering::Relaxed);
    obs::SERVE_LATENCY_NS.add(elapsed);
    if let Err(e) = write_response(&mut stream, status, &body) {
        eprintln!("wfomc-serve: write failed: {e}");
    }
}

fn read_request(stream: &mut TcpStream) -> Result<Request, ApiError> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(ApiError::bad_request("request headers too large"));
        }
        let read = stream
            .read(&mut chunk)
            .map_err(|e| ApiError::bad_request(format!("read failed: {e}")))?;
        if read == 0 {
            return Err(ApiError::bad_request("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..read]);
    };

    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| ApiError::bad_request("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ApiError::bad_request("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ApiError::bad_request("request line has no path"))?
        .to_string();

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ApiError::bad_request("bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ApiError::payload_too_large(MAX_BODY_BYTES));
    }

    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let read = stream
            .read(&mut chunk)
            .map_err(|e| ApiError::bad_request(format!("read failed: {e}")))?;
        if read == 0 {
            return Err(ApiError::bad_request("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..read]);
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        status_text(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

// ---------------------------------------------------------------------------
// Routing and handlers
// ---------------------------------------------------------------------------

fn dispatch(ctx: &ServerCtx, request: &Request) -> Result<(u16, String), ApiError> {
    let segments: Vec<&str> = request
        .path
        .split('?')
        .next()
        .unwrap_or("")
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    let method = request.method.as_str();

    // While draining, only the (idempotent) shutdown endpoint answers.
    if ctx.shutdown.load(Ordering::SeqCst) && segments != ["v1", "shutdown"] {
        return Err(ApiError::shutting_down());
    }

    match segments.as_slice() {
        ["v1", "plans"] => match method {
            "POST" => handle_register(ctx, &request.body),
            "GET" => handle_list(ctx),
            _ => Err(ApiError::method_not_allowed(method, &request.path)),
        },
        ["v1", "plans", id, "count"] if method == "POST" => handle_count(ctx, id, &request.body),
        ["v1", "plans", id, "batch"] if method == "POST" => handle_batch(ctx, id, &request.body),
        ["v1", "plans", id, "stats"] if method == "GET" => handle_stats(ctx, id),
        ["v1", "plans", _, "count" | "batch" | "stats"] => {
            Err(ApiError::method_not_allowed(method, &request.path))
        }
        ["v1", "metrics"] if method == "GET" => Ok((200, metrics_body(ctx))),
        ["v1", "healthz"] if method == "GET" => {
            let mut obj = JsonObject::new();
            obj.field_str("schema", SCHEMA);
            obj.field_str("status", "ok");
            obj.field_u64("plans", ctx.registry.len() as u64);
            Ok((200, obj.finish()))
        }
        ["v1", "shutdown"] if method == "POST" => {
            ctx.begin_shutdown();
            let mut obj = JsonObject::new();
            obj.field_str("schema", SCHEMA);
            obj.field_str("status", "shutting down");
            Ok((200, obj.finish()))
        }
        ["v1", "metrics" | "healthz" | "shutdown"] => {
            Err(ApiError::method_not_allowed(method, &request.path))
        }
        _ => Err(ApiError::not_found(&request.path)),
    }
}

fn parse_body(body: &[u8]) -> Result<Value, ApiError> {
    if body.is_empty() {
        // Treat a missing body as `{}` so GET-like POSTs stay ergonomic.
        return Ok(Value::Obj(Vec::new()));
    }
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    parse(text).map_err(|e| ApiError::bad_request(format!("request body: {e}")))
}

/// Per-request weights: the request's `weights` member, else the plan's
/// registered defaults.
fn request_weights(body: &Value, default: &Weights) -> Result<Weights, ApiError> {
    match body.get("weights") {
        Some(w) => weights_from_json(w),
        None => Ok(default.clone()),
    }
}

fn handle_register(ctx: &ServerCtx, body: &[u8]) -> Result<(u16, String), ApiError> {
    let body = parse_body(body)?;
    let sentence = body
        .get("sentence")
        .and_then(Value::as_str)
        .ok_or_else(|| ApiError::bad_request("`sentence` (string) is required"))?;
    let weights = match body.get("weights") {
        Some(w) => weights_from_json(w)?,
        None => Weights::ones(),
    };
    let (registered, created) = ctx.registry.register(sentence, weights)?;
    if created {
        if let Some(log) = &ctx.log {
            let mut log = log.lock().expect("registry log poisoned");
            if let Err(e) = log.append(&registered.sentence, &registered.weights) {
                eprintln!(
                    "wfomc-serve: failed to append to {}: {e}",
                    log.path().display()
                );
            }
        }
        // Snapshot the freshly-planned state; no shard lock is held here.
        if let Some(snap) = &ctx.snap {
            write_snapshot(snap, &registered);
        }
    }
    let report = registered.plan.explain();
    let mut plan_obj = JsonObject::new();
    plan_obj.field_str("method", &report.method.to_string());
    let mut details = JsonArray::new();
    for d in &report.details {
        details.push_str(d);
    }
    plan_obj.field_raw("details", &details.finish());

    let mut obj = JsonObject::new();
    obj.field_str("schema", SCHEMA);
    obj.field_str("id", &registered.id);
    obj.field_bool("created", created);
    obj.field_str("sentence", &registered.sentence);
    obj.field_raw("plan", &plan_obj.finish());
    Ok((if created { 201 } else { 200 }, obj.finish()))
}

fn handle_list(ctx: &ServerCtx) -> Result<(u16, String), ApiError> {
    let stats = ctx.registry.stats();
    let mut plans = JsonArray::new();
    for (id, sentence) in ctx.registry.entries() {
        let mut entry = JsonObject::new();
        entry.field_str("id", &id);
        entry.field_str("sentence", &sentence);
        plans.push_raw(&entry.finish());
    }
    let mut registry = JsonObject::new();
    registry.field_u64("capacity", stats.capacity as u64);
    registry.field_u64("evictions", stats.evictions);
    registry.field_u64("hits", stats.hits);
    registry.field_u64("len", stats.len as u64);
    registry.field_u64("misses", stats.misses);

    let mut obj = JsonObject::new();
    obj.field_str("schema", SCHEMA);
    obj.field_raw("plans", &plans.finish());
    obj.field_raw("registry", &registry.finish());
    Ok((200, obj.finish()))
}

fn handle_count(ctx: &ServerCtx, id: &str, body: &[u8]) -> Result<(u16, String), ApiError> {
    let registered = ctx
        .registry
        .get(id)
        .ok_or_else(|| ApiError::unknown_plan(id))?;
    let body = parse_body(body)?;
    let n = n_from_json(&body)?;
    let weights = request_weights(&body, &registered.weights)?;
    let limits = limits_from_json(&body)?;
    // The server's cancel token always rides along so a graceful shutdown
    // can drain in-flight evaluations instead of abandoning them.
    let report = registered
        .plan
        .count_with_limits(n, &weights, &limits, Some(ctx.cancel.clone()))
        .map_err(|e| ApiError::from_solve(&e))?;
    let mut obj = JsonObject::new();
    obj.field_str("schema", SCHEMA);
    obj.field_str("id", &registered.id);
    obj.field_u64("n", n as u64);
    obj.field_str("value", &report.value.to_string());
    obj.field_raw("report", &report.to_json());
    Ok((200, obj.finish()))
}

fn handle_batch(ctx: &ServerCtx, id: &str, body: &[u8]) -> Result<(u16, String), ApiError> {
    let registered = ctx
        .registry
        .get(id)
        .ok_or_else(|| ApiError::unknown_plan(id))?;
    let body = parse_body(body)?;
    let points_json = body
        .get("points")
        .and_then(Value::as_arr)
        .ok_or_else(|| ApiError::bad_request("`points` (array of {n, weights?}) is required"))?;
    if points_json.is_empty() {
        return Err(ApiError::bad_request("`points` must not be empty"));
    }
    let mut points: Vec<(usize, Weights)> = Vec::with_capacity(points_json.len());
    for (i, point) in points_json.iter().enumerate() {
        let n = n_from_json(point)
            .map_err(|e| ApiError::bad_request(format!("points[{i}]: {}", e.message)))?;
        let weights = request_weights(point, &registered.weights)
            .map_err(|e| ApiError::bad_request(format!("points[{i}]: {}", e.message)))?;
        points.push((n, weights));
    }
    // One shared limits pool for the whole batch: a deadline or work cap in
    // the body bounds the batch as a unit, exactly like the library API.
    let limits = limits_from_json(&body)?;
    let mut arr = JsonArray::new();
    match body.get("algebra").and_then(Value::as_str) {
        None | Some("exact") => {
            let results =
                registered
                    .plan
                    .count_batch_with_limits(&points, &limits, Some(ctx.cancel.clone()));
            for ((n, _), result) in points.iter().zip(&results) {
                let mut entry = JsonObject::new();
                entry.field_u64("n", *n as u64);
                match result {
                    Ok(report) => {
                        entry.field_str("value", &report.value.to_string());
                        entry.field_raw("report", &report.to_json());
                    }
                    Err(e) => {
                        entry.field_raw("error", &ApiError::from_solve(e).to_error_object());
                    }
                }
                arr.push_raw(&entry.finish());
            }
        }
        // Opt-in lane mode: same-`n` weight sweeps run one DFS per eight
        // points through the `LogF64xN` algebra, returning sign/ln pairs
        // instead of exact rationals.
        Some("log") => {
            let results = registered.plan.count_batch_log_with_limits(
                &points,
                &limits,
                Some(ctx.cancel.clone()),
            );
            for ((n, _), result) in points.iter().zip(&results) {
                let mut entry = JsonObject::new();
                entry.field_u64("n", *n as u64);
                match result {
                    Ok(value) => {
                        entry.field_raw("sign", &i64::from(value.signum()).to_string());
                        if value.signum() == 0 {
                            // ln(|0|) is -inf, which JSON cannot carry.
                            entry.field_null("ln");
                        } else {
                            entry.field_raw("ln", &format!("{:?}", value.ln_abs()));
                        }
                    }
                    Err(e) => {
                        entry.field_raw("error", &ApiError::from_solve(e).to_error_object());
                    }
                }
                arr.push_raw(&entry.finish());
            }
        }
        Some(other) => {
            return Err(ApiError::bad_request(format!(
                "`algebra` must be \"exact\" or \"log\", got \"{other}\""
            )));
        }
    }
    let mut obj = JsonObject::new();
    obj.field_str("schema", SCHEMA);
    obj.field_str("id", &registered.id);
    obj.field_raw("results", &arr.finish());
    Ok((200, obj.finish()))
}

fn handle_stats(ctx: &ServerCtx, id: &str) -> Result<(u16, String), ApiError> {
    let registered = ctx
        .registry
        .get(id)
        .ok_or_else(|| ApiError::unknown_plan(id))?;
    let mut obj = JsonObject::new();
    obj.field_str("schema", SCHEMA);
    obj.field_str("id", &registered.id);
    obj.field_str("sentence", &registered.sentence);
    obj.field_str("method", &registered.plan.method().to_string());
    obj.field_bool("snapshotted", registered.snapshotted());
    obj.field_raw("cache", &registered.plan.cache_stats().to_json());
    obj.field_raw("metrics", &registered.plan.metrics().to_json());
    Ok((200, obj.finish()))
}

fn metrics_body(ctx: &ServerCtx) -> String {
    // The obs snapshot is schema-first (`wfomc-obs/v1`); overlay the
    // always-on serve counters so the endpoint is informative even when
    // the crate is built without the `obs` feature.
    let mut snap = wfomc_obs::snapshot();
    snap.set_counter("serve.requests", ctx.stats.requests());
    snap.set_counter("serve.errors", ctx.stats.errors());
    snap.set_counter("serve.latency_ns", ctx.stats.latency_ns());
    let registry = ctx.registry.stats();
    snap.set_gauge("serve.registry.len", registry.len as u64);
    snap.set_counter("serve.registry.evictions", registry.evictions);
    if let Some(store) = &ctx.snap {
        let stats = store.stats();
        snap.set_counter("snap.hits", stats.hits);
        snap.set_counter("snap.misses", stats.misses);
        snap.set_counter("snap.invalid", stats.invalid);
        snap.set_counter("snap.writes", stats.writes);
    }
    snap.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_header_end(b"partial\r\n"), None);
    }

    #[test]
    fn status_texts_cover_wire_codes() {
        for status in [200, 201, 400, 404, 405, 413, 422, 503] {
            assert_ne!(status_text(status), "Internal Server Error");
        }
        assert_eq!(status_text(500), "Internal Server Error");
    }
}
