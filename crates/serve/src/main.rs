//! The `wfomc-serve` binary: run the daemon, or talk to one.
//!
//! ```text
//! wfomc-serve serve [--addr 127.0.0.1:7171] [--registry PATH | --no-registry]
//!                   [--workers N] [--capacity N]
//! wfomc-serve register [--addr A] [--weights JSON] <sentence>
//! wfomc-serve query    [--addr A] <id> --n N [--timeout-ms MS] [--work-cap W]
//!                      [--mem-cap M] [--weights JSON]
//! wfomc-serve stats    [--addr A] <id>
//! wfomc-serve list     [--addr A]
//! wfomc-serve metrics  [--addr A]
//! wfomc-serve shutdown [--addr A]
//! wfomc-serve snapshots [--registry PATH]
//! ```
//!
//! Client subcommands print the server's JSON body to stdout and exit
//! non-zero when the response status is an error — so shell scripts (and
//! the CI smoke test) can gate on the exit code alone.

use std::net::{SocketAddr, ToSocketAddrs as _};
use std::path::PathBuf;
use std::process::ExitCode;

use wfomc_obs::json::JsonObject;
use wfomc_serve::client::{self, Reply};
use wfomc_serve::http::{Server, ServerConfig};

const DEFAULT_ADDR: &str = "127.0.0.1:7171";

fn usage() -> &'static str {
    "usage: wfomc-serve <serve|register|query|stats|list|metrics|shutdown|snapshots> [options]\n\
     \n\
     serve     --addr A --registry PATH | --no-registry --workers N --capacity N\n\
     register  --addr A [--weights JSON] <sentence>\n\
     query     --addr A <id> --n N [--timeout-ms MS] [--work-cap W] [--mem-cap M]\n\
     \x20         [--weights JSON]\n\
     stats     --addr A <id>\n\
     list      --addr A\n\
     metrics   --addr A\n\
     shutdown  --addr A\n\
     snapshots --registry PATH   (offline: lists the on-disk snapshot store)\n"
}

/// Flag-style argument cursor: `--name value` pairs plus positionals.
struct Args {
    flags: Vec<(String, String)>,
    positionals: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut positionals = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let arg = &raw[i];
            if arg == "--no-registry" {
                flags.push((arg.clone(), String::new()));
                i += 1;
            } else if let Some(name) = arg.strip_prefix("--") {
                let value = raw
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                flags.push((format!("--{name}"), value.clone()));
                i += 2;
            } else {
                positionals.push(arg.clone());
                i += 1;
            }
        }
        Ok(Args { flags, positionals })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            Some(v) => v.parse().map_err(|_| format!("{name} must be a number")),
            None => Ok(default),
        }
    }

    fn addr(&self) -> Result<SocketAddr, String> {
        let text = self.get("--addr").unwrap_or(DEFAULT_ADDR);
        text.to_socket_addrs()
            .map_err(|e| format!("cannot resolve `{text}`: {e}"))?
            .next()
            .ok_or_else(|| format!("`{text}` resolves to no address"))
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = raw.split_first() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(rest) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("wfomc-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "serve" => cmd_serve(&args),
        "register" => cmd_register(&args),
        "query" => cmd_query(&args),
        "stats" => cmd_stats(&args),
        "list" => client_get(&args, "/v1/plans"),
        "metrics" => client_get(&args, "/v1/metrics"),
        "shutdown" => client_post(&args, "/v1/shutdown", "{}"),
        "snapshots" => cmd_snapshots(&args),
        "--help" | "-h" | "help" => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand `{other}`\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("wfomc-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let registry_path = if args.has("--no-registry") {
        None
    } else {
        Some(PathBuf::from(
            args.get("--registry").unwrap_or(".wfomc/registry.jsonl"),
        ))
    };
    let config = ServerConfig {
        addr: args.get("--addr").unwrap_or(DEFAULT_ADDR).to_string(),
        workers: args.get_usize("--workers", 4)?,
        capacity: args.get_usize("--capacity", 256)?,
        registry_path,
    };
    let server = Server::bind(&config).map_err(|e| format!("bind {}: {e}", config.addr))?;
    // The CI smoke script (and anything else supervising the daemon) waits
    // for this line before sending requests.
    println!(
        "wfomc-serve listening on {} ({} workers, {} plans registered)",
        server.local_addr(),
        config.workers.max(1),
        server.handle().plans()
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    server.run().map_err(|e| format!("server failed: {e}"))
}

/// Validates user-supplied JSON before splicing it into a request body.
fn raw_json(name: &str, text: &str) -> Result<String, String> {
    wfomc_serve::json::parse(text).map_err(|e| format!("{name}: {e}"))?;
    Ok(text.to_string())
}

fn cmd_register(args: &Args) -> Result<(), String> {
    let [sentence] = args.positionals.as_slice() else {
        return Err("register takes exactly one <sentence>".into());
    };
    let mut body = JsonObject::new();
    body.field_str("sentence", sentence);
    if let Some(weights) = args.get("--weights") {
        body.field_raw("weights", &raw_json("--weights", weights)?);
    }
    finish(client::post(args.addr()?, "/v1/plans", &body.finish()))
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let [id] = args.positionals.as_slice() else {
        return Err("query takes exactly one <id>".into());
    };
    let n: u64 = args
        .get("--n")
        .ok_or("query needs --n")?
        .parse()
        .map_err(|_| "--n must be a non-negative integer")?;
    let mut body = JsonObject::new();
    body.field_u64("n", n);
    for flag in ["--timeout-ms", "--work-cap", "--mem-cap"] {
        if let Some(value) = args.get(flag) {
            let value: u64 = value
                .parse()
                .map_err(|_| format!("{flag} must be a number"))?;
            body.field_u64(&flag[2..].replace('-', "_"), value);
        }
    }
    if let Some(weights) = args.get("--weights") {
        body.field_raw("weights", &raw_json("--weights", weights)?);
    }
    let path = format!("/v1/plans/{id}/count");
    finish(client::post(args.addr()?, &path, &body.finish()))
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let [id] = args.positionals.as_slice() else {
        return Err("stats takes exactly one <id>".into());
    };
    finish(client::get(args.addr()?, &format!("/v1/plans/{id}/stats")))
}

/// Offline snapshot-store inspection: no daemon involved, just the
/// directory next to the registry log. Prints one JSON object per line
/// (id, size, validation status) so scripts can grep for `invalid`.
fn cmd_snapshots(args: &Args) -> Result<(), String> {
    let registry = PathBuf::from(args.get("--registry").unwrap_or(".wfomc/registry.jsonl"));
    let store = wfomc_serve::SnapshotStore::for_registry(&registry);
    let rows = store
        .inspect()
        .map_err(|e| format!("cannot read {}: {e}", store.dir().display()))?;
    for row in &rows {
        let mut obj = JsonObject::new();
        obj.field_str("id", &row.id);
        obj.field_u64("bytes", row.bytes);
        obj.field_str("status", &row.status);
        println!("{}", obj.finish());
    }
    eprintln!(
        "{} snapshot(s) in {} ({} valid)",
        rows.len(),
        store.dir().display(),
        rows.iter().filter(|r| r.status == "ok").count()
    );
    Ok(())
}

fn client_get(args: &Args, path: &str) -> Result<(), String> {
    finish(client::get(args.addr()?, path))
}

fn client_post(args: &Args, path: &str, body: &str) -> Result<(), String> {
    finish(client::post(args.addr()?, path, body))
}

fn finish(reply: std::io::Result<Reply>) -> Result<(), String> {
    let reply = reply.map_err(|e| format!("request failed: {e}"))?;
    println!("{}", reply.body);
    if reply.status >= 400 {
        Err(format!("server answered {}", reply.status))
    } else {
        Ok(())
    }
}
