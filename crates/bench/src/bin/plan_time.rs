//! Wall-clock snapshot tool for the plan-then-execute API. For every
//! repeated-query workload it times `k` one-shot `Solver::wfomc` calls
//! against one `Solver::plan` plus `k` `Plan::count` calls (plan creation
//! included), and prints one JSON object per workload so the numbers can be
//! recorded in `BENCH_plan.json`. Run with
//! `cargo run --release -p wfomc-bench --bin plan_time [-- quick]`.

use std::env;
use std::time::Instant;

use wfomc::prelude::*;
use wfomc_bench::plan_reuse_workloads;

fn main() {
    let quick = env::args().nth(1).as_deref() == Some("quick");
    let k = if quick { 4 } else { 16 };
    for (name, solver, sentence, points) in plan_reuse_workloads(k) {
        let voc = sentence.vocabulary();

        let start = Instant::now();
        let one_shot: Vec<Weight> = points
            .iter()
            .map(|(n, w)| solver.wfomc(&sentence, &voc, *n, w).unwrap().value)
            .collect();
        let one_shot_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let plan = solver.plan(&Problem::new(sentence.clone())).unwrap();
        let planned: Vec<Weight> = points
            .iter()
            .map(|(n, w)| plan.count(*n, w).unwrap().value)
            .collect();
        let plan_ms = start.elapsed().as_secs_f64() * 1e3;

        assert_eq!(one_shot, planned, "plan and one-shot disagree on {name}");
        println!(
            "{{\"workload\": \"{name}\", \"k\": {k}, \"method\": \"{}\", \
             \"one_shot_ms\": {one_shot_ms:.2}, \"plan_ms\": {plan_ms:.2}, \
             \"speedup\": {:.2}}}",
            plan.method(),
            one_shot_ms / plan_ms
        );
    }
}
