//! The generic evaluation algebra of the WFOMC pipeline.
//!
//! Every algorithm in this workspace — the FO² cell-decomposition sum, the
//! QS4 dynamic program, d-DNNF circuit evaluation, grounded weighted model
//! counting — only ever *adds* and *multiplies* weights (plus the occasional
//! additive inverse from Lemma 3.3's (1, −1) Skolem pair). They are
//! algorithms over an arbitrary **commutative ring**, and the [`Algebra`]
//! trait makes that explicit: plan-time analysis (normal forms, cells,
//! signature multisets, lineage, circuit structure) is weight-free, and the
//! evaluation half of every pipeline is generic over the ring the weights
//! live in.
//!
//! Three instances ship with the workspace:
//!
//! * [`Exact`] — [`Weight`] (arbitrary-precision rationals). The default;
//!   every pre-existing API evaluates in this algebra and is bit-for-bit
//!   unchanged.
//! * [`LogF64`] — sign-tracked log-space floats ([`LogWeight`]). Constant
//!   word size regardless of the magnitudes involved, which turns the exact
//!   pipelines into serving-speed approximate ones (MLN marginals, large-`n`
//!   sweeps) without touching any algorithm.
//! * [`Poly`] — dense univariate polynomials over the rationals
//!   ([`Polynomial`]). Makes weight sweeps symbolic: one lifted evaluation
//!   with an indeterminate weight computes the whole weight polynomial, e.g.
//!   the Lemma 3.5 Eq-weight polynomial in a single run instead of `n² + 1`
//!   interpolation points.
//!
//! ```
//! use wfomc_logic::algebra::{Algebra, Exact, LogF64, Poly};
//! use wfomc_logic::poly::Polynomial;
//! use wfomc_logic::weights::weight_int;
//!
//! let w = weight_int(-6);
//! let exact = Exact.from_weight(&w);
//! assert_eq!(Exact.mul(&exact, &exact), weight_int(36));
//!
//! let log = LogF64.from_weight(&w);
//! assert!((LogF64.mul(&log, &log).to_f64() - 36.0).abs() < 1e-9);
//!
//! let poly = Poly.mul(&Polynomial::x(), &Poly.from_weight(&w));
//! assert_eq!(poly.eval(&weight_int(2)), weight_int(-12));
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use num_bigint::{BigInt, BigUint};
use num_traits::{One, Signed, ToPrimitive, Zero};

use crate::poly::Polynomial;
use crate::vocabulary::{Predicate, Vocabulary};
use crate::weights::{weight_pow, Weight, Weights};

/// A commutative ring the evaluation half of the WFOMC pipeline can run in.
///
/// Implementations are stateless handles (all three shipped algebras are
/// zero-sized); the element type carries the values. The operations take the
/// receiver so richer algebras (e.g. a fixed-modulus ring, a tropical
/// semiring without `neg`, floats with a configurable precision) can carry
/// configuration.
///
/// # Contract
///
/// `add`/`mul` must be commutative and associative with `zero`/`one` as
/// identities, `mul` must distribute over `add`, and `neg` must be the
/// additive inverse. `is_zero` must agree with `zero()` — the engines prune
/// subtrees when a partial product `is_zero`, which is sound in any ring
/// because `0 · x = 0`. Approximate algebras (such as [`LogF64`]) satisfy
/// these laws only up to rounding; the workspace's differential tests pin
/// the accepted tolerance.
pub trait Algebra: Send + Sync {
    /// The ring element type.
    type Elem: Clone + PartialEq + fmt::Debug + fmt::Display + Send + Sync;

    /// A short human-readable name (used by benches and reports).
    fn name(&self) -> &'static str;

    /// The additive identity.
    fn zero(&self) -> Self::Elem;

    /// The multiplicative identity.
    fn one(&self) -> Self::Elem;

    /// True exactly for [`zero`](Self::zero).
    fn is_zero(&self, a: &Self::Elem) -> bool;

    /// Sum.
    fn add(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// Additive inverse.
    fn neg(&self, a: &Self::Elem) -> Self::Elem;

    /// Product.
    fn mul(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// Injects an exact rational weight into the ring.
    ///
    /// (Takes `&self` deliberately — the algebra handle is the conversion
    /// context, not the value being converted.)
    #[allow(clippy::wrong_self_convention)]
    fn from_weight(&self, w: &Weight) -> Self::Elem;

    /// Difference `a − b`.
    fn sub(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.add(a, &self.neg(b))
    }

    /// In-place sum (override when the element supports it natively).
    fn add_assign(&self, a: &mut Self::Elem, b: &Self::Elem) {
        *a = self.add(a, b);
    }

    /// In-place product (override when the element supports it natively).
    fn mul_assign(&self, a: &mut Self::Elem, b: &Self::Elem) {
        *a = self.mul(a, b);
    }

    /// `base^exp` by square-and-multiply (`pow(0, 0) = one`).
    fn pow(&self, base: &Self::Elem, exp: usize) -> Self::Elem {
        let mut result = self.one();
        let mut base = base.clone();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                self.mul_assign(&mut result, &base);
            }
            e >>= 1;
            if e > 0 {
                base = self.mul(&base, &base);
            }
        }
        result
    }

    /// Exact division `a / b` when `b` divides `a` in the ring, `None`
    /// otherwise (always `None` for `b = 0`). Fields return `Some` for every
    /// non-zero `b`; [`Poly`] returns `Some` exactly for remainder-free
    /// divisions.
    fn try_div(&self, a: &Self::Elem, b: &Self::Elem) -> Option<Self::Elem>;

    /// True when the size of an element — and so the cost of adding two —
    /// grows with the magnitude (or degree) of the value it represents, as
    /// for exact rationals and polynomials. Accumulators use this to choose
    /// between a balanced sum tree (operands of comparable size; the
    /// asymptotic win for growing elements) and a plain running total
    /// (optimal for constant-size elements such as log-space floats, where
    /// the tree's bookkeeping is pure overhead).
    fn growing_elements(&self) -> bool {
        true
    }

    /// True when the grouping of ring operations is observable in the result,
    /// as for floating-point algebras where addition and multiplication are
    /// commutative but not associative. Engines must then evaluate sums in a
    /// deterministic, weight-independent order — no dropping or reordering of
    /// zero terms for speed — so repeated runs are bit-for-bit reproducible
    /// and a lane algebra stays bit-identical to its scalar counterpart lane
    /// by lane. Exact algebras return `false` and let engines reorder freely.
    fn order_sensitive(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Exact
// ---------------------------------------------------------------------------

/// The exact algebra: arbitrary-precision rationals ([`Weight`]). This is
/// the ring every pre-existing API evaluates in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Exact;

impl Algebra for Exact {
    type Elem = Weight;

    fn name(&self) -> &'static str {
        "exact"
    }

    fn zero(&self) -> Weight {
        Weight::zero()
    }

    fn one(&self) -> Weight {
        Weight::one()
    }

    fn is_zero(&self, a: &Weight) -> bool {
        a.is_zero()
    }

    fn add(&self, a: &Weight, b: &Weight) -> Weight {
        a + b
    }

    fn neg(&self, a: &Weight) -> Weight {
        -a
    }

    fn mul(&self, a: &Weight, b: &Weight) -> Weight {
        a * b
    }

    fn sub(&self, a: &Weight, b: &Weight) -> Weight {
        a - b
    }

    fn add_assign(&self, a: &mut Weight, b: &Weight) {
        *a += b;
    }

    fn mul_assign(&self, a: &mut Weight, b: &Weight) {
        *a *= b;
    }

    fn pow(&self, base: &Weight, exp: usize) -> Weight {
        weight_pow(base, exp)
    }

    fn from_weight(&self, w: &Weight) -> Weight {
        w.clone()
    }

    fn try_div(&self, a: &Weight, b: &Weight) -> Option<Weight> {
        if b.is_zero() {
            None
        } else {
            Some(a / b)
        }
    }
}

// ---------------------------------------------------------------------------
// LogF64
// ---------------------------------------------------------------------------

/// A sign-tracked log-space float: `sign · exp(ln)`.
///
/// Covers the full range the exact pipelines produce (counts like `2^{n²}`
/// overflow a plain `f64` long before `n` gets interesting) in one machine
/// word per component, and keeps negative weights — which Skolemization
/// makes unavoidable — first-class. Zero is canonical: `sign = 0`,
/// `ln = −∞`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogWeight {
    sign: i8,
    ln: f64,
}

impl LogWeight {
    /// The zero element.
    pub fn zero() -> LogWeight {
        LogWeight {
            sign: 0,
            ln: f64::NEG_INFINITY,
        }
    }

    /// The unit element.
    pub fn one() -> LogWeight {
        LogWeight { sign: 1, ln: 0.0 }
    }

    /// Builds a log-weight from a plain float.
    pub fn from_f64(x: f64) -> LogWeight {
        if x == 0.0 {
            LogWeight::zero()
        } else {
            LogWeight {
                sign: if x < 0.0 { -1 } else { 1 },
                ln: x.abs().ln(),
            }
        }
    }

    /// Converts back to a plain float (`±∞` when the magnitude overflows).
    pub fn to_f64(self) -> f64 {
        f64::from(self.sign) * self.ln.exp()
    }

    /// The sign: −1, 0 or 1.
    pub fn signum(self) -> i8 {
        self.sign
    }

    /// The natural log of the magnitude (`−∞` for zero).
    pub fn ln_abs(self) -> f64 {
        self.ln
    }

    /// True for the zero element.
    pub fn is_zero(self) -> bool {
        self.sign == 0
    }
}

impl fmt::Display for LogWeight {
    /// Shows the sign and the natural log of the magnitude, which stays
    /// readable when the value itself would overflow a plain float.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sign {
            0 => write!(f, "0"),
            s => {
                let sign = if s < 0 { "-" } else { "" };
                write!(f, "{sign}exp({:.6})", self.ln)
            }
        }
    }
}

/// Natural log of a [`BigUint`] magnitude without overflowing `f64`: values
/// wider than 512 bits are divided down to a 512-bit mantissa and the
/// discarded bit count is added back as `shift · ln 2`.
fn ln_biguint(x: &BigUint) -> f64 {
    let bits = x.bits();
    if bits == 0 {
        return f64::NEG_INFINITY;
    }
    if bits <= 512 {
        return x.to_f64().expect("≤512-bit values convert to f64").ln();
    }
    let shift = (bits - 512) as usize;
    let divisor = &BigUint::one() << shift;
    let (mantissa, _) = x.div_rem(&divisor);
    mantissa
        .to_f64()
        .expect("512-bit mantissa converts to f64")
        .ln()
        + shift as f64 * std::f64::consts::LN_2
}

/// The log-space float algebra. Approximate: sums of opposite-sign values
/// cancel with relative (not absolute) precision, so results that are
/// exactly zero in [`Exact`] come out as *tiny* rather than zero here — the
/// usual floating-point contract.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogF64;

impl Algebra for LogF64 {
    type Elem = LogWeight;

    fn name(&self) -> &'static str {
        "log-f64"
    }

    fn zero(&self) -> LogWeight {
        LogWeight::zero()
    }

    fn one(&self) -> LogWeight {
        LogWeight::one()
    }

    fn is_zero(&self, a: &LogWeight) -> bool {
        a.sign == 0
    }

    fn add(&self, a: &LogWeight, b: &LogWeight) -> LogWeight {
        if a.sign == 0 {
            return *b;
        }
        if b.sign == 0 {
            return *a;
        }
        // Same sign: log-sum-exp. Opposite signs: the larger magnitude wins
        // and the smaller is subtracted out; exactly equal magnitudes cancel
        // to true zero.
        let (hi, lo) = if a.ln >= b.ln { (a, b) } else { (b, a) };
        let d = lo.ln - hi.ln; // ≤ 0
        if a.sign == b.sign {
            LogWeight {
                sign: a.sign,
                ln: hi.ln + d.exp().ln_1p(),
            }
        } else if a.ln == b.ln {
            LogWeight::zero()
        } else {
            LogWeight {
                sign: hi.sign,
                ln: hi.ln + (-d.exp()).ln_1p(),
            }
        }
    }

    fn neg(&self, a: &LogWeight) -> LogWeight {
        LogWeight {
            sign: -a.sign,
            ln: a.ln,
        }
    }

    fn mul(&self, a: &LogWeight, b: &LogWeight) -> LogWeight {
        if a.sign == 0 || b.sign == 0 {
            return LogWeight::zero();
        }
        LogWeight {
            sign: a.sign * b.sign,
            ln: a.ln + b.ln,
        }
    }

    fn pow(&self, base: &LogWeight, exp: usize) -> LogWeight {
        if exp == 0 {
            return LogWeight::one();
        }
        if base.sign == 0 {
            return LogWeight::zero();
        }
        LogWeight {
            sign: if base.sign < 0 && exp % 2 == 1 { -1 } else { 1 },
            ln: base.ln * exp as f64,
        }
    }

    fn from_weight(&self, w: &Weight) -> LogWeight {
        if w.is_zero() {
            return LogWeight::zero();
        }
        LogWeight {
            sign: if w.is_negative() { -1 } else { 1 },
            ln: ln_bigint(w.numer()) - ln_bigint(w.denom()),
        }
    }

    fn try_div(&self, a: &LogWeight, b: &LogWeight) -> Option<LogWeight> {
        if b.sign == 0 {
            return None;
        }
        if a.sign == 0 {
            return Some(LogWeight::zero());
        }
        Some(LogWeight {
            sign: a.sign * b.sign,
            ln: a.ln - b.ln,
        })
    }

    fn growing_elements(&self) -> bool {
        // A LogWeight is two machine words regardless of magnitude; adding
        // through a balanced tree would only add bookkeeping.
        false
    }

    fn order_sensitive(&self) -> bool {
        // f64 addition rounds, so grouping is observable; engines must keep
        // a weight-independent traversal order for reproducibility.
        true
    }
}

/// Natural log of a [`BigInt`]'s magnitude.
fn ln_bigint(x: &BigInt) -> f64 {
    ln_biguint(x.magnitude())
}

// ---------------------------------------------------------------------------
// LogF64xN
// ---------------------------------------------------------------------------

/// Number of lanes in [`LogF64xN`]: eight sign/magnitude pairs per element,
/// one AVX-512 register (or two AVX2 registers) of `f64` magnitudes.
pub const LOG_LANES: usize = 8;

/// [`LOG_LANES`] independent [`LogWeight`]s evaluated in lockstep.
///
/// Lane `i` of every operation is **bit-identical** to the corresponding
/// scalar [`LogF64`] operation on lane `i` of the operands — each per-lane
/// step delegates to the scalar implementation, so a lane-batched traversal
/// reproduces `LOG_LANES` scalar traversals exactly (the differential
/// proptests in `wfomc-core` pin this down across all four methods).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogWeightxN {
    sign: [i8; LOG_LANES],
    ln: [f64; LOG_LANES],
}

impl LogWeightxN {
    /// All lanes zero.
    pub fn zero() -> LogWeightxN {
        LogWeightxN::splat(LogWeight::zero())
    }

    /// All lanes one.
    pub fn one() -> LogWeightxN {
        LogWeightxN::splat(LogWeight::one())
    }

    /// The same scalar in every lane.
    pub fn splat(w: LogWeight) -> LogWeightxN {
        LogWeightxN {
            sign: [w.sign; LOG_LANES],
            ln: [w.ln; LOG_LANES],
        }
    }

    /// Builds an element from [`LOG_LANES`] independent scalars.
    pub fn from_lanes(lanes: [LogWeight; LOG_LANES]) -> LogWeightxN {
        let mut out = LogWeightxN::zero();
        for (i, lane) in lanes.into_iter().enumerate() {
            out.sign[i] = lane.sign;
            out.ln[i] = lane.ln;
        }
        out
    }

    /// Extracts lane `i` as a scalar [`LogWeight`].
    ///
    /// # Panics
    /// Panics if `i >= LOG_LANES`.
    pub fn lane(&self, i: usize) -> LogWeight {
        LogWeight {
            sign: self.sign[i],
            ln: self.ln[i],
        }
    }

    /// Maps a scalar [`LogF64`] operation over paired lanes.
    fn zip_with(
        &self,
        other: &LogWeightxN,
        op: impl Fn(&LogWeight, &LogWeight) -> LogWeight,
    ) -> LogWeightxN {
        let mut out = LogWeightxN::zero();
        for i in 0..LOG_LANES {
            let r = op(&self.lane(i), &other.lane(i));
            out.sign[i] = r.sign;
            out.ln[i] = r.ln;
        }
        out
    }

    /// Maps a scalar [`LogF64`] operation over each lane.
    fn map(&self, op: impl Fn(&LogWeight) -> LogWeight) -> LogWeightxN {
        let mut out = LogWeightxN::zero();
        for i in 0..LOG_LANES {
            let r = op(&self.lane(i));
            out.sign[i] = r.sign;
            out.ln[i] = r.ln;
        }
        out
    }
}

impl fmt::Display for LogWeightxN {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for i in 0..LOG_LANES {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.lane(i))?;
        }
        write!(f, "]")
    }
}

/// The lane-batched log-space algebra: [`LOG_LANES`] weight vectors run
/// through one generic traversal (cell-sum DFS, circuit evaluation, DPLL,
/// QS4 DP) in lockstep instead of [`LOG_LANES`] traversals.
///
/// The only semantic difference from running [`LogF64`] per lane is
/// pruning: [`Algebra::is_zero`] holds only when *every* lane is zero, so a
/// batch does the union of the per-lane work. That is sound and preserves
/// bit-identity — a canonically-zero lane (`sign = 0`, `ln = −∞`) is
/// absorbing under `mul`/`pow` and an exact identity under `add`, so extra
/// un-pruned work contributes exact zeros to the zero lanes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogF64xN;

impl LogF64xN {
    /// Packs up to [`LOG_LANES`] exact weight functions into one lane-valued
    /// weight function: lane `i` carries `points[i]`, and a ragged batch
    /// (`points.len() < LOG_LANES`) repeats the last point in the tail
    /// lanes, so every lane is always a well-formed weight vector.
    ///
    /// Each lane of each pair is built with the scalar
    /// [`LogF64::from_weight`] path, and predicates a point leaves unset
    /// get the same `(1, 1)` default the scalar run would use — bitwise.
    ///
    /// # Panics
    /// Panics if `points` is empty or longer than [`LOG_LANES`].
    pub fn pack_weights(points: &[&Weights]) -> AlgebraWeights<LogF64xN> {
        assert!(
            !points.is_empty() && points.len() <= LOG_LANES,
            "pack_weights takes 1..={LOG_LANES} points"
        );
        let mut names: BTreeSet<&str> = BTreeSet::new();
        for point in points {
            names.extend(point.iter().map(|(name, _)| name));
        }
        let mut packed = AlgebraWeights::ones();
        for name in names {
            let mut pos = [LogWeight::zero(); LOG_LANES];
            let mut neg = [LogWeight::zero(); LOG_LANES];
            for i in 0..LOG_LANES {
                let pair = points[i.min(points.len() - 1)].pair(name);
                pos[i] = LogF64.from_weight(&pair.pos);
                neg[i] = LogF64.from_weight(&pair.neg);
            }
            packed.set(
                name,
                LogWeightxN::from_lanes(pos),
                LogWeightxN::from_lanes(neg),
            );
        }
        packed
    }
}

impl Algebra for LogF64xN {
    type Elem = LogWeightxN;

    fn name(&self) -> &'static str {
        "log-f64x8"
    }

    fn zero(&self) -> LogWeightxN {
        LogWeightxN::zero()
    }

    fn one(&self) -> LogWeightxN {
        LogWeightxN::one()
    }

    fn is_zero(&self, a: &LogWeightxN) -> bool {
        a.sign == [0; LOG_LANES]
    }

    fn add(&self, a: &LogWeightxN, b: &LogWeightxN) -> LogWeightxN {
        a.zip_with(b, |x, y| LogF64.add(x, y))
    }

    fn neg(&self, a: &LogWeightxN) -> LogWeightxN {
        a.map(|x| LogF64.neg(x))
    }

    fn mul(&self, a: &LogWeightxN, b: &LogWeightxN) -> LogWeightxN {
        a.zip_with(b, |x, y| LogF64.mul(x, y))
    }

    fn pow(&self, base: &LogWeightxN, exp: usize) -> LogWeightxN {
        base.map(|x| LogF64.pow(x, exp))
    }

    fn from_weight(&self, w: &Weight) -> LogWeightxN {
        LogWeightxN::splat(LogF64.from_weight(w))
    }

    fn try_div(&self, a: &LogWeightxN, b: &LogWeightxN) -> Option<LogWeightxN> {
        // Division is all-or-nothing: any zero-divisor lane poisons the
        // whole element, mirroring the scalar contract per lane.
        if b.sign.contains(&0) {
            return None;
        }
        Some(a.zip_with(b, |x, y| {
            LogF64.try_div(x, y).expect("no lane divisor is zero")
        }))
    }

    fn growing_elements(&self) -> bool {
        // Fixed-size lanes, like the scalar LogF64.
        false
    }

    fn order_sensitive(&self) -> bool {
        // Lane-by-lane bit-identity with scalar LogF64 runs requires every
        // lane to see the exact traversal order a scalar run would use.
        true
    }
}

// ---------------------------------------------------------------------------
// Poly
// ---------------------------------------------------------------------------

/// The polynomial algebra: dense univariate polynomials over the exact
/// rationals. Give one predicate the indeterminate [`Polynomial::x`] as its
/// weight and a single lifted evaluation computes the entire weight
/// polynomial symbolically.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Poly;

impl Algebra for Poly {
    type Elem = Polynomial;

    fn name(&self) -> &'static str {
        "poly"
    }

    fn zero(&self) -> Polynomial {
        Polynomial::zero()
    }

    fn one(&self) -> Polynomial {
        Polynomial::one()
    }

    fn is_zero(&self, a: &Polynomial) -> bool {
        a.is_zero()
    }

    fn add(&self, a: &Polynomial, b: &Polynomial) -> Polynomial {
        a.add(b)
    }

    fn neg(&self, a: &Polynomial) -> Polynomial {
        a.neg()
    }

    fn sub(&self, a: &Polynomial, b: &Polynomial) -> Polynomial {
        a.sub(b)
    }

    fn mul(&self, a: &Polynomial, b: &Polynomial) -> Polynomial {
        a.mul(b)
    }

    fn from_weight(&self, w: &Weight) -> Polynomial {
        Polynomial::constant(w.clone())
    }

    fn try_div(&self, a: &Polynomial, b: &Polynomial) -> Option<Polynomial> {
        a.div_exact(b)
    }
}

// ---------------------------------------------------------------------------
// Algebra-valued symmetric weight functions
// ---------------------------------------------------------------------------

/// A symmetric weight function with values in an arbitrary algebra: one
/// `(w, w̄)` pair of ring elements per predicate name, defaulting to
/// `(1, 1)` — the algebra-generic counterpart of [`Weights`].
///
/// Built either by lifting an exact weight function
/// ([`AlgebraWeights::lift`]) or entry by entry ([`AlgebraWeights::set`]),
/// which is how non-rational weights (the [`Poly`] indeterminate, a measured
/// log-space weight) enter the pipeline.
pub struct AlgebraWeights<A: Algebra> {
    by_predicate: BTreeMap<String, (A::Elem, A::Elem)>,
}

impl<A: Algebra> Clone for AlgebraWeights<A> {
    fn clone(&self) -> Self {
        AlgebraWeights {
            by_predicate: self.by_predicate.clone(),
        }
    }
}

impl<A: Algebra> fmt::Debug for AlgebraWeights<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlgebraWeights")
            .field("by_predicate", &self.by_predicate)
            .finish()
    }
}

impl<A: Algebra> Default for AlgebraWeights<A> {
    fn default() -> Self {
        AlgebraWeights {
            by_predicate: BTreeMap::new(),
        }
    }
}

impl<A: Algebra> AlgebraWeights<A> {
    /// The all-ones weight function (every predicate defaults to `(1, 1)`).
    pub fn ones() -> Self {
        AlgebraWeights::default()
    }

    /// Lifts an exact weight function into the algebra via
    /// [`Algebra::from_weight`].
    pub fn lift(algebra: &A, weights: &Weights) -> Self {
        let mut out = AlgebraWeights::default();
        for (name, pair) in weights.iter() {
            out.set(
                name,
                algebra.from_weight(&pair.pos),
                algebra.from_weight(&pair.neg),
            );
        }
        out
    }

    /// Sets the pair for a predicate name.
    pub fn set(&mut self, name: impl Into<String>, pos: A::Elem, neg: A::Elem) -> &mut Self {
        self.by_predicate.insert(name.into(), (pos, neg));
        self
    }

    /// The `(w, w̄)` pair for a predicate name (defaults to `(1, 1)`).
    pub fn pair(&self, algebra: &A, name: &str) -> (A::Elem, A::Elem) {
        self.by_predicate
            .get(name)
            .cloned()
            .unwrap_or_else(|| (algebra.one(), algebra.one()))
    }

    /// The pair for a predicate symbol.
    pub fn pair_of(&self, algebra: &A, p: &Predicate) -> (A::Elem, A::Elem) {
        self.pair(algebra, p.name())
    }

    /// `w + w̄` for a predicate name.
    pub fn total(&self, algebra: &A, name: &str) -> A::Elem {
        let (pos, neg) = self.pair(algebra, name);
        algebra.add(&pos, &neg)
    }

    /// Iterates over the explicitly set entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &(A::Elem, A::Elem))> {
        self.by_predicate.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// `WFOMC(true) = Π_R (w_R + w̄_R)^{n^arity}` in the algebra — the
    /// normalization constant of the probability semantics.
    pub fn wfomc_of_true(&self, algebra: &A, vocabulary: &Vocabulary, n: usize) -> A::Elem {
        let mut total = algebra.one();
        for p in vocabulary.iter() {
            let t = self.total(algebra, p.name());
            let factor = algebra.pow(&t, p.num_ground_tuples(n));
            algebra.mul_assign(&mut total, &factor);
        }
        total
    }
}

// ---------------------------------------------------------------------------
// Indexed weight pairs (the propositional layer's view)
// ---------------------------------------------------------------------------

/// Per-variable weight pairs in an algebra — the propositional counters'
/// and the circuit evaluator's view of a weight assignment. Variables beyond
/// the table carry the implicit pair `(1, 1)`, matching the exact counters'
/// long-standing contract.
pub trait VarPairs<A: Algebra> {
    /// The weight of variable `var` under truth value `value`.
    fn var_weight(&self, algebra: &A, var: usize, value: bool) -> A::Elem;

    /// `w(var) + w̄(var)` — the contribution of an unconstrained variable.
    fn var_total(&self, algebra: &A, var: usize) -> A::Elem {
        algebra.add(
            &self.var_weight(algebra, var, true),
            &self.var_weight(algebra, var, false),
        )
    }

    /// Number of variables the table covers explicitly.
    fn table_len(&self) -> usize;
}

/// Dense per-variable weight pairs backed by element vectors — the generic
/// analogue of the propositional layer's `VarWeights`.
pub struct ElemWeights<A: Algebra> {
    pos: Vec<A::Elem>,
    neg: Vec<A::Elem>,
}

impl<A: Algebra> Clone for ElemWeights<A> {
    fn clone(&self) -> Self {
        ElemWeights {
            pos: self.pos.clone(),
            neg: self.neg.clone(),
        }
    }
}

impl<A: Algebra> fmt::Debug for ElemWeights<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ElemWeights")
            .field("pos", &self.pos)
            .field("neg", &self.neg)
            .finish()
    }
}

impl<A: Algebra> ElemWeights<A> {
    /// An empty table (every variable defaults to `(1, 1)`).
    pub fn new() -> Self {
        ElemWeights {
            pos: Vec::new(),
            neg: Vec::new(),
        }
    }

    /// Builds a table from parallel `(pos, neg)` vectors.
    ///
    /// # Panics
    /// Panics if the vectors have different lengths.
    pub fn from_vecs(pos: Vec<A::Elem>, neg: Vec<A::Elem>) -> Self {
        assert_eq!(pos.len(), neg.len(), "weight vectors must align");
        ElemWeights { pos, neg }
    }

    /// Appends one variable's pair.
    pub fn push(&mut self, pos: A::Elem, neg: A::Elem) {
        self.pos.push(pos);
        self.neg.push(neg);
    }

    /// Number of variables covered explicitly.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True if no variables are covered.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }
}

impl<A: Algebra> Default for ElemWeights<A> {
    fn default() -> Self {
        ElemWeights::new()
    }
}

impl<A: Algebra> VarPairs<A> for ElemWeights<A> {
    fn var_weight(&self, algebra: &A, var: usize, value: bool) -> A::Elem {
        let table = if value { &self.pos } else { &self.neg };
        table.get(var).cloned().unwrap_or_else(|| algebra.one())
    }

    fn table_len(&self) -> usize {
        self.pos.len()
    }
}

// ---------------------------------------------------------------------------
// Generic power cache
// ---------------------------------------------------------------------------

/// A per-base cache of integer powers of a ring element — the generic
/// counterpart of [`crate::weights::PowCache`], used by the FO² cell-sum
/// engine. A dense table `base⁰ … base^cap` grows incrementally (one
/// multiplication per new entry); exponents beyond `cap` fall back to
/// memoized square-and-multiply.
pub struct Powers<A: Algebra> {
    base: A::Elem,
    dense: Vec<A::Elem>,
    cap: usize,
    sparse: BTreeMap<usize, A::Elem>,
}

impl<A: Algebra> Clone for Powers<A> {
    fn clone(&self) -> Self {
        Powers {
            base: self.base.clone(),
            dense: self.dense.clone(),
            cap: self.cap,
            sparse: self.sparse.clone(),
        }
    }
}

impl<A: Algebra> fmt::Debug for Powers<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Powers")
            .field("base", &self.base)
            .field("cap", &self.cap)
            .field("dense_len", &self.dense.len())
            .field("sparse_len", &self.sparse.len())
            .finish()
    }
}

impl<A: Algebra> Powers<A> {
    /// Creates a cache for `base` with a dense table up to exponent `cap`
    /// (inclusive).
    pub fn new(algebra: &A, base: A::Elem, cap: usize) -> Self {
        Powers {
            dense: vec![algebra.one()],
            base,
            cap,
            sparse: BTreeMap::new(),
        }
    }

    /// The cached base.
    pub fn base(&self) -> &A::Elem {
        &self.base
    }

    /// `base^exp` by value.
    pub fn pow(&mut self, algebra: &A, exp: usize) -> A::Elem {
        self.pow_ref(algebra, exp).clone()
    }

    /// `base^exp` by reference — hot loops that immediately multiply the
    /// power in avoid a clone per lookup.
    pub fn pow_ref(&mut self, algebra: &A, exp: usize) -> &A::Elem {
        if exp <= self.cap {
            while self.dense.len() <= exp {
                let next = algebra.mul(
                    self.dense.last().expect("dense table is non-empty"),
                    &self.base,
                );
                self.dense.push(next);
            }
            return &self.dense[exp];
        }
        let base = &self.base;
        self.sparse.entry(exp).or_insert_with(|| {
            wfomc_obs::metrics::POWERS_SPARSE.inc();
            algebra.pow(base, exp)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{weight_int, weight_ratio};

    fn assert_close(a: f64, b: f64) {
        let scale = a.abs().max(b.abs()).max(1.0);
        assert!((a - b).abs() <= 1e-9 * scale, "{a} vs {b}");
    }

    #[test]
    fn exact_algebra_matches_weight_arithmetic() {
        let a = Exact.from_weight(&weight_ratio(3, 2));
        let b = Exact.from_weight(&weight_int(-4));
        assert_eq!(Exact.add(&a, &b), weight_ratio(-5, 2));
        assert_eq!(Exact.mul(&a, &b), weight_int(-6));
        assert_eq!(Exact.sub(&a, &a), Weight::zero());
        assert_eq!(Exact.pow(&a, 3), weight_ratio(27, 8));
        assert_eq!(Exact.try_div(&b, &a).unwrap(), weight_ratio(-8, 3));
        assert!(Exact.try_div(&a, &Exact.zero()).is_none());
        assert!(Exact.is_zero(&Exact.zero()) && !Exact.is_zero(&Exact.one()));
    }

    #[test]
    fn log_algebra_tracks_signs_and_magnitudes() {
        let a = LogF64.from_weight(&weight_int(3));
        let b = LogF64.from_weight(&weight_int(-5));
        assert_close(LogF64.add(&a, &b).to_f64(), -2.0);
        assert_close(LogF64.add(&b, &a).to_f64(), -2.0);
        assert_close(LogF64.mul(&a, &b).to_f64(), -15.0);
        assert_close(LogF64.sub(&a, &b).to_f64(), 8.0);
        assert_close(LogF64.pow(&b, 3).to_f64(), -125.0);
        assert_close(LogF64.pow(&b, 0).to_f64(), 1.0);
        assert_close(LogF64.try_div(&a, &b).unwrap().to_f64(), -0.6);
        assert!(LogF64.try_div(&a, &LogF64.zero()).is_none());
        // Exactly opposite values cancel to true zero.
        assert!(LogF64.is_zero(&LogF64.add(&b, &LogF64.neg(&b))));
        // Zero is absorbing and has sign 0.
        assert!(LogF64.mul(&a, &LogF64.zero()).is_zero());
        assert_eq!(LogWeight::from_f64(0.0), LogWeight::zero());
        assert_eq!(LogWeight::from_f64(-2.5).signum(), -1);
    }

    #[test]
    fn lane_algebra_ops_are_bit_identical_to_scalar_lanes() {
        // A spread of magnitudes and signs, including zero, across the lanes.
        let xs: [Weight; LOG_LANES] = [
            weight_int(3),
            weight_int(-5),
            Weight::zero(),
            weight_ratio(1, 7),
            weight_int(1),
            weight_ratio(-9, 4),
            weight_int(1_000_000),
            weight_ratio(-1, 1_000_000),
        ];
        let ys: [Weight; LOG_LANES] = [
            weight_int(-3),
            weight_int(5),
            weight_int(2),
            Weight::zero(),
            weight_ratio(1, 7),
            weight_ratio(9, 4),
            weight_int(-1),
            weight_int(42),
        ];
        let a = LogWeightxN::from_lanes(xs.clone().map(|w| LogF64.from_weight(&w)));
        let b = LogWeightxN::from_lanes(ys.clone().map(|w| LogF64.from_weight(&w)));
        let assert_lanes =
            |lane_value: LogWeightxN, scalar: &dyn Fn(usize) -> LogWeight, op: &str| {
                for i in 0..LOG_LANES {
                    let got = lane_value.lane(i);
                    let want = scalar(i);
                    assert_eq!(got.signum(), want.signum(), "{op} lane {i} sign");
                    assert_eq!(
                        got.ln_abs().to_bits(),
                        want.ln_abs().to_bits(),
                        "{op} lane {i} magnitude"
                    );
                }
            };
        let sa: Vec<LogWeight> = xs.iter().map(|w| LogF64.from_weight(w)).collect();
        let sb: Vec<LogWeight> = ys.iter().map(|w| LogF64.from_weight(w)).collect();
        assert_lanes(LogF64xN.add(&a, &b), &|i| LogF64.add(&sa[i], &sb[i]), "add");
        assert_lanes(LogF64xN.sub(&a, &b), &|i| LogF64.sub(&sa[i], &sb[i]), "sub");
        assert_lanes(LogF64xN.mul(&a, &b), &|i| LogF64.mul(&sa[i], &sb[i]), "mul");
        assert_lanes(LogF64xN.neg(&a), &|i| LogF64.neg(&sa[i]), "neg");
        for exp in [0usize, 1, 2, 7, 100] {
            assert_lanes(LogF64xN.pow(&a, exp), &|i| LogF64.pow(&sa[i], exp), "pow");
        }
        // try_div: poisoned by any zero-divisor lane, per-lane scalar otherwise.
        assert!(LogF64xN.try_div(&a, &b).is_none(), "lane 3 divisor is zero");
        let c = LogWeightxN::splat(LogF64.from_weight(&weight_ratio(-2, 3)));
        assert_lanes(
            LogF64xN.try_div(&a, &c).unwrap(),
            &|i| LogF64.try_div(&sa[i], &c.lane(i)).unwrap(),
            "div",
        );
    }

    #[test]
    fn lane_algebra_zero_and_pruning_contract() {
        assert!(LogF64xN.is_zero(&LogF64xN.zero()));
        assert!(!LogF64xN.is_zero(&LogF64xN.one()));
        // A partially-zero element must NOT count as zero: pruning it would
        // drop live lanes.
        let mut lanes = [LogWeight::zero(); LOG_LANES];
        lanes[LOG_LANES - 1] = LogWeight::one();
        let partial = LogWeightxN::from_lanes(lanes);
        assert!(!LogF64xN.is_zero(&partial));
        // Zero lanes stay canonical through mul and pow (absorbing), and are
        // exact identities under add.
        let product = LogF64xN.mul(&partial, &LogF64xN.from_weight(&weight_int(-7)));
        for i in 0..LOG_LANES - 1 {
            assert_eq!(product.lane(i), LogWeight::zero(), "lane {i}");
        }
        let total = LogF64xN.add(&partial, &LogF64xN.from_weight(&weight_int(2)));
        for i in 0..LOG_LANES - 1 {
            assert_eq!(
                total.lane(i).ln_abs().to_bits(),
                LogF64.from_weight(&weight_int(2)).ln_abs().to_bits(),
                "lane {i}"
            );
        }
        assert!(!LogF64xN.growing_elements());
    }

    #[test]
    fn pack_weights_matches_scalar_lift_per_lane() {
        let points = [
            Weights::from_ints([("R", 2, 1), ("S", 1, 3)]),
            Weights::from_ints([("R", 0, 1), ("T", -1, 2)]),
            Weights::ones(),
        ];
        let refs: Vec<&Weights> = points.iter().collect();
        let packed = LogF64xN::pack_weights(&refs);
        for (i, point) in points.iter().enumerate() {
            let scalar = AlgebraWeights::lift(&LogF64, point);
            for name in ["R", "S", "T", "Unset"] {
                let (pos, neg) = packed.pair(&LogF64xN, name);
                let (spos, sneg) = scalar.pair(&LogF64, name);
                for (lane, want) in [(pos.lane(i), spos), (neg.lane(i), sneg)] {
                    assert_eq!(lane.signum(), want.signum(), "{name} lane {i}");
                    assert_eq!(
                        lane.ln_abs().to_bits(),
                        want.ln_abs().to_bits(),
                        "{name} lane {i}"
                    );
                }
            }
        }
        // Ragged tails repeat the last point.
        let last = AlgebraWeights::lift(&LogF64, &points[2]);
        let (pos, _) = packed.pair(&LogF64xN, "R");
        for i in points.len()..LOG_LANES {
            assert_eq!(
                pos.lane(i).ln_abs().to_bits(),
                last.pair(&LogF64, "R").0.ln_abs().to_bits(),
                "tail lane {i}"
            );
        }
    }

    #[test]
    fn log_algebra_survives_huge_magnitudes() {
        // 2^(10_000) overflows f64 but not the log representation.
        let huge = Exact.pow(&weight_int(2), 10_000);
        let log = LogF64.from_weight(&huge);
        assert_close(log.ln_abs(), 10_000.0 * std::f64::consts::LN_2);
        // Ratios of huge values come back into range.
        let ratio = LogF64
            .try_div(&log, &LogF64.from_weight(&Exact.pow(&weight_int(2), 9_999)))
            .unwrap();
        assert_close(ratio.to_f64(), 2.0);
        // Huge denominators too.
        let tiny = LogF64.from_weight(&(Weight::one() / huge));
        assert_close(tiny.ln_abs(), -10_000.0 * std::f64::consts::LN_2);
    }

    #[test]
    fn poly_algebra_is_symbolic() {
        let x = Polynomial::x();
        let c = Poly.from_weight(&weight_int(3));
        // (x + 3)² = x² + 6x + 9.
        let p = Poly.pow(&Poly.add(&x, &c), 2);
        assert_eq!(p.coeff(0), weight_int(9));
        assert_eq!(p.coeff(1), weight_int(6));
        assert_eq!(p.coeff(2), weight_int(1));
        assert_eq!(
            Poly.try_div(&p, &Poly.add(&x, &c)).unwrap(),
            Poly.add(&x, &c)
        );
        assert!(Poly.try_div(&p, &Poly.zero()).is_none());
        assert!(Poly.is_zero(&Poly.sub(&p, &p)));
    }

    #[test]
    fn algebra_weights_lift_and_default() {
        let w = Weights::from_ints([("R", 2, -1)]);
        let lifted = AlgebraWeights::lift(&Exact, &w);
        assert_eq!(lifted.pair(&Exact, "R"), (weight_int(2), weight_int(-1)));
        assert_eq!(lifted.pair(&Exact, "S"), (weight_int(1), weight_int(1)));
        assert_eq!(lifted.total(&Exact, "R"), weight_int(1));
        assert_eq!(lifted.iter().count(), 1);
        // wfomc_of_true matches the exact computation.
        let voc = Vocabulary::from_pairs([("R", 2), ("S", 1)]);
        assert_eq!(
            lifted.wfomc_of_true(&Exact, &voc, 3),
            w.wfomc_of_true(&voc, 3)
        );
    }

    #[test]
    fn elem_weights_default_beyond_table() {
        let mut ew: ElemWeights<Exact> = ElemWeights::new();
        assert!(ew.is_empty());
        ew.push(weight_int(5), weight_int(7));
        assert_eq!(ew.len(), 1);
        assert_eq!(ew.var_weight(&Exact, 0, true), weight_int(5));
        assert_eq!(ew.var_weight(&Exact, 0, false), weight_int(7));
        assert_eq!(ew.var_weight(&Exact, 3, true), weight_int(1));
        assert_eq!(ew.var_total(&Exact, 0), weight_int(12));
        assert_eq!(ew.var_total(&Exact, 9), weight_int(2));
    }

    #[test]
    fn generic_power_cache_matches_algebra_pow() {
        let base = LogF64.from_weight(&weight_ratio(-3, 2));
        let mut cache = Powers::new(&LogF64, base, 8);
        for e in [0usize, 3, 1, 8, 5, 20, 100, 20, 8] {
            let direct = LogF64.pow(cache.base(), e);
            let cached = cache.pow(&LogF64, e);
            assert_eq!(cached.signum(), direct.signum(), "e = {e}");
            assert_close(cached.ln_abs(), direct.ln_abs());
        }
    }
}
