//! The Markov Logic Network data model.

use std::fmt;

use wfomc_logic::syntax::Formula;
use wfomc_logic::term::Variable;
use wfomc_logic::vocabulary::Vocabulary;
use wfomc_logic::weights::Weight;

/// The weight attached to one MLN constraint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConstraintWeight {
    /// A soft constraint with a finite multiplicative weight.
    Soft(Weight),
    /// A hard constraint (weight ∞): worlds violating it have weight zero.
    Hard,
}

/// One constraint of an MLN: a weight and a formula, possibly with free
/// variables (the free variables are implicitly grounded over the domain, as
/// in Example 1.1's `(3, Spouse(x,y) ∧ Female(x) ⇒ Male(y))`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MlnConstraint {
    /// The constraint weight.
    pub weight: ConstraintWeight,
    /// The constraint formula.
    pub formula: Formula,
    /// The free variables, in a fixed order (the grounding tuple order).
    pub variables: Vec<Variable>,
}

impl MlnConstraint {
    /// Number of groundings over a domain of size `n`.
    pub fn num_groundings(&self, n: usize) -> usize {
        n.pow(self.variables.len() as u32)
    }
}

/// Errors raised while building or reducing an MLN.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MlnError {
    /// A hard constraint has free variables that could not be closed.
    MalformedConstraint(String),
}

impl fmt::Display for MlnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlnError::MalformedConstraint(msg) => write!(f, "malformed constraint: {msg}"),
        }
    }
}

impl std::error::Error for MlnError {}

/// A Markov Logic Network: an ordered list of constraints.
#[derive(Clone, Default, Debug)]
pub struct MarkovLogicNetwork {
    constraints: Vec<MlnConstraint>,
}

impl MarkovLogicNetwork {
    /// An empty MLN (its distribution is uniform over all structures).
    pub fn new() -> Self {
        MarkovLogicNetwork::default()
    }

    /// Adds a soft constraint `(weight, formula)`. The formula's free
    /// variables are grounded over the domain.
    pub fn add_soft(&mut self, weight: Weight, formula: Formula) -> &mut Self {
        let variables: Vec<Variable> = formula.free_variables().into_iter().collect();
        self.constraints.push(MlnConstraint {
            weight: ConstraintWeight::Soft(weight),
            formula,
            variables,
        });
        self
    }

    /// Adds a hard constraint.
    pub fn add_hard(&mut self, formula: Formula) -> &mut Self {
        let variables: Vec<Variable> = formula.free_variables().into_iter().collect();
        self.constraints.push(MlnConstraint {
            weight: ConstraintWeight::Hard,
            formula,
            variables,
        });
        self
    }

    /// The constraints in insertion order.
    pub fn constraints(&self) -> &[MlnConstraint] {
        &self.constraints
    }

    /// The relational vocabulary mentioned by the constraints.
    pub fn vocabulary(&self) -> Vocabulary {
        let mut voc = Vocabulary::new();
        for c in &self.constraints {
            for p in c.formula.vocabulary().iter() {
                voc.add(p.clone());
            }
        }
        voc
    }

    /// The conjunction of all hard constraints, each universally closed over
    /// its free variables.
    pub fn hard_sentence(&self) -> Formula {
        Formula::and_all(self.constraints.iter().filter_map(|c| {
            if matches!(c.weight, ConstraintWeight::Hard) {
                Some(Formula::forall_many(c.variables.clone(), c.formula.clone()))
            } else {
                None
            }
        }))
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True if the network has no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_logic::builders::*;
    use wfomc_logic::weights::weight_int;

    fn spouse_body() -> Formula {
        implies(
            and(vec![atom("Spouse", &["x", "y"]), atom("Female", &["x"])]),
            atom("Male", &["y"]),
        )
    }

    #[test]
    fn building_a_network() {
        let mut mln = MarkovLogicNetwork::new();
        mln.add_soft(weight_int(3), spouse_body());
        mln.add_hard(forall(["x"], not(atom("Spouse", &["x", "x"]))));
        assert_eq!(mln.len(), 2);
        assert!(!mln.is_empty());
        assert_eq!(mln.vocabulary().len(), 3);
        // The soft constraint has two free variables → n² groundings.
        assert_eq!(mln.constraints()[0].variables.len(), 2);
        assert_eq!(mln.constraints()[0].num_groundings(3), 9);
        // The hard constraint is already closed → 1 grounding.
        assert_eq!(mln.constraints()[1].num_groundings(3), 1);
    }

    #[test]
    fn hard_sentence_conjoins_closures() {
        let mut mln = MarkovLogicNetwork::new();
        mln.add_hard(not(atom("Spouse", &["x", "x"])));
        mln.add_soft(weight_int(2), atom("Female", &["x"]));
        let hard = mln.hard_sentence();
        assert!(hard.is_sentence());
        // Only the hard constraint appears.
        assert!(!hard.to_string().contains("Female"));
    }

    #[test]
    fn empty_network_has_trivial_hard_sentence() {
        let mln = MarkovLogicNetwork::new();
        assert_eq!(mln.hard_sentence(), Formula::Top);
        assert!(mln.is_empty());
    }
}
