//! The arena-based NNF circuit intermediate representation.
//!
//! A [`Circuit`] owns a flat arena of [`Node`]s identified by [`NodeId`].
//! Construction goes through the `mk_*` methods, which apply local
//! simplifications (constant folding, And-flattening) and **structural
//! hashing**: structurally identical nodes are created once and shared, so
//! the arena is a DAG, never a tree. Children always have smaller ids than
//! their parents, which gives every circuit a ready-made topological order —
//! the property the linear-time evaluator relies on.

use std::collections::HashMap;
use std::fmt;

/// A propositional variable index.
pub type Var = usize;

/// A literal over [`Var`], the circuit crate's own minimal literal type.
///
/// `wfomc-prop`'s `Lit` converts to and from this trivially; keeping a local
/// definition lets this crate sit below `wfomc-prop` in the dependency graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CLit {
    /// The variable index.
    pub var: Var,
    /// True for a positive literal.
    pub positive: bool,
}

impl CLit {
    /// A positive literal.
    pub fn pos(var: Var) -> CLit {
        CLit {
            var,
            positive: true,
        }
    }

    /// A negative literal.
    pub fn neg(var: Var) -> CLit {
        CLit {
            var,
            positive: false,
        }
    }

    /// The complementary literal.
    pub fn negated(self) -> CLit {
        CLit {
            var: self.var,
            positive: !self.positive,
        }
    }
}

impl fmt::Display for CLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// An index into a [`Circuit`]'s node arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena slot as a usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One circuit node.
///
/// The d-DNNF invariants maintained by the compiler are:
/// * **decomposability** — the children of an [`Node::And`] mention pairwise
///   disjoint variable sets;
/// * **determinism** — [`Node::Decision`] is the only disjunction, and its
///   branches contradict on `var`: the node denotes
///   `(var ∧ hi) ∨ (¬var ∧ lo)` where neither branch mentions `var`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Node {
    /// The constant false (empty disjunction).
    False,
    /// The constant true (empty conjunction).
    True,
    /// A literal.
    Lit(CLit),
    /// A decomposable conjunction of two or more children.
    And(Box<[NodeId]>),
    /// A deterministic disjunction `(var ∧ hi) ∨ (¬var ∧ lo)`.
    Decision {
        /// The decision variable; neither branch mentions it.
        var: Var,
        /// The branch taken when `var` is true.
        hi: NodeId,
        /// The branch taken when `var` is false.
        lo: NodeId,
    },
}

/// An arena of structurally hashed NNF nodes.
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    nodes: Vec<Node>,
    dedup: HashMap<Node, NodeId>,
}

impl Circuit {
    /// An empty circuit containing only the two constants.
    pub fn new() -> Circuit {
        let mut c = Circuit {
            nodes: Vec::new(),
            dedup: HashMap::new(),
        };
        c.intern(Node::False);
        c.intern(Node::True);
        c
    }

    fn intern(&mut self, node: Node) -> NodeId {
        if let Some(&id) = self.dedup.get(&node) {
            return id;
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("circuit arena overflow"));
        self.nodes.push(node.clone());
        self.dedup.insert(node, id);
        id
    }

    /// The constant-false node.
    pub fn ff(&self) -> NodeId {
        NodeId(0)
    }

    /// The constant-true node.
    pub fn tt(&self) -> NodeId {
        NodeId(1)
    }

    /// The node for a literal.
    pub fn mk_lit(&mut self, lit: CLit) -> NodeId {
        self.intern(Node::Lit(lit))
    }

    /// A decomposable conjunction. Flattens nested Ands, drops `true`
    /// children, collapses to `false` on a `false` child, and deduplicates
    /// repeated children.
    pub fn mk_and(&mut self, children: impl IntoIterator<Item = NodeId>) -> NodeId {
        let mut flat: Vec<NodeId> = Vec::new();
        for child in children {
            if child == self.ff() {
                return self.ff();
            }
            if child == self.tt() {
                continue;
            }
            match &self.nodes[child.index()] {
                Node::And(grandchildren) => flat.extend(grandchildren.iter().copied()),
                _ => flat.push(child),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        match flat.len() {
            0 => self.tt(),
            1 => flat[0],
            _ => self.intern(Node::And(flat.into_boxed_slice())),
        }
    }

    /// A deterministic decision node `(var ∧ hi) ∨ (¬var ∧ lo)`.
    pub fn mk_decision(&mut self, var: Var, hi: NodeId, lo: NodeId) -> NodeId {
        if hi == self.ff() && lo == self.ff() {
            return self.ff();
        }
        self.intern(Node::Decision { var, hi, lo })
    }

    /// The "free variable" gadget `(v ∧ true) ∨ (¬v ∧ true)`, used by the
    /// smoothing pass; it evaluates to `w(v) + w̄(v)`.
    pub fn mk_free(&mut self, var: Var) -> NodeId {
        let tt = self.tt();
        self.mk_decision(var, tt, tt)
    }

    /// The node stored at `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes in the arena (including both constants).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the arena holds only the constants.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// Number of child edges in the arena.
    pub fn edge_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::And(children) => children.len(),
                Node::Decision { .. } => 2,
                _ => 0,
            })
            .sum()
    }

    /// All nodes in arena (= topological) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The sorted variable support of every node, in arena order.
    ///
    /// `support[id]` is the set of variables the sub-circuit under `id`
    /// mentions; decision variables count as mentioned.
    pub fn supports(&self) -> Vec<Vec<Var>> {
        let mut supports: Vec<Vec<Var>> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let support = match node {
                Node::False | Node::True => Vec::new(),
                Node::Lit(lit) => vec![lit.var],
                Node::And(children) => {
                    let mut merged: Vec<Var> = Vec::new();
                    for child in children.iter() {
                        merged = merge_sorted(&merged, &supports[child.index()]);
                    }
                    merged
                }
                Node::Decision { var, hi, lo } => {
                    let branches = merge_sorted(&supports[hi.index()], &supports[lo.index()]);
                    merge_sorted(&branches, &[*var])
                }
            };
            supports.push(support);
        }
        supports
    }

    /// A copy of this circuit containing only the nodes reachable from
    /// `root` (plus the two constants), together with the remapped root.
    ///
    /// Compilation and smoothing leave superseded intermediate nodes behind
    /// in the arena; pruning once after smoothing means every later
    /// traversal — in particular each weighted evaluation — touches live
    /// nodes only.
    pub fn pruned(&self, root: NodeId) -> (Circuit, NodeId) {
        let mask = self.reachable(root);
        let mut out = Circuit::new();
        let mut remap: Vec<NodeId> = vec![NodeId(0); self.nodes.len()];
        for (index, node) in self.nodes.iter().enumerate() {
            if !mask[index] {
                continue;
            }
            remap[index] = match node {
                Node::False => out.ff(),
                Node::True => out.tt(),
                Node::Lit(lit) => out.mk_lit(*lit),
                Node::And(children) => {
                    let remapped: Vec<NodeId> = children.iter().map(|c| remap[c.index()]).collect();
                    out.mk_and(remapped)
                }
                Node::Decision { var, hi, lo } => {
                    out.mk_decision(*var, remap[hi.index()], remap[lo.index()])
                }
            };
        }
        (out, remap[root.index()])
    }

    /// Rebuilds a circuit from a decoded arena, re-validating the invariants
    /// the `mk_*` constructors normally guarantee: the two constants occupy
    /// slots 0 and 1, every child id points at an earlier slot (topological
    /// order), and no node is stored twice (structural hashing). Returns
    /// `None` on any violation — used by the snapshot decoder, which must
    /// reject corrupt arenas rather than evaluate them.
    pub fn from_nodes(nodes: Vec<Node>) -> Option<Circuit> {
        if nodes.len() < 2 || nodes[0] != Node::False || nodes[1] != Node::True {
            return None;
        }
        let mut dedup = HashMap::with_capacity(nodes.len());
        for (index, node) in nodes.iter().enumerate() {
            let in_range = |child: NodeId| child.index() < index;
            let ok = match node {
                Node::False => index == 0,
                Node::True => index == 1,
                Node::Lit(_) => true,
                Node::And(children) => children.len() >= 2 && children.iter().all(|&c| in_range(c)),
                Node::Decision { hi, lo, .. } => in_range(*hi) && in_range(*lo),
            };
            if !ok {
                return None;
            }
            let id = NodeId(u32::try_from(index).ok()?);
            if dedup.insert(node.clone(), id).is_some() {
                return None;
            }
        }
        Some(Circuit { nodes, dedup })
    }

    /// The set of nodes reachable from `root`, as a boolean mask in arena
    /// order.
    pub fn reachable(&self, root: NodeId) -> Vec<bool> {
        let mut mask = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if mask[id.index()] {
                continue;
            }
            mask[id.index()] = true;
            match &self.nodes[id.index()] {
                Node::And(children) => stack.extend(children.iter().copied()),
                Node::Decision { hi, lo, .. } => {
                    stack.push(*hi);
                    stack.push(*lo);
                }
                _ => {}
            }
        }
        mask
    }
}

/// Merges two ascending, duplicate-free variable lists.
fn merge_sorted(a: &[Var], b: &[Var]) -> Vec<Var> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_preallocated() {
        let c = Circuit::new();
        assert_eq!(c.node(c.ff()), &Node::False);
        assert_eq!(c.node(c.tt()), &Node::True);
        assert_eq!(c.len(), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn structural_hashing_shares_nodes() {
        let mut c = Circuit::new();
        let a = c.mk_lit(CLit::pos(0));
        let b = c.mk_lit(CLit::pos(0));
        assert_eq!(a, b);
        let d1 = c.mk_decision(1, a, c.ff());
        let d2 = c.mk_decision(1, a, c.ff());
        assert_eq!(d1, d2);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn and_simplifications() {
        let mut c = Circuit::new();
        let x = c.mk_lit(CLit::pos(0));
        let y = c.mk_lit(CLit::neg(1));
        let tt = c.tt();
        let ff = c.ff();
        assert_eq!(c.mk_and([]), tt);
        assert_eq!(c.mk_and([tt, tt]), tt);
        assert_eq!(c.mk_and([x]), x);
        assert_eq!(c.mk_and([x, tt]), x);
        assert_eq!(c.mk_and([x, ff, y]), ff);
        assert_eq!(c.mk_and([x, x]), x);
        // Nested Ands flatten into one node.
        let xy = c.mk_and([x, y]);
        let z = c.mk_lit(CLit::pos(2));
        let xyz = c.mk_and([xy, z]);
        match c.node(xyz) {
            Node::And(children) => assert_eq!(children.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
    }

    #[test]
    fn children_precede_parents() {
        let mut c = Circuit::new();
        let x = c.mk_lit(CLit::pos(0));
        let y = c.mk_lit(CLit::pos(1));
        let a = c.mk_and([x, y]);
        let d = c.mk_decision(2, a, x);
        for (id, node) in c.nodes().iter().enumerate() {
            let check = |child: NodeId| assert!(child.index() < id);
            match node {
                Node::And(children) => children.iter().copied().for_each(check),
                Node::Decision { hi, lo, .. } => {
                    check(*hi);
                    check(*lo);
                }
                _ => {}
            }
        }
        assert!(d.index() > a.index());
    }

    #[test]
    fn supports_are_sorted_unions() {
        let mut c = Circuit::new();
        let x = c.mk_lit(CLit::pos(3));
        let y = c.mk_lit(CLit::pos(1));
        let a = c.mk_and([x, y]);
        let d = c.mk_decision(2, a, c.ff());
        let free = c.mk_free(5);
        let supports = c.supports();
        assert_eq!(supports[a.index()], vec![1, 3]);
        assert_eq!(supports[d.index()], vec![1, 2, 3]);
        assert_eq!(supports[free.index()], vec![5]);
        assert_eq!(supports[c.ff().index()], Vec::<Var>::new());
    }

    #[test]
    fn dead_decision_collapses_to_false() {
        let mut c = Circuit::new();
        let ff = c.ff();
        assert_eq!(c.mk_decision(0, ff, ff), ff);
    }

    #[test]
    fn pruning_drops_garbage_and_preserves_structure() {
        let mut c = Circuit::new();
        let x = c.mk_lit(CLit::pos(0));
        let _garbage = c.mk_lit(CLit::pos(9));
        let _more_garbage = c.mk_free(7);
        let y = c.mk_lit(CLit::neg(1));
        let a = c.mk_and([x, y]);
        let d = c.mk_decision(2, a, x);
        let (pruned, new_root) = c.pruned(d);
        // Constants + x + y + And + Decision = 6 live nodes.
        assert_eq!(pruned.len(), 6);
        assert!(pruned.len() < c.len());
        let supports = pruned.supports();
        assert_eq!(supports[new_root.index()], vec![0, 1, 2]);
        match pruned.node(new_root) {
            Node::Decision { var, .. } => assert_eq!(*var, 2),
            other => panic!("expected decision root, got {other:?}"),
        }
    }

    #[test]
    fn from_nodes_round_trips_and_rejects_corruption() {
        let mut c = Circuit::new();
        let x = c.mk_lit(CLit::pos(0));
        let y = c.mk_lit(CLit::neg(1));
        let a = c.mk_and([x, y]);
        let d = c.mk_decision(2, a, x);

        // A faithful copy round-trips and keeps structural hashing alive.
        let mut rebuilt = Circuit::from_nodes(c.nodes().to_vec()).expect("valid arena");
        assert_eq!(rebuilt.nodes(), c.nodes());
        assert_eq!(rebuilt.mk_decision(2, a, x), d, "dedup map must be rebuilt");

        // Missing constants.
        assert!(Circuit::from_nodes(vec![]).is_none());
        assert!(Circuit::from_nodes(vec![Node::True, Node::False]).is_none());

        // Forward reference breaks topological order.
        let mut bad = c.nodes().to_vec();
        bad[a.index()] = Node::And(vec![x, NodeId(99)].into_boxed_slice());
        assert!(Circuit::from_nodes(bad).is_none());

        // Duplicate structural node breaks hashing.
        let mut dup = c.nodes().to_vec();
        dup.push(Node::Lit(CLit::pos(0)));
        assert!(Circuit::from_nodes(dup).is_none());
    }

    #[test]
    fn reachable_masks_garbage() {
        let mut c = Circuit::new();
        let x = c.mk_lit(CLit::pos(0));
        let _garbage = c.mk_lit(CLit::pos(9));
        let d = c.mk_decision(1, x, c.ff());
        let mask = c.reachable(d);
        assert!(mask[d.index()] && mask[x.index()] && mask[c.ff().index()]);
        assert!(!mask[_garbage.index()]);
        assert!(!mask[c.tt().index()]);
    }
}
