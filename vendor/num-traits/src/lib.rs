//! Offline stand-in for the `num-traits` crate.
//!
//! Provides the numeric traits used by this workspace — [`Zero`], [`One`],
//! [`Signed`] and [`ToPrimitive`] — with the same names and semantics as the
//! real crate, implemented for the primitive integer and float types. The
//! big-number types in the sibling `num-bigint` / `num-rational` stubs
//! implement these traits for themselves.

#![forbid(unsafe_code)]

use std::ops::{Add, Mul};

/// Additive identity.
pub trait Zero: Sized + Add<Self, Output = Self> {
    /// Returns the additive identity.
    fn zero() -> Self;
    /// True if `self` is the additive identity.
    fn is_zero(&self) -> bool;
    /// Sets `self` to the additive identity.
    fn set_zero(&mut self) {
        *self = Self::zero();
    }
}

/// Multiplicative identity.
pub trait One: Sized + Mul<Self, Output = Self> {
    /// Returns the multiplicative identity.
    fn one() -> Self;
    /// True if `self` is the multiplicative identity.
    fn is_one(&self) -> bool
    where
        Self: PartialEq,
    {
        *self == Self::one()
    }
    /// Sets `self` to the multiplicative identity.
    fn set_one(&mut self) {
        *self = Self::one();
    }
}

/// Numbers with a sign.
pub trait Signed: Sized {
    /// Absolute value.
    fn abs(&self) -> Self;
    /// `-1`, `0` or `+1` according to sign.
    fn signum(&self) -> Self;
    /// True if strictly positive.
    fn is_positive(&self) -> bool;
    /// True if strictly negative.
    fn is_negative(&self) -> bool;
}

/// Checked conversions into primitive types.
pub trait ToPrimitive {
    /// Converts to `i64` if representable.
    fn to_i64(&self) -> Option<i64>;
    /// Converts to `u64` if representable.
    fn to_u64(&self) -> Option<u64>;
    /// Converts to `usize` if representable.
    fn to_usize(&self) -> Option<usize> {
        self.to_u64().and_then(|v| usize::try_from(v).ok())
    }
    /// Converts to `f64` (possibly losing precision).
    fn to_f64(&self) -> Option<f64> {
        self.to_i64().map(|v| v as f64)
    }
}

macro_rules! impl_int_traits {
    ($($t:ty),*) => {$(
        impl Zero for $t {
            fn zero() -> Self { 0 }
            fn is_zero(&self) -> bool { *self == 0 }
        }
        impl One for $t {
            fn one() -> Self { 1 }
        }
        impl ToPrimitive for $t {
            fn to_i64(&self) -> Option<i64> { i64::try_from(*self).ok() }
            fn to_u64(&self) -> Option<u64> { u64::try_from(*self).ok() }
            fn to_f64(&self) -> Option<f64> { Some(*self as f64) }
        }
    )*};
}

impl_int_traits!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_signed_int {
    ($($t:ty),*) => {$(
        impl Signed for $t {
            fn abs(&self) -> Self { <$t>::abs(*self) }
            fn signum(&self) -> Self { <$t>::signum(*self) }
            fn is_positive(&self) -> bool { *self > 0 }
            fn is_negative(&self) -> bool { *self < 0 }
        }
    )*};
}

impl_signed_int!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_float_traits {
    ($($t:ty),*) => {$(
        impl Zero for $t {
            fn zero() -> Self { 0.0 }
            fn is_zero(&self) -> bool { *self == 0.0 }
        }
        impl One for $t {
            fn one() -> Self { 1.0 }
        }
        impl Signed for $t {
            fn abs(&self) -> Self { <$t>::abs(*self) }
            fn signum(&self) -> Self { <$t>::signum(*self) }
            fn is_positive(&self) -> bool { *self > 0.0 }
            fn is_negative(&self) -> bool { *self < 0.0 }
        }
        impl ToPrimitive for $t {
            fn to_i64(&self) -> Option<i64> {
                if self.fract() == 0.0 && *self >= i64::MIN as $t && *self <= i64::MAX as $t {
                    Some(*self as i64)
                } else {
                    None
                }
            }
            fn to_u64(&self) -> Option<u64> {
                if self.fract() == 0.0 && *self >= 0.0 && *self <= u64::MAX as $t {
                    Some(*self as u64)
                } else {
                    None
                }
            }
            fn to_f64(&self) -> Option<f64> { Some(*self as f64) }
        }
    )*};
}

impl_float_traits!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(i64::zero(), 0);
        assert_eq!(u32::one(), 1);
        assert!(0u64.is_zero());
        assert!(1i32.is_one());
    }

    #[test]
    fn signs() {
        assert!((-3i64).is_negative());
        assert!(!0i64.is_negative());
        assert_eq!((-3i32).abs(), 3);
        assert_eq!((-3i32).signum(), -1);
    }

    #[test]
    fn conversions() {
        assert_eq!(300usize.to_i64(), Some(300));
        assert_eq!((-1i64).to_u64(), None);
        assert_eq!(2.5f64.to_i64(), None);
        assert_eq!(2.0f64.to_i64(), Some(2));
    }
}
