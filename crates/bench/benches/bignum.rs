//! The vendored bignum's hot paths: inline small values, Karatsuba
//! multiplication, Euclid gcd, and the balanced sum-tree accumulation —
//! measured both as microbenchmarks and through the multiplication-heavy
//! lifted workloads that motivated them (snapshot in `BENCH_bignum.json`).
//!
//! The `mul/dispatch-vs-schoolbook` pair pins the Karatsuba crossover: at and
//! below the threshold the two are the same code path, above it the dispatch
//! should pull ahead on balanced operands.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use num_bigint::BigUint;
use num_traits::One;
use wfomc::core::fo2::wfomc_fo2;
use wfomc::prelude::*;
use wfomc_bench::{bignum_factorial_chain, bignum_harmonic, standard_weights};

/// A dense operand with `limbs` 32-bit limbs (all bits set, minus a nudge so
/// squares are not artificially regular).
fn dense(limbs: usize) -> BigUint {
    let mut x = BigUint::one();
    x = x << (32 * limbs);
    x - BigUint::from(41u32)
}

fn bench_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("bignum");
    for limbs in [16usize, 32, 64, 256] {
        let a = dense(limbs);
        let b = dense(limbs) - BigUint::from(1000u32);
        group.bench_with_input(BenchmarkId::new("mul/dispatch", limbs), &limbs, |bch, _| {
            bch.iter(|| &a * &b)
        });
        group.bench_with_input(
            BenchmarkId::new("mul/schoolbook", limbs),
            &limbs,
            |bch, _| bch.iter(|| a.mul_schoolbook(&b)),
        );
    }
    group.finish();
}

fn bench_small_value_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("bignum");
    // Chains dominated by word-sized values: the inline representation keeps
    // every step allocation-free.
    group.bench_function("small/factorial-500", |b| {
        b.iter(|| bignum_factorial_chain(500))
    });
    // Rational normalization: gcd + division per step.
    group.bench_function("small/harmonic-200", |b| b.iter(|| bignum_harmonic(200)));
    group.finish();
}

fn bench_lifted_workloads(c: &mut Criterion) {
    // The lifted workloads run tens of milliseconds each — fewer samples.
    let mut tuned = c
        .clone()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let mut group = tuned.benchmark_group("bignum");
    let weights = standard_weights();

    // The FO² cell-sum engine's huge-exponent products (acceptance workload).
    let smokers = catalog::smokers_constraint();
    let voc = smokers.vocabulary();
    group.bench_function("fo2/smokers-30", |b| {
        b.iter(|| wfomc_fo2(&smokers, &voc, 30, &weights).unwrap())
    });

    // Circuit evaluation: one compiled d-DNNF, exact weight sweep.
    let solver = Solver::builder()
        .ground_backend(WmcBackend::Circuit)
        .build();
    let plan = solver
        .plan(&Problem::new(catalog::transitivity()))
        .expect("transitivity plans");
    let points: Vec<(usize, Weights)> = (0..16)
        .map(|i| (3, Weights::from_ints([("R", i + 1, 1)])))
        .collect();
    group.bench_function("circuit/eval-sweep-16", |b| {
        b.iter(|| {
            for (n, w) in &points {
                let _ = plan.count(*n, w).unwrap();
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mul,
    bench_small_value_paths,
    bench_lifted_workloads
);
criterion_main!(benches);
