//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmarking API surface this workspace uses —
//! [`criterion_group!`], [`criterion_main!`], the [`Criterion`] builder,
//! [`BenchmarkGroup`]s with `bench_function` / `bench_with_input`,
//! [`BenchmarkId`] and [`Bencher::iter`] — with honest but simple wall-clock
//! measurement: per sample, the closure is run in a timed batch, and the
//! median over `sample_size` samples is reported to stdout as
//! `group/id ... median  (samples)` lines. No statistical analysis, HTML
//! reports or regression tracking.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver and configuration builder.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total time budget for sampling.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.clone();
        run_benchmark(&config, &id.to_string(), &mut f);
        self
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let config = self.criterion.clone();
        run_benchmark(&config, &full, &mut f);
        self
    }

    /// Runs a benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let config = self.criterion.clone();
        run_benchmark(&config, &full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (a no-op in this stand-in, kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id like `"function/parameter"`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    batch_size: u64,
    /// Duration of the most recent timed batch.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the current batch size.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.batch_size {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(config: &Criterion, id: &str, f: &mut F) {
    // Warm-up: run single batches until the warm-up budget is spent, keeping
    // the last timing as the batch-size estimate.
    let mut bencher = Bencher {
        batch_size: 1,
        elapsed: Duration::ZERO,
    };
    let warm_up_start = Instant::now();
    let per_iter = loop {
        f(&mut bencher);
        if warm_up_start.elapsed() >= config.warm_up_time {
            break bencher.elapsed.max(Duration::from_nanos(1));
        }
    };

    // Choose a batch size so that all samples fit the measurement budget.
    let per_sample = config.measurement_time.as_nanos() / config.sample_size as u128;
    let batch = (per_sample / per_iter.as_nanos()).clamp(1, u128::from(u32::MAX)) as u64;
    bencher.batch_size = batch;

    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    let deadline = Instant::now() + config.measurement_time * 2;
    for _ in 0..config.sample_size {
        f(&mut bencher);
        samples.push(bencher.elapsed.as_nanos() as f64 / batch as f64);
        if Instant::now() >= deadline {
            break;
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!(
        "{id:<60} {:>14}  ({} samples × {batch} iters)",
        format_nanos(median),
        samples.len()
    );
}

fn format_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut criterion: $crate::Criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut counter = 0u64;
        fast_config().bench_function("counting", |b| {
            b.iter(|| {
                counter += 1;
                counter
            })
        });
        assert!(counter > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = fast_config();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, &n| b.iter(|| n * 2));
        group.finish();
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn format_scales() {
        assert!(format_nanos(500.0).ends_with("ns"));
        assert!(format_nanos(5_000.0).ends_with("µs"));
        assert!(format_nanos(5_000_000.0).ends_with("ms"));
        assert!(format_nanos(5_000_000_000.0).ends_with("s"));
    }
}
