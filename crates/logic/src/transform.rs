//! Syntactic transformations: substitution, simplification, negation normal
//! form, renaming bound variables apart, and prenex normal form.
//!
//! These are the building blocks of the paper's reductions: Lemma 3.3
//! (Skolemization) requires prenex form; the FO² algorithm (Appendix C)
//! requires NNF matrices; grounding requires substitution of constants for
//! variables.

use std::collections::{BTreeSet, HashMap};

use crate::syntax::{Atom, Formula};
use crate::term::{Term, Variable};

/// A quantifier kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Quantifier {
    /// Universal ∀.
    Forall,
    /// Existential ∃.
    Exists,
}

impl Quantifier {
    /// The dual quantifier (∀ ↔ ∃), used when negation crosses a quantifier.
    pub fn dual(self) -> Quantifier {
        match self {
            Quantifier::Forall => Quantifier::Exists,
            Quantifier::Exists => Quantifier::Forall,
        }
    }
}

/// A formula in prenex normal form: a quantifier prefix and a quantifier-free
/// matrix.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Prenex {
    /// The quantifier prefix, outermost first.
    pub prefix: Vec<(Quantifier, Variable)>,
    /// The quantifier-free matrix.
    pub matrix: Formula,
}

impl Prenex {
    /// Reassembles the prenex formula into a plain [`Formula`].
    pub fn to_formula(&self) -> Formula {
        let mut f = self.matrix.clone();
        for (q, v) in self.prefix.iter().rev() {
            f = match q {
                Quantifier::Forall => Formula::forall(v.clone(), f),
                Quantifier::Exists => Formula::exists(v.clone(), f),
            };
        }
        f
    }

    /// True if the prefix is purely universal (the ∀* form targeted by
    /// Lemma 3.3).
    pub fn is_universal(&self) -> bool {
        self.prefix.iter().all(|(q, _)| *q == Quantifier::Forall)
    }

    /// Index of the first existential quantifier, if any.
    pub fn first_existential(&self) -> Option<usize> {
        self.prefix
            .iter()
            .position(|(q, _)| *q == Quantifier::Exists)
    }
}

/// Substitutes `term` for every *free* occurrence of `var` in `f`.
///
/// The substitution is capture-avoiding: bound variables that would capture a
/// variable occurring in `term` are renamed first.
pub fn substitute(f: &Formula, var: &Variable, term: &Term) -> Formula {
    let term_vars: BTreeSet<Variable> = match term {
        Term::Var(v) => [v.clone()].into_iter().collect(),
        Term::Const(_) => BTreeSet::new(),
    };
    subst_rec(f, var, term, &term_vars)
}

fn subst_term(t: &Term, var: &Variable, term: &Term) -> Term {
    match t {
        Term::Var(v) if v == var => term.clone(),
        other => other.clone(),
    }
}

fn subst_rec(f: &Formula, var: &Variable, term: &Term, term_vars: &BTreeSet<Variable>) -> Formula {
    match f {
        Formula::Top => Formula::Top,
        Formula::Bottom => Formula::Bottom,
        Formula::Atom(a) => Formula::Atom(Atom::new(
            a.predicate.clone(),
            a.args.iter().map(|t| subst_term(t, var, term)).collect(),
        )),
        Formula::Equals(a, b) => {
            Formula::Equals(subst_term(a, var, term), subst_term(b, var, term))
        }
        Formula::Not(g) => Formula::Not(Box::new(subst_rec(g, var, term, term_vars))),
        Formula::And(gs) => Formula::And(
            gs.iter()
                .map(|g| subst_rec(g, var, term, term_vars))
                .collect(),
        ),
        Formula::Or(gs) => Formula::Or(
            gs.iter()
                .map(|g| subst_rec(g, var, term, term_vars))
                .collect(),
        ),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(subst_rec(a, var, term, term_vars)),
            Box::new(subst_rec(b, var, term, term_vars)),
        ),
        Formula::Iff(a, b) => Formula::Iff(
            Box::new(subst_rec(a, var, term, term_vars)),
            Box::new(subst_rec(b, var, term, term_vars)),
        ),
        Formula::Forall(v, g) | Formula::Exists(v, g) => {
            let is_forall = matches!(f, Formula::Forall(..));
            if v == var {
                // The substituted variable is shadowed: no change below.
                return f.clone();
            }
            let (v2, g2) = if term_vars.contains(v) {
                // Rename the bound variable to avoid capture.
                let mut avoid: Vec<Variable> = g.all_variables().into_iter().collect();
                avoid.extend(term_vars.iter().cloned());
                avoid.push(var.clone());
                let fresh = v.fresh_avoiding(avoid.iter());
                let renamed = substitute(g, v, &Term::Var(fresh.clone()));
                (fresh, renamed)
            } else {
                (v.clone(), (**g).clone())
            };
            let body = Box::new(subst_rec(&g2, var, term, term_vars));
            if is_forall {
                Formula::Forall(v2, body)
            } else {
                Formula::Exists(v2, body)
            }
        }
    }
}

/// Substitutes several variables simultaneously (applied left to right, which
/// is equivalent to simultaneous substitution when the replacement terms are
/// constants — the only case the grounding code uses).
pub fn substitute_all(f: &Formula, bindings: &[(Variable, Term)]) -> Formula {
    let mut out = f.clone();
    for (v, t) in bindings {
        out = substitute(&out, v, t);
    }
    out
}

/// Boolean-level simplification: propagates ⊤/⊥, collapses double negation,
/// flattens conjunction/disjunction, drops quantifiers over variable-free
/// bodies when the body is a constant, and evaluates ground equalities.
pub fn simplify(f: &Formula) -> Formula {
    f.map_bottom_up(&mut |node| match node {
        Formula::Not(inner) => Formula::not(*inner),
        Formula::And(parts) => Formula::and_all(parts),
        Formula::Or(parts) => Formula::or_all(parts),
        Formula::Implies(a, b) => match (*a, *b) {
            (Formula::Top, b) => b,
            (Formula::Bottom, _) => Formula::Top,
            (_, Formula::Top) => Formula::Top,
            (a, Formula::Bottom) => Formula::not(a),
            (a, b) => Formula::Implies(Box::new(a), Box::new(b)),
        },
        Formula::Iff(a, b) => match (*a, *b) {
            (Formula::Top, b) => b,
            (a, Formula::Top) => a,
            (Formula::Bottom, b) => Formula::not(b),
            (a, Formula::Bottom) => Formula::not(a),
            (a, b) if a == b => Formula::Top,
            (a, b) => Formula::Iff(Box::new(a), Box::new(b)),
        },
        Formula::Equals(Term::Const(a), Term::Const(b)) => {
            if a == b {
                Formula::Top
            } else {
                Formula::Bottom
            }
        }
        Formula::Equals(Term::Var(a), Term::Var(b)) if a == b => Formula::Top,
        Formula::Forall(v, body) => match *body {
            Formula::Top => Formula::Top,
            Formula::Bottom => Formula::Bottom,
            other => Formula::Forall(v, Box::new(other)),
        },
        Formula::Exists(v, body) => match *body {
            Formula::Top => Formula::Top,
            Formula::Bottom => Formula::Bottom,
            other => Formula::Exists(v, Box::new(other)),
        },
        other => other,
    })
}

/// Negation normal form: eliminates `⇒`/`⇔` and pushes negations down to
/// literals. Quantifiers are preserved (and dualized under negation).
pub fn nnf(f: &Formula) -> Formula {
    nnf_rec(f, false)
}

fn nnf_rec(f: &Formula, negated: bool) -> Formula {
    match f {
        Formula::Top => {
            if negated {
                Formula::Bottom
            } else {
                Formula::Top
            }
        }
        Formula::Bottom => {
            if negated {
                Formula::Top
            } else {
                Formula::Bottom
            }
        }
        Formula::Atom(_) | Formula::Equals(..) => {
            if negated {
                Formula::Not(Box::new(f.clone()))
            } else {
                f.clone()
            }
        }
        Formula::Not(g) => nnf_rec(g, !negated),
        Formula::And(gs) => {
            let parts = gs.iter().map(|g| nnf_rec(g, negated));
            if negated {
                Formula::or_all(parts)
            } else {
                Formula::and_all(parts)
            }
        }
        Formula::Or(gs) => {
            let parts = gs.iter().map(|g| nnf_rec(g, negated));
            if negated {
                Formula::and_all(parts)
            } else {
                Formula::or_all(parts)
            }
        }
        Formula::Implies(a, b) => {
            // a ⇒ b  ≡  ¬a ∨ b
            let rewritten = Formula::or(Formula::not((**a).clone()), (**b).clone());
            nnf_rec(&rewritten, negated)
        }
        Formula::Iff(a, b) => {
            // a ⇔ b ≡ (a ∧ b) ∨ (¬a ∧ ¬b)
            let rewritten = Formula::or(
                Formula::and((**a).clone(), (**b).clone()),
                Formula::and(Formula::not((**a).clone()), Formula::not((**b).clone())),
            );
            nnf_rec(&rewritten, negated)
        }
        Formula::Forall(v, g) => {
            let body = nnf_rec(g, negated);
            if negated {
                Formula::Exists(v.clone(), Box::new(body))
            } else {
                Formula::Forall(v.clone(), Box::new(body))
            }
        }
        Formula::Exists(v, g) => {
            let body = nnf_rec(g, negated);
            if negated {
                Formula::Forall(v.clone(), Box::new(body))
            } else {
                Formula::Exists(v.clone(), Box::new(body))
            }
        }
    }
}

/// Renames bound variables so that (i) every quantifier binds a distinct
/// variable and (ii) no bound variable collides with a free variable.
///
/// Note that this may *increase* the number of distinct variables — a formula
/// in FO² that re-uses its two variables will leave FO² after renaming. The
/// FO² algorithm therefore never calls this; it is used by the generic prenex
/// conversion (Lemma 3.3 does not care about the number of variables).
pub fn rename_apart(f: &Formula) -> Formula {
    let mut used: BTreeSet<Variable> = f.free_variables();
    let mut counter: HashMap<String, usize> = HashMap::new();
    rename_rec(f, &HashMap::new(), &mut used, &mut counter)
}

fn rename_rec(
    f: &Formula,
    renaming: &HashMap<Variable, Variable>,
    used: &mut BTreeSet<Variable>,
    counter: &mut HashMap<String, usize>,
) -> Formula {
    let rename_term = |t: &Term, renaming: &HashMap<Variable, Variable>| -> Term {
        match t {
            Term::Var(v) => Term::Var(renaming.get(v).cloned().unwrap_or_else(|| v.clone())),
            Term::Const(c) => Term::Const(*c),
        }
    };
    match f {
        Formula::Top => Formula::Top,
        Formula::Bottom => Formula::Bottom,
        Formula::Atom(a) => Formula::Atom(Atom::new(
            a.predicate.clone(),
            a.args.iter().map(|t| rename_term(t, renaming)).collect(),
        )),
        Formula::Equals(a, b) => {
            Formula::Equals(rename_term(a, renaming), rename_term(b, renaming))
        }
        Formula::Not(g) => Formula::Not(Box::new(rename_rec(g, renaming, used, counter))),
        Formula::And(gs) => Formula::And(
            gs.iter()
                .map(|g| rename_rec(g, renaming, used, counter))
                .collect(),
        ),
        Formula::Or(gs) => Formula::Or(
            gs.iter()
                .map(|g| rename_rec(g, renaming, used, counter))
                .collect(),
        ),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(rename_rec(a, renaming, used, counter)),
            Box::new(rename_rec(b, renaming, used, counter)),
        ),
        Formula::Iff(a, b) => Formula::Iff(
            Box::new(rename_rec(a, renaming, used, counter)),
            Box::new(rename_rec(b, renaming, used, counter)),
        ),
        Formula::Forall(v, g) | Formula::Exists(v, g) => {
            let fresh = if used.contains(v) {
                let base = v.name().to_string();
                loop {
                    let c = counter.entry(base.clone()).or_insert(0);
                    *c += 1;
                    let candidate = Variable::new(format!("{base}_{c}"));
                    if !used.contains(&candidate) {
                        break candidate;
                    }
                }
            } else {
                v.clone()
            };
            used.insert(fresh.clone());
            let mut inner_renaming = renaming.clone();
            inner_renaming.insert(v.clone(), fresh.clone());
            let body = Box::new(rename_rec(g, &inner_renaming, used, counter));
            if matches!(f, Formula::Forall(..)) {
                Formula::Forall(fresh, body)
            } else {
                Formula::Exists(fresh, body)
            }
        }
    }
}

/// Converts a formula to prenex normal form.
///
/// The formula is first put in NNF (so negation never sits above a
/// quantifier), then bound variables are renamed apart, and finally the
/// quantifiers are hoisted outward left-to-right.
pub fn prenex(f: &Formula) -> Prenex {
    let renamed = rename_apart(&nnf(&simplify(f)));
    let mut prefix = Vec::new();
    let matrix = pull_quantifiers(&renamed, &mut prefix);
    Prenex { prefix, matrix }
}

fn pull_quantifiers(f: &Formula, prefix: &mut Vec<(Quantifier, Variable)>) -> Formula {
    match f {
        Formula::Forall(v, g) => {
            prefix.push((Quantifier::Forall, v.clone()));
            pull_quantifiers(g, prefix)
        }
        Formula::Exists(v, g) => {
            prefix.push((Quantifier::Exists, v.clone()));
            pull_quantifiers(g, prefix)
        }
        Formula::And(gs) => {
            let parts: Vec<Formula> = gs.iter().map(|g| pull_quantifiers(g, prefix)).collect();
            Formula::and_all(parts)
        }
        Formula::Or(gs) => {
            let parts: Vec<Formula> = gs.iter().map(|g| pull_quantifiers(g, prefix)).collect();
            Formula::or_all(parts)
        }
        Formula::Not(g) => Formula::not(pull_quantifiers(g, prefix)),
        // NNF has eliminated ⇒ and ⇔; atoms and constants pass through.
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::*;

    #[test]
    fn substitution_replaces_free_occurrences_only() {
        // ∀x R(x, y) with y ↦ c0.
        let f = forall(["x"], atom("R", &["x", "y"]));
        let g = substitute(&f, &Variable::new("y"), &Term::constant(0));
        assert_eq!(g.free_variables().len(), 0);
        // x is bound: substituting x is a no-op.
        let h = substitute(&f, &Variable::new("x"), &Term::constant(0));
        assert_eq!(h, f);
    }

    #[test]
    fn substitution_avoids_capture() {
        // ∃x R(x, y), substitute y ↦ x: the bound x must be renamed.
        let f = exists(["x"], atom("R", &["x", "y"]));
        let g = substitute(&f, &Variable::new("y"), &Term::var("x"));
        match &g {
            Formula::Exists(v, body) => {
                assert_ne!(v.name(), "x", "bound variable must have been renamed");
                // Body should be R(v, x) with distinct terms.
                match body.as_ref() {
                    Formula::Atom(a) => {
                        assert_ne!(a.args[0], a.args[1]);
                    }
                    other => panic!("unexpected body {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn simplify_constants_and_equality() {
        let f = and(vec![
            Formula::Top,
            or(vec![atom("R", &["x"]), Formula::Bottom]),
        ]);
        assert_eq!(simplify(&f), atom("R", &["x"]));
        assert_eq!(simplify(&eq("#1", "#1")), Formula::Top);
        assert_eq!(simplify(&eq("#1", "#2")), Formula::Bottom);
        assert_eq!(simplify(&eq("x", "x")), Formula::Top);
        let g = forall(["x"], Formula::Top);
        assert_eq!(simplify(&g), Formula::Top);
    }

    #[test]
    fn simplify_implication_and_iff() {
        let r = atom("R", &["x"]);
        assert_eq!(simplify(&implies(Formula::Top, r.clone())), r);
        assert_eq!(
            simplify(&implies(r.clone(), Formula::Bottom)),
            not(r.clone())
        );
        assert_eq!(simplify(&iff(r.clone(), r.clone())), Formula::Top);
    }

    #[test]
    fn nnf_pushes_negation_to_literals() {
        // ¬∀x (R(x) ⇒ S(x))  ≡  ∃x (R(x) ∧ ¬S(x))
        let f = not(forall(["x"], implies(atom("R", &["x"]), atom("S", &["x"]))));
        let g = nnf(&f);
        match &g {
            Formula::Exists(_, body) => match body.as_ref() {
                Formula::And(parts) => {
                    assert_eq!(parts.len(), 2);
                    assert!(matches!(parts[1], Formula::Not(_)));
                }
                other => panic!("unexpected body {other:?}"),
            },
            other => panic!("expected ∃, got {other:?}"),
        }
    }

    #[test]
    fn nnf_expands_iff() {
        let f = iff(atom("R", &["x"]), atom("S", &["x"]));
        let g = nnf(&f);
        // (R ∧ S) ∨ (¬R ∧ ¬S)
        match g {
            Formula::Or(parts) => assert_eq!(parts.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rename_apart_makes_binders_unique() {
        // ∀x R(x) ∧ ∀x S(x): the second binder must be renamed.
        let f = and(vec![
            forall(["x"], atom("R", &["x"])),
            forall(["x"], atom("S", &["x"])),
        ]);
        let g = rename_apart(&f);
        let mut binders = Vec::new();
        g.visit(&mut |node| {
            if let Formula::Forall(v, _) = node {
                binders.push(v.clone());
            }
        });
        assert_eq!(binders.len(), 2);
        assert_ne!(binders[0], binders[1]);
    }

    #[test]
    fn prenex_produces_quantifier_free_matrix() {
        // ∀x (R(x) ∨ ∃y S(x,y)) — prefix ∀x ∃y, matrix quantifier-free.
        let f = forall(
            ["x"],
            or(vec![
                atom("R", &["x"]),
                exists(["y"], atom("S", &["x", "y"])),
            ]),
        );
        let p = prenex(&f);
        assert!(p.matrix.is_quantifier_free());
        assert_eq!(p.prefix.len(), 2);
        assert_eq!(p.prefix[0].0, Quantifier::Forall);
        assert_eq!(p.prefix[1].0, Quantifier::Exists);
        assert!(!p.is_universal());
        assert_eq!(p.first_existential(), Some(1));
        // Round-trip: the reassembled formula is a sentence over the same vocabulary.
        let back = p.to_formula();
        assert!(back.is_sentence());
        assert_eq!(back.vocabulary().len(), 2);
    }

    #[test]
    fn prenex_of_negated_exists_is_universal() {
        // ¬∃x R(x) is ∀x ¬R(x).
        let f = not(exists(["x"], atom("R", &["x"])));
        let p = prenex(&f);
        assert!(p.is_universal());
        assert_eq!(p.prefix.len(), 1);
    }
}
