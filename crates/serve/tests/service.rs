//! End-to-end tests over a real loopback socket: concurrent clients,
//! bit-identical values, typed limit errors, and JSONL crash recovery.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;

use wfomc_core::Problem;
use wfomc_logic::parser::parse;
use wfomc_serve::client::{self, Reply};
use wfomc_serve::http::{Server, ServerConfig, ServerHandle};
use wfomc_serve::json::Value;

/// FO² sentence (independent-set style) used throughout: every count is
/// checked against a direct `Plan::count` on the same build.
const SENTENCE: &str = "forall x. forall y. S(x) | N(x,y) | S(y)";

fn boot(
    registry_path: Option<PathBuf>,
) -> (ServerHandle, SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        capacity: 32,
        registry_path,
    })
    .expect("bind loopback");
    let handle = server.handle();
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());
    (handle, addr, daemon)
}

fn temp_registry(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "wfomc-serve-it-{tag}-{}-{n}/registry.jsonl",
        std::process::id()
    ))
}

fn direct_value(sentence: &str, n: usize) -> String {
    Problem::new(parse(sentence).unwrap())
        .plan()
        .unwrap()
        .count_default(n)
        .unwrap()
        .value
        .to_string()
}

fn json_of(reply: &Reply) -> Value {
    reply
        .json()
        .unwrap_or_else(|e| panic!("body is not JSON ({e}): {}", reply.body))
}

fn str_field(value: &Value, key: &str) -> String {
    value
        .get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing string `{key}` in {value:?}"))
        .to_string()
}

fn register(addr: SocketAddr, sentence: &str) -> String {
    let mut escaped = String::new();
    // Sentences here contain no JSON-special characters.
    escaped.push_str(sentence);
    let reply = client::post(
        addr,
        "/v1/plans",
        &format!(r#"{{"sentence": "{escaped}"}}"#),
    )
    .expect("register request");
    assert!(
        reply.status == 200 || reply.status == 201,
        "register failed: {} {}",
        reply.status,
        reply.body
    );
    str_field(&json_of(&reply), "id")
}

#[test]
fn concurrent_clients_get_bit_identical_values() {
    let (handle, addr, daemon) = boot(None);
    let id = register(addr, SENTENCE);

    // Ground truth from the library, computed once up front.
    let expected: Vec<(usize, String)> = (0..=8).map(|n| (n, direct_value(SENTENCE, n))).collect();

    let clients: Vec<_> = (0..8)
        .map(|worker| {
            let id = id.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                for round in 0..3 {
                    let (n, want) = &expected[(worker + round * 3) % expected.len()];
                    let reply = client::post(
                        addr,
                        &format!("/v1/plans/{id}/count"),
                        &format!(r#"{{"n": {n}}}"#),
                    )
                    .expect("count request");
                    assert_eq!(reply.status, 200, "{}", reply.body);
                    let body = reply.json().expect("count body parses");
                    assert_eq!(
                        &body
                            .get("value")
                            .and_then(Value::as_str)
                            .unwrap()
                            .to_string(),
                        want,
                        "served count for n={n} must be bit-identical to Plan::count"
                    );
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    assert_eq!(handle.stats().errors(), 0);
    assert!(handle.stats().requests() >= 25); // register + 24 counts
    handle.shutdown();
    daemon.join().unwrap().unwrap();
}

#[test]
fn deadline_capped_request_fails_typed_and_plan_stays_usable() {
    let (handle, addr, daemon) = boot(None);
    let id = register(addr, SENTENCE);
    let path = format!("/v1/plans/{id}/count");

    // timeout_ms: 0 trips the deadline on the first guard check.
    let reply = client::post(addr, &path, r#"{"n": 400, "timeout_ms": 0}"#).unwrap();
    assert_eq!(reply.status, 422, "{}", reply.body);
    let body = json_of(&reply);
    let error = body.get("error").expect("error object");
    assert_eq!(str_field(error, "kind"), "deadline_exceeded");
    assert!(
        error.get("phase").is_some(),
        "typed error carries the phase"
    );

    // A work cap trips deterministically too.
    let reply = client::post(addr, &path, r#"{"n": 400, "work_cap": 1}"#).unwrap();
    assert_eq!(reply.status, 422, "{}", reply.body);
    assert_eq!(
        str_field(json_of(&reply).get("error").unwrap(), "kind"),
        "work_cap_exceeded"
    );

    // The plan is not poisoned: the same id immediately serves real counts.
    let reply = client::post(addr, &path, r#"{"n": 6}"#).unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(
        str_field(&json_of(&reply), "value"),
        direct_value(SENTENCE, 6)
    );

    handle.shutdown();
    daemon.join().unwrap().unwrap();
}

#[test]
fn batch_shares_one_budget_and_reports_per_point() {
    let (handle, addr, daemon) = boot(None);
    let id = register(addr, SENTENCE);

    let reply = client::post(
        addr,
        &format!("/v1/plans/{id}/batch"),
        r#"{"points": [{"n": 2}, {"n": 4}, {"n": 6}]}"#,
    )
    .unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body);
    let body = json_of(&reply);
    let results = body.get("results").and_then(Value::as_arr).unwrap();
    assert_eq!(results.len(), 3);
    for (result, n) in results.iter().zip([2usize, 4, 6]) {
        assert_eq!(str_field(result, "value"), direct_value(SENTENCE, n));
    }

    // A zero deadline over the whole batch fails every point, typed.
    let reply = client::post(
        addr,
        &format!("/v1/plans/{id}/batch"),
        r#"{"points": [{"n": 300}, {"n": 400}], "timeout_ms": 0}"#,
    )
    .unwrap();
    assert_eq!(reply.status, 200, "batch itself succeeds: {}", reply.body);
    let body = json_of(&reply);
    let results = body.get("results").and_then(Value::as_arr).unwrap();
    assert_eq!(results.len(), 2);
    for result in results {
        let error = result.get("error").expect("per-point typed error");
        assert_eq!(str_field(error, "kind"), "deadline_exceeded");
    }

    handle.shutdown();
    daemon.join().unwrap().unwrap();
}

#[test]
fn batch_log_algebra_matches_library_lanes_bitwise() {
    let (handle, addr, daemon) = boot(None);
    let id = register(addr, SENTENCE);

    // Same-`n` sweep: the server routes this through the lane-batched
    // `LogF64xN` path. The wire sign/ln pairs must round-trip bit-identical
    // to the library's own lane evaluation.
    let points: Vec<(usize, wfomc_logic::weights::Weights)> = (0..3)
        .map(|_| (6usize, wfomc_logic::weights::Weights::ones()))
        .collect();
    let expected: Vec<_> = Problem::new(parse(SENTENCE).unwrap())
        .plan()
        .unwrap()
        .count_batch_log(&points)
        .into_iter()
        .map(|r| r.expect("library lane count"))
        .collect();

    let reply = client::post(
        addr,
        &format!("/v1/plans/{id}/batch"),
        r#"{"algebra": "log", "points": [{"n": 6}, {"n": 6}, {"n": 6}]}"#,
    )
    .unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body);
    let body = json_of(&reply);
    let results = body.get("results").and_then(Value::as_arr).unwrap();
    assert_eq!(results.len(), 3);
    for (result, want) in results.iter().zip(&expected) {
        assert_eq!(result.get("n").and_then(Value::as_u64), Some(6));
        assert_eq!(
            result.get("sign").and_then(Value::as_i64),
            Some(i64::from(want.signum()))
        );
        let ln = result
            .get("ln")
            .and_then(Value::as_f64)
            .expect("ln is a number for a nonzero count");
        assert_eq!(
            ln.to_bits(),
            want.ln_abs().to_bits(),
            "served ln must round-trip bit-identical"
        );
    }

    // An unknown algebra is rejected up front, not silently exact.
    let reply = client::post(
        addr,
        &format!("/v1/plans/{id}/batch"),
        r#"{"algebra": "decimal", "points": [{"n": 2}]}"#,
    )
    .unwrap();
    assert_eq!(reply.status, 400, "{}", reply.body);

    handle.shutdown();
    daemon.join().unwrap().unwrap();
}

#[test]
fn registry_log_survives_restart_and_truncates_corrupt_tail() {
    let path = temp_registry("restart");

    // First daemon: register, query, shut down.
    let (handle, addr, daemon) = boot(Some(path.clone()));
    let id = register(addr, SENTENCE);
    let want = direct_value(SENTENCE, 5);
    let reply = client::post(addr, &format!("/v1/plans/{id}/count"), r#"{"n": 5}"#).unwrap();
    assert_eq!(str_field(&json_of(&reply), "value"), want);
    handle.shutdown();
    daemon.join().unwrap().unwrap();

    // Simulate a crash mid-append: torn garbage at the tail.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"schema\":\"wfomc-serve/v1\",\"kind\":\"regis")
            .unwrap();
    }

    // Second daemon boots from the same log: same id, same value, and the
    // torn tail is gone from disk.
    let (handle, addr, daemon) = boot(Some(path.clone()));
    assert_eq!(handle.plans(), 1, "replayed exactly the good prefix");
    let reply = client::post(addr, &format!("/v1/plans/{id}/count"), r#"{"n": 5}"#).unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(str_field(&json_of(&reply), "value"), want);
    let logged = std::fs::read_to_string(&path).unwrap();
    assert!(logged.ends_with('\n'), "torn tail truncated: {logged:?}");
    assert_eq!(logged.lines().count(), 1);

    // Re-registering the same sentence is recognized, not duplicated.
    let reply = client::post(
        addr,
        "/v1/plans",
        &format!(r#"{{"sentence": "{SENTENCE}"}}"#),
    )
    .unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body);
    let body = json_of(&reply);
    assert_eq!(str_field(&body, "id"), id);
    assert_eq!(body.get("created").and_then(Value::as_bool), Some(false));

    handle.shutdown();
    daemon.join().unwrap().unwrap();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn error_paths_are_typed() {
    let (handle, addr, daemon) = boot(None);

    // Unknown plan id.
    let reply = client::post(addr, "/v1/plans/00000000deadbeef/count", r#"{"n": 2}"#).unwrap();
    assert_eq!(reply.status, 404);
    assert_eq!(
        str_field(json_of(&reply).get("error").unwrap(), "kind"),
        "unknown_plan"
    );

    // Wrong method on a known route.
    let reply = client::get(addr, "/v1/plans/00000000deadbeef/count").unwrap();
    assert_eq!(reply.status, 405);

    // Unknown route.
    let reply = client::get(addr, "/v2/anything").unwrap();
    assert_eq!(reply.status, 404);

    // Malformed JSON body.
    let reply = client::post(addr, "/v1/plans", "{not json").unwrap();
    assert_eq!(reply.status, 400);
    assert_eq!(
        str_field(json_of(&reply).get("error").unwrap(), "kind"),
        "bad_request"
    );

    // Unplannable sentence (parses, cannot be lifted or grounded: open).
    let reply = client::post(addr, "/v1/plans", r#"{"sentence": "R(x) & S(x,y)"}"#).unwrap();
    assert_eq!(reply.status, 422, "{}", reply.body);
    assert_eq!(
        str_field(json_of(&reply).get("error").unwrap(), "kind"),
        "plan_failed"
    );

    // Health and metrics respond while all of the above was going on.
    let reply = client::get(addr, "/v1/healthz").unwrap();
    assert_eq!(reply.status, 200);
    let reply = client::get(addr, "/v1/metrics").unwrap();
    assert_eq!(reply.status, 200);
    let body = json_of(&reply);
    assert_eq!(str_field(&body, "schema"), "wfomc-obs/v1");

    handle.shutdown();
    daemon.join().unwrap().unwrap();
}

#[test]
fn shutdown_drains_and_rejects_new_work() {
    let (handle, addr, daemon) = boot(None);
    let id = register(addr, SENTENCE);
    handle.shutdown();
    daemon.join().unwrap().unwrap();

    // The listener is gone; new connections are refused outright.
    assert!(client::post(addr, &format!("/v1/plans/{id}/count"), r#"{"n": 2}"#).is_err());
}

/// Reads a named counter out of the `/v1/metrics` overlay.
fn metric(addr: SocketAddr, name: &str) -> u64 {
    let reply = client::get(addr, "/v1/metrics").unwrap();
    json_of(&reply)
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing counter `{name}`: {}", reply.body))
}

#[test]
fn snapshot_warm_restart_is_bit_identical_and_survives_corruption() {
    let path = temp_registry("snap-warm");

    // First daemon: register, evaluate, shut down gracefully.
    let (handle, addr, daemon) = boot(Some(path.clone()));
    let id = register(addr, SENTENCE);
    let want = direct_value(SENTENCE, 6);
    let reply = client::post(addr, &format!("/v1/plans/{id}/count"), r#"{"n": 6}"#).unwrap();
    assert_eq!(str_field(&json_of(&reply), "value"), want);
    handle.shutdown();
    daemon.join().unwrap().unwrap();

    let snap_path = path
        .parent()
        .unwrap()
        .join("snapshots")
        .join(format!("{id}.snap"));
    assert!(snap_path.exists(), "registration wrote {snap_path:?}");

    // Warm boot: the plan comes back from its snapshot (a hit, no replan)
    // and serves the same bits.
    let (handle, addr, daemon) = boot(Some(path.clone()));
    assert_eq!(handle.plans(), 1);
    assert_eq!(metric(addr, "snap.hits"), 1, "boot loaded the snapshot");
    assert_eq!(metric(addr, "snap.invalid"), 0);
    let reply = client::get(addr, &format!("/v1/plans/{id}/stats")).unwrap();
    let stats = json_of(&reply);
    assert_eq!(
        stats.get("snapshotted").and_then(Value::as_bool),
        Some(true),
        "{}",
        reply.body
    );
    let reply = client::post(addr, &format!("/v1/plans/{id}/count"), r#"{"n": 6}"#).unwrap();
    assert_eq!(str_field(&json_of(&reply), "value"), want);
    handle.shutdown();
    daemon.join().unwrap().unwrap();

    // Flip one payload byte: the checksum fails, the boot silently replans,
    // and the answer is unchanged. The replan then rewrites a good file.
    {
        let mut bytes = std::fs::read(&snap_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&snap_path, &bytes).unwrap();
    }
    let (handle, addr, daemon) = boot(Some(path.clone()));
    assert_eq!(handle.plans(), 1);
    assert_eq!(metric(addr, "snap.invalid"), 1, "corruption was detected");
    assert_eq!(metric(addr, "snap.writes"), 1, "replan rewrote the file");
    let reply = client::post(addr, &format!("/v1/plans/{id}/count"), r#"{"n": 6}"#).unwrap();
    assert_eq!(str_field(&json_of(&reply), "value"), want);
    handle.shutdown();
    daemon.join().unwrap().unwrap();

    // The rewrite is valid again: one more boot, one more hit.
    let (handle, addr, daemon) = boot(Some(path.clone()));
    assert_eq!(metric(addr, "snap.hits"), 1);
    handle.shutdown();
    daemon.join().unwrap().unwrap();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn version_skewed_snapshot_silently_replans() {
    let path = temp_registry("snap-skew");
    let (handle, addr, daemon) = boot(Some(path.clone()));
    let id = register(addr, SENTENCE);
    let want = direct_value(SENTENCE, 4);
    handle.shutdown();
    daemon.join().unwrap().unwrap();

    // A snapshot from a future (or past) format version: bump the version
    // field right after the 4-byte magic.
    let snap_path = path
        .parent()
        .unwrap()
        .join("snapshots")
        .join(format!("{id}.snap"));
    let mut bytes = std::fs::read(&snap_path).unwrap();
    bytes[4] = bytes[4].wrapping_add(1);
    std::fs::write(&snap_path, &bytes).unwrap();

    let (handle, addr, daemon) = boot(Some(path.clone()));
    assert_eq!(handle.plans(), 1, "skew costs a replan, never a plan");
    assert_eq!(metric(addr, "snap.invalid"), 1, "skew counted as invalid");
    assert_eq!(metric(addr, "snap.hits"), 0);
    let reply = client::post(addr, &format!("/v1/plans/{id}/count"), r#"{"n": 4}"#).unwrap();
    assert_eq!(str_field(&json_of(&reply), "value"), want);
    handle.shutdown();
    daemon.join().unwrap().unwrap();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}
