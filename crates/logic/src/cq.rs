//! Conjunctive queries.
//!
//! A conjunctive query (CQ) is an existentially quantified conjunction of
//! positive relational atoms, `∃x̄ (A₁ ∧ … ∧ A_k)` (§3.1). The Figure 1
//! landscape and Theorem 3.6 (γ-acyclic CQs) are stated for CQs *without
//! self-joins* (every atom uses a distinct relation symbol).

use std::collections::BTreeSet;
use std::fmt;

use crate::clause::{Clause, Literal};
use crate::syntax::{Atom, Formula};
use crate::term::{Term, Variable};
use crate::vocabulary::Vocabulary;

/// A conjunctive query: an existentially quantified conjunction of positive
/// atoms. All variables are existentially quantified (Boolean query).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConjunctiveQuery {
    /// The query atoms.
    pub atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Creates a CQ from atoms.
    pub fn new(atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery { atoms }
    }

    /// The variables of the query, in order of first occurrence.
    pub fn variables(&self) -> Vec<Variable> {
        let mut out = Vec::new();
        for a in &self.atoms {
            for v in a.variables() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// The vocabulary of the query.
    pub fn vocabulary(&self) -> Vocabulary {
        let mut voc = Vocabulary::new();
        for a in &self.atoms {
            voc.add(a.predicate.clone());
        }
        voc
    }

    /// True if every atom uses a distinct relation symbol ("without
    /// self-joins", the standing assumption of §3.2).
    pub fn is_self_join_free(&self) -> bool {
        let mut seen = BTreeSet::new();
        for a in &self.atoms {
            if !seen.insert(a.predicate.name().to_string()) {
                return false;
            }
        }
        true
    }

    /// The CQ as a first-order sentence `∃x̄ ⋀ᵢ Aᵢ`.
    pub fn to_formula(&self) -> Formula {
        let body = Formula::and_all(self.atoms.iter().cloned().map(Formula::Atom));
        Formula::exists_many(self.variables(), body)
    }

    /// The *dual* positive clause `∀x̄ ⋁ᵢ Aᵢ` (§3.1: positive clauses without
    /// equality are the duals of CQs). `WFOMC` of the clause with weights
    /// (w, w̄) equals `WFOMC` of the negated query with weights swapped; the
    /// core crate exploits this duality.
    pub fn dual_clause(&self) -> Clause {
        Clause::new(self.atoms.iter().cloned().map(Literal::pos).collect())
    }

    /// Attempts to interpret a formula as a conjunctive query.
    ///
    /// Accepts `∃x̄ (A₁ ∧ … ∧ A_k)` with only positive relational atoms and no
    /// equality; returns `None` otherwise.
    pub fn from_formula(f: &Formula) -> Option<ConjunctiveQuery> {
        // Peel existential quantifiers.
        let mut body = f.clone();
        let mut bound = Vec::new();
        loop {
            body = match body {
                Formula::Exists(v, inner) => {
                    bound.push(v);
                    *inner
                }
                other => {
                    body = other;
                    break;
                }
            };
        }
        let mut atoms = Vec::new();
        collect_conjuncts(&body, &mut atoms)?;
        let q = ConjunctiveQuery::new(atoms);
        // A Boolean CQ must have every variable quantified.
        let vars: BTreeSet<_> = q.variables().into_iter().collect();
        let bound: BTreeSet<_> = bound.into_iter().collect();
        if vars.is_subset(&bound) {
            Some(q)
        } else {
            // Free variables present: not a Boolean CQ.
            None
        }
    }

    /// Per-atom variable lists, used to build the query hypergraph (variables
    /// are nodes, atoms are hyperedges).
    pub fn hyperedges(&self) -> Vec<(String, Vec<Variable>)> {
        self.atoms
            .iter()
            .map(|a| (a.predicate.name().to_string(), a.variables()))
            .collect()
    }

    /// True if any atom repeats a variable (e.g. `R(x,x)`), which some of the
    /// specialized algorithms do not support.
    pub fn has_repeated_variable_in_atom(&self) -> bool {
        self.atoms.iter().any(|a| {
            let vars: Vec<_> = a.args.iter().filter_map(|t| t.as_var().cloned()).collect();
            let set: BTreeSet<_> = vars.iter().cloned().collect();
            set.len() != vars.len()
        })
    }

    /// True if every argument of every atom is a variable (no constants).
    pub fn is_constant_free(&self) -> bool {
        self.atoms.iter().all(|a| a.args.iter().all(Term::is_var))
    }
}

fn collect_conjuncts(f: &Formula, atoms: &mut Vec<Atom>) -> Option<()> {
    match f {
        Formula::Atom(a) => {
            atoms.push(a.clone());
            Some(())
        }
        Formula::And(parts) => {
            for p in parts {
                collect_conjuncts(p, atoms)?;
            }
            Some(())
        }
        Formula::Top => Some(()),
        _ => None,
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q() :- ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::*;
    use crate::vocabulary::Predicate;

    fn mk_atom(name: &str, vars: &[&str]) -> Atom {
        Atom::new(
            Predicate::new(name, vars.len()),
            vars.iter().map(|v| Term::var(*v)).collect(),
        )
    }

    #[test]
    fn variables_in_first_occurrence_order() {
        let q = ConjunctiveQuery::new(vec![mk_atom("R", &["x", "y"]), mk_atom("S", &["y", "z"])]);
        let names: Vec<_> = q.variables().iter().map(|v| v.name().to_string()).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
        assert!(q.is_self_join_free());
        assert!(q.is_constant_free());
    }

    #[test]
    fn self_join_detection() {
        let q = ConjunctiveQuery::new(vec![mk_atom("R", &["x", "y"]), mk_atom("R", &["y", "z"])]);
        assert!(!q.is_self_join_free());
    }

    #[test]
    fn formula_round_trip() {
        let q = ConjunctiveQuery::new(vec![mk_atom("R", &["x"]), mk_atom("S", &["x", "y"])]);
        let f = q.to_formula();
        assert!(f.is_sentence());
        let q2 = ConjunctiveQuery::from_formula(&f).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn from_formula_rejects_negation_and_disjunction() {
        let f = exists(["x"], not(atom("R", &["x"])));
        assert!(ConjunctiveQuery::from_formula(&f).is_none());
        let f = exists(["x"], or(vec![atom("R", &["x"]), atom("S", &["x"])]));
        assert!(ConjunctiveQuery::from_formula(&f).is_none());
    }

    #[test]
    fn dual_clause_is_positive() {
        let q = ConjunctiveQuery::new(vec![mk_atom("R", &["x"]), mk_atom("S", &["x", "y"])]);
        let c = q.dual_clause();
        assert!(c.is_positive());
        assert_eq!(c.literals.len(), 2);
    }

    #[test]
    fn repeated_variable_detection() {
        let q = ConjunctiveQuery::new(vec![mk_atom("R", &["x", "x"])]);
        assert!(q.has_repeated_variable_in_atom());
        let q = ConjunctiveQuery::new(vec![mk_atom("R", &["x", "y"])]);
        assert!(!q.has_repeated_variable_in_atom());
    }

    #[test]
    fn hyperedges_expose_structure() {
        let q = ConjunctiveQuery::new(vec![mk_atom("R", &["x", "z"]), mk_atom("T", &["y", "z"])]);
        let edges = q.hyperedges();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].0, "R");
        assert_eq!(edges[1].1.len(), 2);
    }
}
