//! E3 — Figure 2 / Theorem 4.1(1): the #SAT → FO² FOMC reduction (combined
//! complexity). Measures the cost of building ϕ_F as the number of Boolean
//! variables grows, and the cost of actually counting its models by grounding
//! for the smallest instance (the #P-hard direction).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfomc::ground::GroundSolver;
use wfomc::prelude::*;
use wfomc_bench::figure2_boolean_formula;

fn bench_figure2(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2");

    // Building ϕ_F: the sentence grows quadratically with the variable count.
    for vars in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("build-phi_F", vars), &vars, |b, &vars| {
            let f = PropFormula::or(PropFormula::var(0), PropFormula::var(vars - 1));
            b.iter(|| sharp_sat_to_fomc(&f, vars).sentence.size())
        });
    }

    // Counting FOMC(ϕ_F, n+1) by grounding for the 2-variable instance.
    let (f, vars) = figure2_boolean_formula();
    let reduction = sharp_sat_to_fomc(&f, vars);
    group.bench_function("count-phi_F/2vars-grounded", |b| {
        b.iter(|| GroundSolver::new().fomc(&reduction.sentence, reduction.domain_size))
    });

    // The #SAT side of the equation, for reference.
    group.bench_function("count-F/enumeration", |b| {
        b.iter(|| wfomc::prop::counter::wmc_formula(&f, &wfomc::prop::VarWeights::ones(vars)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_figure2
}
criterion_main!(benches);
