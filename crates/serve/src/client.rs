//! A minimal blocking HTTP/1.1 client for the service's own wire format.
//!
//! Exists so the CLI subcommands, the integration tests, and the
//! `serve_time` benchmark all speak to the daemon through one code path —
//! and so the doctests can exercise a real socket round-trip without curl.
//! It leans on the server's `Connection: close` contract: write one
//! request, read to EOF, split head from body.

use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::{parse, JsonError, Value};

/// Per-request socket timeout.
const TIMEOUT: Duration = Duration::from_secs(30);

/// One parsed response.
#[derive(Clone, Debug)]
pub struct Reply {
    /// The HTTP status code.
    pub status: u16,
    /// The response body (always JSON for this service).
    pub body: String,
}

impl Reply {
    /// Parses the body as JSON.
    pub fn json(&self) -> Result<Value, JsonError> {
        parse(&self.body)
    }
}

/// Sends one request and reads the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<Reply> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(TIMEOUT))?;
    stream.set_write_timeout(Some(TIMEOUT))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_reply(&raw)
}

/// `GET path`.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Reply> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> io::Result<Reply> {
    request(addr, "POST", path, Some(body))
}

fn parse_reply(raw: &[u8]) -> io::Result<Reply> {
    let text = std::str::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response is not UTF-8"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response has no header end"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line `{status_line}`"),
            )
        })?;
    Ok(Reply {
        status,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_reply() {
        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\n{}";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 404);
        assert_eq!(reply.body, "{}");
        assert!(reply.json().is_ok());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_reply(b"not http").is_err());
        assert!(parse_reply(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
