//! A front-door solver that picks the best applicable counting method.
//!
//! The dispatch order mirrors the paper's tractability landscape:
//!
//! 1. the QS4 dynamic program (Theorem 3.7) for its specific sentence;
//! 2. the FO² cell algorithm (Appendix C) for sentences with at most two
//!    distinct variables and predicates of arity ≤ 2;
//! 3. the γ-acyclic conjunctive-query algorithm (Theorem 3.6);
//! 4. grounding + weighted model counting — always correct, exponential in
//!    `n`, and exactly what the paper's hardness results (Theorem 3.1,
//!    Corollary 3.2, Table 2) say cannot be avoided in general.

use num_traits::Zero;

use wfomc_ground::GroundSolver;
use wfomc_logic::cq::ConjunctiveQuery;
use wfomc_logic::syntax::Formula;
use wfomc_logic::vocabulary::Vocabulary;
use wfomc_logic::weights::{weight_pow, Weight, Weights};
use wfomc_prop::WmcBackend;

use crate::cq::gamma_acyclic::gamma_acyclic_wfomc;
use crate::error::LiftError;
use crate::fo2::{wfomc_fo2_with_stats, Fo2Stats};
use crate::qs4::{is_qs4, wfomc_qs4};

/// Which algorithm produced a result.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Method {
    /// Theorem 3.7's dynamic program.
    Qs4,
    /// The FO² cell algorithm (Appendix C).
    Fo2,
    /// The γ-acyclic conjunctive-query algorithm (Theorem 3.6).
    GammaAcyclicCq,
    /// Grounding to the propositional lineage plus weighted model counting.
    Ground,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Method::Qs4 => "qs4-dynamic-program",
            Method::Fo2 => "fo2-cells",
            Method::GammaAcyclicCq => "gamma-acyclic-cq",
            Method::Ground => "grounded-wmc",
        };
        write!(f, "{name}")
    }
}

/// A solver result: the count and the method that produced it.
#[derive(Clone, Debug)]
pub struct SolverReport {
    /// The weighted model count (or probability, for the probability entry
    /// points).
    pub value: Weight,
    /// The method used.
    pub method: Method,
    /// The propositional backend, when the grounded fallback produced the
    /// result (`None` for lifted methods, which never touch a counter).
    pub backend: Option<WmcBackend>,
    /// Cost statistics of the FO² cell-sum engine, when [`Method::Fo2`]
    /// produced the result (`None` for every other method).
    pub fo2_stats: Option<Fo2Stats>,
}

/// The dispatching solver.
#[derive(Clone, Copy, Debug)]
pub struct Solver {
    /// Whether to fall back to grounding when no lifted method applies.
    pub allow_ground_fallback: bool,
    /// Propositional backend for the grounded fallback.
    pub ground_backend: WmcBackend,
    /// Whether lifted methods are tried at all (disable to force grounding,
    /// used by the benchmark baselines).
    pub use_lifted: bool,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            allow_ground_fallback: true,
            ground_backend: WmcBackend::Dpll,
            use_lifted: true,
        }
    }
}

impl Solver {
    /// A solver with the default configuration (lifted methods first, grounded
    /// fallback enabled).
    pub fn new() -> Self {
        Solver::default()
    }

    /// A solver that only uses lifted methods (errors if none applies).
    pub fn lifted_only() -> Self {
        Solver {
            allow_ground_fallback: false,
            ..Solver::default()
        }
    }

    /// A solver that always grounds (the baseline in the benchmarks).
    pub fn ground_only() -> Self {
        Solver {
            use_lifted: false,
            ..Solver::default()
        }
    }

    /// A solver whose grounded fallback uses the chosen propositional
    /// backend (e.g. [`WmcBackend::Circuit`] for knowledge compilation).
    pub fn with_ground_backend(backend: WmcBackend) -> Self {
        Solver {
            ground_backend: backend,
            ..Solver::default()
        }
    }

    /// Symmetric WFOMC of a sentence over `vocabulary` and a domain of size
    /// `n`.
    pub fn wfomc(
        &self,
        sentence: &Formula,
        vocabulary: &Vocabulary,
        n: usize,
        weights: &Weights,
    ) -> Result<SolverReport, LiftError> {
        if !sentence.is_sentence() {
            return Err(LiftError::NotASentence);
        }
        let full_voc = vocabulary.extended_with(&sentence.vocabulary());

        if self.use_lifted {
            // 1. The QS4 special case.
            if is_qs4(sentence) {
                let value = wfomc_qs4(n, weights)
                    * extra_vocabulary_factor(&full_voc, &sentence.vocabulary(), n, weights);
                return Ok(SolverReport {
                    value,
                    method: Method::Qs4,
                    backend: None,
                    fo2_stats: None,
                });
            }

            // 2. The FO² algorithm.
            match wfomc_fo2_with_stats(sentence, &full_voc, n, weights) {
                Ok((value, stats)) => {
                    return Ok(SolverReport {
                        value,
                        method: Method::Fo2,
                        backend: None,
                        fo2_stats: Some(stats),
                    })
                }
                Err(LiftError::Internal(msg)) => return Err(LiftError::Internal(msg)),
                Err(_) => {}
            }

            // 3. The γ-acyclic CQ algorithm.
            if let Some(query) = ConjunctiveQuery::from_formula(sentence) {
                if let Ok(value) = gamma_acyclic_wfomc(&query, n, weights) {
                    let value =
                        value * extra_vocabulary_factor(&full_voc, &query.vocabulary(), n, weights);
                    return Ok(SolverReport {
                        value,
                        method: Method::GammaAcyclicCq,
                        backend: None,
                        fo2_stats: None,
                    });
                }
            }
        }

        // 4. Ground.
        if !self.allow_ground_fallback {
            return Err(LiftError::PatternMismatch {
                expected: "a sentence covered by a lifted algorithm (QS4, FO², γ-acyclic CQ)"
                    .to_string(),
            });
        }
        let value =
            GroundSolver::with_backend(self.ground_backend).wfomc(sentence, &full_voc, n, weights);
        Ok(SolverReport {
            value,
            method: Method::Ground,
            backend: Some(self.ground_backend),
            fo2_stats: None,
        })
    }

    /// FOMC (all weights 1) over the sentence's own vocabulary.
    pub fn fomc(&self, sentence: &Formula, n: usize) -> Result<SolverReport, LiftError> {
        self.wfomc(sentence, &sentence.vocabulary(), n, &Weights::ones())
    }

    /// The probability of the sentence under the tuple-independent semantics:
    /// `Pr(Φ) = WFOMC(Φ) / WFOMC(true)`.
    pub fn probability(
        &self,
        sentence: &Formula,
        vocabulary: &Vocabulary,
        n: usize,
        weights: &Weights,
    ) -> Result<SolverReport, LiftError> {
        let full_voc = vocabulary.extended_with(&sentence.vocabulary());
        let report = self.wfomc(sentence, &full_voc, n, weights)?;
        let normalization = weights.wfomc_of_true(&full_voc, n);
        if normalization.is_zero() {
            return Err(LiftError::NoProbabilityNormalization {
                predicate: "<vocabulary>".to_string(),
            });
        }
        Ok(SolverReport {
            value: report.value / normalization,
            method: report.method,
            backend: report.backend,
            fo2_stats: report.fo2_stats,
        })
    }
}

/// `(w + w̄)^{n^arity}` for predicates in the full vocabulary that the lifted
/// method did not account for.
fn extra_vocabulary_factor(
    full: &Vocabulary,
    counted: &Vocabulary,
    n: usize,
    weights: &Weights,
) -> Weight {
    let mut factor = Weight::from_integer(1.into());
    for p in full.iter() {
        if !counted.contains(p.name()) {
            factor *= weight_pow(&weights.pair_of(p).total(), p.num_ground_tuples(n));
        }
    }
    factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_ground::wfomc as ground_wfomc;
    use wfomc_logic::catalog;
    use wfomc_logic::weights::{weight_int, weight_ratio};

    #[test]
    fn dispatches_qs4_to_the_dynamic_program() {
        let solver = Solver::new();
        let report = solver.fomc(&catalog::qs4(), 2).unwrap();
        assert_eq!(report.method, Method::Qs4);
        assert_eq!(report.value, weight_int(14));
    }

    #[test]
    fn dispatches_fo2_sentences_to_cells() {
        let solver = Solver::new();
        for f in [
            catalog::forall_exists_edge(),
            catalog::table1_sentence(),
            catalog::spouse_constraint(),
            catalog::exists_unary(),
        ] {
            let report = solver.fomc(&f, 3).unwrap();
            assert_eq!(report.method, Method::Fo2, "wrong method for {f}");
            let grounded = ground_wfomc(&f, &f.vocabulary(), 3, &Weights::ones());
            assert_eq!(report.value, grounded, "wrong count for {f}");
        }
    }

    #[test]
    fn dispatches_gamma_acyclic_cqs() {
        let solver = Solver::new();
        // A 3-variable chain is not FO², so it must go to the CQ algorithm.
        let q = catalog::chain_query(3);
        let f = q.to_formula();
        let report = solver.fomc(&f, 2).unwrap();
        assert_eq!(report.method, Method::GammaAcyclicCq);
        assert_eq!(
            report.value,
            ground_wfomc(&f, &f.vocabulary(), 2, &Weights::ones())
        );
    }

    #[test]
    fn falls_back_to_ground_for_open_problems() {
        let solver = Solver::new();
        for (name, f) in catalog::table2_open_problems() {
            if f.vocabulary().num_ground_tuples(2) > 20 {
                continue;
            }
            let report = solver.fomc(&f, 2).unwrap();
            assert_eq!(
                report.method,
                Method::Ground,
                "{name} should not be liftable by the implemented methods"
            );
        }
    }

    #[test]
    fn lifted_only_solver_errors_on_hard_sentences() {
        let solver = Solver::lifted_only();
        let err = solver.fomc(&catalog::transitivity(), 2).unwrap_err();
        assert!(matches!(err, LiftError::PatternMismatch { .. }));
        // But still solves FO² sentences.
        assert!(solver.fomc(&catalog::table1_sentence(), 3).is_ok());
    }

    #[test]
    fn ground_only_solver_always_grounds() {
        let solver = Solver::ground_only();
        let report = solver.fomc(&catalog::table1_sentence(), 2).unwrap();
        assert_eq!(report.method, Method::Ground);
        assert_eq!(report.value, weight_int(161));
    }

    #[test]
    fn circuit_ground_backend_matches_dpll_and_is_reported() {
        let f = catalog::transitivity();
        let dpll = Solver::ground_only().fomc(&f, 2).unwrap();
        let circuit_solver = Solver {
            use_lifted: false,
            ..Solver::with_ground_backend(WmcBackend::Circuit)
        };
        let circuit = circuit_solver.fomc(&f, 2).unwrap();
        assert_eq!(dpll.value, circuit.value);
        assert_eq!(circuit.method, Method::Ground);
        assert_eq!(circuit.backend, Some(WmcBackend::Circuit));
        assert_eq!(dpll.backend, Some(WmcBackend::Dpll));
        // Lifted methods never report a propositional backend.
        let lifted = Solver::new().fomc(&catalog::table1_sentence(), 2).unwrap();
        assert_eq!(lifted.backend, None);
    }

    #[test]
    fn fo2_reports_engine_statistics() {
        let solver = Solver::new();
        let report = solver.fomc(&catalog::table1_sentence(), 4).unwrap();
        assert_eq!(report.method, Method::Fo2);
        let stats = report.fo2_stats.expect("FO² reports its stats");
        assert!(stats.total_valid_cells > 0);
        assert_eq!(
            stats.compositions_summed + stats.compositions_pruned,
            stats.compositions_total
        );
        // Other methods never carry FO² statistics.
        assert!(solver.fomc(&catalog::qs4(), 2).unwrap().fo2_stats.is_none());
        assert!(Solver::ground_only()
            .fomc(&catalog::table1_sentence(), 2)
            .unwrap()
            .fo2_stats
            .is_none());
    }

    #[test]
    fn probability_normalizes_by_wfomc_of_true() {
        let solver = Solver::new();
        let f = catalog::exists_unary();
        let voc = f.vocabulary();
        let mut w = Weights::ones();
        w.set_probability("S", weight_ratio(1, 3));
        let report = solver.probability(&f, &voc, 2, &w).unwrap();
        assert_eq!(report.value, weight_ratio(5, 9));
        assert_eq!(report.method, Method::Fo2);
    }

    #[test]
    fn extra_vocabulary_predicates_are_counted() {
        let solver = Solver::new();
        let f = catalog::qs4();
        let voc = Vocabulary::from_pairs([("S", 2), ("Unused", 1)]);
        let report = solver.wfomc(&f, &voc, 2, &Weights::ones()).unwrap();
        // 14 · 2² (for the unused unary predicate).
        assert_eq!(report.value, weight_int(56));
    }

    #[test]
    fn open_formula_is_rejected() {
        let solver = Solver::new();
        let f = wfomc_logic::builders::atom("R", &["x"]);
        assert!(matches!(solver.fomc(&f, 2), Err(LiftError::NotASentence)));
    }
}
