//! The [`Strategy`] trait and the combinators used by this workspace.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Spans here always fit in u64.
                let offset = rng.below(span as u64) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_strategy_generates_componentwise() {
        let mut rng = TestRng::for_test("tuple");
        let strat = (0usize..4, 10u64..20, -5i64..5);
        for _ in 0..100 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 4);
            assert!((10..20).contains(&b));
            assert!((-5..5).contains(&c));
        }
    }

    #[test]
    fn map_composes() {
        let mut rng = TestRng::for_test("map");
        let strat = (0usize..10).prop_map(|v| v * 2);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut rng = TestRng::for_test("signed");
        let mut saw_negative = false;
        for _ in 0..200 {
            if (-10i64..10).generate(&mut rng) < 0 {
                saw_negative = true;
            }
        }
        assert!(saw_negative);
    }
}
