//! A count-preserving Tseitin transformation.
//!
//! The classical Tseitin encoding introduces one definition variable per
//! internal gate and asserts the *equivalence* between the variable and the
//! gate it names. With full equivalences (rather than the one-directional
//! "Plaisted–Greenbaum" variant) every assignment of the original variables
//! extends to **exactly one** satisfying assignment of the definition
//! variables, so weighted model counts are preserved as long as the definition
//! variables carry weight `(1, 1)`.
//!
//! [`to_cnf`] returns the CNF together with the extended [`VarWeights`] so the
//! counters can be called directly on the result.

use crate::cnf::{Cnf, Lit};
use crate::formula::{PropFormula, Var};
use crate::weights::VarWeights;
use num_traits::One;
use wfomc_logic::weights::Weight;

/// The result of a Tseitin transformation.
#[derive(Clone, Debug)]
pub struct TseitinCnf {
    /// The CNF over original + definition variables.
    pub cnf: Cnf,
    /// Weights extended with `(1,1)` for every definition variable.
    pub weights: VarWeights,
    /// Number of original variables (`0..original_vars` are the inputs).
    pub original_vars: usize,
}

/// Converts a propositional formula to CNF, preserving weighted model counts.
///
/// `weights` must cover all variables of `formula` (i.e.
/// `weights.len() >= formula.num_vars()`); the variable universe of the
/// returned CNF is `weights.len()` plus the introduced definition variables,
/// so unconstrained original variables keep contributing `w + w̄`.
pub fn to_cnf(formula: &PropFormula, weights: &VarWeights) -> TseitinCnf {
    assert!(
        weights.len() >= formula.num_vars(),
        "weights cover {} variables but the formula mentions {}",
        weights.len(),
        formula.num_vars()
    );
    let original_vars = weights.len();
    let mut enc = Encoder {
        clauses: Vec::new(),
        next_var: original_vars,
    };
    let root = enc.encode(formula);
    // Assert the root literal.
    enc.clauses.push(vec![root]);
    let num_vars = enc.next_var;
    let mut ext = weights.clone();
    for _ in original_vars..num_vars {
        ext.push(Weight::one(), Weight::one());
    }
    TseitinCnf {
        cnf: Cnf::new(num_vars, enc.clauses),
        weights: ext,
        original_vars,
    }
}

impl TseitinCnf {
    /// Extends a fresh weight table over the original variables with the
    /// `(1, 1)` pairs of this transformation's definition variables.
    ///
    /// The encoding itself is weight-independent, so one Tseitin CNF can be
    /// re-weighted any number of times — the compile-once / evaluate-many
    /// path of the circuit backend relies on this.
    ///
    /// # Panics
    /// Panics if `original` does not cover exactly the original variables.
    pub fn weights_for(&self, original: &VarWeights) -> VarWeights {
        assert_eq!(
            original.len(),
            self.original_vars,
            "weight table must cover exactly the original variables"
        );
        let mut ext = original.clone();
        for _ in self.original_vars..self.cnf.num_vars {
            ext.push(Weight::one(), Weight::one());
        }
        ext
    }
}

struct Encoder {
    clauses: Vec<Vec<Lit>>,
    next_var: Var,
}

impl Encoder {
    fn fresh(&mut self) -> Var {
        let v = self.next_var;
        self.next_var += 1;
        v
    }

    /// Returns a literal equivalent to the sub-formula, adding definition
    /// clauses as needed.
    fn encode(&mut self, f: &PropFormula) -> Lit {
        match f {
            PropFormula::Top => {
                // Introduce a definition variable forced to true.
                let v = self.fresh();
                self.clauses.push(vec![Lit::pos(v)]);
                Lit::pos(v)
            }
            PropFormula::Bottom => {
                let v = self.fresh();
                self.clauses.push(vec![Lit::neg(v)]);
                Lit::pos(v)
            }
            PropFormula::Var(v) => Lit::pos(*v),
            PropFormula::Not(g) => self.encode(g).negated(),
            PropFormula::And(parts) => {
                let lits: Vec<Lit> = parts.iter().map(|p| self.encode(p)).collect();
                let d = self.fresh();
                // d ⇔ ⋀ lits:
                //   (¬d ∨ ℓᵢ) for each i, and (d ∨ ¬ℓ₁ ∨ … ∨ ¬ℓ_k).
                for &l in &lits {
                    self.clauses.push(vec![Lit::neg(d), l]);
                }
                let mut back: Vec<Lit> = vec![Lit::pos(d)];
                back.extend(lits.iter().map(|l| l.negated()));
                self.clauses.push(back);
                Lit::pos(d)
            }
            PropFormula::Or(parts) => {
                let lits: Vec<Lit> = parts.iter().map(|p| self.encode(p)).collect();
                let d = self.fresh();
                // d ⇔ ⋁ lits:
                //   (d ∨ ¬ℓᵢ) for each i, and (¬d ∨ ℓ₁ ∨ … ∨ ℓ_k).
                for &l in &lits {
                    self.clauses.push(vec![Lit::pos(d), l.negated()]);
                }
                let mut fwd: Vec<Lit> = vec![Lit::neg(d)];
                fwd.extend(lits.iter().copied());
                self.clauses.push(fwd);
                Lit::pos(d)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{wmc, wmc_formula, WmcBackend};
    use wfomc_logic::weights::weight_int;

    fn check_count_preserved(f: &PropFormula, weights: &VarWeights) {
        let direct = wmc_formula(f, weights);
        let t = to_cnf(f, weights);
        let via_cnf = wmc(&t.cnf, &t.weights, WmcBackend::Enumerate);
        assert_eq!(direct, via_cnf, "Tseitin changed the count of {f}");
        let via_dpll = wmc(&t.cnf, &t.weights, WmcBackend::Dpll);
        assert_eq!(direct, via_dpll);
    }

    #[test]
    fn preserves_counts_on_small_formulas() {
        let x = PropFormula::var(0);
        let y = PropFormula::var(1);
        let z = PropFormula::var(2);
        let cases = vec![
            PropFormula::or(x.clone(), y.clone()),
            PropFormula::and(
                PropFormula::or(x.clone(), PropFormula::not(y.clone())),
                PropFormula::or(y.clone(), z.clone()),
            ),
            PropFormula::iff(x.clone(), PropFormula::and(y.clone(), z.clone())),
            PropFormula::implies(PropFormula::and(x.clone(), y.clone()), z.clone()),
            PropFormula::Top,
            PropFormula::Bottom,
        ];
        let w = VarWeights::from_vecs(
            vec![weight_int(2), weight_int(3), weight_int(1)],
            vec![weight_int(1), weight_int(1), weight_int(5)],
        );
        for f in cases {
            check_count_preserved(&f, &w);
        }
    }

    #[test]
    fn preserves_counts_with_negative_weights() {
        // The Skolemization weight (1, −1) must survive the transform.
        let f = PropFormula::or(PropFormula::var(0), PropFormula::var(1));
        let w = VarWeights::from_vecs(
            vec![weight_int(1), weight_int(1)],
            vec![weight_int(-1), weight_int(1)],
        );
        check_count_preserved(&f, &w);
    }

    #[test]
    fn unconstrained_variables_still_count() {
        // Universe of 3 variables, formula mentions only x0.
        let f = PropFormula::var(0);
        let w = VarWeights::ones(3);
        let t = to_cnf(&f, &w);
        // Models: x0 = true, x1/x2 free → 4.
        assert_eq!(wmc(&t.cnf, &t.weights, WmcBackend::Dpll), weight_int(4));
    }

    #[test]
    #[should_panic(expected = "weights cover")]
    fn missing_weights_panic() {
        let f = PropFormula::var(5);
        to_cnf(&f, &VarWeights::ones(2));
    }

    #[test]
    fn weights_for_reweights_one_encoding() {
        let f = PropFormula::iff(
            PropFormula::var(0),
            PropFormula::or(PropFormula::var(1), PropFormula::var(2)),
        );
        let t = to_cnf(&f, &VarWeights::ones(3));
        // Re-weight the same CNF and cross-check against a fresh transform.
        let new = VarWeights::from_vecs(
            vec![weight_int(2), weight_int(-1), weight_int(3)],
            vec![weight_int(1), weight_int(4), weight_int(1)],
        );
        let reweighted = t.weights_for(&new);
        assert_eq!(reweighted.len(), t.cnf.num_vars);
        assert_eq!(
            wmc(&t.cnf, &reweighted, WmcBackend::Dpll),
            wmc_formula(&f, &new)
        );
    }

    #[test]
    #[should_panic(expected = "exactly the original")]
    fn weights_for_rejects_wrong_length() {
        let f = PropFormula::var(0);
        let t = to_cnf(&f, &VarWeights::ones(2));
        t.weights_for(&VarWeights::ones(5));
    }
}
