//! Offline stand-in for the `num-bigint` crate.
//!
//! Arbitrary-precision integers with the subset of the real crate's API that
//! this workspace uses: [`BigUint`] (inline `u64` below `2⁶⁴`, little-endian
//! `u32` limbs above — see the `biguint` module docs for the representation
//! and the Karatsuba multiplication dispatch) and the sign-magnitude
//! [`BigInt`], with exact add/sub/mul, truncating div/rem, left shift,
//! comparison, decimal parsing and formatting, and the `num-traits` trait
//! implementations. The API mirrors the real crate so swapping back to
//! crates.io remains a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

mod biguint;

pub use biguint::BigUint;

use std::cmp::Ordering;
use std::fmt;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Rem, RemAssign, Sub, SubAssign,
};
use std::str::FromStr;

use num_traits::{One, Signed, ToPrimitive, Zero};

/// Sign of a [`BigInt`]: −1, 0 or +1. Zero always carries sign 0.
/// (The variant names mirror the real num-bigint crate.)
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(clippy::enum_variant_names)]
enum Sign {
    Minus,
    NoSign,
    Plus,
}

/// An arbitrary-precision signed integer.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    fn from_sign_mag(sign: Sign, mag: BigUint) -> BigInt {
        if mag.is_zero() {
            BigInt {
                sign: Sign::NoSign,
                mag,
            }
        } else {
            BigInt { sign, mag }
        }
    }

    /// The magnitude as a [`BigUint`].
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Number of significant bits of the magnitude.
    pub fn bits(&self) -> u64 {
        self.mag.bits()
    }

    fn add_signed(&self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::NoSign, _) => other.clone(),
            (_, Sign::NoSign) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_mag(a, &self.mag + &other.mag),
            _ => match self.mag.cmp(&other.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_sign_mag(self.sign, &self.mag - &other.mag),
                Ordering::Less => BigInt::from_sign_mag(other.sign, &other.mag - &self.mag),
            },
        }
    }

    fn mul_signed(&self, other: &BigInt) -> BigInt {
        let sign = match (self.sign, other.sign) {
            (Sign::NoSign, _) | (_, Sign::NoSign) => Sign::NoSign,
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        };
        BigInt::from_sign_mag(sign, &self.mag * &other.mag)
    }

    /// Truncating division with remainder; the remainder takes the sign of
    /// the dividend (Rust semantics, matching the real `num-bigint`).
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "division by zero");
        let (q, r) = self.mag.div_rem(&other.mag);
        let q_sign = match (self.sign, other.sign) {
            (Sign::NoSign, _) => Sign::NoSign,
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        };
        (
            BigInt::from_sign_mag(q_sign, q),
            BigInt::from_sign_mag(self.sign, r),
        )
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                BigInt::from_sign_mag(Sign::Plus, BigUint::from(v))
            }
        }
    )*};
}

impl_from_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_from_signed {
    ($($t:ty => $wide:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                if v < 0 {
                    // Negate in a wider type so MIN does not overflow.
                    BigInt::from_sign_mag(Sign::Minus, BigUint::from((-(v as $wide)) as u128))
                } else {
                    BigInt::from_sign_mag(Sign::Plus, BigUint::from(v as u128))
                }
            }
        }
    )*};
}

impl_from_signed!(i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128);

impl From<i128> for BigInt {
    fn from(v: i128) -> BigInt {
        if v < 0 {
            BigInt::from_sign_mag(Sign::Minus, BigUint::from(v.unsigned_abs()))
        } else {
            BigInt::from_sign_mag(Sign::Plus, BigUint::from(v as u128))
        }
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> BigInt {
        BigInt::from_sign_mag(Sign::Plus, mag)
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        let rank = |s: Sign| match s {
            Sign::Minus => 0,
            Sign::NoSign => 1,
            Sign::Plus => 2,
        };
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Plus => self.mag.cmp(&other.mag),
                Sign::Minus => other.mag.cmp(&self.mag),
                Sign::NoSign => Ordering::Equal,
            },
            unequal => unequal,
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        let sign = match self.sign {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
            Sign::NoSign => Sign::NoSign,
        };
        BigInt { sign, ..self }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

// Generates the four ref/value combinations of a binary operator from the
// by-reference implementation.
macro_rules! forward_binop {
    ($trait:ident, $method:ident, $f:expr) => {
        impl $trait<&BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                let f: fn(&BigInt, &BigInt) -> BigInt = $f;
                f(self, rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
    };
}

forward_binop!(Add, add, |a, b| a.add_signed(b));
forward_binop!(Sub, sub, |a, b| a.add_signed(&-b));
forward_binop!(Mul, mul, |a, b| a.mul_signed(b));
forward_binop!(Div, div, |a, b| a.div_rem(b).0);
forward_binop!(Rem, rem, |a, b| a.div_rem(b).1);

macro_rules! forward_assign {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<&BigInt> for BigInt {
            fn $method(&mut self, rhs: &BigInt) {
                *self = &*self $op rhs;
            }
        }
        impl $trait<BigInt> for BigInt {
            fn $method(&mut self, rhs: BigInt) {
                *self = &*self $op &rhs;
            }
        }
    };
}

forward_assign!(AddAssign, add_assign, +);
forward_assign!(SubAssign, sub_assign, -);
forward_assign!(MulAssign, mul_assign, *);
forward_assign!(DivAssign, div_assign, /);
forward_assign!(RemAssign, rem_assign, %);

impl Zero for BigInt {
    fn zero() -> Self {
        BigInt {
            sign: Sign::NoSign,
            mag: BigUint::zero(),
        }
    }
    fn is_zero(&self) -> bool {
        self.sign == Sign::NoSign
    }
}

impl One for BigInt {
    fn one() -> Self {
        BigInt::from(1u32)
    }
}

impl Signed for BigInt {
    fn abs(&self) -> Self {
        BigInt::from_sign_mag(
            if self.is_zero() {
                Sign::NoSign
            } else {
                Sign::Plus
            },
            self.mag.clone(),
        )
    }
    fn signum(&self) -> Self {
        match self.sign {
            Sign::Plus => BigInt::from(1i32),
            Sign::Minus => BigInt::from(-1i32),
            Sign::NoSign => BigInt::zero(),
        }
    }
    fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }
    fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }
}

impl ToPrimitive for BigInt {
    fn to_i64(&self) -> Option<i64> {
        let mag = self.mag.to_u64()?;
        match self.sign {
            Sign::NoSign => Some(0),
            Sign::Plus => i64::try_from(mag).ok(),
            Sign::Minus => {
                if mag <= i64::MAX as u64 + 1 {
                    Some((mag as i128).checked_neg()? as i64)
                } else {
                    None
                }
            }
        }
    }
    fn to_u64(&self) -> Option<u64> {
        match self.sign {
            Sign::Minus => None,
            _ => self.mag.to_u64(),
        }
    }
    fn to_f64(&self) -> Option<f64> {
        let mag = self.mag.to_f64()?;
        Some(if self.sign == Sign::Minus { -mag } else { mag })
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Minus {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

/// Error parsing a decimal integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError;

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid decimal integer")
    }
}

impl std::error::Error for ParseBigIntError {}

impl FromStr for BigInt {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Minus, rest),
            None => (Sign::Plus, s.strip_prefix('+').unwrap_or(s)),
        };
        let mag: BigUint = digits.parse().map_err(|_| ParseBigIntError)?;
        Ok(BigInt::from_sign_mag(sign, mag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn signed_arithmetic() {
        assert_eq!(b(3) + b(-5), b(-2));
        assert_eq!(b(-3) - b(-5), b(2));
        assert_eq!(b(-3) * b(5), b(-15));
        assert_eq!(b(-3) * b(-5), b(15));
        assert_eq!(b(0) + b(0), b(0));
        let mut x = b(10);
        x += &b(5);
        x -= b(3);
        x *= &b(2);
        assert_eq!(x, b(24));
    }

    #[test]
    fn truncating_division() {
        assert_eq!(b(7) / b(2), b(3));
        assert_eq!(b(-7) / b(2), b(-3));
        assert_eq!(b(7) % b(-2), b(1));
        assert_eq!(b(-7) % b(2), b(-1));
    }

    #[test]
    fn large_values_round_trip_through_strings() {
        let big: BigInt = "123456789012345678901234567890".parse().unwrap();
        let neg: BigInt = "-123456789012345678901234567890".parse().unwrap();
        assert_eq!(big.to_string(), "123456789012345678901234567890");
        assert_eq!(&big + &neg, b(0));
        assert_eq!((&big * &big).to_string().len(), 59);
    }

    #[test]
    fn factorial_20_matches_u64() {
        let mut acc = BigInt::one();
        for i in 1..=20u32 {
            acc *= BigInt::from(i);
        }
        assert_eq!(acc, BigInt::from(2432902008176640000u64));
        assert_eq!(acc.to_u64(), Some(2432902008176640000));
    }

    #[test]
    fn ordering_respects_sign() {
        assert!(b(-5) < b(-2));
        assert!(b(-2) < b(0));
        assert!(b(0) < b(3));
        assert!(b(3) < b(30));
    }

    #[test]
    fn to_i64_handles_min() {
        let min = BigInt::from(i64::MIN);
        assert_eq!(min.to_i64(), Some(i64::MIN));
        assert_eq!((min - b(1)).to_i64(), None);
    }
}
