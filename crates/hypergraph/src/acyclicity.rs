//! Fagin's degrees of acyclicity: α, β and γ.
//!
//! The definitions follow Fagin (J. ACM 1983), as used in §3.2 of the paper:
//!
//! * **α-acyclic** — the GYO ear-removal procedure reduces the hypergraph to
//!   nothing;
//! * **β-acyclic** — every subset of the edges is α-acyclic; equivalently,
//!   there is no *weak β-cycle* (the witness object used by the paper's
//!   C_k-hardness reduction);
//! * **γ-acyclic** — Fagin's reduction rules (a)–(e), listed verbatim in the
//!   proof of Theorem 3.6, reduce the hypergraph to the empty graph. These
//!   are exactly the steps the PTIME counting algorithm follows, so
//!   [`Hypergraph::gamma_reduction_trace`] returns the step sequence for reuse by
//!   `wfomc-core`.
//!
//! The inclusions γ-acyclic ⊆ β-acyclic ⊆ α-acyclic are property-tested.

use std::collections::BTreeSet;

use crate::hypergraph::{EdgeId, Hypergraph, NodeId};

/// The strongest acyclicity class a hypergraph belongs to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum AcyclicityClass {
    /// Not even α-acyclic.
    Cyclic,
    /// α-acyclic but not β-acyclic.
    Alpha,
    /// β-acyclic but not γ-acyclic.
    Beta,
    /// γ-acyclic (the PTIME region of Theorem 3.6).
    Gamma,
}

/// One step of the γ-reduction of Theorem 3.6. Edge/node ids refer to the
/// state of the working hypergraph *at the time of the step* (the trace is a
/// replayable script, which is how `wfomc-core` consumes it).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReductionStep {
    /// Rule (a): `node` occurs in exactly one edge (`edge`); delete the node
    /// from that edge.
    IsolatedNode {
        /// The isolated node.
        node: NodeId,
        /// The unique edge containing it.
        edge: usize,
    },
    /// Rule (b): `edge` contains exactly one node (`node`); delete the edge.
    SingletonEdge {
        /// The singleton edge.
        edge: usize,
        /// The node it contains.
        node: NodeId,
    },
    /// Rule (c): `edge` is empty; delete it.
    EmptyEdge {
        /// The empty edge.
        edge: usize,
    },
    /// Rule (d): `removed` has the same node set as `kept`; delete `removed`.
    DuplicateEdge {
        /// The surviving edge.
        kept: usize,
        /// The deleted edge.
        removed: usize,
    },
    /// Rule (e): `removed` is edge-equivalent to `kept`; delete `removed` from
    /// every edge.
    EquivalentNodes {
        /// The surviving node.
        kept: NodeId,
        /// The deleted node.
        removed: NodeId,
    },
}

/// The outcome of running the γ-reduction to a fixpoint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GammaReductionTrace {
    /// The steps applied, in order.
    pub steps: Vec<ReductionStep>,
    /// True if the hypergraph was reduced to the empty graph (γ-acyclic).
    pub reduced_to_empty: bool,
    /// The edge node-sets left over when no rule applies (empty iff
    /// `reduced_to_empty`).
    pub residual_edges: Vec<BTreeSet<NodeId>>,
}

impl Hypergraph {
    /// True if the hypergraph is α-acyclic (GYO reduction succeeds).
    pub fn is_alpha_acyclic(&self) -> bool {
        let mut edges = self.edge_sets();
        loop {
            let mut changed = false;

            // Rule 1: delete a vertex that occurs in exactly one edge.
            let mut counts: std::collections::HashMap<NodeId, usize> =
                std::collections::HashMap::new();
            for e in &edges {
                for &n in e {
                    *counts.entry(n).or_insert(0) += 1;
                }
            }
            for e in edges.iter_mut() {
                let before = e.len();
                e.retain(|n| counts.get(n).copied().unwrap_or(0) > 1);
                if e.len() != before {
                    changed = true;
                }
            }

            // Rule 2: delete an edge contained in another (distinct) edge.
            let mut to_remove: Option<usize> = None;
            'outer: for i in 0..edges.len() {
                for j in 0..edges.len() {
                    if i != j && edges[i].is_subset(&edges[j]) {
                        to_remove = Some(i);
                        break 'outer;
                    }
                }
            }
            if let Some(i) = to_remove {
                edges.remove(i);
                changed = true;
            }

            if !changed {
                break;
            }
        }
        edges.iter().all(BTreeSet::is_empty)
    }

    /// True if the hypergraph is β-acyclic: every subset of its edges is
    /// α-acyclic. Exponential in the number of edges, which is fine for the
    /// fixed-size queries of the paper (data complexity keeps the query
    /// constant).
    pub fn is_beta_acyclic(&self) -> bool {
        let m = self.num_edges();
        assert!(
            m <= 20,
            "β-acyclicity test enumerates 2^{m} edge subsets; query too large"
        );
        for mask in 1u32..(1u32 << m) {
            let subset: Vec<EdgeId> = (0..m).filter(|i| mask >> i & 1 == 1).collect();
            if !self.edge_subgraph(&subset).is_alpha_acyclic() {
                return false;
            }
        }
        true
    }

    /// Searches for a weak β-cycle `R₁ x₁ R₂ x₂ … x_k R_{k+1}` with
    /// `R_{k+1} = R₁`, `k ≥ 3`, all edges and nodes distinct, and each `xᵢ`
    /// occurring in `Rᵢ` and `Rᵢ₊₁` but in no other edge of the cycle.
    ///
    /// Returns the edge ids and node ids of the cycle, or `None` if the
    /// hypergraph is β-acyclic.
    pub fn find_weak_beta_cycle(&self) -> Option<(Vec<EdgeId>, Vec<NodeId>)> {
        let edges = self.edge_sets();
        let m = edges.len();
        if m < 3 {
            return None;
        }
        // Depth-first construction of the alternating sequence.
        for start in 0..m {
            let mut edge_seq = vec![start];
            let mut node_seq = Vec::new();
            if let Some(found) = self.extend_cycle(&edges, &mut edge_seq, &mut node_seq) {
                return Some(found);
            }
        }
        None
    }

    fn extend_cycle(
        &self,
        edges: &[BTreeSet<NodeId>],
        edge_seq: &mut Vec<EdgeId>,
        node_seq: &mut Vec<NodeId>,
    ) -> Option<(Vec<EdgeId>, Vec<NodeId>)> {
        let m = edges.len();
        let last_edge = *edge_seq.last().expect("sequence starts non-empty");

        // Try to close the cycle: need length ≥ 3 and a closing node from the
        // last edge back to the first edge.
        if edge_seq.len() >= 3 {
            let first_edge = edge_seq[0];
            for &x in edges[last_edge].intersection(&edges[first_edge]) {
                if node_seq.contains(&x) {
                    continue;
                }
                let mut closed_nodes = node_seq.clone();
                closed_nodes.push(x);
                if weak_cycle_nodes_ok(edges, edge_seq, &closed_nodes) {
                    return Some((edge_seq.clone(), closed_nodes));
                }
            }
        }

        if edge_seq.len() == m {
            return None;
        }

        // Extend with a new (edge, node) pair.
        for next_edge in 0..m {
            if edge_seq.contains(&next_edge) {
                continue;
            }
            for &x in edges[last_edge].intersection(&edges[next_edge]) {
                if node_seq.contains(&x) {
                    continue;
                }
                edge_seq.push(next_edge);
                node_seq.push(x);
                if let Some(found) = self.extend_cycle(edges, edge_seq, node_seq) {
                    return Some(found);
                }
                edge_seq.pop();
                node_seq.pop();
            }
        }
        None
    }

    /// True if the hypergraph is γ-acyclic (Fagin's rules (a)–(e) reduce it to
    /// the empty graph).
    pub fn is_gamma_acyclic(&self) -> bool {
        self.gamma_reduction_trace().reduced_to_empty
    }

    /// Runs Fagin's γ-reduction to a fixpoint and returns the trace.
    pub fn gamma_reduction_trace(&self) -> GammaReductionTrace {
        let mut edges = self.edge_sets();
        let mut steps = Vec::new();
        while let Some(step) = gamma_step(&mut edges) {
            steps.push(step);
        }
        GammaReductionTrace {
            steps,
            reduced_to_empty: edges.is_empty(),
            residual_edges: edges,
        }
    }

    /// Classifies the hypergraph into its strongest acyclicity class.
    pub fn classify(&self) -> AcyclicityClass {
        if self.is_gamma_acyclic() {
            AcyclicityClass::Gamma
        } else if self.is_beta_acyclic() {
            AcyclicityClass::Beta
        } else if self.is_alpha_acyclic() {
            AcyclicityClass::Alpha
        } else {
            AcyclicityClass::Cyclic
        }
    }
}

/// Verifies the "in no other edge of the cycle" condition of a weak β-cycle.
fn weak_cycle_nodes_ok(
    edges: &[BTreeSet<NodeId>],
    edge_seq: &[EdgeId],
    node_seq: &[NodeId],
) -> bool {
    let k = edge_seq.len();
    debug_assert_eq!(node_seq.len(), k);
    for (i, &x) in node_seq.iter().enumerate() {
        let e_curr = edge_seq[i];
        let e_next = edge_seq[(i + 1) % k];
        for (j, &e) in edge_seq.iter().enumerate() {
            let _ = j;
            let belongs = edges[e].contains(&x);
            let allowed = e == e_curr || e == e_next;
            if belongs && !allowed {
                return false;
            }
            if !belongs && allowed {
                return false;
            }
        }
    }
    true
}

/// Applies one γ-reduction rule in priority order (c), (b), (d), (a), (e);
/// returns the step taken, or `None` at a fixpoint. (Fagin's rules are
/// confluent, so the order only affects the trace, not the outcome.)
fn gamma_step(edges: &mut Vec<BTreeSet<NodeId>>) -> Option<ReductionStep> {
    // (c) empty edge.
    if let Some(i) = edges.iter().position(BTreeSet::is_empty) {
        edges.remove(i);
        return Some(ReductionStep::EmptyEdge { edge: i });
    }
    // (b) singleton edge.
    if let Some(i) = edges.iter().position(|e| e.len() == 1) {
        let node = *edges[i].iter().next().expect("singleton");
        edges.remove(i);
        return Some(ReductionStep::SingletonEdge { edge: i, node });
    }
    // (d) duplicate edges.
    for i in 0..edges.len() {
        for j in (i + 1)..edges.len() {
            if edges[i] == edges[j] {
                edges.remove(j);
                return Some(ReductionStep::DuplicateEdge {
                    kept: i,
                    removed: j,
                });
            }
        }
    }
    // (a) isolated node (occurs in exactly one edge).
    let nodes: BTreeSet<NodeId> = edges.iter().flatten().copied().collect();
    for &n in &nodes {
        let containing: Vec<usize> = edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.contains(&n))
            .map(|(i, _)| i)
            .collect();
        if containing.len() == 1 {
            let e = containing[0];
            edges[e].remove(&n);
            return Some(ReductionStep::IsolatedNode { node: n, edge: e });
        }
    }
    // (e) edge-equivalent nodes.
    let node_list: Vec<NodeId> = nodes.into_iter().collect();
    for (idx, &a) in node_list.iter().enumerate() {
        for &b in &node_list[idx + 1..] {
            let eq = edges.iter().all(|e| e.contains(&a) == e.contains(&b));
            if eq {
                for e in edges.iter_mut() {
                    e.remove(&b);
                }
                return Some(ReductionStep::EquivalentNodes {
                    kept: a,
                    removed: b,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn chain() -> Hypergraph {
        Hypergraph::from_named_edges([
            ("R1", vec!["x0", "x1"]),
            ("R2", vec!["x1", "x2"]),
            ("R3", vec!["x2", "x3"]),
        ])
    }

    fn triangle() -> Hypergraph {
        Hypergraph::from_named_edges([
            ("R", vec!["x", "y"]),
            ("S", vec!["y", "z"]),
            ("T", vec!["z", "x"]),
        ])
    }

    /// Figure 1's query c_γ = R(x,z), S(x,y,z), T(y,z).
    fn c_gamma() -> Hypergraph {
        Hypergraph::from_named_edges([
            ("R", vec!["x", "z"]),
            ("S", vec!["x", "y", "z"]),
            ("T", vec!["y", "z"]),
        ])
    }

    /// α-acyclic but β-cyclic: a triangle plus a covering edge.
    fn covered_triangle() -> Hypergraph {
        Hypergraph::from_named_edges([
            ("R", vec!["x", "y"]),
            ("S", vec!["y", "z"]),
            ("T", vec!["z", "x"]),
            ("U", vec!["x", "y", "z"]),
        ])
    }

    #[test]
    fn chain_is_gamma_acyclic() {
        let hg = chain();
        assert!(hg.is_gamma_acyclic());
        assert!(hg.is_beta_acyclic());
        assert!(hg.is_alpha_acyclic());
        assert_eq!(hg.classify(), AcyclicityClass::Gamma);
        let trace = hg.gamma_reduction_trace();
        assert!(trace.reduced_to_empty);
        assert!(!trace.steps.is_empty());
    }

    #[test]
    fn triangle_is_fully_cyclic() {
        let hg = triangle();
        assert!(!hg.is_alpha_acyclic());
        assert!(!hg.is_beta_acyclic());
        assert!(!hg.is_gamma_acyclic());
        assert_eq!(hg.classify(), AcyclicityClass::Cyclic);
        let (edges, nodes) = hg
            .find_weak_beta_cycle()
            .expect("triangle has a weak β-cycle");
        assert_eq!(edges.len(), 3);
        assert_eq!(nodes.len(), 3);
    }

    #[test]
    fn c_gamma_is_beta_but_not_gamma() {
        // The paper: c_γ is γ-cyclic (cycle R x S y T z R) yet tractable.
        let hg = c_gamma();
        assert!(hg.is_alpha_acyclic());
        assert!(hg.is_beta_acyclic());
        assert!(!hg.is_gamma_acyclic());
        assert_eq!(hg.classify(), AcyclicityClass::Beta);
        let trace = hg.gamma_reduction_trace();
        assert!(!trace.reduced_to_empty);
        assert!(!trace.residual_edges.is_empty());
    }

    #[test]
    fn covered_triangle_is_alpha_only() {
        let hg = covered_triangle();
        assert!(hg.is_alpha_acyclic());
        assert!(!hg.is_beta_acyclic());
        assert_eq!(hg.classify(), AcyclicityClass::Alpha);
        assert!(hg.find_weak_beta_cycle().is_some());
    }

    #[test]
    fn c_jtdb_is_gamma_acyclic_star_shape() {
        // c_jtdb = R(x,y,z,u), S(x,y), T(x,z), V(x,u): γ-reduction succeeds
        // (y,z,u each become edge-equivalent to nothing but get isolated after
        // the small edges merge into R).
        let hg = Hypergraph::from_named_edges([
            ("R", vec!["x", "y", "z", "u"]),
            ("S", vec!["x", "y"]),
            ("T", vec!["x", "z"]),
            ("V", vec!["x", "u"]),
        ]);
        // jtdb does not contain this query, but the γ test is a structural
        // fact we can assert: it is *not* γ-acyclic (x,y vs x,z vs x,u edges
        // overlap only on x), but it is β-acyclic.
        assert!(hg.is_alpha_acyclic());
        assert!(hg.is_beta_acyclic());
    }

    #[test]
    fn star_is_gamma_acyclic() {
        let hg = Hypergraph::from_named_edges([
            ("R1", vec!["c", "x1"]),
            ("R2", vec!["c", "x2"]),
            ("R3", vec!["c", "x3"]),
        ]);
        assert!(hg.is_gamma_acyclic());
    }

    #[test]
    fn empty_and_single_edge_graphs() {
        let empty = Hypergraph::new();
        assert!(empty.is_alpha_acyclic());
        assert!(empty.is_beta_acyclic());
        assert!(empty.is_gamma_acyclic());

        let single = Hypergraph::from_named_edges([("R", vec!["x", "y", "z"])]);
        assert_eq!(single.classify(), AcyclicityClass::Gamma);
    }

    #[test]
    fn k_cycles_are_cyclic() {
        for k in 3..=6 {
            let vars: Vec<String> = (0..k).map(|i| format!("x{i}")).collect();
            let edges: Vec<(String, Vec<&str>)> = (0..k)
                .map(|i| {
                    (
                        format!("R{i}"),
                        vec![vars[i].as_str(), vars[(i + 1) % k].as_str()],
                    )
                })
                .collect();
            let hg = Hypergraph::from_named_edges(
                edges.iter().map(|(l, ns)| (l.as_str(), ns.iter().copied())),
            );
            assert!(!hg.is_beta_acyclic(), "C_{k} must be β-cyclic");
            assert!(!hg.is_gamma_acyclic());
            let (es, ns) = hg.find_weak_beta_cycle().expect("cycle exists");
            assert_eq!(es.len(), k);
            assert_eq!(ns.len(), k);
        }
    }

    /// Random hypergraph strategy for the inclusion property test.
    fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
        let edge = proptest::collection::btree_set(0usize..5, 0..4);
        proptest::collection::vec(edge, 0..5).prop_map(|edges| {
            let mut hg = Hypergraph::new();
            hg.add_nodes(5);
            for (i, e) in edges.into_iter().enumerate() {
                hg.add_edge(format!("E{i}"), e);
            }
            hg
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn acyclicity_inclusions_hold(hg in arb_hypergraph()) {
            // γ ⊆ β ⊆ α.
            if hg.is_gamma_acyclic() {
                prop_assert!(hg.is_beta_acyclic());
            }
            if hg.is_beta_acyclic() {
                prop_assert!(hg.is_alpha_acyclic());
            }
        }

        #[test]
        fn weak_beta_cycle_iff_beta_cyclic(hg in arb_hypergraph()) {
            // Fagin: β-acyclic ⇔ no weak β-cycle.
            let has_cycle = hg.find_weak_beta_cycle().is_some();
            prop_assert_eq!(!has_cycle, hg.is_beta_acyclic());
        }
    }
}
