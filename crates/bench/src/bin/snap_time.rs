//! Cold-start versus warm-start boot of the query service: how much of a
//! registry boot do `wfomc-snap/v1` snapshots actually save? Builds a
//! JSONL registry log of `plans` distinct FO² sentences, then times
//! `Server::bind` twice against the same log — once with no snapshot
//! directory (every record replans, and writes its snapshot as a side
//! effect: the true cold-boot cost), once with the snapshots in place
//! (every record is a single read plus a validated decode). Both servers
//! are briefly run to assert a served count is bit-identical across the
//! two boots before any timing is reported. Prints one JSON object for
//! `BENCH_snap.json`. Run with
//! `cargo run --release -p wfomc-bench --bin snap_time [-- quick]`.

use std::env;
use std::time::Instant;

use wfomc::logic::weights::Weights;
use wfomc_serve::client;
use wfomc_serve::http::{Server, ServerConfig};
use wfomc_serve::{PlanRegistry, RegistryLog};

/// Domain size of the bit-identity probe count (small on purpose: the
/// probe checks equality across boots, the timing section is the boots).
const N: usize = 3;

/// Distinct FO² sentences (three unary + three binary predicates each) so
/// every registry entry carries a real preparation cost: normal form,
/// Shannon branch matrices, cell space, and pair tables that enumerate
/// every binary interpretation per cell pair — the work a snapshot decode
/// skips by reading the finished tables back.
fn sentences(plans: usize) -> Vec<String> {
    (0..plans)
        .map(|k| {
            format!(
                "forall x. forall y. \
                 (A{k}(x) & E{k}(x,y)) | (B{k}(y) & F{k}(x,y)) | (C{k}(x) & G{k}(x,y)) | (A{k}(y) & H{k}(x,y))"
            )
        })
        .collect()
}

fn main() {
    let quick = env::args().nth(1).as_deref() == Some("quick");
    let plans = if quick { 8 } else { 20 };
    let sentences = sentences(plans);

    let dir = std::env::temp_dir().join(format!("wfomc-snap-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let registry_path = dir.join("registry.jsonl");
    let mut log = RegistryLog::new(&registry_path);
    for s in &sentences {
        log.append(s, &Weights::ones())
            .expect("append registry log");
    }
    drop(log);

    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        capacity: 256,
        registry_path: Some(registry_path.clone()),
    };
    let probe = {
        let canonical = PlanRegistry::canonicalize(&sentences[0]).expect("sentence parses");
        PlanRegistry::format_id(PlanRegistry::hash_sentence(&canonical))
    };

    // Cold boot: replay replans every record from the log.
    let start = Instant::now();
    let server = Server::bind(&config).expect("cold bind");
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(server.handle().plans(), plans, "cold boot replayed the log");
    let cold_value = serve_one_count(server, &probe);

    // Warm boot: replay loads every record from its snapshot.
    let start = Instant::now();
    let server = Server::bind(&config).expect("warm bind");
    let warm_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(server.handle().plans(), plans, "warm boot replayed the log");
    let warm_value = serve_one_count(server, &probe);
    assert_eq!(
        cold_value, warm_value,
        "snapshot-warm boot must serve bit-identical counts"
    );

    println!(
        "{{\"workload\": \"snap/registry-{plans}\", \"plans\": {plans}, \
         \"cold_boot_ms\": {cold_ms:.2}, \"warm_boot_ms\": {warm_ms:.2}, \
         \"per_plan_cold_ms\": {:.3}, \"per_plan_warm_ms\": {:.3}, \
         \"speedup\": {:.1}}}",
        cold_ms / plans as f64,
        warm_ms / plans as f64,
        cold_ms / warm_ms
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Runs a bound server just long enough to serve one count for `id`,
/// then drains it and returns the value.
fn serve_one_count(server: Server, id: &str) -> String {
    let handle = server.handle();
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());
    let reply = client::post(
        addr,
        &format!("/v1/plans/{id}/count"),
        &format!("{{\"n\": {N}}}"),
    )
    .expect("count request");
    assert_eq!(reply.status, 200, "{}", reply.body);
    // Extract `"value"` textually: the embedded report can carry saturated
    // u64 counters (compositions_total on wide cell spaces) that the
    // i64-only client JSON parser rejects.
    let value = reply
        .body
        .split("\"value\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("count returns a value")
        .to_string();
    handle.shutdown();
    daemon.join().expect("daemon thread").expect("clean drain");
    value
}
