//! Wall-clock snapshot tool for the observability layer's overhead. Prints
//! one JSON object per (workload, runtime-toggle) pair so before/after
//! numbers can be recorded in `BENCH_obs.json`. Run **twice** — once per
//! compile configuration — to get the A/B:
//!
//! ```text
//! cargo run --release -p wfomc-bench --bin obs_time                  # feature off
//! cargo run --release -p wfomc-bench --features obs --bin obs_time   # feature on
//! ```
//!
//! With the `obs` feature compiled out, every counter/span call in the hot
//! paths is a no-op ZST the optimizer deletes — those rows are the "is the
//! instrumentation really free?" guard, compared against the pre-obs
//! `BENCH_fo2.json` / `BENCH_plan.json` baselines. With the feature on, the
//! `runtime: disabled` rows cost one relaxed atomic load per call site and
//! the `runtime: enabled` rows pay the full price (atomic increments plus
//! thread-local span accounting).

use wfomc::core::fo2::wfomc_fo2;
use wfomc::prelude::*;
use wfomc_bench::{plan_reuse_workloads, standard_weights, time_ms};

/// A named, repeatable measurement target.
type Workload = (&'static str, Box<dyn FnMut()>);

fn main() {
    let feature = if cfg!(feature = "obs") { "on" } else { "off" };
    let weights = standard_weights();

    let fo2 = |sentence: Formula, n: usize| {
        let voc = sentence.vocabulary();
        let w = weights.clone();
        move || {
            wfomc_fo2(&sentence, &voc, n, &w).expect("obs_time workload lifts");
        }
    };
    let plan_sweep = || {
        let (name, solver, sentence, points) = plan_reuse_workloads(16)
            .into_iter()
            .find(|(name, ..)| *name == "fo2/quad-binary-n-sweep")
            .expect("known workload");
        move || {
            let plan = solver
                .plan(&Problem::new(sentence.clone()))
                .unwrap_or_else(|e| panic!("{name} plans: {e:?}"));
            for (n, w) in &points {
                let _ = plan.count(*n, w).expect("obs_time count succeeds");
            }
        }
    };

    let mut workloads: Vec<Workload> = vec![
        (
            "fo2-smokers-30",
            Box::new(fo2(catalog::smokers_constraint(), 30)),
        ),
        (
            "fo2-table1-30",
            Box::new(fo2(catalog::table1_sentence(), 30)),
        ),
        ("plan-quad-binary-n-sweep", Box::new(plan_sweep())),
    ];

    for (name, run) in &mut workloads {
        for enabled in [false, true] {
            // A no-op without the feature: both rows then measure the same
            // compiled-out path, which keeps the output schema uniform.
            wfomc_obs::set_enabled(enabled);
            run(); // warm-up
            let ms = (0..3)
                .map(|_| time_ms(&mut *run))
                .fold(f64::INFINITY, f64::min);
            let runtime = if enabled { "enabled" } else { "disabled" };
            println!(
                "{{\"workload\": \"{name}\", \"obs_feature\": \"{feature}\", \
                 \"runtime\": \"{runtime}\", \"ms\": {ms:.2}}}"
            );
        }
    }
    wfomc_obs::set_enabled(false);
}
