//! Ablation — the propositional WMC backends underlying the grounded
//! pipeline: brute-force enumeration vs weighted DPLL with component caching,
//! on the lineage of a catalog sentence and on random 3-CNFs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wfomc::ground::Lineage;
use wfomc::prelude::*;
use wfomc::prop::counter::{wmc, WmcBackend};
use wfomc::prop::{Cnf, VarWeights};
use wfomc::prop::cnf::Lit;

fn random_cnf(num_vars: usize, num_clauses: usize, seed: u64) -> Cnf {
    let mut rng = StdRng::seed_from_u64(seed);
    let clauses = (0..num_clauses)
        .map(|_| {
            (0..3)
                .map(|_| Lit {
                    var: rng.gen_range(0..num_vars),
                    positive: rng.gen_bool(0.5),
                })
                .collect()
        })
        .collect();
    Cnf::new(num_vars, clauses)
}

fn bench_wmc_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("wmc_backends");

    // Random 3-CNF instances.
    for &num_vars in &[12usize, 18] {
        let cnf = random_cnf(num_vars, num_vars * 3, 7);
        let weights = VarWeights::ones(cnf.num_vars);
        group.bench_with_input(BenchmarkId::new("dpll/random-3cnf", num_vars), &(), |b, _| {
            b.iter(|| wmc(&cnf, &weights, WmcBackend::Dpll))
        });
        group.bench_with_input(
            BenchmarkId::new("enumerate/random-3cnf", num_vars),
            &(),
            |b, _| b.iter(|| wmc(&cnf, &weights, WmcBackend::Enumerate)),
        );
    }

    // The lineage of the Table 1 sentence at n = 3 (15 ground atoms).
    let sentence = catalog::table1_sentence();
    let voc = sentence.vocabulary();
    let lineage = Lineage::build(&sentence, &voc, 3);
    let weights = lineage.symmetric_weights(&Weights::ones());
    for backend in [WmcBackend::Dpll, WmcBackend::Enumerate] {
        group.bench_with_input(
            BenchmarkId::new("table1-lineage-n3", format!("{backend:?}")),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    wfomc::prop::counter::wmc_formula_via(&lineage.prop, &weights, backend)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_wmc_backends
}
criterion_main!(benches);
