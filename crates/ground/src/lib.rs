//! # wfomc-ground
//!
//! The model-theoretic substrate of the WFOMC library: finite structures,
//! model checking, and the two *grounded* baselines against which every
//! lifted algorithm in `wfomc-core` is validated:
//!
//! 1. **Brute-force structure enumeration** ([`enumerate`]) — iterate over all
//!    `2^{|Tup(n)|}` structures, check the sentence on each, and sum weights.
//!    Obviously correct, hopelessly exponential; the ground truth for tests.
//! 2. **Grounded WFOMC via the lineage** ([`lineage`] + [`mod@wfomc`]) — build the
//!    propositional lineage `F_{Φ,n}` of §2 and hand it to the weighted model
//!    counters of `wfomc-prop`. Still exponential in the worst case but far
//!    more scalable than enumeration, and the only generally-applicable method
//!    for sentences outside the lifted fragments (Table 2's open problems, the
//!    Θ₁ and ϕ_F reductions).
//!
//! This crate also implements the *asymmetric* WFOMC variant of Table 1, where
//! every ground tuple may carry its own weight.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enumerate;
pub mod evaluate;
pub mod lineage;
pub mod structure;
pub mod wfomc;

pub use enumerate::{brute_force_fomc, brute_force_wfomc};
pub use lineage::{GroundAtom, Lineage};
pub use structure::Structure;
pub use wfomc::{fomc, probability, wfomc, wfomc_asymmetric, CompiledWfomc, GroundSolver};
