//! # wfomc-guard — resource governance for the WFOMC engine
//!
//! The paper's hardness results guarantee that some sentences are intractable
//! no matter the method, so a serving layer cannot run untrusted solves
//! without per-request limits. This crate is the small, dependency-free
//! substrate those limits stand on:
//!
//! * [`ExecutionLimits`] — a declarative budget (wall-clock deadline, work
//!   cap, memory estimate cap);
//! * [`CancelToken`] — a shareable cooperative cancellation flag (one relaxed
//!   `AtomicBool`), cloneable across threads;
//! * [`Guard`] — the armed runtime object long-running loops consult. An
//!   unarmed guard short-circuits on one boolean; an armed one pays a single
//!   relaxed atomic add per tick and runs the full check (cancel load, clock
//!   read, cap compare) once per [`CHECK_PERIOD`] units of work;
//! * [`Gate`] / [`Ungated`] / [`Meter`] — a monomorphizing gate for the
//!   hottest loops (the cell-sum DFS), so the default ungated path compiles
//!   to exactly the code it had before governance existed;
//! * [`Interrupt`] — the structured exhaustion report (`phase` + kind),
//!   converted by `wfomc-core` into its `SolveError` variants;
//! * [`failpoint`] — feature-gated fault injection (compiled out by
//!   default) that forces deadline expiry or worker panics inside each
//!   instrumented loop, for CI to prove the failure paths work.
//!
//! The design mirrors `wfomc-obs`: zero-sized no-ops when compiled out,
//! one relaxed atomic load when compiled in but not armed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many units of work an armed [`Guard`] accumulates between full checks
/// (cancellation load + clock read + cap compare). Coarse enough that hot
/// loops only pay a relaxed `fetch_add` per tick, fine enough that a 100ms
/// deadline is honored within a few milliseconds on every instrumented loop.
pub const CHECK_PERIOD: u64 = 1024;

/// Declarative resource limits for one solve.
///
/// All fields default to "unlimited"; arm only what the request needs. The
/// limits are *cooperative*: every long-running loop in the pipeline ticks a
/// [`Guard`] built from them and returns an [`Interrupt`] when exhausted,
/// leaving caches consistent so the same plan can be retried.
///
/// # Worked example
///
/// ```
/// use std::time::Duration;
/// use wfomc_guard::{ExecutionLimits, Guard};
///
/// // A serving layer would attach this to one request: at most 250ms of
/// // wall clock and 10 million units of work (≈ DFS nodes / DPLL decisions).
/// let limits = ExecutionLimits::none()
///     .with_deadline(Duration::from_millis(250))
///     .with_work_cap(10_000_000);
/// assert!(!limits.is_unlimited());
///
/// // The solver arms a guard from the limits and threads it through its
/// // loops; `tick` is the per-iteration call, `check` the per-phase one.
/// let guard = Guard::new(&limits, None);
/// assert!(guard.is_armed());
/// for _ in 0..100 {
///     guard.tick("doc.example", 1).expect("well within budget");
/// }
/// assert!(guard.work_done() >= 100);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecutionLimits {
    /// Wall-clock budget for the whole solve, measured from [`Guard::new`].
    pub deadline: Option<Duration>,
    /// Cap on abstract work units (loop iterations: DFS nodes, DPLL
    /// decisions, grounded subformulas, reduction rule applications).
    pub work_cap: Option<u64>,
    /// Cap on *a-priori memory estimates*: phases that can bound their
    /// allocation up front (number of ground atoms, pair-table cells) check
    /// the estimate against this before allocating.
    pub mem_estimate_cap: Option<u64>,
}

impl ExecutionLimits {
    /// No limits at all — a guard built from this (and no cancel token) is
    /// unarmed and costs one branch per tick.
    pub const fn none() -> ExecutionLimits {
        ExecutionLimits {
            deadline: None,
            work_cap: None,
            mem_estimate_cap: None,
        }
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> ExecutionLimits {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the work cap (abstract loop-iteration units).
    pub fn with_work_cap(mut self, cap: u64) -> ExecutionLimits {
        self.work_cap = Some(cap);
        self
    }

    /// Sets the memory-estimate cap (abstract units, roughly "things
    /// allocated": ground atoms, table cells).
    pub fn with_mem_estimate_cap(mut self, cap: u64) -> ExecutionLimits {
        self.mem_estimate_cap = Some(cap);
        self
    }

    /// True when no limit is armed.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.work_cap.is_none() && self.mem_estimate_cap.is_none()
    }
}

/// A shareable cooperative cancellation flag.
///
/// Clones share the flag; `cancel()` from any thread makes every armed
/// [`Guard`] holding a clone interrupt at its next check. The flag is
/// one-way for the token's lifetime — retry a cancelled solve with a fresh
/// token (or none).
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raises the flag (relaxed store; visible to every clone).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised (one relaxed load).
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a guarded loop stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExhaustKind {
    /// The wall-clock deadline passed; `elapsed` is time since the guard was
    /// armed.
    Deadline {
        /// Time since [`Guard::new`] when the deadline was detected.
        elapsed: Duration,
    },
    /// The work cap was reached.
    WorkCap {
        /// Work units recorded when the cap was detected.
        work: u64,
        /// The armed cap.
        cap: u64,
    },
    /// An up-front memory estimate exceeded the cap.
    MemEstimate {
        /// The phase's a-priori allocation estimate.
        estimate: u64,
        /// The armed cap.
        cap: u64,
    },
    /// The [`CancelToken`] was raised.
    Cancelled,
}

/// A structured exhaustion report: which pipeline phase stopped, and why.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interrupt {
    /// Static name of the loop that observed the exhaustion (e.g.
    /// `"fo2.cellsum"`, `"prop.dpll"`, `"ground.lineage"`).
    pub phase: &'static str,
    /// What ran out.
    pub kind: ExhaustKind,
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ExhaustKind::Deadline { elapsed } => {
                write!(
                    f,
                    "deadline exceeded in phase `{}` after {:.1}ms",
                    self.phase,
                    elapsed.as_secs_f64() * 1e3
                )
            }
            ExhaustKind::WorkCap { work, cap } => {
                write!(
                    f,
                    "work cap exceeded in phase `{}` ({work} of {cap} units)",
                    self.phase
                )
            }
            ExhaustKind::MemEstimate { estimate, cap } => {
                write!(
                    f,
                    "memory estimate {estimate} exceeds cap {cap} in phase `{}`",
                    self.phase
                )
            }
            ExhaustKind::Cancelled => write!(f, "cancelled in phase `{}`", self.phase),
        }
    }
}

impl std::error::Error for Interrupt {}

/// The armed runtime object guarded loops consult.
///
/// Constructed once per solve from [`ExecutionLimits`] and an optional
/// [`CancelToken`], then shared by reference across worker threads (all
/// state is atomic). When nothing is armed every method short-circuits on a
/// plain boolean, so ungoverned solves through the guarded code path stay
/// within measurement noise of the ungated one (see `BENCH_guard.json`).
#[derive(Debug)]
pub struct Guard {
    armed: bool,
    start: Instant,
    deadline: Option<Instant>,
    work_cap: Option<u64>,
    mem_cap: Option<u64>,
    cancel: Option<CancelToken>,
    work: AtomicU64,
}

impl Guard {
    /// A guard from limits plus an optional cancellation token. The deadline
    /// clock starts now.
    pub fn new(limits: &ExecutionLimits, cancel: Option<CancelToken>) -> Guard {
        let start = Instant::now();
        Guard {
            armed: !limits.is_unlimited() || cancel.is_some(),
            start,
            // `checked_add` so an absurd deadline (e.g. `Duration::MAX`)
            // degrades to "no deadline" instead of panicking.
            deadline: limits.deadline.and_then(|d| start.checked_add(d)),
            work_cap: limits.work_cap,
            mem_cap: limits.mem_estimate_cap,
            cancel,
            work: AtomicU64::new(0),
        }
    }

    /// A guard with nothing armed: every check is one branch on a boolean.
    pub fn unarmed() -> Guard {
        Guard::new(&ExecutionLimits::none(), None)
    }

    /// Whether any limit or token is armed.
    #[inline]
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Records `n` units of work; runs the full check whenever the shared
    /// tally crosses a [`CHECK_PERIOD`] boundary. The per-call cost while
    /// armed is one relaxed `fetch_add` plus a division; while unarmed, one
    /// branch.
    #[inline]
    pub fn tick(&self, phase: &'static str, n: u64) -> Result<(), Interrupt> {
        if !self.armed {
            return Ok(());
        }
        let before = self.work.fetch_add(n, Ordering::Relaxed);
        let after = before.saturating_add(n);
        if before / CHECK_PERIOD != after / CHECK_PERIOD {
            self.check_slow(phase, after)
        } else {
            Ok(())
        }
    }

    /// Runs the full check immediately (phase boundaries, cache misses —
    /// anywhere latency matters more than throughput).
    #[inline]
    pub fn check(&self, phase: &'static str) -> Result<(), Interrupt> {
        if !self.armed {
            return Ok(());
        }
        self.check_slow(phase, self.work.load(Ordering::Relaxed))
    }

    /// Checks an a-priori allocation estimate against the memory cap.
    #[inline]
    pub fn check_mem(&self, phase: &'static str, estimate: u64) -> Result<(), Interrupt> {
        if !self.armed {
            return Ok(());
        }
        match self.mem_cap {
            Some(cap) if estimate > cap => Err(Interrupt {
                phase,
                kind: ExhaustKind::MemEstimate { estimate, cap },
            }),
            _ => Ok(()),
        }
    }

    /// Adds work to the tally without checking (used by [`Meter`] on drop so
    /// partial batches still account their work).
    pub fn charge(&self, n: u64) {
        if self.armed {
            self.work.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Total work units recorded so far.
    pub fn work_done(&self) -> u64 {
        self.work.load(Ordering::Relaxed)
    }

    /// Time since the guard was armed.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    #[cold]
    fn check_slow(&self, phase: &'static str, work: u64) -> Result<(), Interrupt> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                wfomc_obs::metrics::GUARD_CANCELLED.inc();
                return Err(Interrupt {
                    phase,
                    kind: ExhaustKind::Cancelled,
                });
            }
        }
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now >= deadline {
                wfomc_obs::metrics::GUARD_DEADLINE_HITS.inc();
                return Err(Interrupt {
                    phase,
                    kind: ExhaustKind::Deadline {
                        elapsed: now.duration_since(self.start),
                    },
                });
            }
        }
        if let Some(cap) = self.work_cap {
            if work >= cap {
                wfomc_obs::metrics::GUARD_WORK_CAP_HITS.inc();
                return Err(Interrupt {
                    phase,
                    kind: ExhaustKind::WorkCap { work, cap },
                });
            }
        }
        Ok(())
    }
}

/// A monomorphizing per-loop gate for the hottest inner loops.
///
/// Generic code written against `Gate` compiles to *exactly* the ungoverned
/// code when instantiated with [`Ungated`] (the tick is an inlined `Ok(())`
/// and the `?` disappears), and to locally-batched guard ticks when
/// instantiated with [`Meter`]. This is how the cell-sum DFS keeps its
/// by-construction zero overhead on the default path.
pub trait Gate {
    /// Records `n` units of work; may interrupt.
    fn tick(&mut self, n: u64) -> Result<(), Interrupt>;
}

/// The no-op gate: always `Ok`, compiles away entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct Ungated;

impl Gate for Ungated {
    #[inline(always)]
    fn tick(&mut self, _n: u64) -> Result<(), Interrupt> {
        Ok(())
    }
}

/// A gate that batches ticks locally and flushes them into a shared
/// [`Guard`] once per [`CHECK_PERIOD`] units — one integer add and compare
/// per tick, no atomics until the flush.
#[derive(Debug)]
pub struct Meter<'a> {
    guard: &'a Guard,
    phase: &'static str,
    pending: u64,
}

impl<'a> Meter<'a> {
    /// A meter feeding `guard` under the given phase name.
    pub fn new(guard: &'a Guard, phase: &'static str) -> Meter<'a> {
        Meter {
            guard,
            phase,
            pending: 0,
        }
    }
}

impl Gate for Meter<'_> {
    #[inline]
    fn tick(&mut self, n: u64) -> Result<(), Interrupt> {
        self.pending += n;
        if self.pending >= CHECK_PERIOD {
            let batch = std::mem::take(&mut self.pending);
            self.guard.tick(self.phase, batch)
        } else {
            Ok(())
        }
    }
}

impl Drop for Meter<'_> {
    fn drop(&mut self) {
        // Account the tail batch so `Guard::work_done` reflects all work
        // even when the loop exits early (success or interrupt).
        self.guard.charge(std::mem::take(&mut self.pending));
    }
}

/// What an armed failpoint does when hit.
#[cfg(feature = "failpoints")]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Return a deadline-expired [`Interrupt`] from the instrumented loop.
    Expire,
    /// Panic inside the instrumented loop (exercises `catch_unwind`
    /// containment in fan-outs).
    Panic,
}

#[cfg(feature = "failpoints")]
mod fail {
    use super::{ExhaustKind, FailAction, Interrupt};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    /// One relaxed load decides whether the registry is consulted at all, so
    /// an armed-failpoints *build* with nothing armed costs a load + branch.
    static ANY_ARMED: AtomicBool = AtomicBool::new(false);
    static REGISTRY: Mutex<Vec<(String, FailAction)>> = Mutex::new(Vec::new());

    /// Arms a failpoint by name.
    pub fn arm(name: &str, action: FailAction) {
        let mut reg = REGISTRY.lock().expect("failpoint registry poisoned");
        reg.retain(|(n, _)| n != name);
        reg.push((name.to_string(), action));
        ANY_ARMED.store(true, Ordering::Relaxed);
    }

    /// Disarms every failpoint.
    pub fn clear() {
        REGISTRY
            .lock()
            .expect("failpoint registry poisoned")
            .clear();
        ANY_ARMED.store(false, Ordering::Relaxed);
    }

    #[inline]
    pub(super) fn hit(name: &'static str) -> Result<(), Interrupt> {
        if !ANY_ARMED.load(Ordering::Relaxed) {
            return Ok(());
        }
        let action = {
            let reg = REGISTRY.lock().expect("failpoint registry poisoned");
            reg.iter().find(|(n, _)| n == name).map(|(_, a)| *a)
        };
        match action {
            None => Ok(()),
            Some(FailAction::Expire) => Err(Interrupt {
                phase: name,
                kind: ExhaustKind::Deadline {
                    elapsed: Duration::ZERO,
                },
            }),
            Some(FailAction::Panic) => panic!("failpoint `{name}` forced a panic"),
        }
    }
}

#[cfg(feature = "failpoints")]
pub use fail::{arm as arm_failpoint, clear as clear_failpoints};

/// A fault-injection point. Compiled out (an empty inline function) without
/// the `failpoints` feature; with it, one relaxed load when nothing is
/// armed, and the armed action (expire or panic) when this name is armed.
#[inline]
pub fn failpoint(name: &'static str) -> Result<(), Interrupt> {
    #[cfg(feature = "failpoints")]
    {
        fail::hit(name)
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = name;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_guard_never_interrupts() {
        let guard = Guard::unarmed();
        assert!(!guard.is_armed());
        for _ in 0..10_000 {
            guard.tick("test", 1).unwrap();
        }
        guard.check("test").unwrap();
        guard.check_mem("test", u64::MAX).unwrap();
        // Unarmed guards do not even account work.
        assert_eq!(guard.work_done(), 0);
    }

    #[test]
    fn work_cap_interrupts_and_reports_phase() {
        let limits = ExecutionLimits::none().with_work_cap(CHECK_PERIOD);
        let guard = Guard::new(&limits, None);
        let mut hit = None;
        for _ in 0..10 * CHECK_PERIOD {
            if let Err(i) = guard.tick("test.loop", 1) {
                hit = Some(i);
                break;
            }
        }
        let interrupt = hit.expect("cap must trip");
        assert_eq!(interrupt.phase, "test.loop");
        assert!(matches!(
            interrupt.kind,
            ExhaustKind::WorkCap { cap, .. } if cap == CHECK_PERIOD
        ));
        assert!(interrupt.to_string().contains("work cap exceeded"));
    }

    #[test]
    fn expired_deadline_interrupts_immediately_on_check() {
        let limits = ExecutionLimits::none().with_deadline(Duration::ZERO);
        let guard = Guard::new(&limits, None);
        let err = guard.check("test.deadline").unwrap_err();
        assert!(matches!(err.kind, ExhaustKind::Deadline { .. }));
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        let guard = Guard::new(&ExecutionLimits::none(), Some(token));
        assert!(guard.is_armed());
        guard.check("test.cancel").unwrap();
        clone.cancel();
        let err = guard.check("test.cancel").unwrap_err();
        assert_eq!(err.kind, ExhaustKind::Cancelled);
    }

    #[test]
    fn mem_estimate_cap_rejects_large_allocations_up_front() {
        let limits = ExecutionLimits::none().with_mem_estimate_cap(1000);
        let guard = Guard::new(&limits, None);
        guard.check_mem("test.alloc", 1000).unwrap();
        let err = guard.check_mem("test.alloc", 1001).unwrap_err();
        assert_eq!(
            err.kind,
            ExhaustKind::MemEstimate {
                estimate: 1001,
                cap: 1000
            }
        );
    }

    #[test]
    fn meter_batches_ticks_and_charges_the_tail_on_drop() {
        let limits = ExecutionLimits::none().with_work_cap(u64::MAX);
        let guard = Guard::new(&limits, None);
        {
            let mut meter = Meter::new(&guard, "test.meter");
            for _ in 0..CHECK_PERIOD + 10 {
                meter.tick(1).unwrap();
            }
            // One flush has happened; the 10-unit tail is still pending.
            assert_eq!(guard.work_done(), CHECK_PERIOD);
        }
        assert_eq!(guard.work_done(), CHECK_PERIOD + 10);
    }

    #[test]
    fn ungated_gate_is_infallible() {
        let mut gate = Ungated;
        for _ in 0..100 {
            gate.tick(123).unwrap();
        }
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn failpoints_expire_when_armed_and_pass_otherwise() {
        clear_failpoints();
        failpoint("test.fp").unwrap();
        arm_failpoint("test.fp", FailAction::Expire);
        let err = failpoint("test.fp").unwrap_err();
        assert!(matches!(err.kind, ExhaustKind::Deadline { .. }));
        failpoint("test.other").unwrap();
        clear_failpoints();
        failpoint("test.fp").unwrap();
    }
}
