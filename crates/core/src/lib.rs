//! # wfomc-core
//!
//! Lifted algorithms for **symmetric Weighted First-Order Model Counting** —
//! the algorithmic content of *Symmetric Weighted First-Order Model Counting*
//! (Beame, Van den Broeck, Gribkoff, Suciu — PODS 2015).
//!
//! The crate provides, on top of the substrates `wfomc-logic`, `wfomc-prop`,
//! `wfomc-hypergraph` and `wfomc-ground`:
//!
//! * [`normal`] — the three weight-preserving transformations of §3.1:
//!   Skolemization (Lemma 3.3, existential quantifiers removed with a fresh
//!   predicate of weight (1, −1)), negation removal (Lemma 3.4) and equality
//!   removal (Lemma 3.5 — by default one symbolic evaluation in the
//!   polynomial algebra, with the interpolation protocol kept as a
//!   differential oracle);
//! * [`fo2`] — the PTIME data-complexity algorithm for FO² (Appendix C):
//!   Scott normal form, Skolemization, Shannon expansion over nullary
//!   predicates and the 1-type / cell decomposition sum;
//! * [`cq`] — the γ-acyclic conjunctive query algorithm of Theorem 3.6
//!   (Fagin's reduction rules with probability bookkeeping) and the explicit
//!   linear-chain recurrence of Example 3.10;
//! * [`qs4`] — the dynamic program of Theorem 3.7 for the sentence QS4;
//! * [`closed_form`] — the closed-form counting identities of Table 1 and the
//!   introduction;
//! * [`solver`] — a front-door [`solver::Solver`] that inspects a sentence,
//!   picks the best applicable method and falls back to grounded WFOMC when no
//!   lifted method applies (which is exactly what the paper's hardness results
//!   predict for Table 2's open problems);
//! * [`plan`] — the plan-then-execute API: a [`plan::Problem`] is analyzed
//!   *once* by [`solver::Solver::plan`] into a [`plan::Plan`] (method
//!   selection, FO² normalization + cell decomposition, CQ recognition, a
//!   domain-size-keyed grounding/circuit cache), and then evaluated cheaply
//!   at any number of `(n, weights)` points — in any evaluation algebra
//!   (exact rationals, log-space floats, polynomials) via
//!   [`plan::Plan::count_in`], since plan-time analysis is weight- and
//!   algebra-independent.
//!
//! Every lifted path is cross-validated against brute-force structure
//! enumeration and the grounded lineage pipeline in this crate's tests and in
//! the workspace integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closed_form;
pub mod combinatorics;
pub mod cq;
pub mod error;
pub mod fo2;
pub mod normal;
pub mod plan;
pub mod qs4;
pub mod solver;

pub use error::{LiftError, SolveError};
pub use plan::{DegradePolicy, Plan, PlanReport, Problem};
pub use solver::{LimitsReport, Method, PlanCacheStats, Solver, SolverBuilder, SolverReport};
// The guard substrate is part of the governed API surface: callers build
// `ExecutionLimits`/`CancelToken` values to pass into
// [`Plan::count_with_limits`] without depending on `wfomc-guard` directly.
pub use wfomc_guard::{CancelToken, ExecutionLimits};
