#!/usr/bin/env bash
# Smoke test for the wfomc-serve daemon, used by the CI serve job and
# runnable locally: boots the daemon against a fresh registry log, drives a
# register / query / stats / metrics cycle through the CLI client, checks
# that a deadline-capped query fails typed without poisoning the plan, and
# shuts the daemon down gracefully — asserting it exits 0.
#
#   cargo build --release -p wfomc-serve && bash scripts/serve_smoke.sh
#
# WFOMC_SERVE_BIN and WFOMC_SERVE_ADDR override the binary and address.
set -euo pipefail

BIN="${WFOMC_SERVE_BIN:-target/release/wfomc-serve}"
ADDR="${WFOMC_SERVE_ADDR:-127.0.0.1:7171}"
WORKDIR="$(mktemp -d)"
REGISTRY="$WORKDIR/registry.jsonl"

"$BIN" serve --addr "$ADDR" --registry "$REGISTRY" --workers 2 &
DAEMON=$!
cleanup() {
    kill "$DAEMON" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

# Wait for the listener to come up.
for _ in $(seq 1 50); do
    if "$BIN" list --addr "$ADDR" >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done

SENTENCE='forall x. forall y. S(x) | N(x,y) | S(y)'
REGISTER_JSON="$("$BIN" register --addr "$ADDR" "$SENTENCE")"
echo "register: $REGISTER_JSON"
ID="$(printf '%s' "$REGISTER_JSON" | sed -n 's/.*"id":"\([0-9a-f]\{16\}\)".*/\1/p')"
test -n "$ID" || { echo "no plan id in register response" >&2; exit 1; }

"$BIN" query --addr "$ADDR" "$ID" --n 5
"$BIN" stats --addr "$ADDR" "$ID" >/dev/null
"$BIN" metrics --addr "$ADDR" >/dev/null
grep -q '"kind":"register"' "$REGISTRY" || {
    echo "registration was not persisted to $REGISTRY" >&2
    exit 1
}

# A deadline-capped query must fail (typed 422, non-zero CLI exit) ...
if "$BIN" query --addr "$ADDR" "$ID" --n 400 --timeout-ms 0 >/dev/null 2>&1; then
    echo "expected the deadline-capped query to fail" >&2
    exit 1
fi
# ... without poisoning the plan for the next query.
"$BIN" query --addr "$ADDR" "$ID" --n 5 >/dev/null

# Graceful shutdown: drain and exit 0.
"$BIN" shutdown --addr "$ADDR" >/dev/null
wait "$DAEMON"
trap - EXIT
cleanup
echo "serve smoke: ok"
