//! Symmetric weight functions (w, w̄) and exact rational arithmetic.
//!
//! In the symmetric WFOMC problem (§2 of the paper) every tuple of relation
//! `Rᵢ` carries the same pair of weights `(wᵢ, w̄ᵢ)`: `wᵢ` multiplies the
//! weight of a world when the tuple is *present*, `w̄ᵢ` when it is *absent*.
//! Weighted model counts are therefore polynomials in the weights and must be
//! computed with exact arithmetic: this module uses
//! [`num_rational::BigRational`]. Negative weights are fully supported — the
//! Skolemization lemma (Lemma 3.3) introduces a predicate with w̄ = −1.

use std::collections::BTreeMap;
use std::fmt;

use num_bigint::BigInt;
use num_rational::BigRational;
use num_traits::{One, Signed, Zero};

use crate::vocabulary::{Predicate, Vocabulary};

/// An exact rational weight.
pub type Weight = BigRational;

/// Builds a weight from an integer.
pub fn weight_int(i: i64) -> Weight {
    BigRational::from_integer(BigInt::from(i))
}

/// Builds a weight from a numerator/denominator pair.
///
/// # Panics
/// Panics if `denom == 0`.
pub fn weight_ratio(num: i64, denom: i64) -> Weight {
    assert_ne!(denom, 0, "weight denominator must be non-zero");
    BigRational::new(BigInt::from(num), BigInt::from(denom))
}

/// Raises a rational weight to a non-negative integer power.
pub fn weight_pow(base: &Weight, exp: usize) -> Weight {
    // Exponentiation by squaring on BigRational.
    let mut result = Weight::one();
    let mut base = base.clone();
    let mut e = exp;
    while e > 0 {
        if e & 1 == 1 {
            result *= &base;
        }
        e >>= 1;
        if e > 0 {
            base = &base * &base;
        }
    }
    result
}

/// A per-base cache of integer powers of a [`Weight`].
///
/// The hot loops of the lifted algorithms (notably the FO² cell-sum engine)
/// raise a small, fixed set of bases to many different exponents. A dense
/// table `base⁰ … base^cap` is grown incrementally — each new entry is one
/// multiplication — and exponents beyond `cap` fall back to square-and-multiply
/// ([`weight_pow`]) with the results memoized sparsely, so every distinct
/// power of a base is computed at most once per cache.
///
/// This is the exact-rational instance of the algebra-generic
/// [`crate::algebra::Powers`] cache (one implementation, two entry points:
/// the generic engines use `Powers` directly, exact-only callers keep this
/// algebra-free signature).
#[derive(Clone, Debug)]
pub struct PowCache {
    inner: crate::algebra::Powers<crate::algebra::Exact>,
}

impl PowCache {
    /// Creates a cache for `base` whose dense table grows up to exponent
    /// `cap` (inclusive).
    pub fn new(base: Weight, cap: usize) -> Self {
        PowCache {
            inner: crate::algebra::Powers::new(&crate::algebra::Exact, base, cap),
        }
    }

    /// The cached base.
    pub fn base(&self) -> &Weight {
        self.inner.base()
    }

    /// `base^exp`, from the dense table when `exp ≤ cap`, otherwise by
    /// memoized square-and-multiply.
    ///
    /// Returns a clone; prefer [`pow_ref`](Self::pow_ref) on hot paths.
    /// (Word-sized powers clone allocation-free since the bignum's inline
    /// small-value representation, so the distinction only matters for
    /// genuinely large values.)
    pub fn pow(&mut self, exp: usize) -> Weight {
        self.inner.pow(&crate::algebra::Exact, exp)
    }

    /// Like [`pow`](Self::pow) but borrows the cached value — hot loops
    /// multiply two borrowed powers (or `*=` one) without ever cloning a
    /// heap-sized rational per lookup.
    pub fn pow_ref(&mut self, exp: usize) -> &Weight {
        self.inner.pow_ref(&crate::algebra::Exact, exp)
    }
}

/// The pair of weights attached to one predicate: `w` for present tuples,
/// `w̄` ("negative weight" in the WFOMC literature) for absent tuples.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WeightPair {
    /// Weight of a present tuple.
    pub pos: Weight,
    /// Weight of an absent tuple.
    pub neg: Weight,
}

impl WeightPair {
    /// Creates a weight pair.
    pub fn new(pos: Weight, neg: Weight) -> Self {
        WeightPair { pos, neg }
    }

    /// The unweighted pair (1, 1) — model counting.
    pub fn ones() -> Self {
        WeightPair::new(Weight::one(), Weight::one())
    }

    /// A pair derived from a probability `p`: `(p, 1−p)`.
    pub fn from_probability(p: Weight) -> Self {
        let neg = Weight::one() - &p;
        WeightPair::new(p, neg)
    }

    /// Converts this pair to a tuple probability `w / (w + w̄)`.
    ///
    /// Returns `None` when `w + w̄ = 0`, in which case no probability
    /// normalization exists (this happens e.g. for the Skolemization
    /// predicate with weights (1, −1)).
    pub fn to_probability(&self) -> Option<Weight> {
        let sum = &self.pos + &self.neg;
        if sum.is_zero() {
            None
        } else {
            Some(&self.pos / sum)
        }
    }

    /// The sum `w + w̄`, i.e. the contribution of one unconstrained tuple to
    /// `WFOMC(true)`.
    pub fn total(&self) -> Weight {
        &self.pos + &self.neg
    }

    /// True if both weights are non-negative (the "practical applications"
    /// regime discussed in §2).
    pub fn is_nonnegative(&self) -> bool {
        !self.pos.is_negative() && !self.neg.is_negative()
    }
}

impl Default for WeightPair {
    fn default() -> Self {
        WeightPair::ones()
    }
}

impl fmt::Display for WeightPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(w={}, w̄={})", self.pos, self.neg)
    }
}

/// A symmetric weight function over a vocabulary: one [`WeightPair`] per
/// predicate name. Predicates without an explicit entry default to `(1, 1)`,
/// i.e. unweighted model counting, which matches how the paper treats freshly
/// introduced symbols unless stated otherwise.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Weights {
    by_predicate: BTreeMap<String, WeightPair>,
}

impl Weights {
    /// The all-ones weight function (plain FOMC).
    pub fn ones() -> Self {
        Weights::default()
    }

    /// Builds a weight function from `(name, w, w̄)` triples of integers.
    pub fn from_ints<'a, I>(entries: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, i64, i64)>,
    {
        let mut w = Weights::default();
        for (name, pos, neg) in entries {
            w.set(name, weight_int(pos), weight_int(neg));
        }
        w
    }

    /// Sets the weight pair for a predicate name.
    pub fn set(&mut self, name: impl Into<String>, pos: Weight, neg: Weight) -> &mut Self {
        self.by_predicate
            .insert(name.into(), WeightPair::new(pos, neg));
        self
    }

    /// Sets the weight pair from a probability: `(p, 1−p)`.
    pub fn set_probability(&mut self, name: impl Into<String>, p: Weight) -> &mut Self {
        self.by_predicate
            .insert(name.into(), WeightPair::from_probability(p));
        self
    }

    /// Builder-style [`set`](Self::set).
    pub fn with(mut self, name: impl Into<String>, pos: Weight, neg: Weight) -> Self {
        self.set(name, pos, neg);
        self
    }

    /// The weight pair for a predicate name (defaults to `(1,1)`).
    pub fn pair(&self, name: &str) -> WeightPair {
        self.by_predicate.get(name).cloned().unwrap_or_default()
    }

    /// The weight pair for a predicate symbol.
    pub fn pair_of(&self, p: &Predicate) -> WeightPair {
        self.pair(p.name())
    }

    /// Iterates over explicitly set entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &WeightPair)> {
        self.by_predicate.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True if every explicitly set weight is non-negative.
    pub fn is_nonnegative(&self) -> bool {
        self.by_predicate.values().all(WeightPair::is_nonnegative)
    }

    /// `WFOMC(true, n, w, w̄) = Π_t (w(t) + w̄(t))` — the sum of the weights of
    /// *all* structures over a domain of size `n` (§1 of the paper). This is
    /// the normalization constant turning weighted counts into probabilities.
    pub fn wfomc_of_true(&self, vocabulary: &Vocabulary, n: usize) -> Weight {
        let mut total = Weight::one();
        for p in vocabulary.iter() {
            let pair = self.pair_of(p);
            total *= weight_pow(&pair.total(), p.num_ground_tuples(n));
        }
        total
    }

    /// Merges `other` into `self`, with `other` taking precedence on
    /// conflicting names. Used when a lemma extends a weighted vocabulary.
    pub fn extended_with(&self, other: &Weights) -> Weights {
        let mut out = self.clone();
        for (name, pair) in other.iter() {
            out.by_predicate.insert(name.to_string(), pair.clone());
        }
        out
    }
}

impl fmt::Display for Weights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (name, pair)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}: {pair}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_pow_matches_naive() {
        let w = weight_ratio(3, 2);
        let mut naive = Weight::one();
        for _ in 0..7 {
            naive *= &w;
        }
        assert_eq!(weight_pow(&w, 7), naive);
        assert_eq!(weight_pow(&w, 0), Weight::one());
    }

    #[test]
    fn pow_cache_matches_weight_pow() {
        let base = weight_ratio(-3, 2);
        let mut cache = PowCache::new(base.clone(), 8);
        assert_eq!(cache.base(), &base);
        // Dense range, out of order; sparse fallback beyond the cap; repeats.
        for e in [0usize, 3, 1, 8, 5, 20, 100, 20, 8] {
            assert_eq!(cache.pow(e), weight_pow(&base, e), "e = {e}");
        }
        // Zero base: 0⁰ = 1, 0^e = 0.
        let mut zero = PowCache::new(Weight::zero(), 4);
        assert_eq!(zero.pow(0), Weight::one());
        assert!(zero.pow(3).is_zero());
        assert!(zero.pow(9).is_zero());
    }

    #[test]
    fn probability_round_trip() {
        let p = weight_ratio(1, 3);
        let pair = WeightPair::from_probability(p.clone());
        assert_eq!(pair.to_probability().unwrap(), p);
        // Example 1.2: weight 1/2 corresponds to probability 1/3.
        let pair = WeightPair::new(weight_ratio(1, 2), Weight::one());
        assert_eq!(pair.to_probability().unwrap(), weight_ratio(1, 3));
    }

    #[test]
    fn skolem_pair_has_no_probability() {
        let pair = WeightPair::new(weight_int(1), weight_int(-1));
        assert!(pair.to_probability().is_none());
        assert!(!pair.is_nonnegative());
        assert!(pair.total().is_zero());
    }

    #[test]
    fn default_pair_is_ones() {
        let w = Weights::ones();
        assert_eq!(w.pair("anything"), WeightPair::ones());
        assert!(w.is_nonnegative());
    }

    #[test]
    fn wfomc_of_true_counts_all_structures() {
        // One binary relation, weights (1,1): 2^{n²} structures.
        let voc = Vocabulary::from_pairs([("R", 2)]);
        let w = Weights::ones();
        assert_eq!(w.wfomc_of_true(&voc, 3), weight_int(512));
        // With weights (2,1) each tuple contributes 3: 3^{n²}.
        let w = Weights::from_ints([("R", 2, 1)]);
        assert_eq!(w.wfomc_of_true(&voc, 2), weight_int(81));
    }

    #[test]
    fn extension_overrides() {
        let a = Weights::from_ints([("R", 2, 1)]);
        let b = Weights::from_ints([("R", 5, 1), ("S", 3, 1)]);
        let c = a.extended_with(&b);
        assert_eq!(c.pair("R").pos, weight_int(5));
        assert_eq!(c.pair("S").pos, weight_int(3));
    }

    #[test]
    fn display_is_readable() {
        let w = Weights::from_ints([("R", 3, 1)]);
        let s = format!("{w}");
        assert!(s.contains("R"));
        assert!(s.contains('3'));
    }
}
