//! The paper's three weight-preserving transformations (§3.1, Appendix A).
//!
//! * [`skolem`] — Lemma 3.3: every existential quantifier can be removed from
//!   a prenex sentence at the cost of a fresh predicate with weights (1, −1).
//! * [`negation`] — Lemma 3.4: negation can be removed from a ∀*-sentence at
//!   the cost of two fresh predicates per negated subformula, one of which has
//!   weight (1, −1).
//! * [`equality`] — Lemma 3.5: the equality predicate can be replaced by an
//!   ordinary relation `E` plus the hard constraint `∀x E(x,x)`; the original
//!   WFOMC is recovered as one coefficient of a polynomial in `w(E)`, obtained
//!   by interpolation over polynomially many oracle calls.
//!
//! Chained together (as in the proof of Corollary 3.2), these three lemmas
//! turn an arbitrary FO sentence into a positive, equality-free, universally
//! quantified sentence with the same weighted model count.

pub mod equality;
pub mod negation;
pub mod skolem;

pub use equality::{
    remove_equality, wfomc_via_equality_removal, wfomc_via_equality_removal_compiled,
    wfomc_via_equality_removal_interpolated, wfomc_via_equality_removal_with_oracle, EqualityFree,
};
pub use negation::{remove_negation, NegationFree};
pub use skolem::{skolemize, Skolemized};
