//! Wall-clock snapshot tool for the FO² cell-sum hot path. Prints one JSON
//! object per workload (`{"workload": ..., "n": ..., "ms": ...}`) so
//! before/after numbers can be recorded in `BENCH_fo2.json`. Run with
//! `cargo run --release -p wfomc-bench --bin fo2_time [-- quick]`.

use std::env;
use std::time::Instant;

use wfomc::core::fo2::wfomc_fo2_with_stats;
use wfomc::prelude::*;
use wfomc_bench::{fo2_scaling_workload, standard_weights};

fn time_one(name: &str, sentence: &Formula, n: usize, weights: &Weights) {
    let voc = sentence.vocabulary();
    let start = Instant::now();
    let (_, stats) = wfomc_fo2_with_stats(sentence, &voc, n, weights).unwrap();
    let ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "{{\"workload\": \"{name}\", \"n\": {n}, \"ms\": {ms:.2}, \"cells\": {}, \"compositions\": {}}}",
        stats.total_valid_cells, stats.compositions_summed
    );
}

fn main() {
    let quick = env::args().nth(1).as_deref() == Some("quick");
    let weights = standard_weights();
    time_one(
        "forall-exists",
        &catalog::forall_exists_edge(),
        30,
        &weights,
    );
    time_one("spouse", &catalog::spouse_constraint(), 20, &weights);
    time_one("smokers", &catalog::smokers_constraint(), 30, &weights);
    time_one("table1", &catalog::table1_sentence(), 12, &weights);
    if !quick {
        time_one("table1", &catalog::table1_sentence(), 30, &weights);
        time_one(
            "forall-exists",
            &catalog::forall_exists_edge(),
            100,
            &weights,
        );
        time_one("partition-12cell", &fo2_scaling_workload(), 100, &weights);
    }
}
