//! Wall-clock snapshot tool for the bignum-bound hot paths. Prints one JSON
//! object per workload (`{"workload": ..., "ms": ...}`) so before/after
//! numbers can be recorded in `BENCH_bignum.json`. Run with
//! `cargo run --release -p wfomc-bench --bin bignum_time [-- quick]`.
//!
//! Every exact evaluation path in the workspace bottoms out in the vendored
//! `num-bigint`: the FO² cell-sum engine's huge-exponent products, circuit
//! evaluation, the `Poly` algebra's coefficient arithmetic, and rational
//! normalization (gcd). The workloads here cover each of those plus pure
//! big-integer microbenchmarks (balanced squaring for Karatsuba, a factorial
//! chain for big×small, a harmonic sum for gcd/normalization).

use std::env;

use wfomc::core::fo2::wfomc_fo2;
use wfomc::prelude::*;
use wfomc_bench::{
    bignum_factorial_chain, bignum_harmonic, bignum_square_chain, standard_weights, time_ms,
};

fn report(name: &str, ms: f64) {
    println!("{{\"workload\": \"{name}\", \"ms\": {ms:.2}}}");
}

fn main() {
    let quick = env::args().nth(1).as_deref() == Some("quick");
    let weights = standard_weights();

    // Pure bignum microbenchmarks.
    report("square-chain-10", time_ms(|| drop(bignum_square_chain(10))));
    report(
        "factorial-3000",
        time_ms(|| drop(bignum_factorial_chain(3000))),
    );
    report("harmonic-500", time_ms(|| drop(bignum_harmonic(500))));

    // Circuit evaluation: one compiled d-DNNF, a weight sweep of exact
    // rational evaluations (allocation-heavy small values).
    let solver = Solver::builder()
        .ground_backend(WmcBackend::Circuit)
        .build();
    let plan = solver
        .plan(&Problem::new(catalog::transitivity()))
        .expect("transitivity plans");
    let points: Vec<(usize, Weights)> = (0..32)
        .map(|i| (3, Weights::from_ints([("R", i + 1, 1)])))
        .collect();
    report(
        "circuit-eval-sweep",
        time_ms(|| {
            for (n, w) in &points {
                let _ = plan.count(*n, w).expect("circuit eval");
            }
        }),
    );

    // FO² cell-sum engine: the multiplication-heavy exact workloads.
    let fo2 = |sentence: &Formula, n: usize| {
        let voc = sentence.vocabulary();
        let w = weights.clone();
        let sentence = sentence.clone();
        time_ms(move || {
            wfomc_fo2(&sentence, &voc, n, &w).expect("fo2 workload lifts");
        })
    };
    report("fo2-smokers-30", fo2(&catalog::smokers_constraint(), 30));
    if !quick {
        report(
            "fo2-forall-exists-100",
            fo2(&catalog::forall_exists_edge(), 100),
        );
        report("fo2-table1-30", fo2(&catalog::table1_sentence(), 30));
    }
}
