//! 1-types (cells) and two-element tables for the FO² algorithm.
//!
//! A *cell* (the appendix calls them `C₁ … C_{2^m}`; the lifted-inference
//! literature calls them 1-types) is a complete truth assignment to all atoms
//! that mention a single element: the unary atoms `U(x)` and the reflexive
//! binary atoms `B(x,x)`. A cell is *valid* if it satisfies the diagonal
//! constraint `Ψ(x, x)`.
//!
//! For an (unordered) pair of elements with cells `i` and `j`, the table entry
//! `r_{ij}` sums, over all assignments to the cross atoms `B(x,y)`, `B(y,x)`,
//! the weight of the assignments satisfying `Ψ(x,y) ∧ Ψ(y,x)`.

use num_traits::{One, Zero};

use wfomc_logic::algebra::{Algebra, AlgebraWeights};
use wfomc_logic::syntax::Formula;
use wfomc_logic::term::Term;
use wfomc_logic::vocabulary::Predicate;
use wfomc_logic::weights::{Weight, Weights};

use super::normalize::{VAR_X, VAR_Y};
use crate::error::LiftError;

/// The unary / binary predicates over which cells are formed.
#[derive(Clone, Debug)]
pub struct CellSpace {
    /// Unary predicates, in a fixed order.
    pub unary: Vec<Predicate>,
    /// Binary predicates, in a fixed order.
    pub binary: Vec<Predicate>,
}

impl CellSpace {
    /// Number of bits in a cell description.
    pub fn cell_bits(&self) -> usize {
        self.unary.len() + self.binary.len()
    }
}

/// A valid 1-type together with its weight
/// `u_c = Π_U w-or-w̄(U) · Π_B w-or-w̄(B)` over its unary and reflexive atoms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Truth values of the unary atoms, aligned with [`CellSpace::unary`].
    pub unary: Vec<bool>,
    /// Truth values of the reflexive binary atoms, aligned with
    /// [`CellSpace::binary`].
    pub reflexive: Vec<bool>,
    /// The cell weight `u_c`.
    pub weight: Weight,
}

/// An assignment to the cross atoms of an ordered pair `(x, y)`.
struct CrossAssign {
    /// `B_k(x, y)` values.
    fwd: Vec<bool>,
    /// `B_k(y, x)` values.
    bwd: Vec<bool>,
}

/// The weight-independent part of the pair table: for every unordered pair of
/// valid cells `i ≤ j`, the multiset of *signatures* of the cross assignments
/// satisfying `Ψ(x,y) ∧ Ψ(y,x)`.
///
/// A satisfying assignment to the `2b` cross atoms contributes
/// `Π_t w_t^{a_t} · w̄_t^{2 − a_t}` where `a_t ∈ {0, 1, 2}` counts how many of
/// `B_t(x,y)`, `B_t(y,x)` are true — so only the signature `(a_1, …, a_b)`
/// matters, and the up-to-`4^b` assignments collapse into at most `3^b`
/// signatures with multiplicities.
///
/// Finding the satisfying assignments is the expensive part of building the
/// table (it evaluates the matrix `2^{2b}` times per cell pair); summing the
/// signature weights ([`bind_pair_table`]) is cheap and can be redone per
/// weight function, which is what lets a [`crate::plan::Plan`] analyze a
/// sentence once and re-weight it many times.
#[derive(Clone, Debug)]
pub struct PairStructure {
    /// `sat[i][j - i]` holds the signature multiset of the pair `(i, j)`,
    /// `i ≤ j`.
    sat: Vec<Vec<SignatureMultiset>>,
}

/// The satisfying cross assignments of one cell pair, grouped by signature:
/// `(per-predicate true-counts, multiplicity)` in increasing signature order.
pub(crate) type SignatureMultiset = Vec<(Vec<u8>, u64)>;

impl PairStructure {
    /// Total number of satisfying cross assignments over all cell pairs.
    pub fn num_satisfying(&self) -> usize {
        self.sat
            .iter()
            .flatten()
            .flatten()
            .map(|(_, count)| *count as usize)
            .sum()
    }

    /// Per-cell count of *structural* zeros: pairs `(i, j)` with no
    /// satisfying cross assignment at all, whose bound table entry is zero
    /// for every weight function. Unlike the bound entries these counts are
    /// weight-independent, so a cell order derived from them is shared by
    /// every weight vector — which is what lets order-sensitive (float)
    /// algebras front-load constrained cells without breaking bit-for-bit
    /// lane/scalar agreement.
    pub fn structural_zero_counts(&self) -> Vec<usize> {
        let k = self.sat.len();
        let mut zeros = vec![0usize; k];
        for (i, row) in self.sat.iter().enumerate() {
            for (d, signatures) in row.iter().enumerate() {
                if signatures.is_empty() {
                    zeros[i] += 1;
                    if d > 0 {
                        zeros[i + d] += 1;
                    }
                }
            }
        }
        zeros
    }

    /// Reindexes the structure by `perm` (new index `a` maps to old cell
    /// `perm[a]`), preserving the triangular `i ≤ j` layout.
    pub fn permute(&self, perm: &[usize]) -> PairStructure {
        let k = self.sat.len();
        debug_assert_eq!(perm.len(), k);
        let mut sat = Vec::with_capacity(k);
        for a in 0..k {
            let mut row = Vec::with_capacity(k - a);
            for b in a..k {
                let (i, j) = if perm[a] <= perm[b] {
                    (perm[a], perm[b])
                } else {
                    (perm[b], perm[a])
                };
                row.push(self.sat[i][j - i].clone());
            }
            sat.push(row);
        }
        PairStructure { sat }
    }

    /// The triangular signature table, row-major, for the snapshot codec.
    pub(crate) fn sat_rows(&self) -> &[Vec<SignatureMultiset>] {
        &self.sat
    }

    /// Rebuilds a structure from decoded rows, validating the triangular
    /// layout (`sat[i].len() == k − i`). Returns `None` on violation.
    pub(crate) fn from_rows(sat: Vec<Vec<SignatureMultiset>>) -> Option<PairStructure> {
        let k = sat.len();
        for (i, row) in sat.iter().enumerate() {
            if row.len() != k - i {
                return None;
            }
        }
        Some(PairStructure { sat })
    }
}

/// Enumerates the valid cell *shapes* of a matrix: the truth assignments
/// satisfying the diagonal constraint `Ψ(x, x)`, with every weight left at 1.
/// [`bind_cell_weights`] turns shapes into weighted [`Cell`]s.
pub fn build_cell_shapes(matrix: &Formula, space: &CellSpace) -> Result<Vec<Cell>, LiftError> {
    let bits = space.cell_bits();
    if bits > 24 {
        return Err(LiftError::Internal(format!(
            "cell space over {bits} atoms is too large; the sentence is not practically liftable"
        )));
    }
    let mut cells = Vec::new();
    for code in 0u64..(1u64 << bits) {
        let unary: Vec<bool> = (0..space.unary.len()).map(|i| code >> i & 1 == 1).collect();
        let reflexive: Vec<bool> = (0..space.binary.len())
            .map(|i| code >> (space.unary.len() + i) & 1 == 1)
            .collect();
        let candidate = Cell {
            unary,
            reflexive,
            weight: Weight::one(),
        };
        // Validity: Ψ(x, x) must hold.
        if !eval_matrix(matrix, space, &candidate, &candidate, None, true)? {
            continue;
        }
        cells.push(candidate);
    }
    Ok(cells)
}

/// Computes the cell weights `u_c` for a slice of (structural) cells under a
/// weight function: the product of `w` / `w̄` over the cell's unary and
/// reflexive atoms.
pub fn bind_cell_weights(shapes: &[Cell], space: &CellSpace, weights: &Weights) -> Vec<Cell> {
    let unary_pairs: Vec<_> = space.unary.iter().map(|p| weights.pair_of(p)).collect();
    let binary_pairs: Vec<_> = space.binary.iter().map(|p| weights.pair_of(p)).collect();
    shapes
        .iter()
        .map(|shape| {
            let mut weight = Weight::one();
            for (i, pair) in unary_pairs.iter().enumerate() {
                weight *= if shape.unary[i] { &pair.pos } else { &pair.neg };
            }
            for (i, pair) in binary_pairs.iter().enumerate() {
                weight *= if shape.reflexive[i] {
                    &pair.pos
                } else {
                    &pair.neg
                };
            }
            Cell {
                unary: shape.unary.clone(),
                reflexive: shape.reflexive.clone(),
                weight,
            }
        })
        .collect()
}

/// Computes the cell weights `u_c` of a slice of (structural) cells in an
/// arbitrary [`Algebra`]: the same product of `w` / `w̄` elements over the
/// cell's unary and reflexive atoms, returned as a bare weight vector
/// aligned with `shapes` (the shapes themselves are weight-free structure).
pub fn bind_cell_weights_in<A: Algebra>(
    shapes: &[Cell],
    space: &CellSpace,
    algebra: &A,
    weights: &AlgebraWeights<A>,
) -> Vec<A::Elem> {
    let unary_pairs: Vec<_> = space
        .unary
        .iter()
        .map(|p| weights.pair_of(algebra, p))
        .collect();
    let binary_pairs: Vec<_> = space
        .binary
        .iter()
        .map(|p| weights.pair_of(algebra, p))
        .collect();
    shapes
        .iter()
        .map(|shape| {
            let mut weight = algebra.one();
            for (i, (pos, neg)) in unary_pairs.iter().enumerate() {
                algebra.mul_assign(&mut weight, if shape.unary[i] { pos } else { neg });
            }
            for (i, (pos, neg)) in binary_pairs.iter().enumerate() {
                algebra.mul_assign(&mut weight, if shape.reflexive[i] { pos } else { neg });
            }
            weight
        })
        .collect()
}

/// Enumerates the valid cells of a matrix.
pub fn build_cells(
    matrix: &Formula,
    space: &CellSpace,
    weights: &Weights,
) -> Result<Vec<Cell>, LiftError> {
    let shapes = build_cell_shapes(matrix, space)?;
    Ok(bind_cell_weights(&shapes, space, weights))
}

/// Finds, for every unordered pair of cells, the cross assignments satisfying
/// `Ψ(x,y) ∧ Ψ(y,x)` — the weight-independent part of [`build_pair_table`].
pub fn build_pair_structure(
    matrix: &Formula,
    space: &CellSpace,
    cells: &[Cell],
) -> Result<PairStructure, LiftError> {
    let b = space.binary.len();
    if 2 * b > 24 {
        return Err(LiftError::Internal(format!(
            "pair table over {} cross atoms is too large",
            2 * b
        )));
    }
    let k = cells.len();
    let mut sat = Vec::with_capacity(k);
    for i in 0..k {
        let mut row = Vec::with_capacity(k - i);
        for j in i..k {
            let mut signatures: std::collections::BTreeMap<Vec<u8>, u64> =
                std::collections::BTreeMap::new();
            for code in 0u64..(1u64 << (2 * b)) {
                let fwd: Vec<bool> = (0..b).map(|t| code >> t & 1 == 1).collect();
                let bwd: Vec<bool> = (0..b).map(|t| code >> (b + t) & 1 == 1).collect();
                let cross = CrossAssign {
                    fwd: fwd.clone(),
                    bwd: bwd.clone(),
                };
                let cross_swapped = CrossAssign { fwd: bwd, bwd: fwd };
                let forward_ok =
                    eval_matrix(matrix, space, &cells[i], &cells[j], Some(&cross), false)?;
                if !forward_ok {
                    continue;
                }
                let backward_ok = eval_matrix(
                    matrix,
                    space,
                    &cells[j],
                    &cells[i],
                    Some(&cross_swapped),
                    false,
                )?;
                if !backward_ok {
                    continue;
                }
                let signature: Vec<u8> = (0..b)
                    .map(|t| (code >> t & 1) as u8 + (code >> (b + t) & 1) as u8)
                    .collect();
                *signatures.entry(signature).or_insert(0) += 1;
            }
            row.push(signatures.into_iter().collect());
        }
        sat.push(row);
    }
    Ok(PairStructure { sat })
}

/// Sums the weights of the satisfying cross assignments of every cell pair,
/// producing the symmetric table `r_{ij}` for a weight function. Per binary
/// predicate only the three products `w̄²`, `w·w̄`, `w²` exist, so each
/// signature costs `b` multiplications instead of `2b` per raw assignment.
pub fn bind_pair_table(
    structure: &PairStructure,
    space: &CellSpace,
    weights: &Weights,
) -> Vec<Vec<Weight>> {
    let pows: Vec<[Weight; 3]> = space
        .binary
        .iter()
        .map(|p| {
            let pair = weights.pair_of(p);
            [
                &pair.neg * &pair.neg,
                &pair.pos * &pair.neg,
                &pair.pos * &pair.pos,
            ]
        })
        .collect();
    let k = structure.sat.len();
    let mut table = vec![vec![Weight::zero(); k]; k];
    for (i, row) in structure.sat.iter().enumerate() {
        for (d, signatures) in row.iter().enumerate() {
            let j = i + d;
            let mut total = Weight::zero();
            for (signature, count) in signatures {
                let mut weight = if *count == 1 {
                    Weight::one()
                } else {
                    Weight::from_integer((*count).into())
                };
                for (t, pow) in pows.iter().enumerate() {
                    weight *= &pow[signature[t] as usize];
                }
                total += weight;
            }
            table[i][j] = total.clone();
            table[j][i] = total;
        }
    }
    table
}

/// Sums the signature weights of every cell pair in an arbitrary
/// [`Algebra`] — the generic counterpart of [`bind_pair_table`], with ring
/// elements in place of rationals.
pub fn bind_pair_table_in<A: Algebra>(
    structure: &PairStructure,
    space: &CellSpace,
    algebra: &A,
    weights: &AlgebraWeights<A>,
) -> Vec<Vec<A::Elem>> {
    let pows: Vec<[A::Elem; 3]> = space
        .binary
        .iter()
        .map(|p| {
            let (pos, neg) = weights.pair_of(algebra, p);
            [
                algebra.mul(&neg, &neg),
                algebra.mul(&pos, &neg),
                algebra.mul(&pos, &pos),
            ]
        })
        .collect();
    let k = structure.sat.len();
    let mut table = vec![vec![algebra.zero(); k]; k];
    for (i, row) in structure.sat.iter().enumerate() {
        for (d, signatures) in row.iter().enumerate() {
            let j = i + d;
            let mut total = algebra.zero();
            for (signature, count) in signatures {
                let mut weight = if *count == 1 {
                    algebra.one()
                } else {
                    algebra.from_weight(&Weight::from_integer((*count).into()))
                };
                for (t, pow) in pows.iter().enumerate() {
                    algebra.mul_assign(&mut weight, &pow[signature[t] as usize]);
                }
                algebra.add_assign(&mut total, &weight);
            }
            table[i][j] = total.clone();
            table[j][i] = total;
        }
    }
    table
}

/// Builds the symmetric table `r_{ij}` over the valid cells.
pub fn build_pair_table(
    matrix: &Formula,
    space: &CellSpace,
    cells: &[Cell],
    weights: &Weights,
) -> Result<Vec<Vec<Weight>>, LiftError> {
    let structure = build_pair_structure(matrix, space, cells)?;
    Ok(bind_pair_table(&structure, space, weights))
}

/// Evaluates the matrix under a cell assignment for `x` and `y`.
///
/// `same_element = true` means `x` and `y` denote the same element (used for
/// the diagonal validity check); in that case `cross` is ignored and the
/// reflexive atoms of `cell_x` are used for every binary atom.
fn eval_matrix(
    matrix: &Formula,
    space: &CellSpace,
    cell_x: &Cell,
    cell_y: &Cell,
    cross: Option<&CrossAssign>,
    same_element: bool,
) -> Result<bool, LiftError> {
    #[derive(PartialEq, Clone, Copy)]
    enum Role {
        X,
        Y,
    }
    fn role_of(t: &Term) -> Result<Role, LiftError> {
        match t {
            Term::Var(v) if v.name() == VAR_X => Ok(Role::X),
            Term::Var(v) if v.name() == VAR_Y => Ok(Role::Y),
            other => Err(LiftError::Internal(format!(
                "non-canonical term {other} in FO² matrix"
            ))),
        }
    }

    match matrix {
        Formula::Top => Ok(true),
        Formula::Bottom => Ok(false),
        Formula::Not(g) => Ok(!eval_matrix(g, space, cell_x, cell_y, cross, same_element)?),
        Formula::And(gs) => {
            for g in gs {
                if !eval_matrix(g, space, cell_x, cell_y, cross, same_element)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(gs) => {
            for g in gs {
                if eval_matrix(g, space, cell_x, cell_y, cross, same_element)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Implies(a, b) => Ok(!eval_matrix(a, space, cell_x, cell_y, cross, same_element)?
            || eval_matrix(b, space, cell_x, cell_y, cross, same_element)?),
        Formula::Iff(a, b) => Ok(eval_matrix(a, space, cell_x, cell_y, cross, same_element)?
            == eval_matrix(b, space, cell_x, cell_y, cross, same_element)?),
        Formula::Equals(a, b) => {
            let ra = role_of(a)?;
            let rb = role_of(b)?;
            Ok(ra == rb || same_element)
        }
        Formula::Atom(atom) => match atom.args.len() {
            0 => Err(LiftError::Internal(format!(
                "nullary atom {} should have been removed by Shannon expansion",
                atom.predicate.name()
            ))),
            1 => {
                let idx = space
                    .unary
                    .iter()
                    .position(|p| p == &atom.predicate)
                    .ok_or_else(|| {
                        LiftError::Internal(format!(
                            "unary predicate {} missing from cell space",
                            atom.predicate.name()
                        ))
                    })?;
                match role_of(&atom.args[0])? {
                    Role::X => Ok(cell_x.unary[idx]),
                    Role::Y => Ok(if same_element {
                        cell_x.unary[idx]
                    } else {
                        cell_y.unary[idx]
                    }),
                }
            }
            2 => {
                let idx = space
                    .binary
                    .iter()
                    .position(|p| p == &atom.predicate)
                    .ok_or_else(|| {
                        LiftError::Internal(format!(
                            "binary predicate {} missing from cell space",
                            atom.predicate.name()
                        ))
                    })?;
                let r0 = role_of(&atom.args[0])?;
                let r1 = role_of(&atom.args[1])?;
                if same_element {
                    return Ok(cell_x.reflexive[idx]);
                }
                Ok(match (r0, r1) {
                    (Role::X, Role::X) => cell_x.reflexive[idx],
                    (Role::Y, Role::Y) => cell_y.reflexive[idx],
                    (Role::X, Role::Y) => {
                        cross
                            .ok_or_else(|| {
                                LiftError::Internal("cross assignment required".to_string())
                            })?
                            .fwd[idx]
                    }
                    (Role::Y, Role::X) => {
                        cross
                            .ok_or_else(|| {
                                LiftError::Internal("cross assignment required".to_string())
                            })?
                            .bwd[idx]
                    }
                })
            }
            a => Err(LiftError::Internal(format!(
                "predicate {} of arity {a} in FO² matrix",
                atom.predicate.name()
            ))),
        },
        Formula::Forall(..) | Formula::Exists(..) => Err(LiftError::Internal(
            "quantifier inside the FO² matrix".to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_logic::builders::*;
    use wfomc_logic::term::Variable;
    use wfomc_logic::transform::substitute;
    use wfomc_logic::weights::weight_int;

    /// Builds the Table 1 matrix over the canonical variables.
    fn table1_matrix() -> Formula {
        let m = or(vec![
            atom("R", &["x"]),
            atom("S", &["x", "y"]),
            atom("T", &["y"]),
        ]);
        let m = substitute(&m, &Variable::new("x"), &Term::var(VAR_X));
        substitute(&m, &Variable::new("y"), &Term::var(VAR_Y))
    }

    fn table1_space() -> CellSpace {
        CellSpace {
            unary: vec![Predicate::new("R", 1), Predicate::new("T", 1)],
            binary: vec![Predicate::new("S", 2)],
        }
    }

    #[test]
    fn valid_cells_of_table1() {
        let cells = build_cells(&table1_matrix(), &table1_space(), &Weights::ones()).unwrap();
        // 8 candidate cells; only R=T=S(x,x)=false violates Ψ(x,x).
        assert_eq!(cells.len(), 7);
        assert!(cells.iter().all(|c| c.weight == weight_int(1)));
    }

    #[test]
    fn cell_weights_multiply_unary_and_reflexive_atoms() {
        let weights = Weights::from_ints([("R", 2, 3), ("T", 5, 7), ("S", 11, 13)]);
        let cells = build_cells(&table1_matrix(), &table1_space(), &weights).unwrap();
        // The cell with R true, T false, S(x,x) false weighs 2·7·13.
        assert!(cells.iter().any(|c| c.unary == vec![true, false]
            && c.reflexive == vec![false]
            && c.weight == weight_int(2 * 7 * 13)));
    }

    #[test]
    fn pair_table_counts_cross_assignments() {
        let space = table1_space();
        let weights = Weights::ones();
        let cells = build_cells(&table1_matrix(), &space, &weights).unwrap();
        let table = build_pair_table(&table1_matrix(), &space, &cells, &weights).unwrap();
        // Find the cell where R and T are both true: the matrix is satisfied
        // regardless of the S cross atoms, so r = 4.
        let i = cells
            .iter()
            .position(|c| c.unary == vec![true, true] && c.reflexive == vec![false])
            .unwrap();
        assert_eq!(table[i][i], weight_int(4));
        // The cell with R=false, T=false (and S(x,x)=true to stay valid)
        // paired with itself requires S(x,y) and S(y,x) both true: r = 1.
        let j = cells
            .iter()
            .position(|c| c.unary == vec![false, false] && c.reflexive == vec![true])
            .unwrap();
        assert_eq!(table[j][j], weight_int(1));
        // Mixed pair (R true, T false) with (R false, T true):
        // Ψ(x,y) = R(x) ∨ … = true; Ψ(y,x) = R(y) ∨ S(y,x) ∨ T(x): R(y) is
        // false and T(x) is false, so S(y,x) must be true: r = 2.
        let a = cells
            .iter()
            .position(|c| c.unary == vec![true, false] && c.reflexive == vec![false])
            .unwrap();
        let b = cells
            .iter()
            .position(|c| c.unary == vec![false, true] && c.reflexive == vec![false])
            .unwrap();
        assert_eq!(table[a][b], weight_int(2));
        assert_eq!(table[b][a], weight_int(2));
    }

    #[test]
    fn equality_atoms_distinguish_diagonal_from_pairs() {
        // Matrix: x = y ∨ S(x,y) — diagonal always valid, off-diagonal needs S.
        let m = or(vec![eq(VAR_X, VAR_Y), atom("S", &[VAR_X, VAR_Y])]);
        let space = CellSpace {
            unary: vec![],
            binary: vec![Predicate::new("S", 2)],
        };
        let cells = build_cells(&m, &space, &Weights::ones()).unwrap();
        assert_eq!(cells.len(), 2);
        let table = build_pair_table(&m, &space, &cells, &Weights::ones()).unwrap();
        // Off-diagonal: S(x,y) ∧ S(y,x) both required → exactly 1 assignment.
        assert_eq!(table[0][0], weight_int(1));
    }
}
