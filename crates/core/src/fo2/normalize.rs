//! Scott-style normal form for FO² sentences.
//!
//! The output is a single quantifier-free matrix `Ψ(x, y)` over canonical
//! variables, to be read under an implicit `∀x∀y`, together with the extended
//! vocabulary and weights, such that for every domain size `n ≥ 1`:
//!
//! `WFOMC(Φ, n, w, w̄) = WFOMC(∀x∀y Ψ, n, w′, w̄′)`.
//!
//! Three kinds of fresh predicates are introduced:
//!
//! * `Def*` — definition predicates naming nested quantified subformulas
//!   (the Scott reduction of §4 / Appendix C), weights (1, 1);
//! * `Sk*` — Skolem predicates for `∀∃` / `∃` pieces (Lemma 3.3), weights
//!   (1, −1);
//! * nothing else — the original predicates keep their weights.
//!
//! The construction assumes `n ≥ 1` (vacuous quantifiers are dropped and
//! `∃v φ ≡ φ` for `v` not free in `φ`); the caller special-cases `n = 0`.

use wfomc_logic::syntax::Formula;
use wfomc_logic::term::{Term, Variable};
use wfomc_logic::transform::{nnf, simplify, substitute, Quantifier};
use wfomc_logic::vocabulary::{Predicate, Vocabulary};
use wfomc_logic::weights::{weight_int, Weights};

use crate::error::LiftError;

/// Canonical name of the first matrix variable.
pub const VAR_X: &str = "__fo2_x";
/// Canonical name of the second matrix variable.
pub const VAR_Y: &str = "__fo2_y";

/// The FO² normal form of a sentence.
#[derive(Clone, Debug)]
pub struct Fo2Shape {
    /// Quantifier-free matrix over [`VAR_X`] / [`VAR_Y`], read under `∀x∀y`.
    pub matrix: Formula,
    /// Original vocabulary extended with the introduced predicates.
    pub vocabulary: Vocabulary,
    /// Weights extended for the introduced predicates.
    pub weights: Weights,
    /// The freshly introduced predicates (definition + Skolem).
    pub introduced: Vec<Predicate>,
}

struct Ctx {
    vocabulary: Vocabulary,
    weights: Weights,
    introduced: Vec<Predicate>,
    /// Quantifier-free conjuncts over the canonical variables.
    pieces: Vec<Formula>,
}

impl Ctx {
    fn fresh(&mut self, base: &str, arity: usize, pos: i64, neg: i64) -> Predicate {
        let p = self.vocabulary.add_fresh(base, arity);
        self.weights.set(p.name(), weight_int(pos), weight_int(neg));
        self.introduced.push(p.clone());
        p
    }
}

/// Computes the FO² normal form of a sentence.
///
/// Fails if the sentence has more than two distinct variables, a predicate of
/// arity greater than two, constant symbols, or free variables.
pub fn fo2_normal_form(
    sentence: &Formula,
    vocabulary: &Vocabulary,
    weights: &Weights,
) -> Result<Fo2Shape, LiftError> {
    if !sentence.is_sentence() {
        return Err(LiftError::NotASentence);
    }
    let distinct = sentence.distinct_variable_count();
    if distinct > 2 {
        return Err(LiftError::TooManyVariables {
            found: distinct,
            max: 2,
        });
    }
    for p in sentence.vocabulary().iter() {
        if p.arity() > 2 {
            return Err(LiftError::ArityTooLarge {
                predicate: p.name().to_string(),
                arity: p.arity(),
                max: 2,
            });
        }
    }
    if contains_constants(sentence) {
        return Err(LiftError::PatternMismatch {
            expected: "an FO² sentence without constant symbols".to_string(),
        });
    }

    let mut ctx = Ctx {
        vocabulary: vocabulary.extended_with(&sentence.vocabulary()),
        weights: weights.clone(),
        introduced: Vec::new(),
        pieces: Vec::new(),
    };

    let f = nnf(&simplify(sentence));
    for conjunct in flatten_and(&f) {
        process_top(&conjunct, &mut ctx)?;
    }

    let matrix = Formula::and_all(ctx.pieces);
    Ok(Fo2Shape {
        matrix,
        vocabulary: ctx.vocabulary,
        weights: ctx.weights,
        introduced: ctx.introduced,
    })
}

fn contains_constants(f: &Formula) -> bool {
    let mut found = false;
    f.visit(&mut |node| match node {
        Formula::Atom(a) if a.args.iter().any(Term::is_const) => found = true,
        Formula::Equals(a, b) if a.is_const() || b.is_const() => found = true,
        _ => {}
    });
    found
}

fn flatten_and(f: &Formula) -> Vec<Formula> {
    match f {
        Formula::And(parts) => parts.clone(),
        other => vec![other.clone()],
    }
}

/// Handles one top-level conjunct of the sentence.
fn process_top(conjunct: &Formula, ctx: &mut Ctx) -> Result<(), LiftError> {
    if conjunct.is_quantifier_free() {
        // A sentence that is quantifier-free can only mention nullary atoms;
        // it joins the matrix directly (it has no variables to rename).
        ctx.pieces.push(conjunct.clone());
        return Ok(());
    }

    // Peel the maximal quantifier prefix.
    let mut prefix: Vec<(Quantifier, Variable)> = Vec::new();
    let mut body = conjunct.clone();
    loop {
        body = match body {
            Formula::Forall(v, inner) => {
                prefix.push((Quantifier::Forall, v));
                *inner
            }
            Formula::Exists(v, inner) => {
                prefix.push((Quantifier::Exists, v));
                *inner
            }
            other => {
                body = other;
                break;
            }
        };
    }

    let body_qf = extract_inner(&body, ctx)?;

    // Drop shadowed binders (same variable re-quantified deeper) and vacuous
    // binders (variable not free in the body) — sound for n ≥ 1.
    let free = body_qf.free_variables();
    let mut cleaned: Vec<(Quantifier, Variable)> = Vec::new();
    for (i, (q, v)) in prefix.iter().enumerate() {
        let shadowed = prefix[i + 1..].iter().any(|(_, v2)| v2 == v);
        if shadowed || !free.contains(v) {
            continue;
        }
        cleaned.push((*q, v.clone()));
    }

    handle_prefix_piece(&cleaned, body_qf, ctx)
}

/// Replaces every quantified subformula of `f` (bottom-up) by a fresh
/// definition atom, emitting the ⇔-axiom pieces. Returns the quantifier-free
/// residue.
fn extract_inner(f: &Formula, ctx: &mut Ctx) -> Result<Formula, LiftError> {
    match f {
        Formula::Top | Formula::Bottom | Formula::Atom(_) | Formula::Equals(..) => Ok(f.clone()),
        Formula::Not(g) => Ok(Formula::not(extract_inner(g, ctx)?)),
        Formula::And(gs) => Ok(Formula::and_all(
            gs.iter()
                .map(|g| extract_inner(g, ctx))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        Formula::Or(gs) => Ok(Formula::or_all(
            gs.iter()
                .map(|g| extract_inner(g, ctx))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        Formula::Implies(a, b) => Ok(Formula::implies(
            extract_inner(a, ctx)?,
            extract_inner(b, ctx)?,
        )),
        Formula::Iff(a, b) => Ok(Formula::iff(extract_inner(a, ctx)?, extract_inner(b, ctx)?)),
        Formula::Forall(v, g) | Formula::Exists(v, g) => {
            let is_forall = matches!(f, Formula::Forall(..));
            let inner = extract_inner(g, ctx)?;
            // Free variables of the quantified subformula.
            let mut outer: Vec<Variable> = inner
                .free_variables()
                .into_iter()
                .filter(|u| u != v)
                .collect();
            outer.sort();
            if outer.len() > 1 {
                return Err(LiftError::TooManyVariables {
                    found: outer.len() + 1,
                    max: 2,
                });
            }
            let def = ctx.fresh("Def", outer.len(), 1, 1);
            let def_atom = Formula::atom(def, outer.iter().map(|u| Term::Var(u.clone())).collect());

            let mut forall_prefix: Vec<(Quantifier, Variable)> = outer
                .iter()
                .map(|u| (Quantifier::Forall, u.clone()))
                .collect();

            if is_forall {
                // Def(u) ⇒ ∀v inner :  ∀u ∀v (¬Def(u) ∨ inner)
                let mut p1 = forall_prefix.clone();
                p1.push((Quantifier::Forall, v.clone()));
                handle_prefix_piece(
                    &p1,
                    Formula::or(Formula::not(def_atom.clone()), inner.clone()),
                    ctx,
                )?;
                // ∀v inner ⇒ Def(u) :  ∀u ∃v (¬inner ∨ Def(u))
                forall_prefix.push((Quantifier::Exists, v.clone()));
                handle_prefix_piece(
                    &forall_prefix,
                    Formula::or(Formula::not(inner), def_atom.clone()),
                    ctx,
                )?;
            } else {
                // Def(u) ⇒ ∃v inner :  ∀u ∃v (¬Def(u) ∨ inner)
                let mut p1 = forall_prefix.clone();
                p1.push((Quantifier::Exists, v.clone()));
                handle_prefix_piece(
                    &p1,
                    Formula::or(Formula::not(def_atom.clone()), inner.clone()),
                    ctx,
                )?;
                // ∃v inner ⇒ Def(u) :  ∀u ∀v (¬inner ∨ Def(u))
                forall_prefix.push((Quantifier::Forall, v.clone()));
                handle_prefix_piece(
                    &forall_prefix,
                    Formula::or(Formula::not(inner), def_atom.clone()),
                    ctx,
                )?;
            }
            Ok(def_atom)
        }
    }
}

/// Turns a prefix of at most two quantifiers plus a quantifier-free matrix into
/// pure `∀`-pieces, Skolemizing existential positions per Lemma 3.3.
fn handle_prefix_piece(
    prefix: &[(Quantifier, Variable)],
    matrix: Formula,
    ctx: &mut Ctx,
) -> Result<(), LiftError> {
    match prefix {
        [] => {
            ctx.pieces.push(matrix);
            Ok(())
        }
        [(Quantifier::Forall, u)] => {
            ctx.pieces
                .push(rename_to_canonical(&matrix, std::slice::from_ref(u)));
            Ok(())
        }
        [(Quantifier::Forall, u), (Quantifier::Forall, v)] => {
            ctx.pieces
                .push(rename_to_canonical(&matrix, &[u.clone(), v.clone()]));
            Ok(())
        }
        [(Quantifier::Forall, u), (Quantifier::Exists, v)] => {
            // Lemma 3.3 with a one-variable universal prefix: unary Skolem
            // predicate with weights (1, −1).
            let z = ctx.fresh("Sk", 1, 1, -1);
            let z_atom = Formula::atom(z, vec![Term::Var(u.clone())]);
            let new_matrix = Formula::or(Formula::not(matrix), z_atom);
            ctx.pieces
                .push(rename_to_canonical(&new_matrix, &[u.clone(), v.clone()]));
            Ok(())
        }
        [(Quantifier::Exists, u)] => {
            // Lemma 3.3 with an empty universal prefix: nullary Skolem.
            let z = ctx.fresh("Sk", 0, 1, -1);
            let z_atom = Formula::atom(z, vec![]);
            let new_matrix = Formula::or(Formula::not(matrix), z_atom);
            ctx.pieces
                .push(rename_to_canonical(&new_matrix, std::slice::from_ref(u)));
            Ok(())
        }
        [(Quantifier::Exists, u), rest @ ..] => {
            // Φ = ∃u (Q… matrix): Φ' = ∀u dual(Q…) (¬matrix ∨ Z) with nullary Z.
            let z = ctx.fresh("Sk", 0, 1, -1);
            let z_atom = Formula::atom(z, vec![]);
            let mut new_prefix = vec![(Quantifier::Forall, u.clone())];
            for (q, v) in rest {
                new_prefix.push((q.dual(), v.clone()));
            }
            let new_matrix = Formula::or(Formula::not(matrix), z_atom);
            handle_prefix_piece(&new_prefix, new_matrix, ctx)
        }
        _ => Err(LiftError::Internal(format!(
            "unexpected quantifier prefix of length {} in FO² normalization",
            prefix.len()
        ))),
    }
}

/// Renames the piece's variables to the canonical matrix variables.
fn rename_to_canonical(matrix: &Formula, vars: &[Variable]) -> Formula {
    debug_assert!(vars.len() <= 2);
    let canonical = [Variable::new(VAR_X), Variable::new(VAR_Y)];
    let mut out = matrix.clone();
    for (i, v) in vars.iter().enumerate() {
        debug_assert_ne!(v.name(), VAR_X);
        debug_assert_ne!(v.name(), VAR_Y);
        out = substitute(&out, v, &Term::Var(canonical[i].clone()));
    }
    debug_assert!(
        out.free_variables()
            .iter()
            .all(|v| v.name() == VAR_X || v.name() == VAR_Y),
        "piece still has non-canonical free variables"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_logic::builders::*;
    use wfomc_logic::catalog;

    #[test]
    fn universal_sentence_passes_through() {
        let f = catalog::table1_sentence();
        let shape = fo2_normal_form(&f, &f.vocabulary(), &Weights::ones()).unwrap();
        assert!(shape.introduced.is_empty());
        assert!(shape.matrix.is_quantifier_free());
        // Free variables are exactly the canonical ones.
        let free: Vec<String> = shape
            .matrix
            .free_variables()
            .iter()
            .map(|v| v.name().to_string())
            .collect();
        assert_eq!(free, vec![VAR_X.to_string(), VAR_Y.to_string()]);
    }

    #[test]
    fn forall_exists_introduces_one_skolem() {
        let f = catalog::forall_exists_edge();
        let shape = fo2_normal_form(&f, &f.vocabulary(), &Weights::ones()).unwrap();
        assert_eq!(shape.introduced.len(), 1);
        let sk = &shape.introduced[0];
        assert_eq!(sk.arity(), 1);
        let pair = shape.weights.pair(sk.name());
        assert_eq!(pair.pos, weight_int(1));
        assert_eq!(pair.neg, weight_int(-1));
        assert!(shape.matrix.is_quantifier_free());
    }

    #[test]
    fn nested_quantifiers_get_definition_predicates() {
        // ∀x (R(x) ∨ ∃y S(x,y)): the nested ∃y subformula is named.
        let f = forall(
            ["x"],
            or(vec![
                atom("R", &["x"]),
                exists(["y"], atom("S", &["x", "y"])),
            ]),
        );
        let shape = fo2_normal_form(&f, &f.vocabulary(), &Weights::ones()).unwrap();
        // One Def predicate plus one Skolem from its ∀∃ direction.
        assert!(shape.introduced.len() >= 2);
        assert!(shape.introduced.iter().any(|p| p.name().starts_with("Def")));
        assert!(shape.introduced.iter().any(|p| p.name().starts_with("Sk")));
        assert!(shape.matrix.is_quantifier_free());
    }

    #[test]
    fn pure_existential_sentence() {
        let f = catalog::exists_unary();
        let shape = fo2_normal_form(&f, &f.vocabulary(), &Weights::ones()).unwrap();
        assert_eq!(shape.introduced.len(), 1);
        assert_eq!(shape.introduced[0].arity(), 0);
    }

    #[test]
    fn rejects_fo3_and_high_arity_and_constants() {
        let f = catalog::transitivity();
        assert!(matches!(
            fo2_normal_form(&f, &f.vocabulary(), &Weights::ones()),
            Err(LiftError::TooManyVariables { found: 3, .. })
        ));

        let g = forall(["x", "y"], atom("R", &["x", "y", "y"]));
        assert!(matches!(
            fo2_normal_form(&g, &g.vocabulary(), &Weights::ones()),
            Err(LiftError::ArityTooLarge { .. })
        ));

        let h = forall(["x"], atom("R", &["x", "#0"]));
        assert!(matches!(
            fo2_normal_form(&h, &h.vocabulary(), &Weights::ones()),
            Err(LiftError::PatternMismatch { .. })
        ));

        let open = atom("R", &["x"]);
        assert!(matches!(
            fo2_normal_form(&open, &open.vocabulary(), &Weights::ones()),
            Err(LiftError::NotASentence)
        ));
    }

    #[test]
    fn equality_atoms_are_preserved_in_matrix() {
        let f = forall(["x", "y"], or(vec![atom("R", &["x", "y"]), eq("x", "y")]));
        let shape = fo2_normal_form(&f, &f.vocabulary(), &Weights::ones()).unwrap();
        assert!(shape.matrix.uses_equality());
    }

    #[test]
    fn exists_forall_sentence_is_skolemized_twice() {
        let f = exists(["x"], forall(["y"], atom("R", &["x", "y"])));
        let shape = fo2_normal_form(&f, &f.vocabulary(), &Weights::ones()).unwrap();
        // One nullary Skolem for the outer ∃ and one unary for the flipped ∃.
        let skolems: Vec<_> = shape
            .introduced
            .iter()
            .filter(|p| p.name().starts_with("Sk"))
            .collect();
        assert_eq!(skolems.len(), 2);
        assert!(shape.matrix.is_quantifier_free());
    }
}
