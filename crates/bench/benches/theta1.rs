//! E9 — Theorem 3.1 / Appendix B: the Θ₁ encoding. Measures the cost of
//! simulating the counting TM (the quantity the data-complexity result is
//! about), the cost of building the FO³ sentence, and — for the smallest
//! configuration — the cost of actually grounding it.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfomc::prelude::*;
use wfomc::reductions::theta1::theta1;

fn bench_theta1(c: &mut Criterion) {
    let mut group = c.benchmark_group("theta1");

    // Simulating the nondeterministic machine: exponential in c·n.
    let coin = coin_flip_machine(1);
    for n in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::new("simulate/coin-flip", n), &n, |b, &n| {
            b.iter(|| coin.count_accepting(n))
        });
    }

    // Building Θ₁ for machines with more epochs (sentence grows with c²).
    for epochs in [1usize, 2, 3] {
        group.bench_with_input(
            BenchmarkId::new("encode/scanner", epochs),
            &epochs,
            |b, &epochs| {
                let tm = scanner_machine(epochs);
                b.iter(|| theta1(&tm).sentence.size())
            },
        );
    }

    // Grounding the smallest encoding at n = 1 (the sanity check of the
    // headline equation FOMC(Θ₁, n) = n!·#accepting).
    let enc = theta1(&scanner_machine(1));
    group.bench_function("ground-count/scanner-n1", |b| {
        b.iter(|| wfomc::ground::fomc(&enc.sentence, 1))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_theta1
}
criterion_main!(benches);
