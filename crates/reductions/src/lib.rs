//! # wfomc-reductions
//!
//! The paper's constructive complexity reductions, implemented and executable:
//!
//! * [`tm`] — nondeterministic multi-tape *counting Turing machines* and a
//!   simulator that counts accepting computations (the objects behind the
//!   #P₁-hardness machinery of Lemma 3.8);
//! * [`theta1`] — the Appendix B encoding of a linear-time counting TM into an
//!   FO³ sentence Θ₁ with `FOMC(Θ₁, n) = n! · #accepting(n)` (Theorem 3.1 /
//!   Lemma 3.9), including the epoch/region construction that squeezes `c·n`
//!   time steps and tape cells into a domain of size `n`;
//! * [`sharp_sat`] — the Figure 2 reduction from #SAT to FOMC of an FO²
//!   sentence, `FOMC(ϕ_F, n+1) = (n+1)! · #F` (Theorem 4.1(1)), showing the
//!   combined complexity of FO² is #P-hard;
//! * [`spectrum`] — deciders for the spectrum membership problem
//!   `n ∈ Spec(Φ)?`, the decision problem whose data complexity is NP₁ and
//!   whose combined complexity Theorem 4.1(2) pins down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sharp_sat;
pub mod spectrum;
pub mod theta1;
pub mod tm;

pub use sharp_sat::SharpSatReduction;
pub use tm::{CountingTm, Move};
