//! Prefix-sharing DFS engine for the FO² cell-decomposition sum.
//!
//! The sum of Appendix C has one term per composition `(m₁, …, m_k)` of the
//! domain size `n` into the `k` valid cells:
//!
//! `Σ (n; m₁…m_k) · Π_c u_c^{m_c} · Π_c r_{cc}^{C(m_c,2)} · Π_{i<j} r_{ij}^{m_i·m_j}`
//!
//! Enumerating compositions and evaluating each term from scratch costs
//! `O(k²)` big-rational exponentiations per term. This engine instead
//! recurses over the cells, fixing the counts one cell at a time, and
//! maintains per prefix:
//!
//! * the partial term (multinomial factor as a product of binomials,
//!   cell-weight powers, within-cell pair powers, cross pairs among fixed
//!   cells), and
//! * for every not-yet-fixed cell `j` the running cross product
//!   `R_j = Π_{i fixed} r_{ij}^{m_i}`,
//!
//! so extending a prefix by one cell costs O(k) multiplications and all
//! compositions sharing a prefix share its work. Powers of the per-cell bases
//! come from [`Powers`] caches (dense tables up to `n`, memoized
//! square-and-multiply beyond). Cells with zero weight are dropped up front,
//! and a whole subtree is cut as soon as the running term hits zero, which is
//! what makes hard constraints (zero-weight pair entries) collapse the search
//! space instead of merely zeroing terms late. Independent top-level cell
//! splits run on scoped threads. The `term × leaf` products at the bottom of
//! the DFS accumulate through a balanced sum tree ([`BalancedSum`]) rather
//! than a running `+=`, so each exact-rational addition combines operands of
//! comparable size instead of adding a small term to an ever-growing total.
//!
//! The engine itself ([`cell_sum_elems`]) only adds and multiplies, so it is
//! generic over the evaluation [`Algebra`] — the zero-subtree cutoff is
//! sound in any ring because `0 · x = 0`. The exact entry point
//! ([`cell_sum_bound`]) additionally clears the rational denominators out of
//! the bases before running the engine (so the hot loop multiplies gcd-free
//! integers) and divides the correction back out at the end; that trick is
//! specific to `BigRational` and lives in the wrapper, not the engine.
//!
//! The seed implementation's term-by-term enumeration is kept behind
//! `cfg(test)` / the `legacy-cellsum` feature as the differential-testing
//! oracle.

use num_bigint::BigInt;
use num_traits::{One, Zero};

use wfomc_guard::{Gate, Guard, Interrupt, Meter, Ungated};
use wfomc_logic::algebra::{Algebra, Exact, Powers};
use wfomc_logic::syntax::Formula;
use wfomc_logic::weights::{weight_pow, Weight};

use super::cells::{build_cells, build_pair_table, CellSpace};
use super::normalize::Fo2Shape;
use crate::combinatorics::{binomial_weight_triangle, num_compositions, weight_from_bigint};
use crate::error::LiftError;

/// Guard phase name for the DFS engine.
const PHASE: &str = "fo2.cellsum";

/// Cost statistics for one cell-decomposition sum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CellSumStats {
    /// Valid cells (1-types satisfying the diagonal constraint).
    pub valid_cells: usize,
    /// Valid cells dropped up front because their weight `u_c` is zero.
    pub zero_weight_cells_pruned: usize,
    /// Compositions whose term was actually evaluated (leaves reached).
    pub compositions_summed: usize,
    /// Compositions skipped by zero-term subtree cutoffs.
    pub compositions_pruned: usize,
    /// All compositions over the non-zero cells: `summed + pruned` (saturating).
    pub compositions_total: usize,
}

/// The cell-decomposition sum for one Shannon branch, computed by the
/// prefix-sharing DFS engine. `parallel` allows the engine to fan the
/// top-level cell split out over scoped threads (callers that already run
/// branches concurrently pass `false`).
pub fn cell_sum(
    matrix: &Formula,
    space: &CellSpace,
    shape: &Fo2Shape,
    n: usize,
    parallel: bool,
) -> Result<(Weight, CellSumStats), LiftError> {
    let cells = build_cells(matrix, space, &shape.weights)?;
    if cells.is_empty() {
        return Ok((Weight::zero(), CellSumStats::default()));
    }
    let table = build_pair_table(matrix, space, &cells, &shape.weights)?;
    Ok(cell_sum_bound(&cells, &table, n, parallel))
}

/// The cell-decomposition sum over already-built weighted cells and pair
/// table — the n-dependent half of [`cell_sum`], used by prepared plans
/// ([`crate::fo2::prepare::Fo2Prepared`]) that build the cells once and sum
/// at many domain sizes and weight functions.
///
/// This is the exact-rational fast path: it clears the common denominators
/// out of the cell weights and pair entries (every composition uses exactly
/// `n` cell-weight factors and `C(n,2)` pair factors, so one division by
/// `D_u^n · D_r^{C(n,2)}` at the end restores the exact value), then runs
/// the algebra-generic engine over denominator-1 rationals.
pub fn cell_sum_bound(
    cells: &[super::cells::Cell],
    table: &[Vec<Weight>],
    n: usize,
    parallel: bool,
) -> (Weight, CellSumStats) {
    let u: Vec<Weight> = cells.iter().map(|c| c.weight.clone()).collect();
    cell_sum_weights(&u, table, n, parallel)
}

/// [`cell_sum_bound`] over bare cell-weight vectors (what prepared plans
/// store): the exact-rational entry point with denominator clearing.
pub fn cell_sum_weights(
    u: &[Weight],
    table: &[Vec<Weight>],
    n: usize,
    parallel: bool,
) -> (Weight, CellSumStats) {
    // The default path is gated by the zero-sized `Ungated` gate, so the DFS
    // monomorphizes with no budget checks at all — by construction the same
    // machine code as before the guard layer existed.
    cell_sum_weights_impl(u, table, n, parallel, &mut || Ungated)
        .expect("an ungated cell sum cannot interrupt")
}

/// [`cell_sum_weights`] under a resource [`Guard`]: every DFS worker meters
/// its compositions against the guard (batched, checked every
/// [`wfomc_guard::CHECK_PERIOD`] units), so deadlines, work caps and
/// cancellation interrupt the sum mid-search. The partial accumulators are
/// discarded; retrying simply restarts the sum.
pub fn cell_sum_weights_gated(
    u: &[Weight],
    table: &[Vec<Weight>],
    n: usize,
    parallel: bool,
    guard: &Guard,
) -> Result<(Weight, CellSumStats), Interrupt> {
    wfomc_guard::failpoint(PHASE)?;
    cell_sum_weights_impl(u, table, n, parallel, &mut || Meter::new(guard, PHASE))
}

fn cell_sum_weights_impl<G: Gate + Send>(
    u: &[Weight],
    table: &[Vec<Weight>],
    n: usize,
    parallel: bool,
    make_gate: &mut dyn FnMut() -> G,
) -> Result<(Weight, CellSumStats), Interrupt> {
    // Clear denominators over the cells the engine will actually visit (the
    // non-zero-weight ones), so the scaling never inflates for weights that
    // are dropped anyway.
    let keep: Vec<usize> = (0..u.len()).filter(|&i| !u[i].is_zero()).collect();
    let d_u = lcm_of_denominators(keep.iter().map(|&i| &u[i]));
    let d_r = lcm_of_denominators(
        keep.iter()
            .flat_map(|&i| keep.iter().map(move |&j| &table[i][j])),
    );
    let scale_u = weight_from_bigint(d_u);
    let scale_r = weight_from_bigint(d_r);
    let correction = weight_pow(&scale_u, n) * weight_pow(&scale_r, n * n.saturating_sub(1) / 2);

    let scaled_u: Vec<Weight> = u.iter().map(|w| w * &scale_u).collect();
    let scaled_table: Vec<Vec<Weight>> = table
        .iter()
        .map(|row| row.iter().map(|w| w * &scale_r).collect())
        .collect();

    let (total, stats) =
        cell_sum_elems_gated(&Exact, &scaled_u, &scaled_table, n, parallel, make_gate)?;
    let total = if correction.is_one() {
        total
    } else {
        total / correction
    };
    Ok((total, stats))
}

/// The cell-decomposition sum in an arbitrary [`Algebra`]: `u[c]` are the
/// cell weights, `table` the symmetric pair table, both as ring elements.
/// This is the engine itself — no denominator tricks, no weight binding —
/// shared by every algebra including [`Exact`].
pub fn cell_sum_elems<A: Algebra>(
    algebra: &A,
    u: &[A::Elem],
    table: &[Vec<A::Elem>],
    n: usize,
    parallel: bool,
) -> (A::Elem, CellSumStats) {
    cell_sum_elems_gated(algebra, u, table, n, parallel, &mut || Ungated)
        .expect("an ungated cell sum cannot interrupt")
}

/// [`cell_sum_elems`] under a resource [`Guard`] — the algebra-generic
/// counterpart of [`cell_sum_weights_gated`], used by the lane-batched
/// evaluation path so governed batches are metered per DFS worker.
pub fn cell_sum_elems_guarded<A: Algebra>(
    algebra: &A,
    u: &[A::Elem],
    table: &[Vec<A::Elem>],
    n: usize,
    parallel: bool,
    guard: &Guard,
) -> Result<(A::Elem, CellSumStats), Interrupt> {
    wfomc_guard::failpoint(PHASE)?;
    cell_sum_elems_gated(algebra, u, table, n, parallel, &mut || {
        Meter::new(guard, PHASE)
    })
}

/// [`cell_sum_elems`] through an explicit [`Gate`] factory: each DFS worker
/// (one per scoped thread in the parallel split) gets its own gate from
/// `make_gate`. Pass `&mut || Ungated` for the zero-overhead default or
/// `&mut || Meter::new(&guard, ...)` to meter against a [`Guard`].
pub fn cell_sum_elems_gated<A: Algebra, G: Gate + Send>(
    algebra: &A,
    u: &[A::Elem],
    table: &[Vec<A::Elem>],
    n: usize,
    parallel: bool,
    make_gate: &mut dyn FnMut() -> G,
) -> Result<(A::Elem, CellSumStats), Interrupt> {
    if u.is_empty() {
        return Ok((algebra.zero(), CellSumStats::default()));
    }
    let engine = Engine::new(algebra, u, table, n);

    let mut stats = CellSumStats {
        valid_cells: u.len(),
        zero_weight_cells_pruned: u.len() - engine.k,
        compositions_total: num_compositions(n, engine.k),
        ..CellSumStats::default()
    };

    if engine.k == 0 {
        // Every cell has zero weight: only the empty domain has a (single,
        // empty) composition.
        let total = if n == 0 {
            algebra.one()
        } else {
            algebra.zero()
        };
        stats.compositions_summed = usize::from(n == 0);
        return Ok((total, stats));
    }

    let threads = engine.thread_count(parallel);
    let (total, summed, pruned) = if threads > 1 {
        engine.sum_parallel(threads, make_gate)?
    } else {
        let mut worker = Worker::new(&engine, make_gate());
        let top: Vec<A::Elem> = vec![algebra.one(); engine.k];
        worker.dfs(0, n, &algebra.one(), &top)?;
        (worker.total.finish(algebra), worker.summed, worker.pruned)
    };
    stats.compositions_summed = summed;
    stats.compositions_pruned = pruned;
    Ok((total, stats))
}

/// Immutable per-branch state shared by all DFS workers.
struct Engine<'a, A: Algebra> {
    algebra: &'a A,
    /// Domain size.
    n: usize,
    /// Number of cells with non-zero weight (the cells the DFS ranges over).
    k: usize,
    /// Cell weights `u_c`, re-indexed over the non-zero cells.
    u: Vec<A::Elem>,
    /// Within-cell pair entries `r_{cc}`.
    diag: Vec<A::Elem>,
    /// The full symmetric cross table `r_{ij}` over the non-zero cells.
    cross: Vec<Vec<A::Elem>>,
    /// Pascal's triangle covering rows `0..=n`, injected into the algebra.
    binom: Vec<Vec<A::Elem>>,
    /// Which (re-indexed) cells have zero weight. Order-sensitive algebras
    /// keep such cells in the traversal; the DFS skips their dead work
    /// (running cross-product maintenance, tail power tables) since every
    /// `m > 0` branch of a zero-weight cell is pruned before those values
    /// are read.
    zero_u: Vec<bool>,
}

/// Least common multiple of the denominators of `values`.
fn lcm_of_denominators<'a>(values: impl Iterator<Item = &'a Weight>) -> BigInt {
    let mut acc = BigInt::one();
    for v in values {
        let d = v.denom();
        let g = BigInt::from(acc.magnitude().gcd(d.magnitude()));
        acc = &acc / &g * d;
    }
    acc
}

impl<'a, A: Algebra> Engine<'a, A> {
    fn new(algebra: &'a A, u: &[A::Elem], table: &[Vec<A::Elem>], n: usize) -> Engine<'a, A> {
        let order: Vec<usize> = if algebra.order_sensitive() {
            // Order-sensitive algebras need a weight-independent traversal:
            // dropping zero-weight cells or reordering by zero pattern would
            // regroup the floating-point sums and products, so two runs that
            // differ only in which weights happen to be zero would no longer
            // agree bit for bit (and a lane run could not match its scalar
            // lanes). Zero-weight cells cost little here: their `m = 0`
            // branch multiplies by an exact one and every `m > 0` branch is
            // pruned (scalars) or contributes a canonical zero (lanes).
            (0..u.len()).collect()
        } else {
            let keep: Vec<usize> = (0..u.len()).filter(|&i| !algebra.is_zero(&u[i])).collect();
            // Visit cells whose table row has many zeros first: a zero running
            // cross product or zero diagonal kills a subtree as soon as the
            // DFS reaches it, so front-loading constrained cells maximizes
            // sharing of the cutoff. The sum itself is symmetric in the cell
            // order.
            let mut order = keep.clone();
            order.sort_by_key(|&i| {
                let zeros = keep
                    .iter()
                    .filter(|&&j| algebra.is_zero(&table[i][j]))
                    .count();
                std::cmp::Reverse(zeros)
            });
            order
        };

        let binom_triangle = binomial_weight_triangle(n);
        Engine {
            algebra,
            n,
            k: order.len(),
            u: order.iter().map(|&i| u[i].clone()).collect(),
            diag: order.iter().map(|&i| table[i][i].clone()).collect(),
            cross: order
                .iter()
                .map(|&i| order.iter().map(|&j| table[i][j].clone()).collect())
                .collect(),
            binom: binom_triangle
                .iter()
                .map(|row| row.iter().map(|w| algebra.from_weight(w)).collect())
                .collect(),
            zero_u: order.iter().map(|&i| algebra.is_zero(&u[i])).collect(),
        }
    }

    /// How many scoped threads the top-level cell split should use.
    fn thread_count(&self, parallel: bool) -> usize {
        if !parallel || self.k < 2 || self.n < 2 {
            return 1;
        }
        // Below a few thousand compositions the spawn overhead dominates.
        if num_compositions(self.n, self.k) < 4096 {
            return 1;
        }
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
            .min(self.n + 1)
    }

    /// Splits the top-level choice of `m₁` over `threads` scoped workers
    /// draining a work-stealing pool: subtree costs vary wildly with `m₀`
    /// (a zero `u₀^{m₀}` prunes everything, small `m₀` leaves the most
    /// elements to distribute), so a fixed round-robin split skews badly
    /// while stealing rebalances as workers run dry. Ring addition is
    /// associative and commutative, so the split does not change the result
    /// (up to rounding, for approximate algebras); per-`m₀` partials are
    /// merged in `m₀` order regardless of which worker computed them, so the
    /// grouping — and with it any floating-point rounding — is deterministic
    /// across runs and steal schedules. Every worker gets its own gate; if
    /// any worker is interrupted, the whole sum reports that interrupt (the
    /// other workers trip on the same shared guard state within one check
    /// period). A worker panic is resumed on the joining thread, where the
    /// plan layer's per-point containment turns it into
    /// `SolveError::WorkerPanicked`.
    fn sum_parallel<G: Gate + Send>(
        &self,
        threads: usize,
        make_gate: &mut dyn FnMut() -> G,
    ) -> Result<(A::Elem, usize, usize), Interrupt> {
        let n = self.n;
        let algebra = self.algebra;
        type WorkerResult<E> = Result<(Vec<(usize, E)>, usize, usize), Interrupt>;
        let pool = stealer::Pool::new(threads);
        pool.seed(0..=n);
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let gate = make_gate();
                    let mut queue = pool.worker(t);
                    scope.spawn(move || -> WorkerResult<A::Elem> {
                        let mut worker = Worker::new(self, gate);
                        let mut row0: Vec<Powers<A>> = (1..self.k)
                            .map(|j| Powers::new(algebra, self.cross[0][j].clone(), n))
                            .collect();
                        let mut partials = Vec::new();
                        while let Some(m0) = queue.pop() {
                            worker.top_level(m0, &mut row0)?;
                            let sum =
                                std::mem::replace(&mut worker.total, BalancedSum::new(algebra));
                            partials.push((m0, sum.finish(algebra)));
                        }
                        Ok((partials, worker.summed, worker.pruned))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                })
                .collect::<Vec<_>>()
        });
        wfomc_obs::metrics::CELLSUM_STEALS.add(pool.steals());
        let mut slots: Vec<Option<A::Elem>> = vec![None; n + 1];
        let mut summed = 0usize;
        let mut pruned = 0usize;
        for result in results {
            let (partials, s, p) = result?;
            for (m0, value) in partials {
                slots[m0] = Some(value);
            }
            summed = summed.saturating_add(s);
            pruned = pruned.saturating_add(p);
        }
        let mut total = algebra.zero();
        for value in slots.into_iter().flatten() {
            algebra.add_assign(&mut total, &value);
        }
        Ok((total, summed, pruned))
    }
}

/// A balanced sum-tree accumulator over a ring.
///
/// A running `total += term` adds every new term to the full accumulated
/// sum, so with exact big-rational arithmetic each addition costs the *size
/// of the total* — the dominant cost once the cell-sum total grows to
/// thousands of limbs while individual `term × leaf` products stay small.
/// This accumulator instead keeps a binary counter of partial sums: slot `i`
/// holds the sum of exactly `2^i` pushed terms, and a push carries upward
/// like binary increment. Every addition therefore combines operands of
/// comparable size, and each term participates in only `O(log N)` additions
/// of geometrically growing operands — the classic balanced-reduction
/// argument. The total number of ring additions is the same as for a running
/// total; only the operand sizes change.
///
/// The tree only pays off when addition cost grows with the operand — for
/// constant-size elements ([`Algebra::growing_elements`] is `false`, e.g.
/// log-space floats) the accumulator degrades gracefully to a plain running
/// total in slot 0, keeping the counter bookkeeping off that hot path.
pub struct BalancedSum<A: Algebra> {
    /// `slots[i]` is either empty or the sum of exactly `2^i` terms
    /// (balanced mode); in running mode only slot 0 is used.
    slots: Vec<Option<A::Elem>>,
    balanced: bool,
    /// Ring additions performed so far — a plain local tally, flushed to the
    /// `fo2.cellsum.balanced_sum_merges` counter once in [`finish`], so the
    /// hot push loop never touches an atomic.
    merges: u64,
}

impl<A: Algebra> BalancedSum<A> {
    /// An empty accumulator, balanced exactly when the algebra's elements
    /// grow with their magnitude.
    pub fn new(algebra: &A) -> Self {
        BalancedSum {
            slots: Vec::new(),
            balanced: algebra.growing_elements(),
            merges: 0,
        }
    }

    /// Adds one term (binary-counter carry: merge equal-weight partial sums
    /// until an empty slot absorbs the carry).
    pub fn push(&mut self, algebra: &A, mut value: A::Elem) {
        if !self.balanced {
            match self.slots.first_mut().and_then(Option::as_mut) {
                Some(total) => {
                    algebra.add_assign(total, &value);
                    self.merges += 1;
                }
                None => self.slots = vec![Some(value)],
            }
            return;
        }
        for slot in &mut self.slots {
            match slot.take() {
                None => {
                    *slot = Some(value);
                    return;
                }
                Some(other) => {
                    algebra.add_assign(&mut value, &other);
                    self.merges += 1;
                }
            }
        }
        self.slots.push(Some(value));
    }

    /// Folds the remaining partial sums, smallest first, into the total.
    pub fn finish(mut self, algebra: &A) -> A::Elem {
        let mut acc: Option<A::Elem> = None;
        for value in self.slots.drain(..).flatten() {
            acc = Some(match acc {
                None => value,
                Some(mut sum) => {
                    algebra.add_assign(&mut sum, &value);
                    self.merges += 1;
                    sum
                }
            });
        }
        wfomc_obs::metrics::BALANCED_SUM_MERGES.add(self.merges);
        acc.unwrap_or_else(|| algebra.zero())
    }
}

/// One DFS worker: owns the mutable power caches, accumulators and its gate.
struct Worker<'e, A: Algebra, G: Gate> {
    eng: &'e Engine<'e, A>,
    /// Budget gate, ticked once per DFS node and per evaluated composition.
    /// [`Ungated`] monomorphizes every check away.
    gate: G,
    /// Per-cell power caches for `u_c`.
    u_pows: Vec<Powers<A>>,
    /// Per-cell power caches for `r_{cc}` (exponents `C(m,2)` can exceed `n`,
    /// where the caches fall back to memoized square-and-multiply).
    diag_pows: Vec<Powers<A>>,
    /// Power cache for `r_{ab}` of the two cells fixed last, whose exponents
    /// `m_a · m_b` the fused bottom loop looks up directly.
    last_pair_pows: Option<Powers<A>>,
    /// Scratch buffer for `R_b^t`, `t = 0..=rem`, in the fused bottom loop.
    tail_pows: Vec<A::Elem>,
    /// `term × leaf` products accumulate through a balanced sum tree so the
    /// operands of each addition stay comparable in size (see
    /// [`BalancedSum`]).
    total: BalancedSum<A>,
    summed: usize,
    pruned: usize,
}

impl<'e, A: Algebra, G: Gate> Worker<'e, A, G> {
    fn new(eng: &'e Engine<'e, A>, gate: G) -> Worker<'e, A, G> {
        let algebra = eng.algebra;
        Worker {
            gate,
            u_pows: eng
                .u
                .iter()
                .map(|u| Powers::new(algebra, u.clone(), eng.n))
                .collect(),
            diag_pows: eng
                .diag
                .iter()
                .map(|d| Powers::new(algebra, d.clone(), eng.n))
                .collect(),
            last_pair_pows: (eng.k >= 2)
                .then(|| Powers::new(algebra, eng.cross[eng.k - 2][eng.k - 1].clone(), eng.n)),
            tail_pows: Vec::new(),
            eng,
            total: BalancedSum::new(algebra),
            summed: 0,
            pruned: 0,
        }
    }

    /// The factor a single cell contributes for count `m`: `u^m · r_cc^{C(m,2)}`.
    /// Multiplies two borrowed cache entries instead of cloning one and
    /// multiplying in place — the caches hand out references, so the only
    /// allocation is the product itself.
    fn own_factor(&mut self, cell: usize, m: usize) -> A::Elem {
        let algebra = self.eng.algebra;
        let u = self.u_pows[cell].pow_ref(algebra, m);
        if m < 2 || algebra.is_zero(u) {
            return u.clone();
        }
        let d = self.diag_pows[cell].pow_ref(algebra, m * (m - 1) / 2);
        algebra.mul(u, d)
    }

    /// Handles one top-level count `m₀` (the unit of parallel work): cells
    /// `1..k` then run through the ordinary DFS.
    fn top_level(&mut self, m0: usize, row0: &mut [Powers<A>]) -> Result<(), Interrupt> {
        let algebra = self.eng.algebra;
        let n = self.eng.n;
        let mut factor = self.own_factor(0, m0);
        if algebra.is_zero(&factor) {
            self.pruned = self
                .pruned
                .saturating_add(num_compositions(n - m0, self.eng.k - 1));
            return Ok(());
        }
        algebra.mul_assign(&mut factor, &self.eng.binom[n][m0]);
        let child: Vec<A::Elem> = row0.iter_mut().map(|c| c.pow(algebra, m0)).collect();
        self.dfs(1, n - m0, &factor, &child)
    }

    /// Fixes the count of cell `i`, with `rem` elements left to distribute.
    /// `term` is the partial term of the prefix and `r[d]` the running cross
    /// product `R_{i+d}` of cell `i+d` against all fixed cells.
    fn dfs(
        &mut self,
        i: usize,
        rem: usize,
        term: &A::Elem,
        r: &[A::Elem],
    ) -> Result<(), Interrupt> {
        debug_assert_eq!(r.len(), self.eng.k - i);
        let algebra = self.eng.algebra;
        self.gate.tick(1)?;
        if i + 2 == self.eng.k {
            return self.last_two(i, rem, term, r);
        }
        if i + 1 == self.eng.k {
            // Last cell: its count is forced to `rem`.
            self.summed += 1;
            let mut leaf = self.own_factor(i, rem);
            if !algebra.is_zero(&leaf) {
                algebra.mul_assign(&mut leaf, &algebra.pow(&r[0], rem));
            }
            if !algebra.is_zero(&leaf) {
                self.total.push(algebra, algebra.mul(term, &leaf));
            }
            return Ok(());
        }
        let cells_after = self.eng.k - i - 1;
        if algebra.is_zero(self.u_pows[i].base()) {
            // A zero-weight cell (kept, not dropped, by order-sensitive
            // algebras): `u^m = 0` for every `m > 0`, so only the `m = 0`
            // branch survives — and that branch multiplies the term by exact
            // ones (`u⁰`, `R⁰`, `binom[rem][0]`), which float algebras
            // preserve bit-for-bit. Recurse straight into it instead of
            // paying a child cross-product update for the doomed `m = 1`
            // probe; the pruned-composition accounting matches what the loop
            // would have recorded on that probe.
            if rem > 0 {
                self.pruned = self
                    .pruned
                    .saturating_add(num_compositions(rem - 1, cells_after + 1));
            }
            return self.dfs(i + 1, rem, term, &r[1..]);
        }
        // R_i^m and the children's cross products, maintained incrementally:
        // one multiplication each per extra element in cell i.
        let mut rpow = algebra.one();
        let mut child: Vec<A::Elem> = r[1..].to_vec();
        for m in 0..=rem {
            if m > 0 {
                algebra.mul_assign(&mut rpow, &r[0]);
                for (d, slot) in child.iter_mut().enumerate() {
                    // A zero-weight child never reads its running cross
                    // product: it recurses straight through its `m = 0`
                    // branch (or, as the last cell, hits a zero leaf before
                    // the product is consumed). Skipping the update leaves a
                    // stale slot that is provably never observed.
                    if self.eng.zero_u[i + 1 + d] {
                        continue;
                    }
                    algebra.mul_assign(slot, &self.eng.cross[i][i + 1 + d]);
                }
            }
            let mut factor = self.own_factor(i, m);
            if !algebra.is_zero(&factor) {
                algebra.mul_assign(&mut factor, &rpow);
            }
            if algebra.is_zero(&factor) {
                // u^m, r_cc^{C(m,2)} and R^m each stay zero as m grows, so
                // every composition with a larger count for this cell is zero
                // too: cut the whole tail of the loop.
                self.pruned = self
                    .pruned
                    .saturating_add(num_compositions(rem - m, cells_after + 1));
                return Ok(());
            }
            algebra.mul_assign(&mut factor, &self.eng.binom[rem][m]);
            self.dfs(i + 1, rem - m, &algebra.mul(term, &factor), &child)?;
        }
        Ok(())
    }

    /// Fused loop over the counts of the last two cells `a = k−2`, `b = k−1`
    /// (`m_a = m`, `m_b = rem − m`). Every composition ending here is one
    /// iteration: `R_a^m` is maintained incrementally, `R_b^t` is tabulated
    /// once per call (one multiplication per composition, amortized), and
    /// `r_{ab}^{m·t}` comes from a memoized per-pair power cache — no
    /// per-leaf square-and-multiply.
    fn last_two(
        &mut self,
        a: usize,
        rem: usize,
        term: &A::Elem,
        r: &[A::Elem],
    ) -> Result<(), Interrupt> {
        let algebra = self.eng.algebra;
        let b = a + 1;
        // tail_pows[t] = R_b^t.
        let mut tail_pows = std::mem::take(&mut self.tail_pows);
        tail_pows.clear();
        tail_pows.push(algebra.one());
        if !self.eng.zero_u[b] {
            // When cell `b` has zero weight, `tail_pows[t]` is only ever read
            // at `t = 0` (every `t > 0` leaf dies on `u_b^t = 0` first), so
            // the table stops at the exact one.
            for t in 1..=rem {
                let next = algebra.mul(&tail_pows[t - 1], &r[1]);
                tail_pows.push(next);
            }
        }
        let mut a_pow = algebra.one(); // R_a^m
        for m in 0..=rem {
            if let Err(stop) = self.gate.tick(1) {
                self.tail_pows = tail_pows;
                return Err(stop);
            }
            if m > 0 {
                algebra.mul_assign(&mut a_pow, &r[0]);
            }
            let t = rem - m;
            let mut a_side = self.own_factor(a, m);
            if !algebra.is_zero(&a_side) {
                algebra.mul_assign(&mut a_side, &a_pow);
            }
            if algebra.is_zero(&a_side) {
                // Zero persists as m grows: every remaining composition
                // (one per larger m) is zero too.
                self.pruned = self.pruned.saturating_add(rem - m + 1);
                break;
            }
            self.summed += 1;
            let mut leaf = self.own_factor(b, t);
            if !algebra.is_zero(&leaf) {
                algebra.mul_assign(&mut leaf, &tail_pows[t]);
            }
            if !algebra.is_zero(&leaf) && m > 0 && t > 0 {
                let pair = self
                    .last_pair_pows
                    .as_mut()
                    .expect("pair cache exists when k >= 2");
                algebra.mul_assign(&mut leaf, pair.pow_ref(algebra, m * t));
            }
            if !algebra.is_zero(&leaf) {
                algebra.mul_assign(&mut leaf, &a_side);
                algebra.mul_assign(&mut leaf, &self.eng.binom[rem][m]);
                self.total.push(algebra, algebra.mul(term, &leaf));
            }
        }
        self.tail_pows = tail_pows; // hand the scratch buffer back
        Ok(())
    }
}

/// The seed implementation — term-by-term enumeration over all compositions —
/// kept as the differential-testing oracle for the DFS engine.
#[cfg(any(test, feature = "legacy-cellsum"))]
pub fn cell_sum_enumeration(
    matrix: &Formula,
    space: &CellSpace,
    shape: &Fo2Shape,
    n: usize,
) -> Result<(Weight, CellSumStats), LiftError> {
    use crate::combinatorics::{compositions, multinomial_weight};

    let cells = build_cells(matrix, space, &shape.weights)?;
    if cells.is_empty() {
        return Ok((Weight::zero(), CellSumStats::default()));
    }
    let table = build_pair_table(matrix, space, &cells, &shape.weights)?;

    let k = cells.len();
    let mut total = Weight::zero();
    let mut num_terms = 0usize;
    for comp in compositions(n, k) {
        num_terms += 1;
        let mut term = multinomial_weight(n, &comp);
        for (c, &count) in comp.iter().enumerate() {
            if count == 0 {
                continue;
            }
            term *= weight_pow(&cells[c].weight, count);
            // Pairs within the same cell.
            term *= weight_pow(&table[c][c], count * (count - 1) / 2);
        }
        if term.is_zero() {
            continue;
        }
        for i in 0..k {
            if comp[i] == 0 {
                continue;
            }
            for j in (i + 1)..k {
                if comp[j] == 0 {
                    continue;
                }
                term *= weight_pow(&table[i][j], comp[i] * comp[j]);
            }
        }
        total += term;
    }
    let stats = CellSumStats {
        valid_cells: k,
        zero_weight_cells_pruned: 0,
        compositions_summed: num_terms,
        compositions_pruned: 0,
        compositions_total: num_terms,
    };
    Ok((total, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use wfomc_ground::wfomc as ground_wfomc;
    use wfomc_logic::algebra::{AlgebraWeights, LogF64, Poly};
    use wfomc_logic::builders::*;
    use wfomc_logic::catalog;
    use wfomc_logic::weights::{weight_ratio, Weights};

    use crate::fo2::normalize::fo2_normal_form;
    use crate::fo2::wfomc_fo2;

    /// Runs both cell-sum engines on every Shannon-free sentence shape and
    /// checks value equality plus the stats invariants.
    fn check_engines_agree(sentence: &Formula, weights: &Weights, n: usize) {
        let voc = sentence.vocabulary();
        let shape = fo2_normal_form(sentence, &voc, weights).expect("normalizable");
        let mut counted: Vec<_> = shape.matrix.vocabulary().predicates().to_vec();
        for p in &shape.introduced {
            if !counted.contains(p) {
                counted.push(p.clone());
            }
        }
        let space = CellSpace {
            unary: counted.iter().filter(|p| p.arity() == 1).cloned().collect(),
            binary: counted.iter().filter(|p| p.arity() == 2).cloned().collect(),
        };
        if counted.iter().any(|p| p.arity() == 0) {
            // Shannon branches are exercised through `wfomc_fo2` instead.
            return;
        }
        let (dfs_total, dfs_stats) = cell_sum(&shape.matrix, &space, &shape, n, true).unwrap();
        let (legacy_total, legacy_stats) =
            cell_sum_enumeration(&shape.matrix, &space, &shape, n).unwrap();
        assert_eq!(
            dfs_total, legacy_total,
            "value mismatch for {sentence} at n={n}"
        );
        assert_eq!(dfs_stats.valid_cells, legacy_stats.valid_cells);
        // The DFS ranges over the non-zero cells only; evaluated plus pruned
        // compositions must exactly tile that space.
        assert_eq!(
            dfs_stats.compositions_summed + dfs_stats.compositions_pruned,
            dfs_stats.compositions_total,
            "composition accounting for {sentence} at n={n}"
        );
        assert_eq!(
            dfs_stats.compositions_total,
            crate::combinatorics::num_compositions(
                n,
                dfs_stats.valid_cells - dfs_stats.zero_weight_cells_pruned
            )
        );
    }

    #[test]
    fn balanced_sum_matches_sequential_addition() {
        // Exact ring: reassociation cannot change the value.
        let mut tree = BalancedSum::new(&Exact);
        let mut seq = Weight::zero();
        for i in 0..=100i64 {
            let term = weight_ratio(i * i - 7, 1 + i);
            seq += &term;
            tree.push(&Exact, term);
        }
        assert_eq!(tree.finish(&Exact), seq);
        // Empty and single-element accumulators.
        assert_eq!(BalancedSum::new(&Exact).finish(&Exact), Weight::zero());
        let mut one = BalancedSum::new(&Exact);
        one.push(&Exact, weight_ratio(3, 4));
        assert_eq!(one.finish(&Exact), weight_ratio(3, 4));
        // Non-power-of-two counts leave a mixed set of filled slots.
        for count in [2usize, 3, 5, 31, 33] {
            let mut tree = BalancedSum::new(&Exact);
            for _ in 0..count {
                tree.push(&Exact, Weight::one());
            }
            assert_eq!(tree.finish(&Exact), weight_ratio(count as i64, 1));
        }
        // Running mode (LogF64 has constant-size elements) still sums.
        let mut log_tree = BalancedSum::new(&LogF64);
        for i in 1..=10i64 {
            log_tree.push(&LogF64, LogF64.from_weight(&weight_ratio(i, 1)));
        }
        assert!((log_tree.finish(&LogF64).to_f64() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn engines_agree_on_catalog_sentences() {
        let weight_sets = [
            Weights::ones(),
            Weights::from_ints([("R", 2, 1), ("S", 1, 3), ("T", 5, 1)]),
            // Zero weights: whole cells drop out.
            Weights::from_ints([("R", 0, 1), ("S", 1, 0), ("T", 2, 2)]),
            // Negative weights.
            Weights::from_ints([("R", -1, 2), ("S", 3, -2), ("T", 1, 1)]),
        ];
        for weights in &weight_sets {
            for n in 0..=5 {
                check_engines_agree(&catalog::table1_sentence(), weights, n);
                check_engines_agree(&catalog::forall_exists_edge(), weights, n);
            }
        }
    }

    #[test]
    fn engines_agree_on_equality_matrix() {
        let f = forall(["x", "y"], or(vec![eq("x", "y"), atom("R", &["x", "y"])]));
        for n in 0..=5 {
            check_engines_agree(&f, &Weights::from_ints([("R", 2, 3)]), n);
            check_engines_agree(&f, &Weights::from_ints([("R", 0, 3)]), n);
        }
    }

    #[test]
    fn parallel_split_matches_serial() {
        // Large enough to clear the engine's parallelism threshold.
        let f = catalog::table1_sentence();
        let voc = f.vocabulary();
        let weights = Weights::from_ints([("R", 2, 1), ("S", 1, 3), ("T", 5, 1)]);
        let n = 13;
        let shape = fo2_normal_form(&f, &voc, &weights).unwrap();
        let counted: Vec<_> = shape.matrix.vocabulary().predicates().to_vec();
        let space = CellSpace {
            unary: counted.iter().filter(|p| p.arity() == 1).cloned().collect(),
            binary: counted.iter().filter(|p| p.arity() == 2).cloned().collect(),
        };
        let (par, par_stats) = cell_sum(&shape.matrix, &space, &shape, n, true).unwrap();
        let (ser, ser_stats) = cell_sum(&shape.matrix, &space, &shape, n, false).unwrap();
        assert_eq!(par, ser);
        assert_eq!(par_stats, ser_stats);
    }

    #[test]
    fn zero_weight_cells_are_pruned_up_front() {
        // With w(R) = 0 every cell containing R(x) drops out before the DFS.
        let f = catalog::table1_sentence();
        let voc = f.vocabulary();
        let weights = Weights::from_ints([("R", 0, 1), ("S", 1, 1), ("T", 1, 1)]);
        let shape = fo2_normal_form(&f, &voc, &weights).unwrap();
        let counted: Vec<_> = shape.matrix.vocabulary().predicates().to_vec();
        let space = CellSpace {
            unary: counted.iter().filter(|p| p.arity() == 1).cloned().collect(),
            binary: counted.iter().filter(|p| p.arity() == 2).cloned().collect(),
        };
        let (_, stats) = cell_sum(&shape.matrix, &space, &shape, 4, false).unwrap();
        assert!(stats.zero_weight_cells_pruned > 0);
        assert_eq!(
            stats.compositions_summed + stats.compositions_pruned,
            stats.compositions_total
        );
    }

    /// The generic engine instantiated at [`LogF64`] and [`Poly`] agrees
    /// with the exact instantiation on the same bound cells/tables.
    #[test]
    fn generic_engine_matches_exact_instantiation() {
        let f = catalog::table1_sentence();
        let voc = f.vocabulary();
        let weights = Weights::from_ints([("R", 2, 1), ("S", 1, 3), ("T", 5, -1)]);
        let shape = fo2_normal_form(&f, &voc, &weights).unwrap();
        let counted: Vec<_> = shape.matrix.vocabulary().predicates().to_vec();
        let space = CellSpace {
            unary: counted.iter().filter(|p| p.arity() == 1).cloned().collect(),
            binary: counted.iter().filter(|p| p.arity() == 2).cloned().collect(),
        };
        let cells = build_cells(&shape.matrix, &space, &shape.weights).unwrap();
        let table = build_pair_table(&shape.matrix, &space, &cells, &shape.weights).unwrap();
        let n = 5;
        let (exact, exact_stats) = cell_sum_bound(&cells, &table, n, false);

        // LogF64: same engine, log-space floats.
        let log = LogF64;
        let lu: Vec<_> = cells.iter().map(|c| log.from_weight(&c.weight)).collect();
        let lt: Vec<Vec<_>> = table
            .iter()
            .map(|row| row.iter().map(|w| log.from_weight(w)).collect())
            .collect();
        let (log_total, log_stats) = cell_sum_elems(&log, &lu, &lt, n, false);
        let expected = log.from_weight(&exact);
        assert_eq!(log_total.signum(), expected.signum());
        assert!(
            (log_total.ln_abs() - expected.ln_abs()).abs() < 1e-9,
            "{log_total} vs {expected}"
        );
        assert_eq!(log_stats, exact_stats);

        // Poly with constant polynomials: a degree-0 result equal to exact.
        // `shape.weights` already includes the introduced predicates' pairs,
        // so the generic binding reproduces the exact cells and table.
        let poly = Poly;
        let pw = AlgebraWeights::lift(&poly, &shape.weights);
        let pu = super::super::cells::bind_cell_weights_in(&cells, &space, &poly, &pw);
        let structure =
            super::super::cells::build_pair_structure(&shape.matrix, &space, &cells).unwrap();
        let pt = super::super::cells::bind_pair_table_in(&structure, &space, &poly, &pw);
        let (poly_total, poly_stats) = cell_sum_elems(&poly, &pu, &pt, n, false);
        assert_eq!(poly_total.coeff(0), exact);
        assert_eq!(poly_total.degree(), 0);
        assert_eq!(poly_stats, exact_stats);
    }

    /// Deterministic pseudo-random weight triples including zero and negative
    /// rationals, derived from a seed.
    fn seeded_weights(seed: u64) -> Weights {
        let mut s = seed as i64 + 1;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            weight_ratio((s % 5) - 1, 1 + (s % 3).unsigned_abs() as i64)
        };
        let mut w = Weights::ones();
        for name in ["R", "S", "T"] {
            let pos = next();
            let neg = next();
            w.set(name, pos, neg);
        }
        w
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The DFS engine, the legacy enumeration and grounding agree on
        /// random weights (including zero and negative rationals).
        #[test]
        fn differential_dfs_vs_legacy_vs_ground(seed in 0u64..5000, n in 0usize..4) {
            let weights = seeded_weights(seed);
            for sentence in [
                catalog::table1_sentence(),
                catalog::forall_exists_edge(),
                catalog::exists_unary(),
            ] {
                let voc = sentence.vocabulary();
                check_engines_agree(&sentence, &weights, n);
                let lifted = wfomc_fo2(&sentence, &voc, n, &weights).unwrap();
                let grounded = ground_wfomc(&sentence, &voc, n, &weights);
                prop_assert_eq!(lifted, grounded, "ground mismatch for {} at n={}", sentence, n);
            }
        }
    }
}
