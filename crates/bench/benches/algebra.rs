//! E12 — the generic evaluation algebra: one plan, three rings.
//!
//! Two workloads where the algebra choice is the whole story:
//!
//! * **MLN inference** (the E8 smokers network): exact rationals grow with
//!   `n` (the partition function has hundreds of digits), log-space floats
//!   stay constant-width — same plans, same cell-sum engine, ≥5× faster
//!   marginals at the bench sizes.
//! * **Equality removal** (Lemma 3.5): the `Poly` algebra computes the
//!   Eq-weight polynomial in **one** lifted evaluation, versus the `n² + 1`
//!   interpolation points of the literal protocol.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfomc::prelude::*;
use wfomc_bench::smokers_mln;

fn bench_mln_algebras(c: &mut Criterion) {
    let mut group = c.benchmark_group("algebra");
    let mln = smokers_mln();
    let engine = MlnEngine::new(&mln).unwrap();
    let query = exists(["x"], atom("Smokes", &["x"]));

    for n in [8usize, 12] {
        group.bench_with_input(BenchmarkId::new("mln-marginal/exact", n), &n, |b, &n| {
            b.iter(|| engine.probability(&query, n).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("mln-marginal/log-f64", n), &n, |b, &n| {
            b.iter(|| engine.probability_in(&query, n, &LogF64).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("mln-partition/exact", n), &n, |b, &n| {
            b.iter(|| engine.partition_function(n).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("mln-partition/log-f64", n), &n, |b, &n| {
            b.iter(|| engine.partition_function_in(n, &LogF64).unwrap())
        });
    }
    group.finish();
}

fn bench_equality_removal_algebras(c: &mut Criterion) {
    let mut group = c.benchmark_group("algebra");
    // The Lemma 3.5 running example: the rewritten sentence stays FO².
    let sentence = forall(["x", "y"], or(vec![atom("R", &["x", "y"]), eq("x", "y")]));
    let voc = sentence.vocabulary();
    let weights = Weights::from_ints([("R", 2, 3)]);

    for n in [4usize, 6] {
        // Cross-check once per size; the measured closures then run freely.
        assert_eq!(
            wfomc_via_equality_removal(&sentence, &voc, n, &weights),
            wfomc_via_equality_removal_interpolated(&sentence, &voc, n, &weights),
        );
        group.bench_with_input(BenchmarkId::new("eq-removal/poly", n), &n, |b, &n| {
            b.iter(|| wfomc_via_equality_removal(&sentence, &voc, n, &weights))
        });
        group.bench_with_input(
            BenchmarkId::new("eq-removal/interpolated", n),
            &n,
            |b, &n| {
                b.iter(|| wfomc_via_equality_removal_interpolated(&sentence, &voc, n, &weights))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_mln_algebras, bench_equality_removal_algebras
}
criterion_main!(benches);
