//! Wall-clock A/B for the resource-governance layer's overhead. Prints one
//! JSON object per (workload, mode) pair so the numbers can be recorded in
//! `BENCH_guard.json`:
//!
//! ```text
//! cargo run --release -p wfomc-bench --bin guard_time
//! ```
//!
//! Three modes per workload, all in one build (the guard is always compiled
//! in — only the failpoints are feature-gated):
//!
//! * `ungoverned` — the plain `Plan::count` path, which routes through an
//!   unarmed `wfomc_guard::Guard` whose checks are branch-on-false;
//! * `unarmed` — `Plan::count_with_limits` with `ExecutionLimits::none()`:
//!   the governed entry point with nothing armed (the budget-off contract
//!   the perf gate enforces at ≤1% overhead on fo2-table1-30);
//! * `armed-generous` — a deadline and work cap large enough to never trip,
//!   so every loop pays the full metering price (local tick batching, one
//!   `Instant::now` + atomic per 1024 units of work).

use std::time::Duration;

use wfomc::prelude::*;
use wfomc_bench::{plan_reuse_workloads, standard_weights, time_ms};

/// Runs one workload under the three governance modes and prints a JSON
/// line per mode. `None` limits = the ungoverned `count` path.
fn run_modes(
    name: &str,
    generous: &ExecutionLimits,
    mut run: impl FnMut(Option<&ExecutionLimits>),
) {
    let none = ExecutionLimits::none();
    let modes: [(&str, Option<&ExecutionLimits>); 3] = [
        ("ungoverned", None),
        ("unarmed", Some(&none)),
        ("armed-generous", Some(generous)),
    ];
    for (mode, limits) in modes {
        run(limits); // warm-up: weight-binding / grounding caches
        let ms = (0..3)
            .map(|_| time_ms(|| run(limits)))
            .fold(f64::INFINITY, f64::min);
        println!("{{\"workload\": \"{name}\", \"mode\": \"{mode}\", \"ms\": {ms:.2}}}");
    }
}

fn main() {
    let weights = standard_weights();
    let generous = ExecutionLimits::none()
        .with_deadline(Duration::from_secs(3600))
        .with_work_cap(u64::MAX / 2);

    // Single-point FO² workloads share one plan across all three modes so
    // every mode sees the same warm caches and the A/B isolates the guard.
    let single_point: Vec<(&'static str, Formula)> = vec![
        ("fo2-smokers-30", catalog::smokers_constraint()),
        ("fo2-table1-30", catalog::table1_sentence()),
    ];
    for (name, sentence) in single_point {
        let plan = Problem::new(sentence)
            .plan()
            .unwrap_or_else(|e| panic!("{name} plans: {e:?}"));
        run_modes(name, &generous, |limits| match limits {
            None => drop(plan.count(30, &weights).expect("guard_time count succeeds")),
            Some(l) => drop(
                plan.count_with_limits(30, &weights, l, None)
                    .expect("guard_time governed count succeeds"),
            ),
        });
    }

    // The plan-reuse sweep re-plans inside the timed closure, mirroring
    // obs_time / the perf gate's plan workload; planning cost is identical
    // across modes so the comparison stays honest.
    let (name, solver, sentence, points) = plan_reuse_workloads(16)
        .into_iter()
        .find(|(name, ..)| *name == "fo2/quad-binary-n-sweep")
        .expect("known workload");
    run_modes("plan-quad-binary-n-sweep", &generous, |limits| {
        let plan = solver
            .plan(&Problem::new(sentence.clone()))
            .unwrap_or_else(|e| panic!("{name} plans: {e:?}"));
        for (n, w) in &points {
            match limits {
                None => drop(plan.count(*n, w).expect("guard_time count succeeds")),
                Some(l) => drop(
                    plan.count_with_limits(*n, w, l, None)
                        .expect("guard_time governed count succeeds"),
                ),
            }
        }
    });
}
