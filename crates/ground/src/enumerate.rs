//! Brute-force WFOMC by enumerating every structure.
//!
//! `WFOMC(Φ, n, w, w̄) = Σ_{D ⊨ Φ} W(D)` — this module literally iterates over
//! all `2^{|Tup(n)|}` subsets of `Tup(n)`, checks the sentence on each, and
//! sums the weights. It is the library's ground truth: every other counting
//! path (lineage + WMC, the FO² algorithm, the γ-acyclic algorithm, QS4, the
//! closed forms) is validated against it on small domains.

use num_traits::Zero;
use wfomc_logic::weights::{Weight, Weights};
use wfomc_logic::{Formula, Vocabulary};

use crate::evaluate::evaluate;
use crate::structure::{all_tuples, Structure};

/// The maximum number of ground tuples the enumerator accepts (2²⁶ structures
/// is already minutes of work; beyond that the caller should use the lineage
/// pipeline or a lifted algorithm).
pub const MAX_GROUND_TUPLES: usize = 26;

/// Iterator over all structures over `vocabulary` with domain size `n`.
pub fn all_structures(vocabulary: &Vocabulary, n: usize) -> impl Iterator<Item = Structure> + '_ {
    // Precompute the list of all ground tuples (predicate name, tuple).
    let tuples: Vec<(String, Vec<usize>)> = vocabulary
        .iter()
        .flat_map(|p| {
            all_tuples(n, p.arity())
                .into_iter()
                .map(move |t| (p.name().to_string(), t))
        })
        .collect();
    let total = tuples.len();
    assert!(
        total <= MAX_GROUND_TUPLES,
        "refusing to enumerate 2^{total} structures; use the lineage pipeline instead"
    );
    (0u64..(1u64 << total)).map(move |bits| {
        let mut s = Structure::empty(n);
        for (i, (pred, tuple)) in tuples.iter().enumerate() {
            if bits >> i & 1 == 1 {
                s.insert(pred, tuple.clone());
            }
        }
        s
    })
}

/// Brute-force symmetric WFOMC over the given vocabulary.
///
/// The vocabulary may be larger than the sentence's own vocabulary; extra
/// predicates contribute the usual `(w + w̄)^{n^arity}` factor because they are
/// enumerated like any other relation.
pub fn brute_force_wfomc(
    formula: &Formula,
    vocabulary: &Vocabulary,
    n: usize,
    weights: &Weights,
) -> Weight {
    assert!(
        formula.vocabulary().is_subvocabulary_of(vocabulary),
        "the sentence mentions predicates outside the supplied vocabulary"
    );
    let mut total = Weight::zero();
    for s in all_structures(vocabulary, n) {
        if evaluate(formula, &s) {
            total += s.weight(vocabulary, weights);
        }
    }
    total
}

/// Brute-force FOMC (all weights 1): the number of models of `formula` over a
/// domain of size `n`.
pub fn brute_force_fomc(formula: &Formula, n: usize) -> Weight {
    let voc = formula.vocabulary();
    brute_force_wfomc(formula, &voc, n, &Weights::ones())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_logic::builders::*;
    use wfomc_logic::catalog;
    use wfomc_logic::weights::{weight_int, weight_pow};

    #[test]
    fn counts_all_structures_for_true() {
        let voc = Vocabulary::from_pairs([("R", 2)]);
        // 2^{n²} structures for n = 2.
        let count = brute_force_wfomc(&Formula::Top, &voc, 2, &Weights::ones());
        assert_eq!(count, weight_int(16));
        assert_eq!(all_structures(&voc, 2).count(), 16);
    }

    #[test]
    fn forall_exists_edge_matches_closed_form() {
        // FOMC(∀x∃y R(x,y), n) = (2ⁿ − 1)ⁿ.
        let f = catalog::forall_exists_edge();
        for n in 0..=3 {
            let expected = weight_pow(&weight_int((1i64 << n) - 1), n);
            assert_eq!(brute_force_fomc(&f, n), expected, "n = {n}");
        }
    }

    #[test]
    fn exists_unary_matches_closed_form() {
        // WFOMC(∃y S(y), n, w, w̄) = (w + w̄)ⁿ − w̄ⁿ.
        let f = catalog::exists_unary();
        let voc = Vocabulary::from_pairs([("S", 1)]);
        let weights = Weights::from_ints([("S", 3, 2)]);
        for n in 0..=4 {
            let expected = weight_pow(&weight_int(5), n) - weight_pow(&weight_int(2), n);
            assert_eq!(
                brute_force_wfomc(&f, &voc, n, &weights),
                expected,
                "n = {n}"
            );
        }
    }

    #[test]
    fn empty_vocabulary_sentences() {
        let voc = Vocabulary::new();
        assert_eq!(
            brute_force_wfomc(&Formula::Top, &voc, 3, &Weights::ones()),
            weight_int(1)
        );
        assert_eq!(
            brute_force_wfomc(&Formula::Bottom, &voc, 3, &Weights::ones()),
            weight_int(0)
        );
    }

    #[test]
    fn extra_predicates_multiply_through() {
        // Count models of ∃y S(y) but over a vocabulary that also has T/1:
        // each T-choice is free, so the count doubles per element.
        let f = catalog::exists_unary();
        let voc = Vocabulary::from_pairs([("S", 1), ("T", 1)]);
        let n = 2;
        let base = brute_force_fomc(&f, n);
        let extended = brute_force_wfomc(&f, &voc, n, &Weights::ones());
        assert_eq!(extended, base * weight_int(4));
    }

    #[test]
    fn negative_weights_cancel_structures() {
        // ∀x (R(x) ∨ A(x)) with w(A)=1, w̄(A)=−1: the Skolemization trick makes
        // the count equal the number of worlds where ∀x R(x)… not quite — this
        // is exactly Lemma 3.3 applied to ∃-free Φ = ∀x R(x). Here we simply
        // check the enumerator handles negative weights consistently with a
        // manual computation on n = 1: worlds over {R(0), A(0)}:
        //   R=1,A=1: weight 1·1 = 1 (satisfies)
        //   R=1,A=0: 1·(−1) = −1 (satisfies)
        //   R=0,A=1: 1 (satisfies)
        //   R=0,A=0: −1 (does not satisfy: R(0)∨A(0) false)
        // total = 1.
        let f = forall(["x"], or(vec![atom("R", &["x"]), atom("A", &["x"])]));
        let voc = Vocabulary::from_pairs([("R", 1), ("A", 1)]);
        let weights = Weights::from_ints([("A", 1, -1)]);
        assert_eq!(brute_force_wfomc(&f, &voc, 1, &weights), weight_int(1));
    }

    #[test]
    #[should_panic(expected = "outside the supplied vocabulary")]
    fn missing_predicate_is_rejected() {
        let voc = Vocabulary::from_pairs([("R", 1)]);
        brute_force_wfomc(&atom("S", &["#0"]), &voc, 1, &Weights::ones());
    }

    #[test]
    #[should_panic(expected = "refusing to enumerate")]
    fn oversized_enumeration_is_rejected() {
        let voc = Vocabulary::from_pairs([("R", 2)]);
        // n = 6 → 36 tuples > cap.
        brute_force_fomc_over(&voc);
    }

    fn brute_force_fomc_over(voc: &Vocabulary) {
        let f = forall(["x"], exists(["y"], atom("R", &["x", "y"])));
        let _ = brute_force_wfomc(&f, voc, 6, &Weights::ones());
    }
}
