//! Quickstart: plan a sentence once, count it many times, and turn weights
//! into probabilities.
//!
//! Run with `cargo run --release --example quickstart`.

use wfomc::prelude::*;

fn main() {
    // -----------------------------------------------------------------------
    // 1. Plan-then-execute on the introduction's example Φ = ∀x ∃y R(x, y):
    //    the sentence analysis (method selection, Skolemization, cell
    //    decomposition) runs once; each domain size is then a cheap count.
    // -----------------------------------------------------------------------
    let phi = parse("forall x. exists y. R(x,y)").expect("valid syntax");
    let solver = Solver::new();
    let problem = Problem::new(phi.clone());
    let plan = solver.plan(&problem).expect("closed sentence");

    println!("Φ = {phi}");
    println!("{}\n", plan.explain());
    println!(
        "{:>4} {:>28} {:>28} {:>12}",
        "n", "lifted FOMC", "closed form (2^n-1)^n", "method"
    );
    for n in 0..=8 {
        let report = plan
            .count(n, &Weights::ones())
            .expect("plan always answers");
        let closed = closed_form::fomc_forall_exists_edge(n);
        assert_eq!(
            report.value, closed,
            "the implementation must match the paper"
        );
        println!(
            "{n:>4} {:>28} {:>28} {:>12}",
            report.value, closed, report.method
        );
    }

    // -----------------------------------------------------------------------
    // 2. Weighted counting and probabilities: every tuple of R is present
    //    independently with probability 1/3 (weight 1/2 per §1).
    // -----------------------------------------------------------------------
    let mut weights = Weights::ones();
    weights.set_probability("R", weight_ratio(1, 3));
    let voc = phi.vocabulary();
    println!("\nPr(Φ) when each R-tuple holds with probability 1/3:");
    for n in 1..=6 {
        let report = solver
            .probability(&phi, &voc, n, &weights)
            .expect("solver always answers");
        println!("  n = {n}: Pr = {}", report.value);
    }

    // -----------------------------------------------------------------------
    // 3. Cross-check a lifted answer against brute force on a small domain.
    // -----------------------------------------------------------------------
    let brute = brute_force_fomc(&phi, 3);
    let lifted = solver.fomc(&phi, 3).unwrap().value;
    println!(
        "\nbrute force at n = 3: {brute}, lifted: {lifted} (equal: {})",
        brute == lifted
    );

    // -----------------------------------------------------------------------
    // 4. A sentence outside every lifted fragment falls back to grounding —
    //    exactly what the paper's hardness results predict. The report's
    //    Display carries the value, method and backend.
    // -----------------------------------------------------------------------
    let transitivity = catalog::transitivity();
    let report = solver.fomc(&transitivity, 3).unwrap();
    println!("\n{transitivity}\n  n = 3: {report} (Table 2: open problem)");

    // -----------------------------------------------------------------------
    // 5. Batch evaluation: one plan, many (n, weights) points at once.
    // -----------------------------------------------------------------------
    let points: Vec<(usize, Weights)> = (1..=6).map(|n| (n, Weights::ones())).collect();
    let reports = plan.count_batch(&points).expect("plan always answers");
    println!("\nbatched counts of Φ at n = 1..6:");
    for ((n, _), report) in points.iter().zip(&reports) {
        println!("  n = {n}: {report}");
    }
}
