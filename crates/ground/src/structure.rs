//! Finite relational structures (possible worlds / database instances).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use wfomc_logic::weights::{weight_pow, Weight, Weights};
use wfomc_logic::{Predicate, Vocabulary};

/// A finite structure over a domain `{0, …, domain_size−1}`: for every
/// predicate, the set of tuples that are true.
///
/// Structures are *labeled* (the paper counts isomorphic structures as
/// distinct), so two structures are equal iff they contain exactly the same
/// ground tuples.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Structure {
    domain_size: usize,
    relations: BTreeMap<String, BTreeSet<Vec<usize>>>,
}

impl Structure {
    /// The empty structure over a domain of the given size.
    pub fn empty(domain_size: usize) -> Self {
        Structure {
            domain_size,
            relations: BTreeMap::new(),
        }
    }

    /// The domain size `n`.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// Inserts a ground tuple.
    ///
    /// # Panics
    /// Panics if a tuple element is outside the domain.
    pub fn insert(&mut self, predicate: &str, tuple: Vec<usize>) {
        assert!(
            tuple.iter().all(|&c| c < self.domain_size),
            "tuple {tuple:?} outside domain of size {}",
            self.domain_size
        );
        self.relations
            .entry(predicate.to_string())
            .or_default()
            .insert(tuple);
    }

    /// Removes a ground tuple; returns whether it was present.
    pub fn remove(&mut self, predicate: &str, tuple: &[usize]) -> bool {
        self.relations
            .get_mut(predicate)
            .map(|rel| rel.remove(tuple))
            .unwrap_or(false)
    }

    /// True if the tuple is in the relation.
    pub fn contains(&self, predicate: &str, tuple: &[usize]) -> bool {
        self.relations
            .get(predicate)
            .map(|rel| rel.contains(tuple))
            .unwrap_or(false)
    }

    /// The tuples of one relation (empty if never touched).
    pub fn relation(&self, predicate: &str) -> BTreeSet<Vec<usize>> {
        self.relations.get(predicate).cloned().unwrap_or_default()
    }

    /// Number of tuples of one relation.
    pub fn relation_size(&self, predicate: &str) -> usize {
        self.relations
            .get(predicate)
            .map(BTreeSet::len)
            .unwrap_or(0)
    }

    /// Total number of tuples in the structure.
    pub fn num_tuples(&self) -> usize {
        self.relations.values().map(BTreeSet::len).sum()
    }

    /// The weight of this structure under symmetric weights: for every
    /// predicate of `vocabulary`, present tuples contribute `w`, absent tuples
    /// contribute `w̄` (the `W(θ)` of §2 Eq. (3), restricted to the symmetric
    /// setting).
    pub fn weight(&self, vocabulary: &Vocabulary, weights: &Weights) -> Weight {
        let mut total = Weight::from_integer(1.into());
        for p in vocabulary.iter() {
            let pair = weights.pair_of(p);
            let present = self.relation_size(p.name());
            let possible = p.num_ground_tuples(self.domain_size);
            debug_assert!(present <= possible);
            total *= weight_pow(&pair.pos, present);
            total *= weight_pow(&pair.neg, possible - present);
        }
        total
    }

    /// Fills one relation with the full cartesian power of the domain
    /// (used by the Corollary 3.2 argument of setting a relation's
    /// probability to 1).
    pub fn fill_relation(&mut self, predicate: &Predicate) {
        let tuples = all_tuples(self.domain_size, predicate.arity());
        let rel = self
            .relations
            .entry(predicate.name().to_string())
            .or_default();
        for t in tuples {
            rel.insert(t);
        }
    }
}

/// All tuples of the given arity over a domain of size `n`, in lexicographic
/// order.
pub fn all_tuples(n: usize, arity: usize) -> Vec<Vec<usize>> {
    let mut out = vec![vec![]];
    for _ in 0..arity {
        let mut next = Vec::with_capacity(out.len() * n);
        for prefix in &out {
            for c in 0..n {
                let mut t = prefix.clone();
                t.push(c);
                next.push(t);
            }
        }
        out = next;
    }
    out
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨[{}]; ", self.domain_size)?;
        for (i, (name, rel)) in self.relations.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}={{")?;
            for (j, t) in rel.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "(")?;
                for (k, c) in t.iter().enumerate() {
                    if k > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")?;
            }
            write!(f, "}}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_logic::weights::weight_int;

    #[test]
    fn insert_contains_remove() {
        let mut s = Structure::empty(3);
        s.insert("R", vec![0, 1]);
        s.insert("R", vec![1, 2]);
        s.insert("S", vec![2]);
        assert!(s.contains("R", &[0, 1]));
        assert!(!s.contains("R", &[1, 0]));
        assert_eq!(s.relation_size("R"), 2);
        assert_eq!(s.num_tuples(), 3);
        assert!(s.remove("R", &[0, 1]));
        assert!(!s.remove("R", &[0, 1]));
        assert_eq!(s.relation_size("R"), 1);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_tuple_panics() {
        let mut s = Structure::empty(2);
        s.insert("R", vec![0, 5]);
    }

    #[test]
    fn all_tuples_enumeration() {
        assert_eq!(all_tuples(3, 0), vec![Vec::<usize>::new()]);
        assert_eq!(all_tuples(2, 1), vec![vec![0], vec![1]]);
        assert_eq!(all_tuples(2, 2).len(), 4);
        assert_eq!(all_tuples(3, 2).len(), 9);
    }

    #[test]
    fn weight_counts_present_and_absent_tuples() {
        // Vocabulary R/1 over domain 2, weights (3, 2).
        let voc = Vocabulary::from_pairs([("R", 1)]);
        let weights = Weights::from_ints([("R", 3, 2)]);
        let mut s = Structure::empty(2);
        s.insert("R", vec![0]);
        // One present (3), one absent (2) → 6.
        assert_eq!(s.weight(&voc, &weights), weight_int(6));
        // Empty structure: 2·2 = 4.
        assert_eq!(Structure::empty(2).weight(&voc, &weights), weight_int(4));
    }

    #[test]
    fn fill_relation_inserts_cartesian_power() {
        let mut s = Structure::empty(3);
        s.fill_relation(&Predicate::new("R", 2));
        assert_eq!(s.relation_size("R"), 9);
    }

    #[test]
    fn display_is_stable() {
        let mut s = Structure::empty(2);
        s.insert("R", vec![0, 1]);
        assert_eq!(s.to_string(), "⟨[2]; R={(0,1)}⟩");
    }
}
