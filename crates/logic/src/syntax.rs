//! First-order formulas over a relational vocabulary with equality.
//!
//! The abstract syntax follows §2 of the paper: atoms `R(t₁,…,t_k)`, equality
//! atoms `t₁ = t₂`, the Boolean connectives, and the quantifiers `∀x`, `∃x`.
//! `⊤`/`⊥` are included so simplification has normal forms to land on.

use std::collections::BTreeSet;
use std::fmt;

use crate::term::{Term, Variable};
use crate::vocabulary::{Predicate, Vocabulary};

/// A relational atom `R(t₁, …, t_k)`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Atom {
    /// The predicate symbol.
    pub predicate: Predicate,
    /// The argument terms; `args.len() == predicate.arity()`.
    pub args: Vec<Term>,
}

impl Atom {
    /// Creates an atom, checking the arity.
    ///
    /// # Panics
    /// Panics if the number of arguments differs from the predicate arity.
    pub fn new(predicate: Predicate, args: Vec<Term>) -> Self {
        assert_eq!(
            predicate.arity(),
            args.len(),
            "atom {} expects {} arguments, got {}",
            predicate.name(),
            predicate.arity(),
            args.len()
        );
        Atom { predicate, args }
    }

    /// The variables occurring in the atom, in order of first occurrence.
    pub fn variables(&self) -> Vec<Variable> {
        let mut out = Vec::new();
        for t in &self.args {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// True if every argument is a constant.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_const)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.args.is_empty() {
            return write!(f, "{}", self.predicate.name());
        }
        write!(f, "{}(", self.predicate.name())?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A first-order formula.
///
/// N-ary conjunction/disjunction keep formulas flat, which matters for the
/// clause-oriented algorithms (Skolemization, inclusion–exclusion, grounding).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// The true constant ⊤.
    Top,
    /// The false constant ⊥.
    Bottom,
    /// A relational atom.
    Atom(Atom),
    /// An equality atom `t₁ = t₂`.
    Equals(Term, Term),
    /// Negation ¬φ.
    Not(Box<Formula>),
    /// N-ary conjunction. An empty conjunction is ⊤.
    And(Vec<Formula>),
    /// N-ary disjunction. An empty disjunction is ⊥.
    Or(Vec<Formula>),
    /// Implication φ ⇒ ψ.
    Implies(Box<Formula>, Box<Formula>),
    /// Bi-implication φ ⇔ ψ.
    Iff(Box<Formula>, Box<Formula>),
    /// Universal quantification ∀x φ.
    Forall(Variable, Box<Formula>),
    /// Existential quantification ∃x φ.
    Exists(Variable, Box<Formula>),
}

impl Formula {
    // ----- smart constructors -------------------------------------------------

    /// An atom `pred(args…)`.
    pub fn atom(predicate: Predicate, args: Vec<Term>) -> Formula {
        Formula::Atom(Atom::new(predicate, args))
    }

    /// Equality `a = b`.
    pub fn equals(a: impl Into<Term>, b: impl Into<Term>) -> Formula {
        Formula::Equals(a.into(), b.into())
    }

    /// Negation, collapsing double negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::Not(inner) => *inner,
            Formula::Top => Formula::Bottom,
            Formula::Bottom => Formula::Top,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// N-ary conjunction with flattening and ⊤/⊥ short-circuiting.
    pub fn and_all<I: IntoIterator<Item = Formula>>(fs: I) -> Formula {
        let mut parts = Vec::new();
        for f in fs {
            match f {
                Formula::Top => {}
                Formula::Bottom => return Formula::Bottom,
                Formula::And(inner) => parts.extend(inner),
                other => parts.push(other),
            }
        }
        match parts.len() {
            0 => Formula::Top,
            1 => parts.pop().expect("length checked"),
            _ => Formula::And(parts),
        }
    }

    /// N-ary disjunction with flattening and ⊤/⊥ short-circuiting.
    pub fn or_all<I: IntoIterator<Item = Formula>>(fs: I) -> Formula {
        let mut parts = Vec::new();
        for f in fs {
            match f {
                Formula::Bottom => {}
                Formula::Top => return Formula::Top,
                Formula::Or(inner) => parts.extend(inner),
                other => parts.push(other),
            }
        }
        match parts.len() {
            0 => Formula::Bottom,
            1 => parts.pop().expect("length checked"),
            _ => Formula::Or(parts),
        }
    }

    /// Binary conjunction.
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::and_all([a, b])
    }

    /// Binary disjunction.
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::or_all([a, b])
    }

    /// Implication.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    /// Bi-implication.
    pub fn iff(a: Formula, b: Formula) -> Formula {
        Formula::Iff(Box::new(a), Box::new(b))
    }

    /// Universal quantification over one variable.
    pub fn forall(v: impl Into<Variable>, f: Formula) -> Formula {
        Formula::Forall(v.into(), Box::new(f))
    }

    /// Existential quantification over one variable.
    pub fn exists(v: impl Into<Variable>, f: Formula) -> Formula {
        Formula::Exists(v.into(), Box::new(f))
    }

    /// `∀v₁ ∀v₂ … φ`, right-nesting.
    pub fn forall_many<I, V>(vars: I, f: Formula) -> Formula
    where
        I: IntoIterator<Item = V>,
        I::IntoIter: DoubleEndedIterator,
        V: Into<Variable>,
    {
        vars.into_iter()
            .rev()
            .fold(f, |acc, v| Formula::forall(v, acc))
    }

    /// `∃v₁ ∃v₂ … φ`, right-nesting.
    pub fn exists_many<I, V>(vars: I, f: Formula) -> Formula
    where
        I: IntoIterator<Item = V>,
        I::IntoIter: DoubleEndedIterator,
        V: Into<Variable>,
    {
        vars.into_iter()
            .rev()
            .fold(f, |acc, v| Formula::exists(v, acc))
    }

    // ----- inspection ---------------------------------------------------------

    /// The free variables of the formula.
    pub fn free_variables(&self) -> BTreeSet<Variable> {
        fn go(f: &Formula, bound: &mut Vec<Variable>, out: &mut BTreeSet<Variable>) {
            match f {
                Formula::Top | Formula::Bottom => {}
                Formula::Atom(a) => {
                    for t in &a.args {
                        if let Term::Var(v) = t {
                            if !bound.contains(v) {
                                out.insert(v.clone());
                            }
                        }
                    }
                }
                Formula::Equals(a, b) => {
                    for t in [a, b] {
                        if let Term::Var(v) = t {
                            if !bound.contains(v) {
                                out.insert(v.clone());
                            }
                        }
                    }
                }
                Formula::Not(g) => go(g, bound, out),
                Formula::And(gs) | Formula::Or(gs) => {
                    for g in gs {
                        go(g, bound, out);
                    }
                }
                Formula::Implies(a, b) | Formula::Iff(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Formula::Forall(v, g) | Formula::Exists(v, g) => {
                    bound.push(v.clone());
                    go(g, bound, out);
                    bound.pop();
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// All variables mentioned anywhere in the formula (free or bound).
    pub fn all_variables(&self) -> BTreeSet<Variable> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| match f {
            Formula::Atom(a) => {
                for t in &a.args {
                    if let Term::Var(v) = t {
                        out.insert(v.clone());
                    }
                }
            }
            Formula::Equals(a, b) => {
                for t in [a, b] {
                    if let Term::Var(v) = t {
                        out.insert(v.clone());
                    }
                }
            }
            Formula::Forall(v, _) | Formula::Exists(v, _) => {
                out.insert(v.clone());
            }
            _ => {}
        });
        out
    }

    /// The number of *distinct* variable names used, which determines the FOᵏ
    /// fragment the formula belongs to (the paper's FO², FO³, …).
    pub fn distinct_variable_count(&self) -> usize {
        self.all_variables().len()
    }

    /// True if the formula uses at most `k` distinct variables, i.e. lies in FOᵏ.
    pub fn is_in_fo_k(&self, k: usize) -> bool {
        self.distinct_variable_count() <= k
    }

    /// The set of predicate symbols occurring in the formula.
    pub fn predicates(&self) -> BTreeSet<Predicate> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| {
            if let Formula::Atom(a) = f {
                out.insert(a.predicate.clone());
            }
        });
        out
    }

    /// A vocabulary consisting of exactly the predicates used by the formula,
    /// in order of first syntactic occurrence.
    pub fn vocabulary(&self) -> Vocabulary {
        let mut v = Vocabulary::new();
        self.visit(&mut |f| {
            if let Formula::Atom(a) = f {
                v.add(a.predicate.clone());
            }
        });
        v
    }

    /// True if the formula contains no quantifiers.
    pub fn is_quantifier_free(&self) -> bool {
        let mut qf = true;
        self.visit(&mut |f| {
            if matches!(f, Formula::Forall(..) | Formula::Exists(..)) {
                qf = false;
            }
        });
        qf
    }

    /// True if the formula is a sentence (no free variables).
    pub fn is_sentence(&self) -> bool {
        self.free_variables().is_empty()
    }

    /// True if the formula mentions the equality predicate.
    pub fn uses_equality(&self) -> bool {
        let mut eq = false;
        self.visit(&mut |f| {
            if matches!(f, Formula::Equals(..)) {
                eq = true;
            }
        });
        eq
    }

    /// Number of AST nodes — a crude but useful size measure for the combined
    /// complexity experiments.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Visits every sub-formula (including `self`), pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Formula)) {
        f(self);
        match self {
            Formula::Top | Formula::Bottom | Formula::Atom(_) | Formula::Equals(..) => {}
            Formula::Not(g) => g.visit(f),
            Formula::And(gs) | Formula::Or(gs) => {
                for g in gs {
                    g.visit(f);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Formula::Forall(_, g) | Formula::Exists(_, g) => g.visit(f),
        }
    }

    /// Rebuilds the formula bottom-up, applying `f` to every node after its
    /// children have been transformed. This is the workhorse used by the
    /// normal-form passes.
    pub fn map_bottom_up(&self, f: &mut impl FnMut(Formula) -> Formula) -> Formula {
        let rebuilt = match self {
            Formula::Top => Formula::Top,
            Formula::Bottom => Formula::Bottom,
            Formula::Atom(a) => Formula::Atom(a.clone()),
            Formula::Equals(a, b) => Formula::Equals(a.clone(), b.clone()),
            Formula::Not(g) => Formula::Not(Box::new(g.map_bottom_up(f))),
            Formula::And(gs) => Formula::And(gs.iter().map(|g| g.map_bottom_up(f)).collect()),
            Formula::Or(gs) => Formula::Or(gs.iter().map(|g| g.map_bottom_up(f)).collect()),
            Formula::Implies(a, b) => {
                Formula::Implies(Box::new(a.map_bottom_up(f)), Box::new(b.map_bottom_up(f)))
            }
            Formula::Iff(a, b) => {
                Formula::Iff(Box::new(a.map_bottom_up(f)), Box::new(b.map_bottom_up(f)))
            }
            Formula::Forall(v, g) => Formula::Forall(v.clone(), Box::new(g.map_bottom_up(f))),
            Formula::Exists(v, g) => Formula::Exists(v.clone(), Box::new(g.map_bottom_up(f))),
        };
        f(rebuilt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::*;

    #[test]
    fn atom_arity_checked() {
        let r = Predicate::new("R", 2);
        let a = Atom::new(r.clone(), vec![Term::var("x"), Term::var("y")]);
        assert_eq!(a.variables().len(), 2);
        assert!(!a.is_ground());
        let g = Atom::new(r, vec![Term::constant(0), Term::constant(1)]);
        assert!(g.is_ground());
    }

    #[test]
    #[should_panic(expected = "expects 2 arguments")]
    fn atom_wrong_arity_panics() {
        Atom::new(Predicate::new("R", 2), vec![Term::var("x")]);
    }

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(Formula::not(Formula::not(Formula::Top)), Formula::Top);
        assert_eq!(Formula::and_all([]), Formula::Top);
        assert_eq!(Formula::or_all([]), Formula::Bottom);
        assert_eq!(
            Formula::and_all([Formula::Top, Formula::Bottom]),
            Formula::Bottom
        );
        assert_eq!(
            Formula::or_all([Formula::Bottom, Formula::Top]),
            Formula::Top
        );
        // flattening
        let r = atom("R", &["x"]);
        let nested = Formula::and(r.clone(), Formula::and(r.clone(), r.clone()));
        match nested {
            Formula::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
    }

    #[test]
    fn free_and_bound_variables() {
        // ∀x (R(x,y) ∨ ∃y S(y))  — the free variables are {y} (the outer y).
        let f = Formula::forall(
            "x",
            Formula::or(
                atom("R", &["x", "y"]),
                Formula::exists("y", atom("S", &["y"])),
            ),
        );
        let free: Vec<_> = f.free_variables().into_iter().collect();
        assert_eq!(free, vec![Variable::new("y")]);
        assert_eq!(f.distinct_variable_count(), 2);
        assert!(f.is_in_fo_k(2));
        assert!(!f.is_in_fo_k(1));
        assert!(!f.is_sentence());
    }

    #[test]
    fn sentence_detection_and_size() {
        let f = forall(
            ["x", "y"],
            or(vec![atom("R", &["x"]), atom("S", &["x", "y"])]),
        );
        assert!(f.is_sentence());
        assert!(f.size() > 4);
        assert!(!f.uses_equality());
        let g = Formula::forall("x", Formula::equals(Term::var("x"), Term::var("x")));
        assert!(g.uses_equality());
    }

    #[test]
    fn predicates_and_vocabulary() {
        let f = forall(
            ["x", "y"],
            or(vec![
                atom("R", &["x"]),
                atom("S", &["x", "y"]),
                atom("T", &["y"]),
            ]),
        );
        let voc = f.vocabulary();
        assert_eq!(voc.len(), 3);
        assert_eq!(voc.get("S").unwrap().arity(), 2);
        assert_eq!(f.predicates().len(), 3);
    }

    #[test]
    fn map_bottom_up_rewrites() {
        // Replace every R atom by ⊤.
        let f = and(vec![atom("R", &["x"]), atom("S", &["x"])]);
        let g = f.map_bottom_up(&mut |node| match &node {
            Formula::Atom(a) if a.predicate.name() == "R" => Formula::Top,
            _ => node,
        });
        // Not auto-simplified by map, but the ⊤ is in place.
        match g {
            Formula::And(parts) => {
                assert_eq!(parts[0], Formula::Top);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quantifier_free_detection() {
        assert!(atom("R", &["x"]).is_quantifier_free());
        assert!(!Formula::exists("x", atom("R", &["x"])).is_quantifier_free());
    }
}
