//! The plan-then-execute payoff: `k` repeated queries (domain-size sweeps,
//! weight sweeps) per sentence, one-shot `Solver::wfomc` per point vs one
//! `Solver::plan` whose `count` is called per point.
//!
//! The `plan/...` series includes plan *creation* in every iteration, so it
//! measures the honest amortized cost; `count-only/...` measures the marginal
//! cost of one extra point on an existing plan. Snapshot numbers live in
//! `BENCH_plan.json` (produced by the `plan_time` bin).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfomc::prelude::*;
use wfomc_bench::plan_reuse_workloads;

fn bench_plan_reuse(c: &mut Criterion) {
    let k = 8;
    let mut group = c.benchmark_group("plan_reuse");
    for (name, solver, sentence, points) in plan_reuse_workloads(k) {
        let voc = sentence.vocabulary();
        group.bench_with_input(BenchmarkId::new("one-shot", name), &(), |b, _| {
            b.iter(|| {
                points
                    .iter()
                    .map(|(n, w)| solver.wfomc(&sentence, &voc, *n, w).unwrap().value)
                    .collect::<Vec<_>>()
            })
        });
        group.bench_with_input(BenchmarkId::new("plan", name), &(), |b, _| {
            b.iter(|| {
                let plan = solver.plan(&Problem::new(sentence.clone())).unwrap();
                points
                    .iter()
                    .map(|(n, w)| plan.count(*n, w).unwrap().value)
                    .collect::<Vec<_>>()
            })
        });
        // Marginal cost of one extra point once planned (and warmed).
        let plan = solver.plan(&Problem::new(sentence.clone())).unwrap();
        let (last_n, last_w) = points.last().expect("workloads have points").clone();
        let _ = plan.count(last_n, &last_w).unwrap();
        group.bench_with_input(BenchmarkId::new("count-only", name), &(), |b, _| {
            b.iter(|| plan.count(last_n, &last_w).unwrap().value)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_plan_reuse
}
criterion_main!(benches);
