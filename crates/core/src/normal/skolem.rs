//! Lemma 3.3 — Skolemization for WFOMC.
//!
//! Given a sentence Φ in prenex form, every existential quantifier can be
//! eliminated: `∀x̄ ∃y ϕ(x̄, y)` becomes `∀x̄ ∀y (¬ϕ(x̄, y) ∨ A(x̄))` where `A` is
//! a fresh predicate of arity `|x̄|` with weights `w(A) = 1`, `w̄(A) = −1`.
//! For every tuple `ā`: if `∃y ϕ(ā, y)` holds then `A(ā)` is forced true and
//! contributes a factor 1; otherwise `A(ā)` is unconstrained and the two
//! extensions contribute `1 + (−1) = 0`, cancelling exactly the worlds that
//! violate the original sentence. Iterating from the outermost existential
//! inward removes the whole existential prefix (later quantifiers are dualized
//! by the negation, so the process is repeated until the prefix is purely
//! universal).

use wfomc_logic::syntax::Formula;
use wfomc_logic::term::Term;
use wfomc_logic::transform::{prenex, Prenex, Quantifier};
use wfomc_logic::vocabulary::Vocabulary;
use wfomc_logic::weights::{weight_int, Weights};

/// The result of Skolemizing a sentence.
#[derive(Clone, Debug)]
pub struct Skolemized {
    /// The new sentence, in prenex form with a purely universal prefix.
    pub prenex: Prenex,
    /// The vocabulary extended with the fresh Skolem predicates.
    pub vocabulary: Vocabulary,
    /// The weights extended with `(1, −1)` for every Skolem predicate.
    pub weights: Weights,
    /// Names of the introduced Skolem predicates, in introduction order.
    pub skolem_predicates: Vec<String>,
}

impl Skolemized {
    /// The Skolemized sentence as a formula.
    pub fn formula(&self) -> Formula {
        self.prenex.to_formula()
    }
}

/// Applies Lemma 3.3 until the quantifier prefix is purely universal.
///
/// `WFOMC(Φ, n, w, w̄) = WFOMC(Φ', n, w', w̄')` for all `n`, where the primed
/// objects are the returned ones. Note that the *unweighted* model counts are
/// **not** preserved (the lemma forces negative weights), which the paper
/// points out is unavoidable.
///
/// # Panics
/// Panics if the input is not a sentence.
pub fn skolemize(formula: &Formula, vocabulary: &Vocabulary, weights: &Weights) -> Skolemized {
    assert!(formula.is_sentence(), "Skolemization requires a sentence");
    let mut current = prenex(formula);
    let mut vocabulary = vocabulary.extended_with(&formula.vocabulary());
    let mut weights = weights.clone();
    let mut skolem_predicates = Vec::new();

    while let Some(pos) = current.first_existential() {
        // Φ = ∀x₁…∀x_{pos}  ∃x_{pos+1}  Q… M
        let universal_prefix: Vec<_> = current.prefix[..pos].to_vec();
        let exists_var = current.prefix[pos].1.clone();
        let rest: Vec<_> = current.prefix[pos + 1..].to_vec();

        // Fresh Skolem predicate over the universal prefix variables.
        let arity = universal_prefix.len();
        let a = vocabulary.add_fresh("Sk", arity);
        weights.set(a.name(), weight_int(1), weight_int(-1));
        skolem_predicates.push(a.name().to_string());
        let a_atom = Formula::atom(
            a,
            universal_prefix
                .iter()
                .map(|(_, v)| Term::Var(v.clone()))
                .collect(),
        );

        // New matrix: ¬M ∨ A(x̄); new prefix: ∀-prefix, ∀ exists_var, dual(rest).
        let new_matrix = Formula::or(Formula::not(current.matrix.clone()), a_atom);
        let mut new_prefix = universal_prefix;
        new_prefix.push((Quantifier::Forall, exists_var));
        for (q, v) in rest {
            new_prefix.push((q.dual(), v));
        }
        current = Prenex {
            prefix: new_prefix,
            matrix: new_matrix,
        };
    }

    Skolemized {
        prenex: current,
        vocabulary,
        weights,
        skolem_predicates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_ground::{brute_force_wfomc, wfomc as ground_wfomc};
    use wfomc_logic::builders::*;
    use wfomc_logic::catalog;

    /// Checks that Skolemization preserves WFOMC, using the grounded pipeline
    /// on both sides.
    fn check_preserves_wfomc(f: &Formula, weights: &Weights, max_n: usize) {
        let voc = f.vocabulary();
        let sk = skolemize(f, &voc, weights);
        assert!(sk.prenex.is_universal(), "prefix must be purely universal");
        let g = sk.formula();
        for n in 0..=max_n {
            let original = ground_wfomc(f, &voc, n, weights);
            let transformed = ground_wfomc(&g, &sk.vocabulary, n, &sk.weights);
            assert_eq!(original, transformed, "WFOMC changed for {f} at n={n}");
        }
    }

    #[test]
    fn skolemizes_forall_exists() {
        let f = catalog::forall_exists_edge();
        check_preserves_wfomc(&f, &Weights::from_ints([("R", 2, 3)]), 3);
        let sk = skolemize(&f, &f.vocabulary(), &Weights::ones());
        assert_eq!(sk.skolem_predicates.len(), 1);
        // The Skolem predicate has arity 1 (one universal variable before ∃).
        assert_eq!(
            sk.vocabulary.get(&sk.skolem_predicates[0]).unwrap().arity(),
            1
        );
        // Unweighted counts are NOT preserved (the lemma needs weight −1).
        let n = 2;
        let fomc_orig = brute_force_wfomc(&f, &f.vocabulary(), n, &Weights::ones());
        let fomc_new = brute_force_wfomc(&sk.formula(), &sk.vocabulary, n, &Weights::ones());
        assert_ne!(fomc_orig, fomc_new);
    }

    #[test]
    fn skolemizes_pure_existential() {
        let f = catalog::exists_unary();
        check_preserves_wfomc(&f, &Weights::from_ints([("S", 1, 2)]), 3);
        let sk = skolemize(&f, &f.vocabulary(), &Weights::ones());
        // The universal prefix before the ∃ is empty, so the Skolem predicate
        // is nullary.
        assert_eq!(
            sk.vocabulary.get(&sk.skolem_predicates[0]).unwrap().arity(),
            0
        );
    }

    #[test]
    fn skolemizes_exists_forall() {
        // ∃x ∀y R(x,y): the negation dualizes the ∀ into ∃, requiring a second
        // round of Skolemization.
        let f = exists(["x"], forall(["y"], atom("R", &["x", "y"])));
        let sk = skolemize(&f, &f.vocabulary(), &Weights::ones());
        assert!(sk.prenex.is_universal());
        assert_eq!(sk.skolem_predicates.len(), 2);
        check_preserves_wfomc(&f, &Weights::from_ints([("R", 1, 1)]), 3);
        check_preserves_wfomc(&f, &Weights::from_ints([("R", 3, 2)]), 2);
    }

    #[test]
    fn skolemizes_typed_triangle_query() {
        // Table 2's typed triangle ∃x∃y∃z(R(x,y) ∧ S(y,z) ∧ T(z,x)).
        let f = catalog::typed_triangles();
        check_preserves_wfomc(
            &f,
            &Weights::from_ints([("R", 1, 1), ("S", 2, 1), ("T", 1, 3)]),
            2,
        );
    }

    #[test]
    fn already_universal_sentence_is_untouched() {
        let f = catalog::table1_sentence();
        let sk = skolemize(&f, &f.vocabulary(), &Weights::ones());
        assert!(sk.skolem_predicates.is_empty());
        assert_eq!(sk.vocabulary.len(), 3);
    }

    #[test]
    #[should_panic(expected = "requires a sentence")]
    fn open_formula_is_rejected() {
        skolemize(&atom("R", &["x"]), &Vocabulary::new(), &Weights::ones());
    }
}
