//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic [`rngs::StdRng`] (SplitMix64), the
//! [`SeedableRng::seed_from_u64`] constructor and the [`Rng`] methods used by
//! this workspace (`gen_range` over integer ranges, `gen_bool`). Not
//! cryptographic and not statistically rigorous — it exists so seeded
//! benchmarks and tests run without network access to crates.io.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Samples uniformly from `range` using `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as u128) - (range.start as u128);
                // Modulo bias is negligible for the spans used here and
                // irrelevant for benchmark workload generation.
                let offset = (rng.next_u64() as u128) % span;
                (range.start as u128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Core source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open integer range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..200 {
            match rng.gen_range(0usize..2) {
                0 => seen_low = true,
                1 => seen_high = true,
                _ => unreachable!(),
            }
        }
        assert!(seen_low && seen_high);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let trues = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&trues), "suspicious balance: {trues}");
    }
}
