//! Clauses and clausal sentences.
//!
//! A *clause* in the paper's sense is a universally quantified disjunction of
//! literals, e.g. `∀x∀y (R(x) ∨ ¬S(x,y))`. Positive clauses without equality
//! are the duals of conjunctive queries (§3.1); the inclusion–exclusion step
//! of Corollary 3.2 and the Skolemization pipeline both operate on clausal
//! sentences.

use std::collections::BTreeSet;
use std::fmt;

use crate::syntax::{Atom, Formula};
use crate::term::Variable;
use crate::transform::{nnf, simplify};

/// A literal: an atom or equality, possibly negated.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Literal {
    /// The underlying atom (either [`Formula::Atom`] or [`Formula::Equals`]).
    pub formula: Formula,
    /// True if the literal is positive.
    pub positive: bool,
}

impl Literal {
    /// A positive relational literal.
    pub fn pos(atom: Atom) -> Self {
        Literal {
            formula: Formula::Atom(atom),
            positive: true,
        }
    }

    /// A negative relational literal.
    pub fn neg(atom: Atom) -> Self {
        Literal {
            formula: Formula::Atom(atom),
            positive: false,
        }
    }

    /// The literal as a [`Formula`].
    pub fn to_formula(&self) -> Formula {
        if self.positive {
            self.formula.clone()
        } else {
            Formula::not(self.formula.clone())
        }
    }

    /// The complementary literal.
    pub fn negated(&self) -> Literal {
        Literal {
            formula: self.formula.clone(),
            positive: !self.positive,
        }
    }

    /// True if the literal is an equality literal.
    pub fn is_equality(&self) -> bool {
        matches!(self.formula, Formula::Equals(..))
    }

    /// The relational atom, if this is a relational literal.
    pub fn atom(&self) -> Option<&Atom> {
        match &self.formula {
            Formula::Atom(a) => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.formula_display())
        } else {
            write!(f, "¬{}", self.formula_display())
        }
    }
}

impl Literal {
    fn formula_display(&self) -> String {
        match &self.formula {
            Formula::Atom(a) => a.to_string(),
            Formula::Equals(x, y) => format!("{x}={y}"),
            other => format!("{other:?}"),
        }
    }
}

/// A clause: the universal closure of a disjunction of literals.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Clause {
    /// The literals of the clause.
    pub literals: Vec<Literal>,
}

impl Clause {
    /// Creates a clause from literals.
    pub fn new(literals: Vec<Literal>) -> Self {
        Clause { literals }
    }

    /// The variables occurring in the clause (all implicitly ∀-quantified).
    pub fn variables(&self) -> BTreeSet<Variable> {
        let mut out = BTreeSet::new();
        for lit in &self.literals {
            out.extend(lit.formula.free_variables());
        }
        out
    }

    /// True if every literal is a positive relational literal (no equality).
    pub fn is_positive(&self) -> bool {
        self.literals.iter().all(|l| l.positive && !l.is_equality())
    }

    /// True if the clause mentions equality.
    pub fn uses_equality(&self) -> bool {
        self.literals.iter().any(Literal::is_equality)
    }

    /// The clause as a sentence `∀x̄ (ℓ₁ ∨ … ∨ ℓ_k)`.
    pub fn to_sentence(&self) -> Formula {
        let body = Formula::or_all(self.literals.iter().map(Literal::to_formula));
        Formula::forall_many(self.variables(), body)
    }

    /// The quantifier-free disjunction of the literals.
    pub fn body(&self) -> Formula {
        Formula::or_all(self.literals.iter().map(Literal::to_formula))
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, l) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

/// A clausal sentence: a conjunction of clauses `C₁ ∧ … ∧ C_k`, each clause
/// being (implicitly) universally quantified.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ClausalSentence {
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl ClausalSentence {
    /// Creates a clausal sentence from clauses.
    pub fn new(clauses: Vec<Clause>) -> Self {
        ClausalSentence { clauses }
    }

    /// Converts the clausal sentence to a single [`Formula`].
    pub fn to_formula(&self) -> Formula {
        Formula::and_all(self.clauses.iter().map(Clause::to_sentence))
    }

    /// Converts a *universally quantified, quantifier-free-matrix* sentence to
    /// clausal form by putting the matrix in CNF (distribution).
    ///
    /// Returns `None` if the formula contains an existential quantifier or a
    /// quantifier below a connective other than the outermost ∀ block.
    pub fn from_universal_sentence(f: &Formula) -> Option<ClausalSentence> {
        // Peel the ∀ prefix.
        let mut body = f.clone();
        loop {
            body = match body {
                Formula::Forall(_, inner) => *inner,
                other => {
                    body = other;
                    break;
                }
            };
        }
        if !body.is_quantifier_free() {
            return None;
        }
        let matrix = nnf(&simplify(&body));
        let cnf = distribute_to_cnf(&matrix)?;
        Some(ClausalSentence::new(cnf))
    }
}

impl fmt::Display for ClausalSentence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "({c})")?;
        }
        Ok(())
    }
}

/// Distributes an NNF, quantifier-free formula into CNF clauses.
/// Returns `None` on ⊤/⊥ degeneracies that produce no clause structure
/// (⊤ yields an empty clause set; ⊥ yields a single empty clause).
fn distribute_to_cnf(f: &Formula) -> Option<Vec<Clause>> {
    match f {
        Formula::Top => Some(vec![]),
        Formula::Bottom => Some(vec![Clause::default()]),
        Formula::Atom(a) => Some(vec![Clause::new(vec![Literal::pos(a.clone())])]),
        Formula::Equals(..) => Some(vec![Clause::new(vec![Literal {
            formula: f.clone(),
            positive: true,
        }])]),
        Formula::Not(inner) => match inner.as_ref() {
            Formula::Atom(a) => Some(vec![Clause::new(vec![Literal::neg(a.clone())])]),
            Formula::Equals(..) => Some(vec![Clause::new(vec![Literal {
                formula: (**inner).clone(),
                positive: false,
            }])]),
            _ => None, // not in NNF
        },
        Formula::And(parts) => {
            let mut clauses = Vec::new();
            for p in parts {
                clauses.extend(distribute_to_cnf(p)?);
            }
            Some(clauses)
        }
        Formula::Or(parts) => {
            // Cartesian product of the CNF of the parts.
            let mut acc: Vec<Clause> = vec![Clause::default()];
            for p in parts {
                let sub = distribute_to_cnf(p)?;
                if sub.is_empty() {
                    // p is ⊤: the whole disjunction is ⊤.
                    return Some(vec![]);
                }
                let mut next = Vec::with_capacity(acc.len() * sub.len());
                for a in &acc {
                    for s in &sub {
                        let mut lits = a.literals.clone();
                        lits.extend(s.literals.clone());
                        next.push(Clause::new(lits));
                    }
                }
                acc = next;
            }
            Some(acc)
        }
        Formula::Implies(..) | Formula::Iff(..) | Formula::Forall(..) | Formula::Exists(..) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::*;
    use crate::term::Term;
    use crate::vocabulary::Predicate;

    fn lit(name: &str, vars: &[&str], positive: bool) -> Literal {
        let a = Atom::new(
            Predicate::new(name, vars.len()),
            vars.iter().map(|v| Term::var(*v)).collect(),
        );
        if positive {
            Literal::pos(a)
        } else {
            Literal::neg(a)
        }
    }

    #[test]
    fn clause_roundtrip_to_sentence() {
        let c = Clause::new(vec![lit("R", &["x"], true), lit("S", &["x", "y"], false)]);
        assert_eq!(c.variables().len(), 2);
        assert!(!c.is_positive());
        let s = c.to_sentence();
        assert!(s.is_sentence());
        assert!(s.to_string().contains('S'));
    }

    #[test]
    fn positive_clause_detection() {
        let c = Clause::new(vec![lit("R", &["x"], true), lit("T", &["y"], true)]);
        assert!(c.is_positive());
        assert!(!c.uses_equality());
    }

    #[test]
    fn from_universal_sentence_builds_cnf() {
        // ∀x∀y ((R(x) ∨ S(x,y)) ∧ T(y))
        let f = forall(
            ["x", "y"],
            and(vec![
                or(vec![atom("R", &["x"]), atom("S", &["x", "y"])]),
                atom("T", &["y"]),
            ]),
        );
        let cs = ClausalSentence::from_universal_sentence(&f).unwrap();
        assert_eq!(cs.clauses.len(), 2);
        assert_eq!(cs.clauses[0].literals.len(), 2);
        assert_eq!(cs.clauses[1].literals.len(), 1);
    }

    #[test]
    fn from_universal_sentence_distributes_or_over_and() {
        // ∀x (R(x) ∨ (S(x) ∧ T(x))) → (R∨S) ∧ (R∨T)
        let f = forall(
            ["x"],
            or(vec![
                atom("R", &["x"]),
                and(vec![atom("S", &["x"]), atom("T", &["x"])]),
            ]),
        );
        let cs = ClausalSentence::from_universal_sentence(&f).unwrap();
        assert_eq!(cs.clauses.len(), 2);
        assert!(cs.clauses.iter().all(|c| c.literals.len() == 2));
    }

    #[test]
    fn existential_sentence_is_rejected() {
        let f = exists(["x"], atom("R", &["x"]));
        assert!(ClausalSentence::from_universal_sentence(&f).is_none());
    }

    #[test]
    fn literal_negation_is_involution() {
        let l = lit("R", &["x"], true);
        assert_eq!(l.negated().negated(), l);
        assert_eq!(l.negated().to_formula(), Formula::not(l.to_formula()));
    }
}
