//! Wall-clock snapshot tool for lane-batched evaluation. For each same-`n`
//! weight sweep it times the per-point exact `Plan::count_batch` (the
//! pre-lane behavior: one DFS traversal per point) against the lane-batched
//! `Plan::count_batch_log` (one `LogF64xN` traversal per eight points), and
//! prints one JSON object per workload so the numbers can be recorded in
//! `BENCH_lanes.json`. Run with
//! `cargo run --release -p wfomc-bench --bin lane_time [-- quick]`.

use std::env;

use wfomc::prelude::*;
use wfomc_bench::{lane_sweep_points, time_ms};

fn main() {
    let quick = env::args().nth(1).as_deref() == Some("quick");
    let (n, ks): (usize, &[usize]) = if quick { (12, &[8]) } else { (30, &[8, 32]) };
    let plan = Problem::new(catalog::table1_sentence())
        .plan()
        .expect("table1 plans");
    for &k in ks {
        let points = lane_sweep_points(n, k);
        // Warm-up binds the weight tables once so both timings measure
        // evaluation, matching the committed plan_time baselines.
        let _ = plan.count_batch(&points[..1]);
        let _ = plan.count_batch_log(&points[..1]);

        let mut exact = Vec::new();
        let per_point_ms = time_ms(|| {
            exact = plan.count_batch(&points).expect("exact batch counts");
        });
        let mut lanes = Vec::new();
        let lane_ms = time_ms(|| {
            lanes = plan.count_batch_log(&points);
        });

        for (e, l) in exact.iter().zip(&lanes) {
            let l = l.as_ref().expect("lane point counts");
            let e_ln = LogF64.from_weight(&e.value).ln_abs();
            assert!(
                (e_ln - l.ln_abs()).abs() <= 1e-9 * e_ln.abs().max(1.0),
                "lane result diverged from exact: {e_ln} vs {}",
                l.ln_abs()
            );
        }
        println!(
            "{{\"workload\": \"fo2-table1-{n}\", \"k\": {k}, \
             \"per_point_ms\": {per_point_ms:.2}, \"lane_ms\": {lane_ms:.2}, \
             \"speedup\": {:.2}}}",
            per_point_ms / lane_ms
        );
    }
}
