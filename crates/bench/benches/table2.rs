//! E4 — Table 2: the open problems. No lifted algorithm applies (the solver
//! reports the grounded fallback), so the only available method is exponential
//! in n — these benches document that cost at n = 2 and n = 3.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfomc::prelude::*;
use wfomc_bench::table2_workload;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    let solver = Solver::new();
    for (name, sentence) in table2_workload() {
        // Confirm (cheaply) that the dispatcher grounds these.
        let report = solver.fomc(&sentence, 1).unwrap();
        assert_eq!(report.method, Method::Ground, "{name} unexpectedly lifted");
        for n in [2usize, 3] {
            // Skip blow-ups that take more than a couple of seconds per
            // iteration: 4-ary tuple spaces at n = 3.
            if sentence.vocabulary().num_ground_tuples(n) > 27 {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(name.replace(' ', "-"), n), &n, |b, &n| {
                b.iter(|| solver.fomc(&sentence, n).unwrap().value)
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_table2
}
criterion_main!(benches);
