//! The combined-complexity reduction of Figure 2 / Theorem 4.1(1): counting
//! satisfying assignments of a Boolean formula by counting first-order models
//! of an FO² sentence — `FOMC(ϕ_F, n+1) = (n+1)! · #F`.
//!
//! Run with `cargo run --release --example sharp_sat_reduction`.

use num_traits::ToPrimitive;
use wfomc::prelude::*;
use wfomc::prop::counter::wmc_formula;
use wfomc::prop::VarWeights;

fn main() {
    // F = (X₁ ∨ X₂) ∧ (¬X₂ ∨ X₃)  over three Boolean variables.
    let f = PropFormula::and_all([
        PropFormula::or(PropFormula::var(0), PropFormula::var(1)),
        PropFormula::or(PropFormula::not(PropFormula::var(1)), PropFormula::var(2)),
    ]);
    let num_vars = 3;
    let models = wmc_formula(&f, &VarWeights::ones(num_vars));
    println!("Boolean formula F = {f}");
    println!("#F (by enumeration) = {models}\n");

    // Build ϕ_F.
    let reduction = sharp_sat_to_fomc(&f, num_vars);
    println!(
        "ϕ_F is an FO² sentence over {{A,B,C,R,S}} with {} AST nodes, {} distinct variables",
        reduction.sentence.size(),
        reduction.sentence.distinct_variable_count()
    );
    println!("target domain size: n + 1 = {}\n", reduction.domain_size);

    // Count its models by grounding (this is the #P-hard direction: the
    // formula is part of the input, so no lifted algorithm applies in general).
    println!(
        "Counting FOMC(ϕ_F, {}) by grounding + weighted model counting…",
        reduction.domain_size
    );
    let count = GroundSolver::new().fomc(&reduction.sentence, reduction.domain_size);
    let factorial: i64 = (1..=(reduction.domain_size as i64)).product();
    println!("FOMC(ϕ_F, {}) = {}", reduction.domain_size, count);
    println!("(n+1)!        = {}", factorial);
    let recovered = count / weight_int(factorial);
    println!("recovered #F  = {}", recovered);
    assert_eq!(
        recovered.to_integer().to_i64(),
        models.to_integer().to_i64(),
        "the reduction must recover the model count exactly"
    );

    // Show how the sentence size grows with the number of Boolean variables —
    // the reason this is a *combined* complexity result: the sentence is part
    // of the input.
    println!("\nSentence size of ϕ_F as the number of Boolean variables grows:");
    println!("{:>6} {:>14}", "#vars", "AST nodes");
    for n in 2..=8 {
        let padded = sharp_sat_to_fomc(&PropFormula::var(0), n);
        println!("{n:>6} {:>14}", padded.sentence.size());
    }
}
