//! Closed-form counting identities from the paper.
//!
//! * Introduction / §2: `FOMC(∀x∃y R(x,y), n) = (2ⁿ − 1)ⁿ`,
//!   `WFOMC(∃y S(y), n) = (w + w̄)ⁿ − w̄ⁿ`, and the footnote-5 formula for
//!   `∃x∃y (R(x) ∧ S(x,y) ∧ T(y))`;
//! * Table 1: the symmetric FOMC and WFOMC of
//!   `Φ = ∀x∀y (R(x) ∨ S(x,y) ∨ T(y))`.
//!
//! These are used as independent ground truth for the FO² algorithm and the
//! grounded baselines, and they power the `repro table1` harness.

use num_traits::One;

use wfomc_logic::algebra::{Algebra, AlgebraWeights};
use wfomc_logic::weights::{weight_int, weight_pow, Weight, Weights};

use crate::combinatorics::binomial_weight;

/// `FOMC(∀x∃y R(x,y), n) = (2ⁿ − 1)ⁿ`.
pub fn fomc_forall_exists_edge(n: usize) -> Weight {
    let models_per_row = weight_pow(&weight_int(2), n) - Weight::one();
    weight_pow(&models_per_row, n)
}

/// `WFOMC(∀x∃y R(x,y), n, w, w̄) = ((w + w̄)ⁿ − w̄ⁿ)ⁿ` (§2).
pub fn wfomc_forall_exists_edge(n: usize, w: &Weight, w_bar: &Weight) -> Weight {
    let per_row = weight_pow(&(w + w_bar), n) - weight_pow(w_bar, n);
    weight_pow(&per_row, n)
}

/// `WFOMC(∃y S(y), n, w, w̄) = (w + w̄)ⁿ − w̄ⁿ` (§2).
pub fn wfomc_exists_unary(n: usize, w: &Weight, w_bar: &Weight) -> Weight {
    weight_pow(&(w + w_bar), n) - weight_pow(w_bar, n)
}

/// [`wfomc_forall_exists_edge`] in an arbitrary [`Algebra`] — the closed
/// forms are ring identities, so they hold verbatim over any commutative
/// ring.
pub fn wfomc_forall_exists_edge_in<A: Algebra>(
    n: usize,
    algebra: &A,
    w: &A::Elem,
    w_bar: &A::Elem,
) -> A::Elem {
    let per_row = algebra.sub(
        &algebra.pow(&algebra.add(w, w_bar), n),
        &algebra.pow(w_bar, n),
    );
    algebra.pow(&per_row, n)
}

/// [`wfomc_exists_unary`] in an arbitrary [`Algebra`].
pub fn wfomc_exists_unary_in<A: Algebra>(
    n: usize,
    algebra: &A,
    w: &A::Elem,
    w_bar: &A::Elem,
) -> A::Elem {
    algebra.sub(
        &algebra.pow(&algebra.add(w, w_bar), n),
        &algebra.pow(w_bar, n),
    )
}

/// Table 1, symmetric FOMC row:
/// `FOMC(Φ, n) = Σ_{k,m=0}^{n} C(n,k) C(n,m) 2^{n²−km}`
/// for `Φ = ∀x∀y (R(x) ∨ S(x,y) ∨ T(y))`.
pub fn fomc_table1(n: usize) -> Weight {
    let mut total = Weight::from_integer(0.into());
    for k in 0..=n {
        for m in 0..=n {
            total += binomial_weight(n, k)
                * binomial_weight(n, m)
                * weight_pow(&weight_int(2), n * n - k * m);
        }
    }
    total
}

/// Table 1, symmetric WFOMC row:
/// `WFOMC(Φ, n, w, w̄) = Σ_{k,m} C(n,k) C(n,m) W_{k,m}` with
/// `W_{k,m} = w_R^{n−k} w̄_R^k · w_S^{km} (w_S + w̄_S)^{n²−km} · w_T^{n−m} w̄_T^m`,
/// where `k` counts the elements with `R` false and `m` those with `T` false.
pub fn wfomc_table1(n: usize, weights: &Weights) -> Weight {
    let r = weights.pair("R");
    let s = weights.pair("S");
    let t = weights.pair("T");
    let s_total = s.total();
    let mut total = Weight::from_integer(0.into());
    for k in 0..=n {
        for m in 0..=n {
            let w_km = weight_pow(&r.pos, n - k)
                * weight_pow(&r.neg, k)
                * weight_pow(&s.pos, k * m)
                * weight_pow(&s_total, n * n - k * m)
                * weight_pow(&t.pos, n - m)
                * weight_pow(&t.neg, m);
            total += binomial_weight(n, k) * binomial_weight(n, m) * w_km;
        }
    }
    total
}

/// [`wfomc_table1`] in an arbitrary [`Algebra`].
pub fn wfomc_table1_in<A: Algebra>(n: usize, algebra: &A, weights: &AlgebraWeights<A>) -> A::Elem {
    let (r_pos, r_neg) = weights.pair(algebra, "R");
    let (s_pos, s_neg) = weights.pair(algebra, "S");
    let (t_pos, t_neg) = weights.pair(algebra, "T");
    let s_total = algebra.add(&s_pos, &s_neg);
    let mut total = algebra.zero();
    for k in 0..=n {
        for m in 0..=n {
            let mut w_km = algebra.pow(&r_pos, n - k);
            algebra.mul_assign(&mut w_km, &algebra.pow(&r_neg, k));
            algebra.mul_assign(&mut w_km, &algebra.pow(&s_pos, k * m));
            algebra.mul_assign(&mut w_km, &algebra.pow(&s_total, n * n - k * m));
            algebra.mul_assign(&mut w_km, &algebra.pow(&t_pos, n - m));
            algebra.mul_assign(&mut w_km, &algebra.pow(&t_neg, m));
            let binom = binomial_weight(n, k) * binomial_weight(n, m);
            algebra.mul_assign(&mut w_km, &algebra.from_weight(&binom));
            algebra.add_assign(&mut total, &w_km);
        }
    }
    total
}

/// Footnote 5 / introduction: the number of models of the dual conjunctive
/// query `∃x∃y (R(x) ∧ S(x,y) ∧ T(y))` is
/// `2^{2n+n²} − Σ_{k,m} C(n,k) C(n,m) 2^{n²−km}`.
pub fn fomc_table1_dual_cq(n: usize) -> Weight {
    weight_pow(&weight_int(2), 2 * n + n * n) - fomc_table1_complement(n)
}

/// The number of structures that do **not** satisfy the dual CQ, i.e. where
/// `S` avoids `R × T`: `Σ_{k,m} C(n,k) C(n,m) 2^{n²−km}` with `k = |R|`,
/// `m = |T|` (footnote 5).
pub fn fomc_table1_complement(n: usize) -> Weight {
    let mut total = Weight::from_integer(0.into());
    for k in 0..=n {
        for m in 0..=n {
            total += binomial_weight(n, k)
                * binomial_weight(n, m)
                * weight_pow(&weight_int(2), n * n - k * m);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_ground::{brute_force_fomc, brute_force_wfomc, wfomc as ground_wfomc};
    use wfomc_logic::catalog;

    #[test]
    fn forall_exists_edge_matches_brute_force() {
        let f = catalog::forall_exists_edge();
        for n in 0..=3 {
            assert_eq!(fomc_forall_exists_edge(n), brute_force_fomc(&f, n), "n={n}");
        }
        // Weighted version against the grounded pipeline.
        let voc = f.vocabulary();
        let weights = Weights::from_ints([("R", 3, 2)]);
        for n in 0..=3 {
            assert_eq!(
                wfomc_forall_exists_edge(n, &weight_int(3), &weight_int(2)),
                ground_wfomc(&f, &voc, n, &weights),
                "n={n}"
            );
        }
    }

    #[test]
    fn exists_unary_matches_brute_force() {
        let f = catalog::exists_unary();
        let voc = f.vocabulary();
        let weights = Weights::from_ints([("S", 5, 2)]);
        for n in 0..=4 {
            assert_eq!(
                wfomc_exists_unary(n, &weight_int(5), &weight_int(2)),
                brute_force_wfomc(&f, &voc, n, &weights),
                "n={n}"
            );
        }
    }

    #[test]
    fn table1_fomc_matches_brute_force() {
        let f = catalog::table1_sentence();
        for n in 0..=3 {
            assert_eq!(fomc_table1(n), brute_force_fomc(&f, n), "n = {n}");
        }
        // Known value at n = 2: Σ C(2,k)C(2,m) 2^{4−km} = 161.
        assert_eq!(fomc_table1(2), weight_int(161));
    }

    #[test]
    fn table1_wfomc_matches_grounded() {
        let f = catalog::table1_sentence();
        let voc = f.vocabulary();
        let weights = Weights::from_ints([("R", 2, 3), ("S", 1, 2), ("T", 5, 1)]);
        for n in 0..=2 {
            assert_eq!(
                wfomc_table1(n, &weights),
                ground_wfomc(&f, &voc, n, &weights),
                "n = {n}"
            );
        }
        // The unweighted specialization of the WFOMC formula reproduces the
        // FOMC formula.
        for n in 0..=4 {
            assert_eq!(wfomc_table1(n, &Weights::ones()), fomc_table1(n));
        }
    }

    #[test]
    fn generic_closed_forms_match_exact_in_every_algebra() {
        use num_traits::Zero;
        use wfomc_logic::algebra::{AlgebraWeights, Exact, LogF64, Poly};
        use wfomc_logic::poly::Polynomial;

        let w = weight_int(3);
        let w_bar = weight_int(-2);
        let weights = Weights::from_ints([("R", 3, -2), ("S", 1, 2), ("T", 5, 1)]);
        for n in 0..=4 {
            // Exact instances reproduce the rational formulas verbatim.
            assert_eq!(
                wfomc_forall_exists_edge_in(n, &Exact, &w, &w_bar),
                wfomc_forall_exists_edge(n, &w, &w_bar),
                "edge n={n}"
            );
            assert_eq!(
                wfomc_exists_unary_in(n, &Exact, &w, &w_bar),
                wfomc_exists_unary(n, &w, &w_bar),
                "unary n={n}"
            );
            assert_eq!(
                wfomc_table1_in(n, &Exact, &AlgebraWeights::lift(&Exact, &weights)),
                wfomc_table1(n, &weights),
                "table1 n={n}"
            );
            // LogF64 tracks the exact values (compare in log space; the
            // closed forms subtract, so signs matter).
            let exact = wfomc_table1(n, &weights);
            let log = wfomc_table1_in(n, &LogF64, &AlgebraWeights::lift(&LogF64, &weights));
            let expected = LogF64.from_weight(&exact);
            assert_eq!(log.signum(), expected.signum(), "table1 log n={n}");
            if !exact.is_zero() {
                assert!(
                    (log.ln_abs() - expected.ln_abs()).abs() < 1e-9,
                    "table1 log n={n}"
                );
            }
            // Poly with a symbolic w: the closed form as a polynomial,
            // evaluated at the rational point.
            let x = Polynomial::x();
            let f = wfomc_exists_unary_in(n, &Poly, &x, &Poly.from_weight(&w_bar));
            assert_eq!(f.eval(&w), wfomc_exists_unary(n, &w, &w_bar), "poly n={n}");
            let f = wfomc_forall_exists_edge_in(n, &Poly, &x, &Poly.from_weight(&w_bar));
            assert_eq!(
                f.eval(&w),
                wfomc_forall_exists_edge(n, &w, &w_bar),
                "poly edge n={n}"
            );
        }
    }

    #[test]
    fn dual_cq_count_is_complementary() {
        let q = catalog::table1_dual_cq().to_formula();
        for n in 0..=2 {
            assert_eq!(fomc_table1_dual_cq(n), brute_force_fomc(&q, n), "n = {n}");
        }
        // Complement + query = all structures (2^{2n+n²}).
        for n in 0..=5 {
            assert_eq!(
                fomc_table1_dual_cq(n) + fomc_table1_complement(n),
                weight_pow(&weight_int(2), 2 * n + n * n)
            );
        }
    }
}
