//! Shared workload definitions for the benchmarks and the `repro` harness.
//!
//! Every experiment id (E1–E10, see `DESIGN.md` and `EXPERIMENTS.md`) has a
//! corresponding workload constructor here so the Criterion benches and the
//! textual reproduction harness measure exactly the same inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use wfomc::prelude::*;

/// Weights used throughout the weighted benchmarks (non-trivial but small, so
/// the exact arithmetic does not dominate the measurements).
pub fn standard_weights() -> Weights {
    Weights::from_ints([
        ("R", 2, 1),
        ("S", 1, 3),
        ("T", 2, 2),
        ("Spouse", 1, 1),
        ("Female", 2, 1),
        ("Male", 1, 2),
        ("Smokes", 3, 1),
        ("Friends", 1, 2),
    ])
}

/// E1 (Table 1): the running-example sentence.
pub fn table1_workload() -> Formula {
    catalog::table1_sentence()
}

/// E2 (Figure 1): the conjunctive-query landscape, labeled.
pub fn figure1_workload() -> Vec<(&'static str, ConjunctiveQuery)> {
    vec![
        ("chain3", catalog::chain_query(3)),
        ("star3", catalog::star_query(3)),
        ("table1-dual", catalog::table1_dual_cq()),
        ("c-gamma", catalog::c_gamma()),
        ("c-jtdb", catalog::c_jtdb()),
        ("cycle3", catalog::typed_cycle_cq(3)),
    ]
}

/// E3 (Figure 2): a small #SAT instance and its FO² encoding.
pub fn figure2_boolean_formula() -> (PropFormula, usize) {
    (
        PropFormula::and_all([
            PropFormula::or(PropFormula::var(0), PropFormula::var(1)),
            PropFormula::or(PropFormula::not(PropFormula::var(0)), PropFormula::var(1)),
        ]),
        2,
    )
}

/// E4 (Table 2): the open problems.
pub fn table2_workload() -> Vec<(&'static str, Formula)> {
    catalog::table2_open_problems()
}

/// E6b (`fo2_scaling`): an FO² sentence with 12 valid cells (3 unary bits
/// from `A`, `B` and the Skolem predicate, 1 reflexive bit from `R`) whose
/// hard partition constraints `A(x) ↔ A(y)` and `B(x) ↔ B(y)` zero out every
/// cross-cell pair entry between different (A, B)-classes. The prefix-sharing
/// cell-sum engine prunes those subtrees instead of summing zero terms, which
/// is what makes n = 100 with this many cells finish in seconds.
pub fn fo2_scaling_workload() -> Formula {
    and(vec![
        forall(["x"], exists(["y"], atom("R", &["x", "y"]))),
        forall(["x", "y"], iff(atom("A", &["x"]), atom("A", &["y"]))),
        forall(["x", "y"], iff(atom("B", &["x"]), atom("B", &["y"]))),
    ])
}

/// Repeated-query workloads for the plan-reuse experiment: per solver
/// method, one sentence plus `k` query points (`(n, weights)` pairs) of the
/// shapes real workloads produce — domain-size sweeps (growing networks,
/// interpolation) and weight sweeps (MLN queries, learning loops). The
/// `plan_reuse` Criterion bench, the `plan_time` snapshot bin and the repro
/// harness's `plan-reuse` experiment all measure exactly these inputs.
#[allow(clippy::type_complexity)]
pub fn plan_reuse_workloads(
    k: usize,
) -> Vec<(&'static str, Solver, Formula, Vec<(usize, Weights)>)> {
    let weights = standard_weights();
    // Four binary predicates make the analysis the dominant cost: the pair
    // tables check 4⁴ cross assignments per cell pair (each a matrix
    // evaluation), while evaluation at small n is a handful of compositions —
    // the shape where re-analyzing per call hurts most.
    let quad_binary = and(vec![
        forall(["x"], atom("R", &["x", "x"])),
        forall(
            ["x", "y"],
            or(vec![
                atom("R", &["x", "y"]),
                atom("S", &["x", "y"]),
                atom("T", &["x", "y"]),
                atom("U", &["x", "y"]),
            ]),
        ),
    ]);
    vec![
        // FO²: one sentence asked at k (small, cycling) domain sizes.
        (
            "fo2/quad-binary-n-sweep",
            Solver::new(),
            quad_binary.clone(),
            (0..k).map(|i| (1 + i % 6, weights.clone())).collect(),
        ),
        // FO²: a weight sweep at fixed n (the interpolation / MLN pattern).
        (
            "fo2/quad-binary-weight-sweep",
            Solver::new(),
            quad_binary,
            (0..k)
                .map(|i| {
                    (
                        3,
                        Weights::from_ints([("R", i as i64 + 1, 1), ("S", 1, 3), ("T", 2, 2)]),
                    )
                })
                .collect(),
        ),
        // FO²: the running example's weight sweep, cheap analysis and all.
        (
            "fo2/table1-weight-sweep",
            Solver::new(),
            catalog::table1_sentence(),
            (0..k)
                .map(|i| {
                    (
                        4,
                        Weights::from_ints([("R", i as i64 + 1, 1), ("S", 1, 3), ("T", 2, 2)]),
                    )
                })
                .collect(),
        ),
        // QS4: weight sweep on the dynamic program.
        (
            "qs4/weight-sweep",
            Solver::new(),
            catalog::qs4(),
            (0..k)
                .map(|i| (10, Weights::from_ints([("S", i as i64 + 1, 2)])))
                .collect(),
        ),
        // γ-acyclic CQ: domain-size sweep sharing one reduction memo.
        (
            "cq/chain3-n-sweep",
            Solver::new(),
            catalog::chain_query(3).to_formula(),
            (0..k).map(|i| (4 + i, weights.clone())).collect(),
        ),
        // Ground (circuit backend): weight sweep on one compiled circuit.
        (
            "ground/transitivity-weight-sweep",
            Solver::builder()
                .ground_backend(WmcBackend::Circuit)
                .build(),
            catalog::transitivity(),
            (0..k)
                .map(|i| (3, Weights::from_ints([("R", i as i64 + 1, 1)])))
                .collect(),
        ),
    ]
}

/// The lane-batching workload: a same-`n` weight sweep over the Table 1
/// sentence, the shape `Plan::count_batch_log` turns into one `LogF64xN`
/// traversal per eight points. The `lane_time` snapshot bin and the perf
/// gate's lane check measure exactly these points, so the committed
/// `BENCH_lanes.json` per-point baseline and the gate's re-measured lane
/// time stay comparable.
pub fn lane_sweep_points(n: usize, k: usize) -> Vec<(usize, Weights)> {
    (0..k)
        .map(|i| {
            (
                n,
                Weights::from_ints([("R", i as i64 + 1, 1), ("S", 1, 3), ("T", 2, 2)]),
            )
        })
        .collect()
}

/// Wall-clock time of one closure call in milliseconds — the shared
/// measurement primitive of the snapshot bins, the repro harness's timed
/// experiments and the perf gate.
pub fn time_ms(f: impl FnOnce()) -> f64 {
    let start = std::time::Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

/// Per-phase wall-clock timings of one traced experiment, produced by
/// [`run_trace`] and emitted by `repro trace` as `target/trace.json`.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The experiment that was traced (e.g. `plan-reuse`).
    pub experiment: String,
    /// End-to-end wall clock of the traced run, in milliseconds.
    pub wall_ms: f64,
    /// `(phase, ms)` in execution order: parse, plan, bind, evaluate.
    pub phases: Vec<(&'static str, f64)>,
    /// The final evaluation's `wfomc-report/v1` object
    /// ([`SolverReport::to_json`]), pre-serialized, so the trace artifact
    /// carries the solved value and cache accounting alongside the timings.
    pub report: Option<String>,
}

impl Trace {
    /// Hand-written JSON (the workspace has no serde): stable key order,
    /// schema tag first, so CI artifacts stay diffable across runs.
    pub fn to_json(&self) -> String {
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|(name, ms)| format!("    {{\"phase\": \"{name}\", \"ms\": {ms:.3}}}"))
            .collect();
        let report = match &self.report {
            Some(raw) => format!(",\n  \"report\": {raw}"),
            None => String::new(),
        };
        format!(
            "{{\n  \"schema\": \"wfomc-trace/v1\",\n  \"experiment\": \"{}\",\n  \
             \"wall_ms\": {:.3},\n  \"phases\": [\n{}\n  ]{report}\n}}\n",
            self.experiment,
            self.wall_ms,
            phases.join(",\n")
        )
    }
}

/// Runs one experiment split into the pipeline's phases — parse (workload
/// construction), plan (analysis), bind (first evaluation per workload,
/// which populates the weight-binding / grounding caches), evaluate (the
/// full point sweep) — timing each phase separately. The phases partition
/// the actual work, so their sum tracks the reported wall clock.
///
/// Supported experiments: `plan-reuse` (the E11 plan-reuse workloads at
/// k = 16) and `fo2-scaling` (the E6b partition sentence at n = 10/20/30).
///
/// # Panics
/// Panics on an unknown experiment name or a workload that fails to plan.
pub fn run_trace(experiment: &str) -> Trace {
    let wall = std::time::Instant::now();
    let mut phases: Vec<(&'static str, f64)> = Vec::new();
    let mut report: Option<String> = None;
    match experiment {
        "plan-reuse" => {
            let mut workloads = Vec::new();
            phases.push(("parse", time_ms(|| workloads = plan_reuse_workloads(16))));
            let mut plans = Vec::new();
            phases.push((
                "plan",
                time_ms(|| {
                    plans = workloads
                        .iter()
                        .map(|(name, solver, sentence, _)| {
                            solver
                                .plan(&Problem::new(sentence.clone()))
                                .unwrap_or_else(|e| panic!("{name} plans: {e:?}"))
                        })
                        .collect::<Vec<_>>();
                }),
            ));
            phases.push((
                "bind",
                time_ms(|| {
                    for (plan, (name, _, _, points)) in plans.iter().zip(&workloads) {
                        let (n, w) = points.first().expect("workloads have points");
                        let _ = plan
                            .count(*n, w)
                            .unwrap_or_else(|e| panic!("{name} binds: {e:?}"));
                    }
                }),
            ));
            phases.push((
                "evaluate",
                time_ms(|| {
                    for (plan, (name, _, _, points)) in plans.iter().zip(&workloads) {
                        for (n, w) in points {
                            let point_report = plan
                                .count(*n, w)
                                .unwrap_or_else(|e| panic!("{name} evaluates: {e:?}"));
                            report = Some(point_report.to_json());
                        }
                    }
                }),
            ));
        }
        "fo2-scaling" => {
            let mut sentence = None;
            phases.push(("parse", time_ms(|| sentence = Some(fo2_scaling_workload()))));
            let sentence = sentence.expect("parse phase built the sentence");
            let mut plan = None;
            phases.push((
                "plan",
                time_ms(|| {
                    plan = Some(
                        Solver::new()
                            .plan(&Problem::new(sentence))
                            .expect("fo2-scaling plans"),
                    );
                }),
            ));
            let plan = plan.expect("plan phase produced a plan");
            let weights = standard_weights();
            phases.push((
                "bind",
                time_ms(|| {
                    let _ = plan.count(10, &weights).expect("fo2-scaling binds");
                }),
            ));
            phases.push((
                "evaluate",
                time_ms(|| {
                    for n in [10usize, 20, 30] {
                        let point_report = plan.count(n, &weights).expect("fo2-scaling evaluates");
                        report = Some(point_report.to_json());
                    }
                }),
            ));
        }
        other => panic!("unknown trace experiment {other:?} (try plan-reuse or fo2-scaling)"),
    }
    Trace {
        experiment: experiment.to_string(),
        wall_ms: wall.elapsed().as_secs_f64() * 1e3,
        phases,
        report,
    }
}

/// Bignum microbenchmark: balanced big×big multiplication — square a 2-limb
/// seed repeatedly, so the final squarings run far above the Karatsuba
/// threshold. Shared by the `bignum` Criterion bench, the `bignum_time`
/// snapshot bin and the repro harness's perf gate.
pub fn bignum_square_chain(doublings: u32) -> num_bigint::BigUint {
    let mut x = num_bigint::BigUint::from(0xfeed_face_cafe_f00du64)
        * num_bigint::BigUint::from(u64::MAX - 11);
    for _ in 0..doublings {
        x = &x * &x;
    }
    x
}

/// Bignum microbenchmark: big×small multiplication with many word-sized
/// intermediates (`n!` — the inline small-value fast path).
pub fn bignum_factorial_chain(n: u64) -> num_bigint::BigUint {
    let mut acc = num_traits::One::one();
    for i in 1..=n {
        acc = acc * num_bigint::BigUint::from(i);
    }
    acc
}

/// Bignum microbenchmark: rational normalization and gcd (`Σ 1/k`).
pub fn bignum_harmonic(n: i64) -> num_rational::BigRational {
    let mut acc = num_rational::BigRational::from_integer(num_bigint::BigInt::from(0));
    for k in 1..=n {
        acc += num_rational::BigRational::new(
            num_bigint::BigInt::from(1),
            num_bigint::BigInt::from(k),
        );
    }
    acc
}

/// E8: the smokers-and-friends MLN.
pub fn smokers_mln() -> MarkovLogicNetwork {
    let mut mln = MarkovLogicNetwork::new();
    mln.add_soft(
        weight_int(2),
        implies(
            and(vec![atom("Smokes", &["x"]), atom("Friends", &["x", "y"])]),
            atom("Smokes", &["y"]),
        ),
    );
    mln.add_soft(weight_int(3), atom("Smokes", &["x"]));
    mln
}

/// Convert an exact rational into an f64 for display purposes only.
pub fn approx(w: &Weight) -> f64 {
    let numer: f64 = w.numer().to_string().parse().unwrap_or(f64::NAN);
    let denom: f64 = w.denom().to_string().parse().unwrap_or(f64::NAN);
    numer / denom
}

/// Truncate huge exact integers for table printing.
pub fn short(w: &Weight) -> String {
    let s = w.to_string();
    if s.len() <= 24 {
        s
    } else {
        format!("{}…({} digits)", &s[..10], s.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_well_formed() {
        assert!(table1_workload().is_sentence());
        assert_eq!(figure1_workload().len(), 6);
        assert_eq!(table2_workload().len(), 6);
        let (f, n) = figure2_boolean_formula();
        assert!(f.num_vars() <= n);
        assert_eq!(smokers_mln().len(), 2);
        assert_eq!(approx(&weight_ratio(1, 2)), 0.5);
        assert!(short(&weight_int(7)).contains('7'));
    }

    #[test]
    fn trace_phases_partition_the_wall_clock() {
        let trace = run_trace("plan-reuse");
        let names: Vec<_> = trace.phases.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["parse", "plan", "bind", "evaluate"]);
        let sum: f64 = trace.phases.iter().map(|(_, ms)| ms).sum();
        assert!(sum <= trace.wall_ms, "phases cannot exceed the wall clock");
        // The phases time all the real work; the gap is bookkeeping only
        // (10% relative plus a small absolute allowance for slow CI runners).
        assert!(
            trace.wall_ms - sum <= 0.1 * trace.wall_ms + 5.0,
            "phases ({sum:.3} ms) do not account for the wall clock ({:.3} ms)",
            trace.wall_ms
        );
        let json = trace.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"wfomc-trace/v1\""));
        assert!(json.contains("\"experiment\": \"plan-reuse\""));
        assert!(json.contains("\"phase\": \"evaluate\""));
        // The evaluate phase embeds the final report as wfomc-report/v1.
        assert!(json.contains("\"report\": {\"schema\":\"wfomc-report/v1\""));
    }

    #[test]
    fn plan_reuse_workloads_plan_to_their_advertised_methods() {
        for (name, solver, sentence, points) in plan_reuse_workloads(3) {
            assert_eq!(points.len(), 3, "{name}");
            let plan = solver.plan(&Problem::new(sentence)).unwrap();
            let method = name.split('/').next().unwrap();
            let expected = match method {
                "fo2" => Method::Fo2,
                "qs4" => Method::Qs4,
                "cq" => Method::GammaAcyclicCq,
                "ground" => Method::Ground,
                other => panic!("unknown workload family {other}"),
            };
            assert_eq!(plan.method(), expected, "{name}");
        }
    }
}
