//! The grounded WFOMC pipeline: lineage construction followed by propositional
//! weighted model counting.
//!
//! This is the always-applicable (but exponential-time) baseline of the paper:
//! for any FO sentence, `WFOMC(Φ, n, w, w̄) = WMC(F_{Φ,n}, w, w̄)`. The lifted
//! algorithms in `wfomc-core` beat it asymptotically whenever they apply; the
//! Figure 1 / Figure 2 / Table 2 benchmarks measure exactly that gap.

use wfomc_logic::algebra::{Algebra, AlgebraWeights};
use wfomc_logic::weights::{Weight, Weights};
use wfomc_logic::{Formula, Vocabulary};
use wfomc_prop::counter::{wmc_formula_via, wmc_formula_via_in, CompiledWmc, WmcBackend};
use wfomc_prop::tseitin::{to_cnf, TseitinCnf};
use wfomc_prop::VarWeights;

use crate::lineage::{GroundAtom, Lineage};

/// Configuration for the grounded solver.
#[derive(Clone, Copy, Debug, Default)]
pub struct GroundSolver {
    /// Which propositional counter to use.
    pub backend: WmcBackend,
}

impl GroundSolver {
    /// A solver using the DPLL backend (the default).
    pub fn new() -> Self {
        GroundSolver::default()
    }

    /// A solver using the chosen backend.
    pub fn with_backend(backend: WmcBackend) -> Self {
        GroundSolver { backend }
    }

    /// Symmetric WFOMC of a sentence over the given vocabulary and domain
    /// size.
    pub fn wfomc(
        &self,
        formula: &Formula,
        vocabulary: &Vocabulary,
        n: usize,
        weights: &Weights,
    ) -> Weight {
        let lineage = Lineage::build(formula, vocabulary, n);
        let var_weights = lineage.symmetric_weights(weights);
        wmc_formula_via(&lineage.prop, &var_weights, self.backend)
    }

    /// [`wfomc`](Self::wfomc) in an arbitrary [`Algebra`]: the grounding is
    /// identical (it never looks at a weight); only the propositional count
    /// runs in the ring.
    pub fn wfomc_in<A: Algebra>(
        &self,
        formula: &Formula,
        vocabulary: &Vocabulary,
        n: usize,
        algebra: &A,
        weights: &AlgebraWeights<A>,
    ) -> A::Elem {
        let lineage = Lineage::build(formula, vocabulary, n);
        let var_weights = lineage.weights_in(algebra, weights);
        wmc_formula_via_in(&lineage.prop, algebra, &var_weights, self.backend)
    }

    /// FOMC (all weights 1) of a sentence over its own vocabulary.
    pub fn fomc(&self, formula: &Formula, n: usize) -> Weight {
        let voc = formula.vocabulary();
        self.wfomc(formula, &voc, n, &Weights::ones())
    }

    /// The probability of the sentence under the tuple-independent
    /// distribution induced by the weights:
    /// `Pr(Φ) = WFOMC(Φ, n, w, w̄) / WFOMC(true, n, w, w̄)`.
    ///
    /// # Panics
    /// Panics if `WFOMC(true)` is zero (which can only happen with
    /// zero-total weight pairs such as the Skolemization weights).
    pub fn probability(
        &self,
        formula: &Formula,
        vocabulary: &Vocabulary,
        n: usize,
        weights: &Weights,
    ) -> Weight {
        let numerator = self.wfomc(formula, vocabulary, n, weights);
        let denominator = weights.wfomc_of_true(vocabulary, n);
        assert!(
            denominator != Weight::from_integer(0.into()),
            "WFOMC(true) is zero; the weights admit no probability normalization"
        );
        numerator / denominator
    }

    /// Asymmetric WFOMC: every ground tuple gets its own weight pair from the
    /// callback (Table 1's most general row).
    pub fn wfomc_asymmetric(
        &self,
        formula: &Formula,
        vocabulary: &Vocabulary,
        n: usize,
        weight_of: impl FnMut(&GroundAtom) -> (Weight, Weight),
    ) -> Weight {
        let lineage = Lineage::build(formula, vocabulary, n);
        let var_weights = lineage.asymmetric_weights(weight_of);
        wmc_formula_via(&lineage.prop, &var_weights, self.backend)
    }
}

/// A sentence grounded at a fixed domain size and compiled **once** into a
/// smoothed d-DNNF circuit, for evaluation under many weight functions.
///
/// The pipeline `lineage → Tseitin CNF → circuit` is weight-independent, so
/// the expensive steps run a single time; [`CompiledWfomc::wfomc`] then
/// costs one linear circuit pass per weight function. This is the fast path
/// behind the Lemma 3.5 equality-removal interpolation (`n² + 1` weight
/// points on one sentence) and any repeated-query workload that varies
/// weights but not the sentence or domain.
#[derive(Clone, Debug)]
pub struct CompiledWfomc {
    lineage: Lineage,
    tseitin: TseitinCnf,
    compiled: CompiledWmc,
}

impl CompiledWfomc {
    /// Grounds the sentence over a domain of size `n` and compiles its
    /// lineage CNF to a circuit.
    pub fn compile(formula: &Formula, vocabulary: &Vocabulary, n: usize) -> CompiledWfomc {
        Self::from_lineage(Lineage::build(formula, vocabulary, n))
    }

    /// Compiles an already-built lineage to a circuit, for callers (such as
    /// plan-then-execute solvers) that cache the grounding separately.
    pub fn from_lineage(lineage: Lineage) -> CompiledWfomc {
        Self::from_lineage_guarded(lineage, &wfomc_guard::Guard::unarmed())
            .expect("an unarmed guard cannot interrupt")
    }

    /// [`from_lineage`](Self::from_lineage) under a resource
    /// [`Guard`](wfomc_guard::Guard): the circuit compilation ticks the
    /// guard, so deadlines, work caps and cancellation interrupt it; the
    /// partial circuit is discarded and the call can be retried.
    pub fn from_lineage_guarded(
        lineage: Lineage,
        guard: &wfomc_guard::Guard,
    ) -> Result<CompiledWfomc, wfomc_guard::Interrupt> {
        let tseitin = to_cnf(&lineage.prop, &VarWeights::ones(lineage.num_vars()));
        let compiled = CompiledWmc::compile_guarded(&tseitin.cnf, guard)?;
        Ok(CompiledWfomc {
            lineage,
            tseitin,
            compiled,
        })
    }

    /// Reassembles a compiled grounding from a decoded lineage and circuit,
    /// skipping the expensive compilation step. The Tseitin transform is
    /// deterministic and linear, so it is recomputed rather than persisted;
    /// its variable universe must match the circuit's, otherwise the pair
    /// cannot have come from [`from_lineage`](Self::from_lineage) and `None`
    /// is returned.
    pub fn from_parts(lineage: Lineage, compiled: CompiledWmc) -> Option<CompiledWfomc> {
        let tseitin = to_cnf(&lineage.prop, &VarWeights::ones(lineage.num_vars()));
        if compiled.num_vars() != tseitin.cnf.num_vars {
            return None;
        }
        Some(CompiledWfomc {
            lineage,
            tseitin,
            compiled,
        })
    }

    /// Symmetric WFOMC under a weight function — one circuit evaluation, no
    /// recompilation.
    pub fn wfomc(&self, weights: &Weights) -> Weight {
        let var_weights = self.lineage.symmetric_weights(weights);
        self.compiled.wmc(&self.tseitin.weights_for(&var_weights))
    }

    /// [`wfomc`](Self::wfomc) in an arbitrary [`Algebra`] — the same
    /// compiled circuit evaluated in the ring. Tseitin definition variables
    /// lie beyond the per-atom weight table and therefore default to the
    /// pair `(1, 1)`, which is exactly the count-preserving weighting.
    pub fn wfomc_in<A: Algebra>(&self, algebra: &A, weights: &AlgebraWeights<A>) -> A::Elem {
        let var_weights = self.lineage.weights_in(algebra, weights);
        self.compiled.wmc_in(algebra, &var_weights)
    }

    /// Asymmetric WFOMC: every ground tuple gets its own weight pair from
    /// the callback, evaluated on the same compiled circuit.
    pub fn wfomc_asymmetric(
        &self,
        weight_of: impl FnMut(&GroundAtom) -> (Weight, Weight),
    ) -> Weight {
        let var_weights = self.lineage.asymmetric_weights(weight_of);
        self.compiled.wmc(&self.tseitin.weights_for(&var_weights))
    }

    /// The underlying lineage (ground atoms and propositional formula).
    pub fn lineage(&self) -> &Lineage {
        &self.lineage
    }

    /// The compiled circuit with its statistics.
    pub fn compiled(&self) -> &CompiledWmc {
        &self.compiled
    }
}

/// Symmetric WFOMC via the default (DPLL) grounded pipeline.
pub fn wfomc(formula: &Formula, vocabulary: &Vocabulary, n: usize, weights: &Weights) -> Weight {
    GroundSolver::new().wfomc(formula, vocabulary, n, weights)
}

/// FOMC via the default grounded pipeline.
pub fn fomc(formula: &Formula, n: usize) -> Weight {
    GroundSolver::new().fomc(formula, n)
}

/// Probability via the default grounded pipeline.
pub fn probability(
    formula: &Formula,
    vocabulary: &Vocabulary,
    n: usize,
    weights: &Weights,
) -> Weight {
    GroundSolver::new().probability(formula, vocabulary, n, weights)
}

/// Asymmetric WFOMC via the default grounded pipeline.
pub fn wfomc_asymmetric(
    formula: &Formula,
    vocabulary: &Vocabulary,
    n: usize,
    weight_of: impl FnMut(&GroundAtom) -> (Weight, Weight),
) -> Weight {
    GroundSolver::new().wfomc_asymmetric(formula, vocabulary, n, weight_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::brute_force_wfomc;
    use wfomc_logic::builders::*;
    use wfomc_logic::catalog;
    use wfomc_logic::weights::{weight_int, weight_pow, weight_ratio};

    #[test]
    fn grounded_pipeline_matches_brute_force_on_catalog() {
        let cases: Vec<Formula> = vec![
            catalog::forall_exists_edge(),
            catalog::exists_unary(),
            catalog::table1_sentence(),
            catalog::spouse_constraint(),
            catalog::qs4(),
        ];
        let weights = Weights::from_ints([
            ("R", 2, 1),
            ("S", 1, 3),
            ("T", 2, 2),
            ("Spouse", 1, 1),
            ("Female", 2, 1),
            ("Male", 1, 2),
        ]);
        for f in cases {
            let voc = f.vocabulary();
            for n in 0..=2 {
                let brute = brute_force_wfomc(&f, &voc, n, &weights);
                let grounded = wfomc(&f, &voc, n, &weights);
                assert_eq!(brute, grounded, "mismatch for {f} at n={n}");
            }
        }
    }

    #[test]
    fn fomc_closed_forms() {
        // (2ⁿ − 1)ⁿ for ∀x∃y R(x,y).
        for n in 0..=3 {
            assert_eq!(
                fomc(&catalog::forall_exists_edge(), n),
                weight_pow(&weight_int((1 << n) - 1), n)
            );
        }
    }

    #[test]
    fn both_backends_agree() {
        let f = catalog::table1_sentence();
        let voc = f.vocabulary();
        let weights = Weights::from_ints([("R", 1, 2), ("S", 3, 1), ("T", 1, 1)]);
        let dpll = GroundSolver::with_backend(WmcBackend::Dpll).wfomc(&f, &voc, 3, &weights);
        let enumerate =
            GroundSolver::with_backend(WmcBackend::Enumerate).wfomc(&f, &voc, 2, &weights);
        let dpll_small = GroundSolver::with_backend(WmcBackend::Dpll).wfomc(&f, &voc, 2, &weights);
        assert_eq!(enumerate, dpll_small);
        // n=3 only via DPLL (15 variables is still fine for enumeration, but
        // the point is the pipeline works at sizes enumeration of *structures*
        // cannot reach).
        assert!(dpll > weight_int(0));
    }

    #[test]
    fn probability_of_tautology_is_one() {
        let f = forall(["x"], or(vec![atom("R", &["x"]), not(atom("R", &["x"]))]));
        let voc = f.vocabulary();
        let w = Weights::from_ints([("R", 1, 3)]);
        assert_eq!(probability(&f, &voc, 3, &w), weight_int(1));
    }

    #[test]
    fn probability_matches_independent_tuple_semantics() {
        // Pr(∃y S(y)) with p = 1/3 per tuple over n = 2: 1 − (2/3)² = 5/9.
        let f = catalog::exists_unary();
        let voc = f.vocabulary();
        let mut w = Weights::ones();
        w.set_probability("S", weight_ratio(1, 3));
        assert_eq!(probability(&f, &voc, 2, &w), weight_ratio(5, 9));
    }

    #[test]
    fn asymmetric_weights_reproduce_table1_generality() {
        // Give S(i,j) weight i+j+1 (present) and 1 (absent); check against a
        // hand-rolled enumeration through the brute-force structure path by
        // using weights that depend only on the tuple.
        let f = catalog::exists_unary();
        let voc = f.vocabulary();
        let n = 3;
        let asym = wfomc_asymmetric(&f, &voc, n, |atom| {
            (weight_int(atom.tuple[0] as i64 + 1), weight_int(1))
        });
        // Manual: WFOMC(∃y S(y)) = Π(w_i + 1) − Π(1) = (2·3·4) − 1 = 23.
        assert_eq!(asym, weight_int(23));
    }

    #[test]
    fn compiled_pipeline_matches_per_call_pipeline() {
        let f = catalog::table1_sentence();
        let voc = f.vocabulary();
        let compiled = CompiledWfomc::compile(&f, &voc, 2);
        // One compilation, several weight functions.
        for (r, s, t) in [(1, 1, 1), (2, 3, 1), (5, 1, 7), (0, 2, 2)] {
            let w = Weights::from_ints([("R", r, 1), ("S", s, 1), ("T", t, 2)]);
            assert_eq!(
                compiled.wfomc(&w),
                wfomc(&f, &voc, 2, &w),
                "weights ({r},{s},{t})"
            );
        }
        assert!(compiled.compiled().stats().nodes > 2);
        assert_eq!(compiled.lineage().num_vars(), voc.num_ground_tuples(2));
    }

    #[test]
    fn compiled_pipeline_supports_asymmetric_weights() {
        let f = catalog::exists_unary();
        let voc = f.vocabulary();
        let compiled = CompiledWfomc::compile(&f, &voc, 3);
        let asym =
            compiled.wfomc_asymmetric(|atom| (weight_int(atom.tuple[0] as i64 + 1), weight_int(1)));
        // Same closed form as the per-call asymmetric test: (2·3·4) − 1.
        assert_eq!(asym, weight_int(23));
        // And the same circuit still answers the symmetric query.
        assert_eq!(
            compiled.wfomc(&Weights::ones()),
            wfomc(&f, &voc, 3, &Weights::ones())
        );
    }

    #[test]
    fn circuit_backend_agrees_through_the_ground_solver() {
        let f = catalog::table1_sentence();
        let voc = f.vocabulary();
        let weights = Weights::from_ints([("R", 1, 2), ("S", 3, 1), ("T", 1, 1)]);
        let dpll = GroundSolver::with_backend(WmcBackend::Dpll).wfomc(&f, &voc, 2, &weights);
        let circuit = GroundSolver::with_backend(WmcBackend::Circuit).wfomc(&f, &voc, 2, &weights);
        assert_eq!(dpll, circuit);
    }

    #[test]
    fn spouse_constraint_counts() {
        // Cross-check the MLN-style constraint against brute force at n = 2
        // with nontrivial weights.
        let f = catalog::spouse_constraint();
        let voc = f.vocabulary();
        let w = Weights::from_ints([("Spouse", 1, 1), ("Female", 3, 1), ("Male", 1, 4)]);
        assert_eq!(wfomc(&f, &voc, 2, &w), brute_force_wfomc(&f, &voc, 2, &w));
    }
}
