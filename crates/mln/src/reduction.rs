//! Example 1.2 — the reduction from MLN inference to symmetric WFOMC.
//!
//! Every soft constraint `(w, ϕ(x̄))` is replaced by
//!
//! * the hard constraint `∀x̄ (R(x̄) ∨ ϕ(x̄))`, and
//! * a fresh relation `R` of arity `|x̄|` whose tuples all carry the symmetric
//!   weight `1/(w − 1)` (absent-weight 1).
//!
//! For each grounding `ā`: if `ϕ(ā)` is false, `R(ā)` is forced true and
//! contributes `1/(w−1)`; if `ϕ(ā)` is true, `R(ā)` is free and contributes
//! `1 + 1/(w−1) = w/(w−1)`. The ratio is `1 : w`, exactly the original soft
//! constraint, up to the global factor `(w−1)^{#groundings}` per constraint.
//! Consequently `Pr_MLN(Φ) = Pr(Φ | Γ)` over the symmetric tuple-independent
//! distribution, where Γ is the conjunction of all hard constraints — a pair
//! of symmetric WFOMC computations.
//!
//! Soft constraints with weight exactly 1 are dropped (they do not affect the
//! distribution and the transformation would divide by zero). Soft weight 0 is
//! allowed (the auxiliary weight is −1 — negative weights are one of the
//! reasons the paper insists symmetric WFOMC must handle them).

use num_traits::One;

use wfomc_logic::syntax::Formula;
use wfomc_logic::vocabulary::Vocabulary;
use wfomc_logic::weights::{weight_pow, Weight, Weights};

use crate::network::{ConstraintWeight, MarkovLogicNetwork, MlnError};

/// The symmetric-WFOMC form of an MLN.
#[derive(Clone, Debug)]
pub struct WfomcReduction {
    /// Γ — the conjunction of all hard constraints (original and introduced).
    pub hard_sentence: Formula,
    /// The vocabulary: original relations plus one auxiliary relation per
    /// reduced soft constraint.
    pub vocabulary: Vocabulary,
    /// Symmetric weights: auxiliary relations carry `(1/(w−1), 1)`; original
    /// relations carry `(1, 1)`.
    pub weights: Weights,
    /// Per-constraint `(w − 1, arity)` pairs, from which the global scaling
    /// factor `Π (w−1)^{n^arity}` relating WFOMC to the MLN partition function
    /// is computed.
    pub scaling: Vec<(Weight, usize)>,
}

impl WfomcReduction {
    /// The factor `Π_i (wᵢ − 1)^{n^{arityᵢ}}` such that
    /// `Z_MLN(n) = factor · WFOMC(Γ, n, weights)`.
    pub fn scaling_factor(&self, n: usize) -> Weight {
        let mut factor = Weight::one();
        for (base, arity) in &self.scaling {
            factor *= weight_pow(base, n.pow(*arity as u32));
        }
        factor
    }
}

/// Applies the Example 1.2 reduction to an MLN.
pub fn reduce_to_wfomc(mln: &MarkovLogicNetwork) -> Result<WfomcReduction, MlnError> {
    let mut vocabulary = mln.vocabulary();
    let mut weights = Weights::ones();
    let mut hard_parts: Vec<Formula> = Vec::new();
    let mut scaling = Vec::new();

    for constraint in mln.constraints() {
        match &constraint.weight {
            ConstraintWeight::Hard => {
                hard_parts.push(Formula::forall_many(
                    constraint.variables.clone(),
                    constraint.formula.clone(),
                ));
            }
            ConstraintWeight::Soft(w) => {
                if w == &Weight::one() {
                    // Weight-1 constraints are vacuous.
                    continue;
                }
                let arity = constraint.variables.len();
                let aux = vocabulary.add_fresh("MlnAux", arity);
                let denominator = w - Weight::one();
                weights.set(aux.name(), Weight::one() / &denominator, Weight::one());
                scaling.push((denominator, arity));
                let aux_atom = Formula::atom(
                    aux,
                    constraint
                        .variables
                        .iter()
                        .map(|v| wfomc_logic::term::Term::Var(v.clone()))
                        .collect(),
                );
                hard_parts.push(Formula::forall_many(
                    constraint.variables.clone(),
                    Formula::or(aux_atom, constraint.formula.clone()),
                ));
            }
        }
    }

    Ok(WfomcReduction {
        hard_sentence: Formula::and_all(hard_parts),
        vocabulary,
        weights,
        scaling,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_semantics::partition_function_brute;
    use wfomc_ground::wfomc as ground_wfomc;
    use wfomc_logic::builders::*;
    use wfomc_logic::weights::{weight_int, weight_ratio};

    #[test]
    fn reduction_structure_matches_example_1_2() {
        // The soft spouse constraint with weight 3 becomes a hard clause plus
        // an auxiliary relation with weight 1/2 (probability 1/3).
        let mut mln = MarkovLogicNetwork::new();
        mln.add_soft(
            weight_int(3),
            implies(
                and(vec![atom("Spouse", &["x", "y"]), atom("Female", &["x"])]),
                atom("Male", &["y"]),
            ),
        );
        let red = reduce_to_wfomc(&mln).unwrap();
        assert_eq!(red.vocabulary.len(), 4);
        let aux = red
            .vocabulary
            .iter()
            .find(|p| p.name().starts_with("MlnAux"))
            .unwrap();
        assert_eq!(aux.arity(), 2);
        let pair = red.weights.pair(aux.name());
        assert_eq!(pair.pos, weight_ratio(1, 2));
        assert_eq!(pair.to_probability().unwrap(), weight_ratio(1, 3));
        assert!(red.hard_sentence.is_sentence());
    }

    #[test]
    fn partition_function_matches_ground_semantics() {
        let mut mln = MarkovLogicNetwork::new();
        mln.add_soft(
            weight_int(3),
            implies(
                and(vec![atom("Spouse", &["x", "y"]), atom("Female", &["x"])]),
                atom("Male", &["y"]),
            ),
        );
        let red = reduce_to_wfomc(&mln).unwrap();
        for n in 0..=2 {
            let z_direct = partition_function_brute(&mln, n);
            let z_reduced = red.scaling_factor(n)
                * ground_wfomc(&red.hard_sentence, &red.vocabulary, n, &red.weights);
            assert_eq!(z_direct, z_reduced, "n = {n}");
        }
    }

    #[test]
    fn weight_one_constraints_are_dropped() {
        let mut mln = MarkovLogicNetwork::new();
        mln.add_soft(weight_int(1), atom("R", &["x"]));
        let red = reduce_to_wfomc(&mln).unwrap();
        assert_eq!(red.hard_sentence, Formula::Top);
        assert!(red.scaling.is_empty());
    }

    #[test]
    fn fractional_and_zero_weights_are_supported() {
        // Weight 1/2 → auxiliary weight 1/(1/2 − 1) = −2; weight 0 → −1.
        let mut mln = MarkovLogicNetwork::new();
        mln.add_soft(weight_ratio(1, 2), atom("R", &["x"]));
        mln.add_soft(weight_int(0), atom("S", &["x"]));
        let red = reduce_to_wfomc(&mln).unwrap();
        for n in 0..=3 {
            let z_direct = partition_function_brute(&mln, n);
            let z_reduced = red.scaling_factor(n)
                * ground_wfomc(&red.hard_sentence, &red.vocabulary, n, &red.weights);
            assert_eq!(z_direct, z_reduced, "n = {n}");
        }
    }

    #[test]
    fn hard_constraints_pass_through() {
        let mut mln = MarkovLogicNetwork::new();
        mln.add_hard(not(atom("Spouse", &["x", "x"])));
        mln.add_soft(weight_int(2), atom("Female", &["x"]));
        let red = reduce_to_wfomc(&mln).unwrap();
        for n in 0..=2 {
            let z_direct = partition_function_brute(&mln, n);
            let z_reduced = red.scaling_factor(n)
                * ground_wfomc(&red.hard_sentence, &red.vocabulary, n, &red.weights);
            assert_eq!(z_direct, z_reduced, "n = {n}");
        }
    }
}
