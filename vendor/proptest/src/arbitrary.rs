//! The `any::<T>()` entry point for type-directed generation.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range generation strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_any_hits_both_values() {
        let mut rng = TestRng::for_test("any-bool");
        let strat = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..100 {
            seen[usize::from(strat.generate(&mut rng))] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
