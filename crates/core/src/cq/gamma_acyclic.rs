//! Theorem 3.6 — PTIME symmetric WFOMC for γ-acyclic conjunctive queries.
//!
//! The algorithm follows Fagin's reduction rules exactly as listed in the
//! proof, maintaining tuple probabilities and per-variable domain sizes:
//!
//! * **(a)** an isolated node `x` (in exactly one edge) is deleted and the
//!   edge's probability becomes `1 − (1 − p)^{n_x}`;
//! * **(b)** a singleton edge `R(x)` is deleted by conditioning on `|R| = k`:
//!   `Pr(Q) = Σ_k C(n_x, k) p^k (1−p)^{n_x−k} · Pr(residual with n_x := k)`;
//! * **(c)** an empty edge `R()` multiplies the result by `p_R`;
//! * **(d)** two edges over the same nodes merge with probability `p·p'`;
//! * **(e)** two edge-equivalent nodes merge into one with domain `n_x·n_y`.
//!
//! Rule (a) is given priority over rule (b) so that a singleton edge whose
//! variable occurs nowhere else is resolved without branching, and rule (b)'s
//! recursion is memoized on the residual query shape (which is what makes the
//! linear-chain case of Example 3.10 polynomial rather than exponential).
//!
//! The computation is done in probability space; the WFOMC entry point
//! converts weights to probabilities (`p = w/(w+w̄)`) and multiplies back the
//! normalization `Π_R (w_R + w̄_R)^{#tuples}`.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use num_traits::{One, Zero};

use wfomc_guard::Guard;
use wfomc_logic::cq::ConjunctiveQuery;
use wfomc_logic::term::Variable;
use wfomc_logic::weights::{weight_pow, Weight, Weights};

use crate::combinatorics::binomial_weight;
use crate::error::{LiftError, SolveError};

/// Guard phase name for the reduction loops.
const PHASE: &str = "cq.reduce";

/// Demotes a [`SolveError`] produced under an unarmed guard back to the
/// [`LiftError`] it wraps (an unarmed guard cannot interrupt).
fn demote(e: SolveError) -> LiftError {
    match e {
        SolveError::Lift(err) => err,
        _ => unreachable!("an unarmed guard cannot interrupt"),
    }
}

/// Symmetric WFOMC of a γ-acyclic conjunctive query over a domain of size `n`.
///
/// The count is taken over the query's own vocabulary; callers with a larger
/// vocabulary multiply the usual `(w + w̄)^{n^arity}` factors themselves (the
/// [`crate::solver::Solver`] does).
pub fn gamma_acyclic_wfomc(
    query: &ConjunctiveQuery,
    n: usize,
    weights: &Weights,
) -> Result<Weight, LiftError> {
    gamma_acyclic_wfomc_memo(query, n, weights, &mut CqMemo::default())
}

/// As [`gamma_acyclic_wfomc`], with an externally owned memo table.
///
/// The memo key captures the residual query shape *including* the tuple
/// probabilities and domain sizes, so one [`CqMemo`] is sound to share across
/// calls at different domain sizes and weight functions — this is what a
/// [`crate::plan::Plan`] holds so repeated counts on one query share the
/// reduction work of rule (b)'s recursion.
pub fn gamma_acyclic_wfomc_memo(
    query: &ConjunctiveQuery,
    n: usize,
    weights: &Weights,
    memo: &mut CqMemo,
) -> Result<Weight, LiftError> {
    gamma_acyclic_wfomc_memo_guarded(query, n, weights, memo, &Guard::unarmed()).map_err(demote)
}

/// As [`gamma_acyclic_wfomc_memo`], under a resource [`Guard`]: the guard is
/// ticked once per reduction step, so deadlines, work caps and cancellation
/// interrupt rule (b)'s recursion. An interrupted call leaves the memo
/// holding only *completed* sub-reductions, so retrying on the same memo is
/// sound and resumes the saved work.
pub fn gamma_acyclic_wfomc_memo_guarded(
    query: &ConjunctiveQuery,
    n: usize,
    weights: &Weights,
    memo: &mut CqMemo,
    guard: &Guard,
) -> Result<Weight, SolveError> {
    let mut probabilities = BTreeMap::new();
    let mut normalization = Weight::one();
    for p in query.vocabulary().iter() {
        let pair = weights.pair_of(p);
        let total = pair.total();
        if total.is_zero() {
            return Err(LiftError::NoProbabilityNormalization {
                predicate: p.name().to_string(),
            }
            .into());
        }
        probabilities.insert(p.name().to_string(), &pair.pos / &total);
        normalization *= weight_pow(&total, p.num_ground_tuples(n));
    }
    let domains = query
        .variables()
        .into_iter()
        .map(|v| (v, n))
        .collect::<BTreeMap<_, _>>();
    let prob =
        gamma_acyclic_probability_multi_memo_guarded(query, &domains, &probabilities, memo, guard)?;
    Ok(prob * normalization)
}

/// Probability that a γ-acyclic conjunctive query is true over a domain of
/// size `n`, when each tuple of relation `R` is present independently with
/// probability `probabilities[R]` (missing entries default to probability
/// 1/2, i.e. the unweighted case).
pub fn gamma_acyclic_probability(
    query: &ConjunctiveQuery,
    n: usize,
    probabilities: &BTreeMap<String, Weight>,
) -> Result<Weight, LiftError> {
    let domains = query
        .variables()
        .into_iter()
        .map(|v| (v, n))
        .collect::<BTreeMap<_, _>>();
    gamma_acyclic_probability_multi(query, &domains, probabilities)
}

/// The generalized form used in the proof of Theorem 3.6: every variable `xᵢ`
/// ranges over its own domain of size `domains[xᵢ]`.
pub fn gamma_acyclic_probability_multi(
    query: &ConjunctiveQuery,
    domains: &BTreeMap<Variable, usize>,
    probabilities: &BTreeMap<String, Weight>,
) -> Result<Weight, LiftError> {
    gamma_acyclic_probability_multi_memo(query, domains, probabilities, &mut CqMemo::default())
}

/// As [`gamma_acyclic_probability_multi`], with an externally owned memo
/// table (see [`gamma_acyclic_wfomc_memo`] for why sharing it is sound).
pub fn gamma_acyclic_probability_multi_memo(
    query: &ConjunctiveQuery,
    domains: &BTreeMap<Variable, usize>,
    probabilities: &BTreeMap<String, Weight>,
    memo: &mut CqMemo,
) -> Result<Weight, LiftError> {
    gamma_acyclic_probability_multi_memo_guarded(
        query,
        domains,
        probabilities,
        memo,
        &Guard::unarmed(),
    )
    .map_err(demote)
}

/// As [`gamma_acyclic_probability_multi_memo`], under a resource [`Guard`]
/// (see [`gamma_acyclic_wfomc_memo_guarded`] for the interrupt contract).
pub fn gamma_acyclic_probability_multi_memo_guarded(
    query: &ConjunctiveQuery,
    domains: &BTreeMap<Variable, usize>,
    probabilities: &BTreeMap<String, Weight>,
    memo: &mut CqMemo,
    guard: &Guard,
) -> Result<Weight, SolveError> {
    wfomc_guard::failpoint(PHASE)?;
    if !query.is_self_join_free() {
        return Err(LiftError::HasSelfJoin.into());
    }
    if !query.is_constant_free() {
        return Err(LiftError::NotAConjunctiveQuery.into());
    }
    let vars = query.variables();
    let mut state = State {
        edges: Vec::new(),
        domains: Vec::new(),
    };
    for v in &vars {
        let size = *domains.get(v).ok_or_else(|| {
            LiftError::Internal(format!("no domain size supplied for variable {v}"))
        })?;
        state.domains.push(size);
    }
    let half = Weight::new(1.into(), 2.into());
    for atom in &query.atoms {
        let p = probabilities
            .get(atom.predicate.name())
            .cloned()
            .unwrap_or_else(|| half.clone());
        let vars_of_atom: BTreeSet<usize> = atom
            .variables()
            .iter()
            .map(|v| vars.iter().position(|u| u == v).expect("indexed"))
            .collect();
        state.edges.push(Edge {
            prob: p,
            vars: vars_of_atom,
        });
    }
    reduce(&state, memo, guard)
}

/// A memo table for the γ-acyclic reduction, reusable across calls (the key
/// includes probabilities and domain sizes, so no invalidation is needed).
#[derive(Clone, Debug, Default)]
pub struct CqMemo {
    map: HashMap<Key, Weight>,
    /// Lifetime lookup hits — always-on accounting (the memo is only touched
    /// under `&mut`, so these are plain integers, not atomics).
    hits: u64,
    /// Lifetime lookup misses (each one ran a reduction rule).
    misses: u64,
}

impl CqMemo {
    /// Number of memoized residual query shapes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime `(hits, misses)` of the memo's lookups. Always-on — no `obs`
    /// feature needed.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// A copy sharing this memo's entries but with zeroed hit/miss tallies —
    /// what batch workers clone in, so folding their tallies back through
    /// [`absorb`](Self::absorb) counts each lookup exactly once.
    pub fn clone_for_worker(&self) -> CqMemo {
        CqMemo {
            map: self.map.clone(),
            hits: 0,
            misses: 0,
        }
    }

    /// Merges another memo's entries and hit/miss tallies into this one.
    /// Keys are pure functions of the residual query shape (probabilities
    /// and domain sizes included), so divergent entries cannot exist and the
    /// merge is a plain union — this is what lets batch evaluation clone a
    /// memo into each worker and fold the workers' discoveries back in at
    /// the end.
    pub fn absorb(&mut self, other: CqMemo) {
        self.hits += other.hits;
        self.misses += other.misses;
        if self.map.is_empty() {
            self.map = other.map;
        } else {
            self.map.extend(other.map);
        }
    }
}

#[derive(Clone, Debug)]
struct Edge {
    prob: Weight,
    vars: BTreeSet<usize>,
}

#[derive(Clone, Debug)]
struct State {
    edges: Vec<Edge>,
    domains: Vec<usize>,
}

/// Memoization key: edges with variables renumbered by first occurrence,
/// paired with the domain sizes of those variables in that order.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Key {
    edges: Vec<(Weight, Vec<usize>)>,
    domains: Vec<usize>,
}

impl State {
    fn key(&self) -> Key {
        let mut renumber: BTreeMap<usize, usize> = BTreeMap::new();
        let mut domains = Vec::new();
        let mut edges = Vec::new();
        for e in &self.edges {
            let mut vars = Vec::new();
            for &v in &e.vars {
                let next = renumber.len();
                let id = *renumber.entry(v).or_insert(next);
                if id == domains.len() {
                    domains.push(self.domains[v]);
                }
                vars.push(id);
            }
            vars.sort_unstable();
            edges.push((e.prob.clone(), vars));
        }
        Key { edges, domains }
    }

    /// Edges containing a given variable.
    fn edges_of(&self, var: usize) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.vars.contains(&var))
            .map(|(i, _)| i)
            .collect()
    }

    fn active_vars(&self) -> BTreeSet<usize> {
        self.edges
            .iter()
            .flat_map(|e| e.vars.iter().copied())
            .collect()
    }
}

fn reduce(state: &State, memo: &mut CqMemo, guard: &Guard) -> Result<Weight, SolveError> {
    if state.edges.is_empty() {
        return Ok(Weight::one());
    }
    // A variable with an empty domain occurring in some edge makes the query
    // false (the existential quantifier has no witnesses).
    if state.active_vars().iter().any(|&v| state.domains[v] == 0) {
        return Ok(Weight::zero());
    }
    let key = state.key();
    if let Some(hit) = memo.map.get(&key) {
        memo.hits += 1;
        wfomc_obs::metrics::CQ_MEMO_HITS.inc();
        return Ok(hit.clone());
    }
    memo.misses += 1;
    wfomc_obs::metrics::CQ_MEMO_MISSES.inc();
    guard.tick(PHASE, 1)?;

    // The memo only ever records *completed* reductions: an interrupt below
    // propagates before this insert, so a cancelled solve leaves the memo
    // consistent and a retry resumes from the finished sub-problems.
    let result = apply_rule(state, memo, guard)?;
    memo.map.insert(key, result.clone());
    Ok(result)
}

fn apply_rule(state: &State, memo: &mut CqMemo, guard: &Guard) -> Result<Weight, SolveError> {
    // Rule (c): empty edge.
    if let Some(i) = state.edges.iter().position(|e| e.vars.is_empty()) {
        let mut next = state.clone();
        let edge = next.edges.remove(i);
        return Ok(edge.prob * reduce(&next, memo, guard)?);
    }

    // Rule (d): duplicate edges.
    for i in 0..state.edges.len() {
        for j in (i + 1)..state.edges.len() {
            if state.edges[i].vars == state.edges[j].vars {
                let mut next = state.clone();
                let removed = next.edges.remove(j);
                next.edges[i].prob = &next.edges[i].prob * &removed.prob;
                return reduce(&next, memo, guard);
            }
        }
    }

    // Rule (a): isolated node (occurs in exactly one edge).
    for &v in &state.active_vars() {
        let containing = state.edges_of(v);
        if containing.len() == 1 {
            let e = containing[0];
            let mut next = state.clone();
            next.edges[e].vars.remove(&v);
            let p = next.edges[e].prob.clone();
            let absent = weight_pow(&(Weight::one() - &p), state.domains[v]);
            next.edges[e].prob = Weight::one() - absent;
            return reduce(&next, memo, guard);
        }
    }

    // Rule (e): edge-equivalent nodes.
    let active: Vec<usize> = state.active_vars().into_iter().collect();
    for (idx, &a) in active.iter().enumerate() {
        for &b in &active[idx + 1..] {
            let ea = state.edges_of(a);
            let eb = state.edges_of(b);
            if ea == eb {
                let mut next = state.clone();
                for e in next.edges.iter_mut() {
                    e.vars.remove(&b);
                }
                next.domains[a] = state.domains[a] * state.domains[b];
                return reduce(&next, memo, guard);
            }
        }
    }

    // Rule (b): singleton edge whose variable also occurs elsewhere.
    if let Some(i) = state.edges.iter().position(|e| e.vars.len() == 1) {
        let v = *state.edges[i].vars.iter().next().expect("singleton");
        let p = state.edges[i].prob.clone();
        let n_v = state.domains[v];
        let mut residual = state.clone();
        residual.edges.remove(i);
        let mut total = Weight::zero();
        for k in 0..=n_v {
            let mut branch = residual.clone();
            branch.domains[v] = k;
            let sub = reduce(&branch, memo, guard)?;
            if sub.is_zero() {
                continue;
            }
            let coeff = binomial_weight(n_v, k)
                * weight_pow(&p, k)
                * weight_pow(&(Weight::one() - &p), n_v - k);
            total += coeff * sub;
        }
        return Ok(total);
    }

    Err(LiftError::NotGammaAcyclic.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_ground::{probability as ground_probability, wfomc as ground_wfomc};
    use wfomc_logic::catalog;
    use wfomc_logic::weights::{weight_int, weight_ratio};

    fn uniform_probs(query: &ConjunctiveQuery, p: Weight) -> BTreeMap<String, Weight> {
        query
            .vocabulary()
            .iter()
            .map(|pred| (pred.name().to_string(), p.clone()))
            .collect()
    }

    #[test]
    fn single_edge_query() {
        // ∃x∃y R(x,y) with p = 1/2 over n = 2: 1 − (1/2)⁴ = 15/16.
        let q = catalog::chain_query(1);
        let probs = uniform_probs(&q, weight_ratio(1, 2));
        let prob = gamma_acyclic_probability(&q, 2, &probs).unwrap();
        assert_eq!(prob, weight_ratio(15, 16));
    }

    #[test]
    fn chain_queries_match_ground_truth() {
        for m in 1..=3 {
            let q = catalog::chain_query(m);
            let f = q.to_formula();
            let voc = f.vocabulary();
            let mut weights = Weights::ones();
            for (i, pred) in voc.iter().enumerate() {
                weights.set(pred.name(), weight_int(i as i64 + 1), weight_int(2));
            }
            for n in 0..=2 {
                let lifted = gamma_acyclic_wfomc(&q, n, &weights).unwrap();
                let grounded = ground_wfomc(&f, &voc, n, &weights);
                assert_eq!(lifted, grounded, "chain m={m}, n={n}");
            }
        }
    }

    #[test]
    fn star_query_matches_ground_truth() {
        let q = catalog::star_query(3);
        let f = q.to_formula();
        let voc = f.vocabulary();
        let weights = Weights::from_ints([("R1", 1, 1), ("R2", 2, 1), ("R3", 1, 3)]);
        for n in 1..=2 {
            let lifted = gamma_acyclic_wfomc(&q, n, &weights).unwrap();
            let grounded = ground_wfomc(&f, &voc, n, &weights);
            assert_eq!(lifted, grounded, "n = {n}");
        }
    }

    #[test]
    fn table1_dual_cq_matches_ground_truth() {
        // ∃x∃y (R(x) ∧ S(x,y) ∧ T(y)) — the intro's PTIME example.
        let q = catalog::table1_dual_cq();
        let f = q.to_formula();
        let voc = f.vocabulary();
        let weights = Weights::from_ints([("R", 2, 1), ("S", 1, 1), ("T", 1, 2)]);
        for n in 0..=2 {
            let lifted = gamma_acyclic_wfomc(&q, n, &weights).unwrap();
            let grounded = ground_wfomc(&f, &voc, n, &weights);
            assert_eq!(lifted, grounded, "n = {n}");
        }
        // Probability form against the grounded probability at n = 3.
        let probs = uniform_probs(&q, weight_ratio(1, 2));
        let lifted_prob = gamma_acyclic_probability(&q, 3, &probs).unwrap();
        let grounded_prob = ground_probability(&f, &voc, 3, &Weights::ones());
        assert_eq!(lifted_prob, grounded_prob);
    }

    #[test]
    fn typed_cycle_is_rejected() {
        let q = catalog::typed_cycle_cq(3);
        let err = gamma_acyclic_wfomc(&q, 3, &Weights::ones()).unwrap_err();
        assert_eq!(err, LiftError::NotGammaAcyclic);
    }

    #[test]
    fn self_join_is_rejected() {
        let q =
            wfomc_logic::cq::ConjunctiveQuery::from_formula(&catalog::untyped_triangles()).unwrap();
        let err = gamma_acyclic_wfomc(&q, 3, &Weights::ones()).unwrap_err();
        assert_eq!(err, LiftError::HasSelfJoin);
    }

    #[test]
    fn skolem_style_weights_are_rejected_cleanly() {
        let q = catalog::chain_query(1);
        let weights = Weights::from_ints([("R1", 1, -1)]);
        let err = gamma_acyclic_wfomc(&q, 2, &weights).unwrap_err();
        assert!(matches!(err, LiftError::NoProbabilityNormalization { .. }));
    }

    #[test]
    fn multi_domain_generalization() {
        // Chain of length 1 with |x0| = 2, |x1| = 3 and p = 1/3:
        // Pr = 1 − (2/3)⁶.
        let q = catalog::chain_query(1);
        let vars = q.variables();
        let domains: BTreeMap<_, _> = vec![(vars[0].clone(), 2), (vars[1].clone(), 3)]
            .into_iter()
            .collect();
        let probs = uniform_probs(&q, weight_ratio(1, 3));
        let prob = gamma_acyclic_probability_multi(&q, &domains, &probs).unwrap();
        let expected = Weight::one() - weight_pow(&weight_ratio(2, 3), 6);
        assert_eq!(prob, expected);
    }

    #[test]
    fn zero_domain_makes_query_false() {
        let q = catalog::chain_query(2);
        let vars = q.variables();
        let mut domains: BTreeMap<_, _> = vars.iter().map(|v| (v.clone(), 2)).collect();
        domains.insert(vars[1].clone(), 0);
        let probs = uniform_probs(&q, weight_ratio(1, 2));
        assert_eq!(
            gamma_acyclic_probability_multi(&q, &domains, &probs).unwrap(),
            Weight::zero()
        );
    }

    #[test]
    fn memoization_keeps_long_chains_fast() {
        // A length-6 chain at n = 12 explodes without memoization; with it the
        // computation is effectively instant. Cross-check against the closed
        // recurrence of Example 3.10 (chain.rs) elsewhere; here we just assert
        // it terminates and produces a probability in (0, 1).
        let q = catalog::chain_query(6);
        let probs = uniform_probs(&q, weight_ratio(1, 10));
        let p = gamma_acyclic_probability(&q, 12, &probs).unwrap();
        assert!(p > Weight::zero() && p < Weight::one());
    }
}
