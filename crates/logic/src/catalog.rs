//! A catalog of every sentence and query that appears in the paper, built
//! programmatically so examples, tests and benchmarks all agree on the exact
//! syntax.
//!
//! * Table 1 / intro identities: [`table1_sentence`], [`table1_dual_cq`],
//!   [`forall_exists_edge`], [`exists_unary`];
//! * Example 1.1 (MLN soft constraint): [`spouse_constraint`];
//! * Theorem 3.7: [`qs4`];
//! * Table 2 (open problems): [`untyped_triangles`], [`typed_triangles`],
//!   [`k_cycle`], [`transitivity`], [`homophily`], [`extension_axiom`];
//! * Figure 1 (conjunctive-query landscape): [`c_gamma`], [`c_jtdb`],
//!   [`chain_query`], [`typed_cycle_cq`], [`star_query`];
//! * the classic smokers-and-friends constraint used by the MLN examples:
//!   [`smokers_constraint`].

use crate::builders::*;
use crate::cq::ConjunctiveQuery;
use crate::syntax::{Atom, Formula};
use crate::term::Term;
use crate::vocabulary::Predicate;

fn cq_atom(name: &str, vars: &[&str]) -> Atom {
    Atom::new(
        Predicate::new(name, vars.len()),
        vars.iter().map(|v| Term::var(*v)).collect(),
    )
}

/// Table 1 / running example: `Φ = ∀x∀y (R(x) ∨ S(x,y) ∨ T(y))`.
pub fn table1_sentence() -> Formula {
    forall(
        ["x", "y"],
        or(vec![
            atom("R", &["x"]),
            atom("S", &["x", "y"]),
            atom("T", &["y"]),
        ]),
    )
}

/// The dual conjunctive query of Table 1's clause:
/// `∃x∃y (R(x) ∧ S(x,y) ∧ T(y))` — the sentence the introduction points out is
/// #P-hard for *asymmetric* weights but polynomial for symmetric ones.
pub fn table1_dual_cq() -> ConjunctiveQuery {
    ConjunctiveQuery::new(vec![
        cq_atom("R", &["x"]),
        cq_atom("S", &["x", "y"]),
        cq_atom("T", &["y"]),
    ])
}

/// `Φ = ∀x ∃y R(x,y)` — the introduction's first example with
/// `FOMC(Φ, n) = (2ⁿ − 1)ⁿ`.
pub fn forall_exists_edge() -> Formula {
    forall(["x"], exists(["y"], atom("R", &["x", "y"])))
}

/// `ϕ = ∃y S(y)` — the §2 example with
/// `WFOMC(ϕ, n) = (w̄+w)ⁿ − w̄ⁿ`.
pub fn exists_unary() -> Formula {
    exists(["y"], atom("S", &["y"]))
}

/// Example 1.1's soft-constraint formula (without its weight):
/// `∀x∀y (Spouse(x,y) ∧ Female(x) ⇒ Male(y))`.
pub fn spouse_constraint() -> Formula {
    forall(
        ["x", "y"],
        implies(
            and(vec![atom("Spouse", &["x", "y"]), atom("Female", &["x"])]),
            atom("Male", &["y"]),
        ),
    )
}

/// The classic smokers-and-friends MLN constraint, used by the social-network
/// example: `∀x∀y (Smokes(x) ∧ Friends(x,y) ⇒ Smokes(y))`.
pub fn smokers_constraint() -> Formula {
    forall(
        ["x", "y"],
        implies(
            and(vec![atom("Smokes", &["x"]), atom("Friends", &["x", "y"])]),
            atom("Smokes", &["y"]),
        ),
    )
}

/// Theorem 3.7's sentence
/// `QS4 = ∀x₁∀x₂∀y₁∀y₂ (S(x₁,y₁) ∨ ¬S(x₂,y₁) ∨ S(x₂,y₂) ∨ ¬S(x₁,y₂))`.
pub fn qs4() -> Formula {
    forall(
        ["x1", "x2", "y1", "y2"],
        or(vec![
            atom("S", &["x1", "y1"]),
            not(atom("S", &["x2", "y1"])),
            atom("S", &["x2", "y2"]),
            not(atom("S", &["x1", "y2"])),
        ]),
    )
}

// ---------------------------------------------------------------------------
// Table 2: open problems
// ---------------------------------------------------------------------------

/// Table 2, "Untyped triangles": `∃x∃y∃z (R(x,y) ∧ R(y,z) ∧ R(z,x))`.
pub fn untyped_triangles() -> Formula {
    exists(
        ["x", "y", "z"],
        and(vec![
            atom("R", &["x", "y"]),
            atom("R", &["y", "z"]),
            atom("R", &["z", "x"]),
        ]),
    )
}

/// Table 2, "Typed triangles (3-cycle)": `∃x∃y∃z (R(x,y) ∧ S(y,z) ∧ T(z,x))`.
pub fn typed_triangles() -> Formula {
    exists(
        ["x", "y", "z"],
        and(vec![
            atom("R", &["x", "y"]),
            atom("S", &["y", "z"]),
            atom("T", &["z", "x"]),
        ]),
    )
}

/// Table 2 / Figure 1, the typed `k`-cycle `C_k` as a conjunctive query:
/// `∃x₁…x_k (R₁(x₁,x₂) ∧ R₂(x₂,x₃) ∧ … ∧ R_k(x_k,x₁))` for `k ≥ 3`.
///
/// # Panics
/// Panics if `k < 3`.
pub fn typed_cycle_cq(k: usize) -> ConjunctiveQuery {
    assert!(k >= 3, "a typed cycle needs at least 3 relations");
    let vars: Vec<String> = (1..=k).map(|i| format!("x{i}")).collect();
    let mut atoms = Vec::with_capacity(k);
    for i in 0..k {
        let a = &vars[i];
        let b = &vars[(i + 1) % k];
        atoms.push(cq_atom(&format!("R{}", i + 1), &[a.as_str(), b.as_str()]));
    }
    ConjunctiveQuery::new(atoms)
}

/// The typed `k`-cycle as a first-order sentence.
pub fn k_cycle(k: usize) -> Formula {
    typed_cycle_cq(k).to_formula()
}

/// Table 2, "Transitivity": `∀x∀y∀z (E(x,y) ∧ E(y,z) ⇒ E(x,z))`.
pub fn transitivity() -> Formula {
    forall(
        ["x", "y", "z"],
        implies(
            and(vec![atom("E", &["x", "y"]), atom("E", &["y", "z"])]),
            atom("E", &["x", "z"]),
        ),
    )
}

/// Table 2, "Homophily": `∀x∀y∀z (R(x,y) ∧ S(x,z) ⇒ R(z,y))`.
pub fn homophily() -> Formula {
    forall(
        ["x", "y", "z"],
        implies(
            and(vec![atom("R", &["x", "y"]), atom("S", &["x", "z"])]),
            atom("R", &["z", "y"]),
        ),
    )
}

/// Table 2, "Extension Axiom (Simplified)":
/// `∀x₁∀x₂∀x₃ (x₁≠x₂ ∧ x₁≠x₃ ∧ x₂≠x₃ ⇒ ∃y (E(x₁,y) ∧ E(x₂,y) ∧ E(x₃,y)))`.
pub fn extension_axiom() -> Formula {
    forall(
        ["x1", "x2", "x3"],
        implies(
            and(vec![neq("x1", "x2"), neq("x1", "x3"), neq("x2", "x3")]),
            exists(
                ["y"],
                and(vec![
                    atom("E", &["x1", "y"]),
                    atom("E", &["x2", "y"]),
                    atom("E", &["x3", "y"]),
                ]),
            ),
        ),
    )
}

/// All Table 2 open problems with their paper names, for the `repro table2`
/// harness.
pub fn table2_open_problems() -> Vec<(&'static str, Formula)> {
    vec![
        ("Untyped triangles", untyped_triangles()),
        ("Typed triangles (3-cycle)", typed_triangles()),
        ("4-cycle", k_cycle(4)),
        ("Transitivity", transitivity()),
        ("Homophily", homophily()),
        ("Extension axiom (simplified)", extension_axiom()),
    ]
}

// ---------------------------------------------------------------------------
// Figure 1: conjunctive-query landscape
// ---------------------------------------------------------------------------

/// Figure 1's γ-cyclic yet tractable query
/// `c_γ = R(x,z), S(x,y,z), T(y,z)` (§3.2: the last variable `z` is a
/// separator).
pub fn c_gamma() -> ConjunctiveQuery {
    ConjunctiveQuery::new(vec![
        cq_atom("R", &["x", "z"]),
        cq_atom("S", &["x", "y", "z"]),
        cq_atom("T", &["y", "z"]),
    ])
}

/// Figure 1's PTIME query outside jtdb:
/// `c_jtdb = R(x,y,z,u), S(x,y), T(x,z), V(x,u)`.
pub fn c_jtdb() -> ConjunctiveQuery {
    ConjunctiveQuery::new(vec![
        cq_atom("R", &["x", "y", "z", "u"]),
        cq_atom("S", &["x", "y"]),
        cq_atom("T", &["x", "z"]),
        cq_atom("V", &["x", "u"]),
    ])
}

/// Example 3.10's linear chain query
/// `Q = ∃x₀…x_m R₁(x₀,x₁) ∧ … ∧ R_m(x_{m−1},x_m)`.
///
/// # Panics
/// Panics if `m == 0`.
pub fn chain_query(m: usize) -> ConjunctiveQuery {
    assert!(m >= 1, "a chain needs at least one atom");
    let vars: Vec<String> = (0..=m).map(|i| format!("x{i}")).collect();
    let atoms = (0..m)
        .map(|i| {
            cq_atom(
                &format!("R{}", i + 1),
                &[vars[i].as_str(), vars[i + 1].as_str()],
            )
        })
        .collect();
    ConjunctiveQuery::new(atoms)
}

/// A star query `R₁(c,x₁), …, R_k(c,x_k)` — γ-acyclic, used by tests and the
/// Figure 1 bench as an easy member of the tractable region.
pub fn star_query(k: usize) -> ConjunctiveQuery {
    assert!(k >= 1);
    let atoms = (1..=k)
        .map(|i| cq_atom(&format!("R{i}"), &["c", &format!("x{i}")]))
        .collect();
    ConjunctiveQuery::new(atoms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sentence_shape() {
        let f = table1_sentence();
        assert!(f.is_sentence());
        assert_eq!(f.distinct_variable_count(), 2);
        assert!(f.is_in_fo_k(2));
        assert_eq!(f.vocabulary().len(), 3);
    }

    #[test]
    fn qs4_is_fo4_over_single_relation() {
        let f = qs4();
        assert_eq!(f.distinct_variable_count(), 4);
        assert_eq!(f.vocabulary().len(), 1);
        assert_eq!(f.vocabulary().get("S").unwrap().arity(), 2);
    }

    #[test]
    fn open_problems_are_sentences() {
        for (name, f) in table2_open_problems() {
            assert!(f.is_sentence(), "{name} should be a sentence");
        }
        assert!(extension_axiom().uses_equality());
        assert_eq!(transitivity().distinct_variable_count(), 3);
    }

    #[test]
    fn cycles_and_chains_have_expected_shape() {
        let c5 = typed_cycle_cq(5);
        assert_eq!(c5.atoms.len(), 5);
        assert_eq!(c5.variables().len(), 5);
        assert!(c5.is_self_join_free());

        let chain = chain_query(4);
        assert_eq!(chain.atoms.len(), 4);
        assert_eq!(chain.variables().len(), 5);
        assert!(chain.is_self_join_free());

        let star = star_query(3);
        assert_eq!(star.variables().len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn short_cycle_panics() {
        typed_cycle_cq(2);
    }

    #[test]
    fn figure1_queries_are_self_join_free() {
        assert!(c_gamma().is_self_join_free());
        assert!(c_jtdb().is_self_join_free());
    }

    #[test]
    fn untyped_triangle_has_self_join() {
        let q = ConjunctiveQuery::from_formula(&untyped_triangles()).unwrap();
        assert!(!q.is_self_join_free());
        let t = ConjunctiveQuery::from_formula(&typed_triangles()).unwrap();
        assert!(t.is_self_join_free());
    }
}
