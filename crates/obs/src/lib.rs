//! # wfomc-obs — zero-cost tracing and metrics for the WFOMC engine
//!
//! A deliberately small observability core (no `tracing`/`metrics`
//! dependencies, consistent with the workspace's vendored-deps-only policy)
//! with three pieces:
//!
//! * **Spans** — [`span`] returns a guard that records wall time under a
//!   static name on drop. Collection is thread-local (no locks on the hot
//!   path); per-thread tallies aggregate into a global table when each
//!   thread finishes (or when a snapshot is taken on the current thread).
//! * **Counters and gauges** — statics registered once by the
//!   [`define_metrics!`] macro, incremented with single lock-free relaxed
//!   [`core::sync::atomic::AtomicU64`] operations. The engine's load-bearing
//!   internals (cell-sum DFS, cache layers, circuit compiler, bignum
//!   representation) report through the registry in [`metrics`].
//! * **Snapshots** — [`snapshot`] freezes every counter, gauge and span into
//!   a [`MetricsSnapshot`], serialized by hand (no serde) as JSON with the
//!   stable `wfomc-obs/v1` schema.
//!
//! ## The zero-cost contract
//!
//! Everything here is compiled out unless the `enabled` cargo feature is on
//! (consumer crates forward it as their own `obs` feature): without it,
//! counters are zero-sized, [`span`] returns a zero-sized guard and every
//! method is an empty `#[inline]` function, so instrumented hot paths run at
//! exactly their uninstrumented speed (see `BENCH_obs.json` for the measured
//! A/B). With the feature compiled in, recording is additionally gated at
//! runtime behind one relaxed atomic load ([`set_enabled`]), so a binary
//! built with observability still pays only that load until it is switched
//! on.
//!
//! ## Worked example
//!
//! ```
//! use wfomc_obs as obs;
//!
//! obs::set_enabled(true);
//! obs::metrics::PLAN_COUNTS.inc();
//! {
//!     let _guard = obs::span("doc.example");
//!     // ... the work the span measures ...
//! }
//! let snap = obs::snapshot();
//! if cfg!(feature = "enabled") {
//!     assert!(snap.counters["plan.counts"] >= 1);
//!     assert_eq!(snap.spans["doc.example"].count, 1);
//! }
//! let json = snap.to_json();
//! assert!(json.starts_with("{\"schema\":\"wfomc-obs/v1\""));
//! obs::reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::collections::BTreeMap;

pub use json::json_escape;

#[cfg(feature = "enabled")]
mod live {
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::Instant;

    use crate::SpanStat;

    /// The one runtime switch: a single relaxed load gates every record.
    static ENABLED: AtomicBool = AtomicBool::new(false);

    /// Turns runtime recording on or off (compiled builds start disabled).
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently enabled (one relaxed atomic load).
    #[inline]
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// A monotonically increasing metric backed by one [`AtomicU64`].
    #[derive(Debug)]
    pub struct Counter {
        name: &'static str,
        value: AtomicU64,
    }

    impl Counter {
        /// A counter registered under `name` (used by [`define_metrics!`]).
        pub const fn new(name: &'static str) -> Counter {
            Counter {
                name,
                value: AtomicU64::new(0),
            }
        }

        /// The registered name.
        pub fn name(&self) -> &'static str {
            self.name
        }

        /// Adds `n` (lock-free; dropped while recording is disabled).
        #[inline]
        pub fn add(&self, n: u64) {
            if is_enabled() {
                self.value.fetch_add(n, Ordering::Relaxed);
            }
        }

        /// Adds 1.
        #[inline]
        pub fn inc(&self) {
            self.add(1);
        }

        /// The current value.
        pub fn get(&self) -> u64 {
            self.value.load(Ordering::Relaxed)
        }

        /// Zeroes the counter (used by [`crate::reset`]).
        pub fn reset(&self) {
            self.value.store(0, Ordering::Relaxed);
        }
    }

    /// A last-written-value metric backed by one [`AtomicU64`].
    #[derive(Debug)]
    pub struct Gauge {
        name: &'static str,
        value: AtomicU64,
    }

    impl Gauge {
        /// A gauge registered under `name` (used by [`define_metrics!`]).
        pub const fn new(name: &'static str) -> Gauge {
            Gauge {
                name,
                value: AtomicU64::new(0),
            }
        }

        /// The registered name.
        pub fn name(&self) -> &'static str {
            self.name
        }

        /// Records the current level (dropped while recording is disabled).
        #[inline]
        pub fn set(&self, v: u64) {
            if is_enabled() {
                self.value.store(v, Ordering::Relaxed);
            }
        }

        /// The last recorded level.
        pub fn get(&self) -> u64 {
            self.value.load(Ordering::Relaxed)
        }

        /// Zeroes the gauge (used by [`crate::reset`]).
        pub fn reset(&self) {
            self.value.store(0, Ordering::Relaxed);
        }
    }

    /// Global span table: name → aggregated stat. `BTreeMap::new` is const,
    /// so no lazy-init cell is needed.
    static GLOBAL_SPANS: Mutex<BTreeMap<&'static str, SpanStat>> = Mutex::new(BTreeMap::new());

    /// Per-thread span tallies; merged into [`GLOBAL_SPANS`] when the thread
    /// exits (the [`LocalSpans`] drop) or when the thread snapshots.
    struct LocalSpans {
        map: BTreeMap<&'static str, SpanStat>,
    }

    impl LocalSpans {
        fn flush(&mut self) {
            if self.map.is_empty() {
                return;
            }
            let mut global = GLOBAL_SPANS.lock().expect("span table poisoned");
            for (name, stat) in std::mem::take(&mut self.map) {
                global.entry(name).or_default().absorb(&stat);
            }
        }
    }

    impl Drop for LocalSpans {
        fn drop(&mut self) {
            self.flush();
        }
    }

    thread_local! {
        static LOCAL_SPANS: RefCell<LocalSpans> = const {
            RefCell::new(LocalSpans { map: BTreeMap::new() })
        };
    }

    /// An in-flight span; records its elapsed time on drop.
    #[must_use = "a span guard measures until it is dropped"]
    #[derive(Debug)]
    pub struct Span {
        live: Option<(&'static str, Instant)>,
    }

    /// Opens a span under a static name. When recording is disabled this is
    /// one relaxed load and no clock read.
    #[inline]
    pub fn span(name: &'static str) -> Span {
        Span {
            live: is_enabled().then(|| (name, Instant::now())),
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            if let Some((name, start)) = self.live.take() {
                let elapsed = start.elapsed().as_nanos();
                // A thread-local tally: no locks on the recording path. If
                // the thread-local is already torn down (thread exit), the
                // observation is dropped rather than panicking.
                let _ = LOCAL_SPANS.try_with(|local| {
                    let mut local = local.borrow_mut();
                    let stat = local.map.entry(name).or_default();
                    stat.count += 1;
                    stat.total_ns += elapsed;
                });
            }
        }
    }

    /// Merges the *current thread's* tallies into the global table. Worker
    /// threads should call this before finishing: the thread-local drop also
    /// flushes on thread exit, but TLS destruction can race a joiner's
    /// snapshot, so the exit-time flush is best-effort only.
    pub fn flush_thread() {
        let _ = LOCAL_SPANS.try_with(|local| local.borrow_mut().flush());
    }

    /// The aggregated span table (flushes the current thread first).
    pub fn spans() -> BTreeMap<&'static str, SpanStat> {
        flush_thread();
        GLOBAL_SPANS.lock().expect("span table poisoned").clone()
    }

    /// Clears all span aggregates, including the current thread's tallies.
    pub fn clear_spans() {
        let _ = LOCAL_SPANS.try_with(|local| local.borrow_mut().map.clear());
        GLOBAL_SPANS.lock().expect("span table poisoned").clear();
    }

    impl SpanStat {
        fn absorb(&mut self, other: &SpanStat) {
            self.count += other.count;
            self.total_ns += other.total_ns;
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod live {
    use std::collections::BTreeMap;

    use crate::SpanStat;

    /// Turns runtime recording on or off — a no-op without the `enabled`
    /// feature.
    #[inline]
    pub fn set_enabled(_on: bool) {}

    /// Whether recording is enabled — always `false` without the `enabled`
    /// feature.
    #[inline]
    pub fn is_enabled() -> bool {
        false
    }

    /// A monotonically increasing metric — zero-sized no-op in this build.
    #[derive(Debug)]
    pub struct Counter;

    impl Counter {
        /// A counter registered under a name — no-op in this build.
        pub const fn new(_name: &'static str) -> Counter {
            Counter
        }

        /// The registered name (empty in a no-op build).
        pub fn name(&self) -> &'static str {
            ""
        }

        /// Adds `n` — compiled to nothing.
        #[inline]
        pub fn add(&self, _n: u64) {}

        /// Adds 1 — compiled to nothing.
        #[inline]
        pub fn inc(&self) {}

        /// The current value — always 0 in this build.
        pub fn get(&self) -> u64 {
            0
        }

        /// Zeroes the counter — compiled to nothing.
        pub fn reset(&self) {}
    }

    /// A last-written-value metric — zero-sized no-op in this build.
    #[derive(Debug)]
    pub struct Gauge;

    impl Gauge {
        /// A gauge registered under a name — no-op in this build.
        pub const fn new(_name: &'static str) -> Gauge {
            Gauge
        }

        /// The registered name (empty in a no-op build).
        pub fn name(&self) -> &'static str {
            ""
        }

        /// Records the current level — compiled to nothing.
        #[inline]
        pub fn set(&self, _v: u64) {}

        /// The last recorded level — always 0 in this build.
        pub fn get(&self) -> u64 {
            0
        }

        /// Zeroes the gauge — compiled to nothing.
        pub fn reset(&self) {}
    }

    /// A zero-sized span guard — the drop does nothing.
    #[must_use = "a span guard measures until it is dropped"]
    #[derive(Debug)]
    pub struct Span;

    /// Opens a span — compiled to a zero-sized value in this build.
    #[inline]
    pub fn span(_name: &'static str) -> Span {
        Span
    }

    /// Merges the current thread's tallies — no-op in this build.
    pub fn flush_thread() {}

    /// The aggregated span table — always empty in this build.
    pub fn spans() -> BTreeMap<&'static str, SpanStat> {
        BTreeMap::new()
    }

    /// Clears all span aggregates — no-op in this build.
    pub fn clear_spans() {}
}

pub use live::{flush_thread, is_enabled, set_enabled, span, Counter, Gauge, Span};

/// Declares the static counter/gauge registry: one `pub static` per metric
/// plus `counters()` / `gauges()` accessors enumerating them for snapshots.
/// Used once in [`metrics`] for the engine's core metric set; downstream
/// crates can use it again for their own registries.
#[macro_export]
macro_rules! define_metrics {
    (
        counters { $($cvis:vis $cident:ident => $cname:literal;)* }
        gauges { $($gvis:vis $gident:ident => $gname:literal;)* }
    ) => {
        $(
            #[doc = concat!("Counter `", $cname, "`.")]
            $cvis static $cident: $crate::Counter = $crate::Counter::new($cname);
        )*
        $(
            #[doc = concat!("Gauge `", $gname, "`.")]
            $gvis static $gident: $crate::Gauge = $crate::Gauge::new($gname);
        )*

        /// Every counter in this registry, in declaration order, paired with
        /// its registered name.
        pub fn counters() -> &'static [(&'static str, &'static $crate::Counter)] {
            static COUNTERS: &[(&str, &$crate::Counter)] = &[$(($cname, &$cident)),*];
            COUNTERS
        }

        /// Every gauge in this registry, in declaration order, paired with
        /// its registered name.
        pub fn gauges() -> &'static [(&'static str, &'static $crate::Gauge)] {
            static GAUGES: &[(&str, &$crate::Gauge)] = &[$(($gname, &$gident)),*];
            GAUGES
        }
    };
}

/// The engine's core metric registry: the load-bearing internals every
/// serving/parallelism layer will want to watch. Names are stable (they are
/// the JSON keys of the `wfomc-obs/v1` schema).
pub mod metrics {
    define_metrics! {
        counters {
            // FO² cell-sum engine.
            pub CELLSUM_SUMMED => "fo2.cellsum.compositions_summed";
            pub CELLSUM_PRUNED => "fo2.cellsum.compositions_pruned";
            pub BALANCED_SUM_MERGES => "fo2.cellsum.balanced_sum_merges";
            // Work-stealing fan-outs and lane-batched evaluation.
            pub CELLSUM_STEALS => "cellsum.steals";
            pub CELLSUM_LANE_BATCHES => "cellsum.lane_batches";
            pub BATCH_LANE_POINTS => "batch.lane_points";
            // FO² weight-binding LRU.
            pub FO2_BIND_HITS => "fo2.bind.hits";
            pub FO2_BIND_MISSES => "fo2.bind.misses";
            // Plan-level evaluation and the ground-plan LRU.
            pub PLAN_COUNTS => "plan.counts";
            pub GROUND_CACHE_HITS => "plan.ground_cache.hits";
            pub GROUND_CACHE_MISSES => "plan.ground_cache.misses";
            // γ-acyclic CQ reduction memo.
            pub CQ_MEMO_HITS => "cq.memo.hits";
            pub CQ_MEMO_MISSES => "cq.memo.misses";
            // d-DNNF knowledge compilation.
            pub CIRCUIT_COMPILES => "circuit.compiles";
            pub CIRCUIT_NODES => "circuit.compile.nodes";
            pub CIRCUIT_EDGES => "circuit.compile.edges";
            pub CIRCUIT_CACHE_HITS => "circuit.compile.cache_hits";
            // Propositional DPLL.
            pub DPLL_DECISIONS => "prop.dpll.decisions";
            // Power caches falling back to memoized square-and-multiply.
            pub POWERS_SPARSE => "logic.powers.sparse_pows";
            // The bignum inline representation spilling to heap limbs.
            pub BIGNUM_HEAP_SPILLS => "bignum.heap_spills";
            // Grounding.
            pub LINEAGE_BUILT => "ground.lineage.built";
            pub LINEAGE_VARS => "ground.lineage.vars";
            pub LINEAGE_PROP_NODES => "ground.lineage.prop_nodes";
            // Resource governance (wfomc-guard).
            pub GUARD_CANCELLED => "guard.cancelled";
            pub GUARD_DEADLINE_HITS => "guard.deadline_hits";
            pub GUARD_WORK_CAP_HITS => "guard.work_cap_hits";
            pub GUARD_DEGRADED_SOLVES => "guard.degraded_solves";
            // The wfomc-serve HTTP front end.
            pub SERVE_REQUESTS => "serve.requests";
            pub SERVE_ERRORS => "serve.errors";
            pub SERVE_LATENCY_NS => "serve.latency_ns";
            pub SERVE_PLANS_REGISTERED => "serve.plans_registered";
            pub SERVE_REGISTRY_EVICTIONS => "serve.registry.evictions";
            // Plan-state snapshots (wfomc-snap/v1).
            pub SNAP_HITS => "snap.hits";
            pub SNAP_MISSES => "snap.misses";
            pub SNAP_INVALID => "snap.invalid";
            pub SNAP_WRITES => "snap.writes";
        }
        gauges {
            pub FO2_BIND_CACHED => "fo2.bind.cached";
            pub GROUND_CACHE_LEN => "plan.ground_cache.len";
            pub SERVE_REGISTRY_LEN => "serve.registry.len";
        }
    }
}

/// Aggregated timings of one span name: how many times it closed and the
/// total wall time spent inside it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans under this name.
    pub count: u64,
    /// Total wall time across those spans, in nanoseconds.
    pub total_ns: u128,
}

impl SpanStat {
    /// Total wall time in milliseconds (for human-facing output).
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

/// A frozen view of every registered counter, gauge and aggregated span,
/// plus free-form string labels (method names, workload ids). Serialized by
/// [`MetricsSnapshot::to_json`] under the stable `wfomc-obs/v1` schema:
///
/// ```json
/// {"schema": "wfomc-obs/v1",
///  "labels": {"experiment": "plan-reuse"},
///  "counters": {"fo2.bind.hits": 15},
///  "gauges": {"fo2.bind.cached": 1},
///  "spans": {"fo2.bind": {"count": 1, "total_ms": 0.42}}}
/// ```
///
/// All four sections are sorted by key; counters and gauges always contain
/// every registered metric (zeros included), so two snapshots of identical
/// work compare equal field-for-field.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Free-form string annotations (e.g. `experiment`, `method`).
    pub labels: BTreeMap<String, String>,
    /// Counter values by registered name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by registered name.
    pub gauges: BTreeMap<String, u64>,
    /// Aggregated spans by name.
    pub spans: BTreeMap<String, SpanStat>,
}

impl MetricsSnapshot {
    /// A snapshot with only labels (used by builds without the `enabled`
    /// feature, and as the base the caller extends with plan-level stats).
    pub fn with_label(key: &str, value: &str) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.labels.insert(key.to_string(), value.to_string());
        snap
    }

    /// Sets a label, chainably.
    pub fn label(mut self, key: &str, value: &str) -> MetricsSnapshot {
        self.labels.insert(key.to_string(), value.to_string());
        self
    }

    /// Sets (or overwrites) one counter entry — how plan- or report-level
    /// stats that live outside the global registry join a snapshot.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Sets (or overwrites) one gauge entry.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// The value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Hand-rolled JSON under the `wfomc-obs/v1` schema (see the type-level
    /// docs). Deterministic: all sections sorted by key.
    pub fn to_json(&self) -> String {
        let mut root = json::JsonObject::new();
        root.field_str("schema", "wfomc-obs/v1");

        let mut labels = json::JsonObject::new();
        for (k, v) in &self.labels {
            labels.field_str(k, v);
        }
        root.field_raw("labels", &labels.finish());

        let mut counters = json::JsonObject::new();
        for (k, v) in &self.counters {
            counters.field_u64(k, *v);
        }
        root.field_raw("counters", &counters.finish());

        let mut gauges = json::JsonObject::new();
        for (k, v) in &self.gauges {
            gauges.field_u64(k, *v);
        }
        root.field_raw("gauges", &gauges.finish());

        let mut spans = json::JsonObject::new();
        for (k, s) in &self.spans {
            let mut span = json::JsonObject::new();
            span.field_u64("count", s.count);
            span.field_f64("total_ms", s.total_ms(), 3);
            spans.field_raw(k, &span.finish());
        }
        root.field_raw("spans", &spans.finish());

        root.finish()
    }
}

/// Freezes the current state of the [`metrics`] registry and the aggregated
/// span table (flushing the calling thread's span tallies first). Without
/// the `enabled` feature this returns an empty snapshot.
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for (name, counter) in metrics::counters() {
        snap.counters.insert((*name).to_string(), counter.get());
    }
    for (name, gauge) in metrics::gauges() {
        snap.gauges.insert((*name).to_string(), gauge.get());
    }
    for (name, stat) in live::spans() {
        snap.spans.insert(name.to_string(), stat);
    }
    snap
}

/// Zeroes every registered counter and gauge and clears all span aggregates
/// (global table and the calling thread's tallies) — the clean-slate
/// primitive behind repeatable measurement runs and the determinism tests.
pub fn reset() {
    for (_, counter) in metrics::counters() {
        counter.reset();
    }
    for (_, gauge) in metrics::gauges() {
        gauge.reset();
    }
    live::clear_spans();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counter/span state is process-global; serialize the tests that touch
    /// it so `cargo test`'s parallel runner cannot interleave them.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn snapshot_json_has_the_stable_schema() {
        let _guard = serial();
        reset();
        let snap = snapshot().label("experiment", "unit-test");
        let json = snap.to_json();
        assert!(json.starts_with("{\"schema\":\"wfomc-obs/v1\""));
        assert!(json.contains("\"labels\":{\"experiment\":\"unit-test\"}"));
        assert!(json.contains("\"counters\":{"));
        assert!(json.contains("\"gauges\":{"));
        assert!(json.ends_with("\"spans\":{}}"));
    }

    #[test]
    fn json_escaping_covers_quotes_and_control_characters() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        let mut snap = MetricsSnapshot::with_label("k\"ey", "v\\al");
        snap.set_counter("c", 1);
        let json = snap.to_json();
        assert!(json.contains("\"k\\\"ey\":\"v\\\\al\""));
    }

    #[test]
    fn disabled_runtime_records_nothing() {
        let _guard = serial();
        reset();
        set_enabled(false);
        metrics::PLAN_COUNTS.add(7);
        metrics::FO2_BIND_CACHED.set(3);
        drop(span("dead.span"));
        let snap = snapshot();
        assert_eq!(snap.counter("plan.counts"), Some(0));
        assert_eq!(snap.gauges["fo2.bind.cached"], 0);
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn snapshot_always_lists_every_registered_metric() {
        let _guard = serial();
        reset();
        let snap = snapshot();
        assert_eq!(snap.counters.len(), metrics::counters().len());
        assert_eq!(snap.gauges.len(), metrics::gauges().len());
        assert!(snap.counter("bignum.heap_spills").is_some());
        assert!(snap.counter("fo2.cellsum.compositions_summed").is_some());
        assert!(snap.counter("no.such.metric").is_none());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn counters_spans_and_reset_work_when_enabled() {
        let _guard = serial();
        reset();
        set_enabled(true);
        metrics::PLAN_COUNTS.add(2);
        metrics::PLAN_COUNTS.inc();
        metrics::GROUND_CACHE_LEN.set(5);
        {
            let _span = span("test.enabled");
        }
        {
            let _span = span("test.enabled");
        }
        let snap = snapshot();
        assert_eq!(snap.counter("plan.counts"), Some(3));
        assert_eq!(snap.gauges["plan.ground_cache.len"], 5);
        assert_eq!(snap.spans["test.enabled"].count, 2);
        // Worker threads flush explicitly before exiting: the TLS-destructor
        // flush also runs, but only after the scope's join observes the
        // thread as done, so it is best-effort for snapshot timing.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                {
                    let _span = span("test.worker");
                }
                flush_thread();
            });
        });
        assert_eq!(snapshot().spans["test.worker"].count, 1);
        reset();
        let snap = snapshot();
        assert_eq!(snap.counter("plan.counts"), Some(0));
        assert!(snap.spans.is_empty());
        set_enabled(false);
    }
}
