//! The plan registry: parse/plan once, evaluate forever.
//!
//! Plans are keyed by a 64-bit FNV-1a hash of the sentence's *canonical
//! text* — the formula is parsed and re-printed before hashing, so every
//! spelling of the same formula (whitespace, redundant parentheses,
//! multi-variable binders) lands on the same plan id. PR 8's printer
//! round-trip fix is what makes this trustworthy: `parse(format(f)) == f`
//! holds exactly, so the canonical text is a faithful key and the JSONL
//! registry log can replay it.
//!
//! Concurrency follows the PR-4 bounded-cache pattern (the ground-plan LRU
//! in `wfomc-core`), adapted for a read-mostly service: the map is split
//! over [`SHARDS`] `RwLock` shards, lookups take only a shard *read* lock
//! (recency stamps are atomics bumped through the shared reference), and
//! inserts take the write lock and evict the least-recently-stamped entry
//! once the shard is full. Evicted plans stay alive for requests already
//! holding their `Arc`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use wfomc_core::{Plan, Problem};
use wfomc_logic::parser::parse;
use wfomc_logic::weights::Weights;
use wfomc_obs::metrics as obs;

use crate::wire::ApiError;

/// Number of independent `RwLock` shards.
pub const SHARDS: usize = 8;

/// One registered sentence: its canonical text, default weights, and the
/// analyzed [`Plan`] every request reuses.
#[derive(Debug)]
pub struct RegisteredPlan {
    /// The plan id: the sentence hash in fixed-width hex.
    pub id: String,
    /// The 64-bit key behind the id.
    pub key: u64,
    /// The canonical sentence text (printed form; parses back exactly).
    pub sentence: String,
    /// Default weights, used when a request carries none and persisted in
    /// the registry log.
    pub weights: Weights,
    /// The prepared plan (`Sync`; shared by every concurrent request).
    pub plan: Plan,
    /// Whether a valid on-disk snapshot of this plan exists.
    snapshotted: AtomicBool,
    /// `Plan::snap_stamp` at the time of the last snapshot write; compared
    /// against the live stamp to decide whether a shutdown rewrite is due.
    snap_stamp: AtomicU64,
}

impl RegisteredPlan {
    /// True once an on-disk snapshot has been written (or loaded) for this
    /// plan. Surfaced as the `snapshotted` stats field.
    pub fn snapshotted(&self) -> bool {
        self.snapshotted.load(Ordering::Relaxed)
    }

    /// Records that a snapshot capturing the given [`Plan::snap_stamp`] is
    /// now on disk.
    pub fn mark_snapshotted(&self, stamp: u64) {
        self.snap_stamp.store(stamp, Ordering::Relaxed);
        self.snapshotted.store(true, Ordering::Relaxed);
    }

    /// True when the on-disk snapshot (if any) no longer matches the plan's
    /// live state — caches or compiled circuits grew since the last write —
    /// so a graceful shutdown should rewrite it.
    pub fn snapshot_dirty(&self) -> bool {
        !self.snapshotted() || self.snap_stamp.load(Ordering::Relaxed) != self.plan.snap_stamp()
    }
}

struct Entry {
    plan: Arc<RegisteredPlan>,
    /// Recency stamp for LRU eviction; an atomic so lookups can bump it
    /// under the shard *read* lock.
    stamp: AtomicU64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
}

/// Aggregate registry accounting (always on, like [`wfomc_core::PlanCacheStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Plans currently registered.
    pub len: usize,
    /// Total capacity across shards.
    pub capacity: usize,
    /// Lookups that found their plan.
    pub hits: u64,
    /// Lookups that missed (unknown or evicted id).
    pub misses: u64,
    /// Plans evicted by the LRU bound.
    pub evictions: u64,
}

/// A sharded, LRU-bounded map from sentence hash to [`RegisteredPlan`].
pub struct PlanRegistry {
    shards: Vec<RwLock<Shard>>,
    shard_capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanRegistry {
    /// A registry holding at most (approximately) `capacity` plans: the
    /// bound is enforced per shard at `ceil(capacity / SHARDS)`, so the
    /// total is rounded up to a multiple of the shard count.
    pub fn new(capacity: usize) -> PlanRegistry {
        let shard_capacity = capacity.max(1).div_ceil(SHARDS);
        PlanRegistry {
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::default())).collect(),
            shard_capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// FNV-1a over the canonical sentence text.
    pub fn hash_sentence(canonical: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in canonical.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The fixed-width hex id for a key.
    pub fn format_id(key: u64) -> String {
        format!("{key:016x}")
    }

    /// Parses a sentence and returns its canonical (printed) text.
    pub fn canonicalize(text: &str) -> Result<String, ApiError> {
        let formula = parse(text)
            .map_err(|e| ApiError::bad_request(format!("sentence does not parse: {e}")))?;
        Ok(formula.to_string())
    }

    fn shard_of(&self, key: u64) -> &RwLock<Shard> {
        &self.shards[(key % SHARDS as u64) as usize]
    }

    fn next_stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers a sentence: parses, canonicalizes, and — unless an
    /// identical registration (same canonical text *and* default weights)
    /// already exists — plans it and stores the plan under its hash.
    /// Returns the entry plus whether a new plan was actually created
    /// (`false` means the existing plan was reused and nothing needs to be
    /// appended to the registry log).
    pub fn register(
        &self,
        text: &str,
        weights: Weights,
    ) -> Result<(Arc<RegisteredPlan>, bool), ApiError> {
        let canonical = Self::canonicalize(text)?;
        let key = Self::hash_sentence(&canonical);

        // Fast path: an identical registration already exists.
        {
            let shard = self.shard_of(key).read().expect("registry shard poisoned");
            if let Some(entry) = shard.map.get(&key) {
                if entry.plan.sentence == canonical && entry.plan.weights == weights {
                    entry.stamp.store(self.next_stamp(), Ordering::Relaxed);
                    return Ok((Arc::clone(&entry.plan), false));
                }
            }
        }

        // Plan outside any lock: analysis can be expensive and must not
        // block lookups on the same shard.
        let formula = parse(&canonical).map_err(|e| {
            ApiError::bad_request(format!("canonical sentence failed to re-parse: {e}"))
        })?;
        let plan = Problem::new(formula)
            .with_weights(weights.clone())
            .plan()
            .map_err(|e| ApiError::plan_failed(&e))?;
        let registered = Arc::new(RegisteredPlan {
            id: Self::format_id(key),
            key,
            sentence: canonical.clone(),
            weights,
            plan,
            snapshotted: AtomicBool::new(false),
            snap_stamp: AtomicU64::new(0),
        });

        let mut shard = self.shard_of(key).write().expect("registry shard poisoned");
        // A racing identical registration wins; drop our duplicate work.
        if let Some(entry) = shard.map.get(&key) {
            if entry.plan.sentence == registered.sentence
                && entry.plan.weights == registered.weights
            {
                entry.stamp.store(self.next_stamp(), Ordering::Relaxed);
                return Ok((Arc::clone(&entry.plan), false));
            }
        }
        self.insert_locked(&mut shard, key, Arc::clone(&registered));
        drop(shard); // len() re-locks every shard, including this one
        obs::SERVE_PLANS_REGISTERED.inc();
        obs::SERVE_REGISTRY_LEN.set(self.len() as u64);
        Ok((registered, true))
    }

    /// Registers an already-prepared plan under its canonical sentence —
    /// the snapshot-warm boot path, where the plan was decoded from disk
    /// instead of analyzed. The entry starts marked as snapshotted at the
    /// plan's current stamp (the snapshot on disk *is* its current state).
    pub fn register_preplanned(
        &self,
        canonical: String,
        weights: Weights,
        plan: Plan,
    ) -> Arc<RegisteredPlan> {
        let key = Self::hash_sentence(&canonical);
        let stamp = plan.snap_stamp();
        let registered = Arc::new(RegisteredPlan {
            id: Self::format_id(key),
            key,
            sentence: canonical,
            weights,
            plan,
            snapshotted: AtomicBool::new(true),
            snap_stamp: AtomicU64::new(stamp),
        });
        let mut shard = self.shard_of(key).write().expect("registry shard poisoned");
        self.insert_locked(&mut shard, key, Arc::clone(&registered));
        drop(shard);
        obs::SERVE_PLANS_REGISTERED.inc();
        obs::SERVE_REGISTRY_LEN.set(self.len() as u64);
        registered
    }

    /// Inserts under an already-held shard write lock, evicting the
    /// least-recently-stamped entry if the shard is full.
    fn insert_locked(&self, shard: &mut Shard, key: u64, registered: Arc<RegisteredPlan>) {
        if !shard.map.contains_key(&key) && shard.map.len() >= self.shard_capacity {
            // Evict the least-recently-stamped entry of this shard.
            if let Some(&victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                .map(|(k, _)| k)
            {
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                obs::SERVE_REGISTRY_EVICTIONS.inc();
            }
        }
        let stamp = self.next_stamp();
        shard.map.insert(
            key,
            Entry {
                plan: registered,
                stamp: AtomicU64::new(stamp),
            },
        );
    }

    /// Looks a plan up by its hex id, bumping its LRU recency.
    pub fn get(&self, id: &str) -> Option<Arc<RegisteredPlan>> {
        let key = u64::from_str_radix(id, 16).ok().filter(|_| id.len() == 16);
        let found = key.and_then(|key| {
            let shard = self.shard_of(key).read().expect("registry shard poisoned");
            shard.map.get(&key).map(|entry| {
                entry.stamp.store(self.next_stamp(), Ordering::Relaxed);
                Arc::clone(&entry.plan)
            })
        });
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Number of registered plans.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("registry shard poisoned").map.len())
            .sum()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every registered `(id, canonical sentence)`, sorted by id.
    pub fn entries(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("registry shard poisoned")
                    .map
                    .values()
                    .map(|e| (e.plan.id.clone(), e.plan.sentence.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort();
        out
    }

    /// Every live registered plan, sorted by id — the graceful-shutdown
    /// snapshot sweep walks this to find dirty plans.
    pub fn plans(&self) -> Vec<Arc<RegisteredPlan>> {
        let mut out: Vec<Arc<RegisteredPlan>> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("registry shard poisoned")
                    .map
                    .values()
                    .map(|e| Arc::clone(&e.plan))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|a, b| a.id.cmp(&b.id));
        out
    }

    /// Aggregate accounting.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            len: self.len(),
            capacity: self.shard_capacity * SHARDS,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_logic::weights::weight_int;

    #[test]
    fn register_is_idempotent_across_spellings() {
        let registry = PlanRegistry::new(16);
        let (a, created_a) = registry
            .register("forall x. forall y. R(x) | S(x,y) | T(y)", Weights::ones())
            .unwrap();
        assert!(created_a);
        // Different whitespace, same canonical text — reuses the plan.
        let (b, created_b) = registry
            .register("forall x,y. (R(x) | S(x,y) | T(y))", Weights::ones())
            .unwrap();
        assert!(!created_b);
        assert_eq!(a.id, b.id);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(registry.len(), 1);
        // Same sentence under different default weights re-plans.
        let mut w = Weights::ones();
        w.set("R", weight_int(2), weight_int(1));
        let (c, created_c) = registry
            .register("forall x. forall y. R(x) | S(x,y) | T(y)", w)
            .unwrap();
        assert!(created_c);
        assert_eq!(c.id, a.id);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn get_finds_by_id_and_counts_hits() {
        let registry = PlanRegistry::new(16);
        let (entry, _) = registry
            .register("forall x. exists y. R(x,y)", Weights::ones())
            .unwrap();
        let found = registry.get(&entry.id).expect("registered plan resolves");
        assert_eq!(found.sentence, "forall x. exists y. R(x,y)");
        assert!(registry.get("0000000000000000").is_none());
        assert!(registry.get("not-hex").is_none());
        assert!(registry.get("1234").is_none(), "short ids never resolve");
        let stats = registry.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.len, 1);
    }

    #[test]
    fn rejects_unparsable_and_unplannable_sentences() {
        let registry = PlanRegistry::new(16);
        let err = registry
            .register("forall . R(x)", Weights::ones())
            .unwrap_err();
        assert_eq!(err.status, 400);
        // An open formula parses but cannot be planned.
        let err = registry
            .register("R(x) & S(x,y)", Weights::ones())
            .unwrap_err();
        assert_eq!(err.status, 422);
        assert_eq!(err.kind, "plan_failed");
        assert!(registry.is_empty());
    }

    #[test]
    fn lru_evicts_the_least_recently_used_plan() {
        // Capacity 8 over 8 shards = 1 entry per shard: two sentences
        // hashing to the same shard must evict each other.
        let registry = PlanRegistry::new(8);
        let sentences: Vec<String> = (1..=40)
            .map(|k| format!("forall x. exists y. R(x,y) & S{k}(x)"))
            .collect();
        let mut ids = Vec::new();
        for s in &sentences {
            let (entry, created) = registry.register(s, Weights::ones()).unwrap();
            assert!(created);
            ids.push(entry.id.clone());
        }
        let stats = registry.stats();
        assert!(stats.len <= stats.capacity, "{stats:?}");
        assert!(stats.evictions > 0, "{stats:?}");
        // The most recent registration of each shard is still resolvable.
        let (last, created) = registry
            .register(sentences.last().unwrap(), Weights::ones())
            .unwrap();
        assert!(!created, "most recent registration must have survived");
        assert_eq!(&last.id, ids.last().unwrap());
    }

    #[test]
    fn canonical_text_is_a_fixpoint() {
        let canonical = PlanRegistry::canonicalize("forall x,y. (R(x)|S(x,y))").unwrap();
        assert_eq!(
            PlanRegistry::canonicalize(&canonical).unwrap(),
            canonical,
            "canonicalization must be idempotent for the hash key to be stable"
        );
    }
}
