//! The d-DNNF knowledge-compilation backend, bridging `wfomc-circuit`.
//!
//! [`wmc_circuit`] matches the one-shot counting contract of the other
//! backends, but the real payoff is [`CompiledWmc`]: compile a CNF **once**
//! and evaluate it under arbitrarily many weight vectors, each evaluation
//! linear in circuit size. The equality-removal interpolation
//! (`wfomc-core`), which needs the same CNF at `n² + 1` weight points, and
//! any repeated-query serving path build on this type.

use wfomc_circuit::{CLit, CompileStats, CompiledCnf, LitWeights};
use wfomc_logic::algebra::{Algebra, VarPairs};
use wfomc_logic::weights::Weight;

use crate::cnf::{Cnf, Lit};
use crate::weights::VarWeights;

impl LitWeights for VarWeights {
    fn weight(&self, var: usize, value: bool) -> Weight {
        self.literal_weight(var, value)
    }
}

fn to_clit(lit: Lit) -> CLit {
    CLit {
        var: lit.var,
        positive: lit.positive,
    }
}

/// A CNF compiled once into a smoothed d-DNNF circuit.
#[derive(Clone, Debug)]
pub struct CompiledWmc {
    inner: CompiledCnf,
}

impl CompiledWmc {
    /// Compiles the CNF's DPLL search into a circuit. This is the expensive
    /// step — it performs the same search as [`wmc_dpll`](super::wmc_dpll)
    /// once.
    pub fn compile(cnf: &Cnf) -> CompiledWmc {
        Self::compile_guarded(cnf, &wfomc_guard::Guard::unarmed())
            .expect("an unarmed guard cannot interrupt")
    }

    /// [`compile`](Self::compile) under a resource
    /// [`Guard`](wfomc_guard::Guard): deadlines, work caps and cancellation
    /// interrupt the compilation search; the partial circuit is discarded.
    pub fn compile_guarded(
        cnf: &Cnf,
        guard: &wfomc_guard::Guard,
    ) -> Result<CompiledWmc, wfomc_guard::Interrupt> {
        let clauses: Vec<Vec<CLit>> = cnf
            .clauses
            .iter()
            .map(|c| c.iter().copied().map(to_clit).collect())
            .collect();
        Ok(CompiledWmc {
            inner: wfomc_circuit::compile_guarded(cnf.num_vars, &clauses, guard)?,
        })
    }

    /// Weighted model count over the universe
    /// `0..max(num_vars, weights.len())`, under the same weight-table
    /// contract as the other backends: variables beyond the table count
    /// unweighted, table entries beyond the CNF universe contribute
    /// `w + w̄` each.
    pub fn wmc(&self, weights: &VarWeights) -> Weight {
        let mut result = self.inner.wmc(weights);
        // The circuit is smoothed over the CNF's own universe; longer weight
        // tables extend the universe with unconstrained variables.
        for v in self.inner.num_vars()..weights.len() {
            result *= weights.total(v);
        }
        result
    }

    /// [`wmc`](Self::wmc) in an arbitrary [`Algebra`], under the same
    /// universe contract — the compile-once circuit serves weight vectors in
    /// any ring.
    pub fn wmc_in<A: Algebra, W: VarPairs<A> + ?Sized>(&self, algebra: &A, weights: &W) -> A::Elem {
        let mut result = self.inner.wmc_in(algebra, weights);
        for v in self.inner.num_vars()..weights.table_len() {
            algebra.mul_assign(&mut result, &weights.var_total(algebra, v));
        }
        result
    }

    /// The variable universe the circuit was compiled over.
    pub fn num_vars(&self) -> usize {
        self.inner.num_vars()
    }

    /// Circuit size and compilation counters.
    pub fn stats(&self) -> &CompileStats {
        self.inner.stats()
    }

    /// The underlying compiled circuit.
    pub fn inner(&self) -> &CompiledCnf {
        &self.inner
    }

    /// Wraps an already-validated compiled circuit — the snapshot decoder's
    /// entry point, pairing with [`inner`](Self::inner) on the encode side.
    pub fn from_inner(inner: CompiledCnf) -> CompiledWmc {
        CompiledWmc { inner }
    }
}

/// One-shot weighted model count through compilation — the
/// [`WmcBackend::Circuit`](super::WmcBackend::Circuit) entry point.
///
/// For a single evaluation this does strictly more work than the DPLL
/// backend (same search plus circuit construction); use [`CompiledWmc`]
/// directly when several weight vectors share one CNF.
pub fn wmc_circuit(cnf: &Cnf, weights: &VarWeights) -> Weight {
    CompiledWmc::compile(cnf).wmc(weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_logic::weights::weight_int;

    #[test]
    fn compiled_circuit_honours_longer_weight_tables() {
        // x0 with a 3-variable weight table: the two unconstrained extra
        // variables multiply their totals in.
        let cnf = Cnf::new(1, vec![vec![Lit::pos(0)]]);
        let compiled = CompiledWmc::compile(&cnf);
        let w = VarWeights::from_vecs(
            vec![weight_int(5), weight_int(1), weight_int(2)],
            vec![weight_int(1), weight_int(1), weight_int(3)],
        );
        // 5 · (1+1) · (2+3) = 50.
        assert_eq!(compiled.wmc(&w), weight_int(50));
        assert_eq!(compiled.num_vars(), 1);
        assert!(compiled.stats().nodes >= 2);
    }

    #[test]
    fn compiled_circuit_honours_shorter_weight_tables() {
        let cnf = Cnf::new(2, vec![vec![Lit::pos(0), Lit::pos(1)]]);
        let compiled = CompiledWmc::compile(&cnf);
        assert_eq!(
            compiled.wmc(&VarWeights::from_vecs(vec![], vec![])),
            weight_int(3)
        );
    }
}
