//! The reproduction harness: prints the rows/series behind every table and
//! figure of the paper. Run a single experiment with e.g.
//! `cargo run --release -p wfomc-bench --bin repro -- table1`, or everything
//! with `-- all`. `EXPERIMENTS.md` records the expected output.
//! `-- smoke` runs a fast cross-section (including the FO² scaling
//! experiment at a reduced domain size) as the CI smoke test and writes
//! machine-readable per-phase timings to `target/smoke-timings.json`
//! (override the path with `SMOKE_TIMINGS_JSON`).
//! `-- perf-gate` re-times a curated set of workloads and fails (exit 1)
//! when any of them regresses more than `PERF_GATE_FACTOR` (default 2×,
//! plus `PERF_GATE_SLACK_MS` of absolute headroom for runner noise) against
//! the baselines committed in the `BENCH_*.json` snapshots; set
//! `PERF_GATE_SKIP=1` to bypass it. The gate also checks cache
//! effectiveness: the plan-reuse workloads must hit their weight-binding /
//! grounding caches at least `PERF_GATE_MIN_HIT_RATE` (default 90%) of the
//! time, and the resource-governance layer's budget-off contract: on
//! fo2/table1-30, `Plan::count_with_limits` with no limits armed must stay
//! within `GUARD_GATE_FACTOR` (default 1.01 = ≤1% overhead) plus
//! `GUARD_GATE_SLACK_MS` of the ungoverned `Plan::count` (the `guard_time`
//! bin records the full three-mode A/B in `BENCH_guard.json`).
//! `-- trace --experiment <name>` times one experiment phase by phase
//! (parse / plan / bind / evaluate) and writes `target/trace.json`
//! (override with `TRACE_JSON`).
//! Both `smoke` and `perf-gate` also write a `wfomc-obs/v1` metrics
//! snapshot (`target/metrics-smoke.json` / `target/metrics-perf-gate.json`)
//! for CI artifacts; the counters are live when the harness is built with
//! `--features obs` and all zeros otherwise.

use std::env;
use std::time::Instant;

use wfomc::core::closed_form;
use wfomc::core::fo2::{wfomc_fo2, wfomc_fo2_with_stats, Fo2Prepared};
use wfomc::core::qs4::wfomc_qs4;
use wfomc::ground::GroundSolver;
use wfomc::mln::ground_semantics::partition_function_brute;
use wfomc::prelude::*;
use wfomc::reductions::theta1::theta1;
use wfomc_bench::{
    approx, bignum_factorial_chain, bignum_harmonic, bignum_square_chain, fo2_scaling_workload,
    lane_sweep_points, plan_reuse_workloads, run_trace, short, smokers_mln, standard_weights,
    table1_workload, time_ms,
};

fn main() {
    // No-op unless the harness is built with `--features obs`; with it, every
    // experiment below feeds the counter registry and the span table.
    wfomc_obs::set_enabled(true);
    let which = env::args().nth(1).unwrap_or_else(|| "all".to_string());
    if which == "smoke" {
        smoke();
        return;
    }
    if which == "perf-gate" {
        perf_gate();
        return;
    }
    if which == "trace" {
        let args: Vec<String> = env::args().skip(2).collect();
        let experiment = args
            .iter()
            .position(|a| a == "--experiment")
            .and_then(|i| args.get(i + 1))
            .map_or("plan-reuse", String::as_str);
        trace_experiment(experiment);
        return;
    }
    let all = which == "all";
    if all || which == "table1" {
        table1();
    }
    if all || which == "figure1" {
        figure1();
    }
    if all || which == "figure2" {
        figure2();
    }
    if all || which == "table2" {
        table2();
    }
    if all || which == "qs4" {
        qs4();
    }
    if all || which == "fo2" {
        fo2();
    }
    if all || which == "fo2-scaling" {
        fo2_scaling();
    }
    if all || which == "mln" {
        mln();
    }
    if all || which == "algebra" {
        algebra_with_sizes(&[8, 12], &[4, 6]);
    }
    if all || which == "plan-reuse" {
        plan_reuse_with_k(16);
    }
    if all || which == "bignum" {
        bignum();
    }
    if all || which == "theta1" {
        theta1_experiment();
    }
    if all || which == "closed-forms" {
        closed_forms();
    }
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// E1 — Table 1.
fn table1() {
    header("E1  Table 1: Φ = ∀x∀y (R(x) ∨ S(x,y) ∨ T(y))");
    let sentence = catalog::table1_sentence();
    let voc = sentence.vocabulary();
    let weights = standard_weights();
    println!(
        "{:>3} {:>26} {:>26} {:>26}",
        "n", "FOMC closed form", "FOMC lifted (FO²)", "WFOMC closed form"
    );
    for n in 0..=6 {
        let closed = closed_form::fomc_table1(n);
        let lifted = wfomc_fo2(&sentence, &voc, n, &Weights::ones()).unwrap();
        let weighted = closed_form::wfomc_table1(n, &weights);
        assert_eq!(closed, lifted);
        println!(
            "{n:>3} {:>26} {:>26} {:>26}",
            short(&closed),
            short(&lifted),
            short(&weighted)
        );
    }
    let grounded = GroundSolver::new().fomc(&sentence, 3);
    println!(
        "grounded cross-check at n=3: {grounded} (matches: {})",
        grounded == closed_form::fomc_table1(3)
    );
}

/// E2 — Figure 1.
fn figure1() {
    header("E2  Figure 1: conjunctive-query landscape");
    println!(
        "{:<14} {:>10} {:>18} {:>22}",
        "query", "acyclicity", "solver method", "FOMC at n=3"
    );
    let solver = Solver::new();
    for (name, q) in wfomc_bench::figure1_workload() {
        let class = query_hypergraph(&q).classify();
        let f = q.to_formula();
        let n = if f.vocabulary().num_ground_tuples(3) > 40 {
            2
        } else {
            3
        };
        let report = solver.fomc(&f, n).unwrap();
        println!(
            "{:<14} {:>10} {:>18} {:>22}",
            name,
            format!("{class:?}"),
            report.method.to_string(),
            format!("{} (n={n})", short(&report.value))
        );
    }
    println!("\nlifted chain-of-3 FOMC series (γ-acyclic, PTIME):");
    let chain = catalog::chain_query(3);
    for n in [2usize, 4, 8, 16] {
        let v = gamma_acyclic_wfomc(&chain, n, &Weights::ones()).unwrap();
        println!("  n = {n:>3}: {}", short(&v));
    }
}

/// E3 — Figure 2.
fn figure2() {
    header("E3  Figure 2: #SAT → FO² FOMC (combined complexity)");
    let (f, vars) = wfomc_bench::figure2_boolean_formula();
    let models = wfomc::prop::counter::wmc_formula(&f, &wfomc::prop::VarWeights::ones(vars));
    let red = sharp_sat_to_fomc(&f, vars);
    let count = GroundSolver::new().fomc(&red.sentence, red.domain_size);
    let factorial: i64 = (1..=(red.domain_size as i64)).product();
    println!("F = {f},  #F = {models}");
    println!(
        "FOMC(ϕ_F, {}) = {}  =  (n+1)!·#F = {}·{}",
        red.domain_size, count, factorial, models
    );
    println!("\nsize of ϕ_F as |F| grows (the sentence is part of the input):");
    for vars in [2usize, 4, 8, 16] {
        let r = sharp_sat_to_fomc(&PropFormula::var(0), vars);
        println!(
            "  {vars:>3} Boolean variables → {:>7} AST nodes",
            r.sentence.size()
        );
    }
}

/// E4 — Table 2.
fn table2() {
    header("E4  Table 2: open problems (grounded fallback only)");
    let solver = Solver::new();
    println!(
        "{:<34} {:>14} {:>20} {:>20}",
        "sentence", "method", "FOMC n=2", "FOMC n=3"
    );
    for (name, f) in catalog::table2_open_problems() {
        let r2 = solver.fomc(&f, 2).unwrap();
        let n3 = if f.vocabulary().num_ground_tuples(3) <= 27 {
            short(&solver.fomc(&f, 3).unwrap().value)
        } else {
            "(skipped)".to_string()
        };
        println!(
            "{:<34} {:>14} {:>20} {:>20}",
            name,
            r2.method.to_string(),
            short(&r2.value),
            n3
        );
    }
}

/// E5 — Theorem 3.7.
fn qs4() {
    header("E5  Theorem 3.7: the QS4 dynamic program");
    println!("{:>4} {:>30} {:>30}", "n", "FOMC (DP)", "grounded check");
    for n in [0usize, 1, 2, 3, 6, 12, 24] {
        let dp = wfomc_qs4(n, &Weights::ones());
        let check = if n <= 3 {
            let g = GroundSolver::new().fomc(&catalog::qs4(), n);
            format!(
                "{} ({})",
                short(&g),
                if g == dp { "ok" } else { "MISMATCH" }
            )
        } else {
            "(too large to ground)".to_string()
        };
        println!("{n:>4} {:>30} {:>30}", short(&dp), check);
    }
}

/// E6 — Appendix C.
fn fo2() {
    header("E6  Appendix C: FO² data complexity is polynomial");
    let weights = standard_weights();
    for (name, sentence) in [
        ("∀x∃y R(x,y)", catalog::forall_exists_edge()),
        ("spouse constraint", catalog::spouse_constraint()),
        ("smokers constraint", catalog::smokers_constraint()),
    ] {
        let voc = sentence.vocabulary();
        print!("{name:<22}");
        for n in [2usize, 4, 8, 16] {
            let v = wfomc_fo2(&sentence, &voc, n, &weights).unwrap();
            print!("  n={n}: {:<18}", short(&v));
        }
        println!();
    }
}

/// E6b — scaling of the prefix-sharing cell-sum engine with the domain size.
fn fo2_scaling() {
    fo2_scaling_with_sizes(&[25, 50, 100]);
}

fn fo2_scaling_with_sizes(sizes: &[usize]) {
    header("E6b  FO² scaling: prefix-sharing cell-sum engine");
    let weights = standard_weights();
    println!(
        "{:<18} {:>4} {:>6} {:>12} {:>12} {:>10}",
        "sentence", "n", "cells", "terms", "pruned", "ms"
    );
    for (name, sentence) in [
        ("forall-exists", catalog::forall_exists_edge()),
        ("partition-12cell", fo2_scaling_workload()),
    ] {
        let voc = sentence.vocabulary();
        for &n in sizes {
            let start = Instant::now();
            let (_, stats) = wfomc_fo2_with_stats(&sentence, &voc, n, &weights).unwrap();
            let ms = start.elapsed().as_secs_f64() * 1e3;
            println!(
                "{name:<18} {n:>4} {:>6} {:>12} {:>12} {ms:>10.1}",
                stats.total_valid_cells, stats.compositions_summed, stats.compositions_pruned
            );
        }
    }
}

/// E11 — the plan-then-execute API: `k` repeated queries per sentence,
/// one-shot `Solver::wfomc` per point vs one plan reused for every point
/// (plan creation included; values are cross-checked for equality).
fn plan_reuse_with_k(k: usize) {
    header("E11  Plan-then-execute: analyze once, count many");
    println!(
        "{:<34} {:>18} {:>12} {:>10} {:>8}",
        format!("workload (k = {k})"),
        "method",
        "one-shot ms",
        "plan ms",
        "speedup"
    );
    for (name, solver, sentence, points) in plan_reuse_workloads(k) {
        let voc = sentence.vocabulary();
        let start = Instant::now();
        let one_shot: Vec<_> = points
            .iter()
            .map(|(n, w)| solver.wfomc(&sentence, &voc, *n, w).unwrap().value)
            .collect();
        let one_shot_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let plan = solver.plan(&Problem::new(sentence.clone())).unwrap();
        let planned: Vec<_> = points
            .iter()
            .map(|(n, w)| plan.count(*n, w).unwrap().value)
            .collect();
        let plan_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(one_shot, planned, "plan and one-shot disagree on {name}");
        println!(
            "{name:<34} {:>18} {one_shot_ms:>12.1} {plan_ms:>10.1} {:>7.1}×",
            plan.method().to_string(),
            one_shot_ms / plan_ms
        );
    }
}

/// E13 — the vendored bignum's hot paths: inline small values, Karatsuba
/// multiplication, Euclid gcd, the balanced sum-tree accumulator. Pure
/// microbenchmarks plus the lifted workloads that bottom out in them
/// (snapshot and before/after numbers in `BENCH_bignum.json`).
fn bignum() {
    header("E13  Bignum: inline small values + Karatsuba");
    println!("{:<26} {:>10}", "workload", "ms");
    let weights = standard_weights();
    let row = |name: &str, f: &mut dyn FnMut()| {
        println!("{name:<26} {:>10.2}", time_ms(&mut *f));
    };
    row("square-chain-10", &mut || drop(bignum_square_chain(10)));
    row("factorial-3000", &mut || drop(bignum_factorial_chain(3000)));
    row("harmonic-500", &mut || drop(bignum_harmonic(500)));
    let smokers = catalog::smokers_constraint();
    let voc = smokers.vocabulary();
    row("fo2-smokers-30", &mut || {
        wfomc_fo2(&smokers, &voc, 30, &weights).expect("smokers lifts");
    });
}

/// The CI smoke test: every lifted pipeline once, at sizes that finish in
/// well under a minute, with cross-checks against closed forms / grounding.
/// Emits machine-readable per-phase timings (JSON) so CI artifacts keep a
/// perf history alongside the textual output.
fn smoke() {
    let mut timings: Vec<(&str, f64)> = Vec::new();
    let mut phase = |name: &'static str, f: &mut dyn FnMut()| {
        timings.push((name, time_ms(&mut *f)));
    };
    phase("table1", &mut table1);
    phase("qs4", &mut qs4);
    phase("fo2", &mut fo2);
    phase("fo2-scaling-25", &mut || fo2_scaling_with_sizes(&[25]));
    phase("plan-reuse-k4", &mut || plan_reuse_with_k(4));
    phase("algebra-8-4", &mut || algebra_with_sizes(&[8], &[4]));
    phase("bignum", &mut bignum);
    phase("closed-forms", &mut closed_forms);

    let path =
        env::var("SMOKE_TIMINGS_JSON").unwrap_or_else(|_| "target/smoke-timings.json".to_string());
    let rows: Vec<String> = timings
        .iter()
        .map(|(name, ms)| format!("  {{\"phase\": \"{name}\", \"ms\": {ms:.2}}}"))
        .collect();
    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nsmoke timings written to {path}"),
        Err(e) => eprintln!("\nsmoke: could not write timings to {path}: {e}"),
    }
    write_metrics_snapshot("smoke", "SMOKE_METRICS_JSON", "target/metrics-smoke.json");

    // One canonical `wfomc-report/v1` object as a CI artifact — the same
    // `SolverReport::to_json` serialization the query service returns for
    // every count, so wire-format drift shows up as an artifact diff.
    let report = Problem::new(table1_workload())
        .plan()
        .expect("table1 plans")
        .count_default(12)
        .expect("table1 counts")
        .to_json();
    let path =
        env::var("SMOKE_REPORT_JSON").unwrap_or_else(|_| "target/report-smoke.json".to_string());
    match std::fs::write(&path, format!("{report}\n")) {
        Ok(()) => println!("solver report written to {path}"),
        Err(e) => eprintln!("smoke: could not write solver report to {path}: {e}"),
    }
    println!("smoke: ok");
}

/// Writes the current `wfomc-obs/v1` metrics snapshot for CI artifacts.
/// Counters are live under `--features obs` and all zeros otherwise — the
/// file exists either way, so artifact uploads never dangle.
fn write_metrics_snapshot(run: &str, env_override: &str, default_path: &str) {
    wfomc_obs::flush_thread();
    let path = env::var(env_override).unwrap_or_else(|_| default_path.to_string());
    let json = wfomc_obs::snapshot()
        .label("run", run)
        .label(
            "obs_feature",
            if cfg!(feature = "obs") { "on" } else { "off" },
        )
        .to_json();
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("metrics snapshot written to {path}"),
        Err(e) => eprintln!("{run}: could not write metrics snapshot to {path}: {e}"),
    }
}

/// The `trace` subcommand: per-phase timings of one experiment, printed and
/// written to `target/trace.json` (override with `TRACE_JSON`).
fn trace_experiment(experiment: &str) {
    header(&format!("Trace: {experiment}, phase by phase"));
    let trace = run_trace(experiment);
    println!("{:<12} {:>10}", "phase", "ms");
    for (phase, ms) in &trace.phases {
        println!("{phase:<12} {ms:>10.3}");
    }
    let sum: f64 = trace.phases.iter().map(|(_, ms)| ms).sum();
    println!(
        "{:<12} {sum:>10.3}   (wall {:.3} ms)",
        "total", trace.wall_ms
    );
    // Steal balance of the work-stealing fan-outs under the trace (live
    // under `--features obs`, all zeros otherwise): how many queue transfers
    // rebalanced uneven subtrees, and how many lane batches the run packed.
    wfomc_obs::flush_thread();
    println!(
        "steal balance: {} steals, {} lane batches ({} lane points) across {} cores",
        wfomc_obs::metrics::CELLSUM_STEALS.get(),
        wfomc_obs::metrics::CELLSUM_LANE_BATCHES.get(),
        wfomc_obs::metrics::BATCH_LANE_POINTS.get(),
        std::thread::available_parallelism().map_or(1, |c| c.get())
    );
    let path = env::var("TRACE_JSON").unwrap_or_else(|_| "target/trace.json".to_string());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, trace.to_json()) {
        Ok(()) => println!("trace written to {path}"),
        Err(e) => eprintln!("trace: could not write {path}: {e}"),
    }
}

// ---------------------------------------------------------------------------
// CI perf-regression gate
// ---------------------------------------------------------------------------

/// Extracts the number following `"field":` after all `anchors` have been
/// matched in order — a deliberately tiny scanner for this repository's own
/// `BENCH_*.json` snapshots (no JSON dependency in the workspace). The field
/// lookup is bounded to the anchored object (it stops at the next `}`), so a
/// baseline row that loses its field is a hard `None` rather than a silent
/// read from the following row.
fn json_number_after(content: &str, anchors: &[&str], field: &str) -> Option<f64> {
    let mut pos = 0usize;
    for anchor in anchors {
        pos += content[pos..].find(anchor)? + anchor.len();
    }
    let end = content[pos..].find('}').map_or(content.len(), |e| pos + e);
    let scope = &content[pos..end];
    let key = format!("\"{field}\":");
    let at = scope.find(&key)? + key.len();
    let number: String = scope[at..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    number.parse().ok()
}

/// One gated workload: where its baseline lives and how to re-measure it.
struct GateWorkload<'a> {
    name: &'static str,
    baseline_file: &'static str,
    anchors: &'static [&'static str],
    field: &'static str,
    run: Box<dyn FnMut() + 'a>,
}

/// Re-times the curated workloads and compares each against its committed
/// `BENCH_*.json` baseline. A workload fails the gate when its best-of-3
/// time exceeds `baseline × PERF_GATE_FACTOR + PERF_GATE_SLACK_MS`
/// (defaults 2.0 and 50 ms — tolerant of runner noise but loud about real
/// regressions). Results are also written as JSON to
/// `target/perf-gate.json`.
fn perf_gate() {
    if env::var("PERF_GATE_SKIP").is_ok_and(|v| v == "1") {
        println!("perf-gate: skipped (PERF_GATE_SKIP=1)");
        return;
    }
    let factor: f64 = env::var("PERF_GATE_FACTOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let slack_ms: f64 = env::var("PERF_GATE_SLACK_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50.0);

    // Setup (formula construction, vocabularies, workload tables) happens
    // here, outside the timed closures, so measured_ms times the same work
    // as the committed fo2_time / plan_time baselines.
    let weights = standard_weights();
    let fo2_run = |sentence: Formula, n: usize| {
        let w = weights.clone();
        let voc = sentence.vocabulary();
        move || {
            wfomc_fo2(&sentence, &voc, n, &w).expect("gate workload lifts");
        }
    };
    let plan_run = |workload: &'static str| {
        let (name, solver, sentence, points) = plan_reuse_workloads(16)
            .into_iter()
            .find(|(name, ..)| *name == workload)
            .expect("gate references a known plan-reuse workload");
        move || {
            let plan = solver
                .plan(&Problem::new(sentence.clone()))
                .unwrap_or_else(|e| panic!("{name} plans: {e:?}"));
            for (n, w) in &points {
                let _ = plan.count(*n, w).expect("gate count succeeds");
            }
        }
    };
    let engine = MlnEngine::new(&smokers_mln()).expect("smokers MLN builds");
    let smokes_query = exists(["x"], atom("Smokes", &["x"]));

    let mut gates: Vec<GateWorkload> = vec![
        GateWorkload {
            name: "fo2/forall-exists-30",
            baseline_file: "BENCH_fo2.json",
            anchors: &["\"workload\": \"forall-exists\", \"n\": 30"],
            field: "after_ms",
            run: Box::new(fo2_run(catalog::forall_exists_edge(), 30)),
        },
        GateWorkload {
            name: "fo2/smokers-30",
            baseline_file: "BENCH_fo2.json",
            anchors: &["\"workload\": \"smokers\", \"n\": 30"],
            field: "after_ms",
            run: Box::new(fo2_run(catalog::smokers_constraint(), 30)),
        },
        GateWorkload {
            name: "fo2/table1-12",
            baseline_file: "BENCH_fo2.json",
            anchors: &["\"workload\": \"table1\", \"n\": 12"],
            field: "after_ms",
            run: Box::new(fo2_run(catalog::table1_sentence(), 12)),
        },
        GateWorkload {
            name: "plan/quad-binary-n-sweep",
            baseline_file: "BENCH_plan.json",
            anchors: &["\"workload\": \"fo2/quad-binary-n-sweep\""],
            field: "plan_ms",
            run: Box::new(plan_run("fo2/quad-binary-n-sweep")),
        },
        GateWorkload {
            name: "plan/ground-circuit-sweep",
            baseline_file: "BENCH_plan.json",
            anchors: &["\"workload\": \"ground/transitivity-weight-sweep\""],
            field: "plan_ms",
            run: Box::new(plan_run("ground/transitivity-weight-sweep")),
        },
        GateWorkload {
            name: "algebra/mln-marginal-log-8",
            baseline_file: "BENCH_algebra.json",
            anchors: &["\"mln-marginal\"", "\"n=8\""],
            field: "log_f64_ms",
            run: Box::new(|| {
                let _ = engine
                    .probability_in(&smokes_query, 8, &LogF64)
                    .expect("marginal evaluates");
            }),
        },
        GateWorkload {
            name: "bignum/square-chain-10",
            baseline_file: "BENCH_bignum.json",
            anchors: &["\"workload\": \"square-chain-10\""],
            field: "after_ms",
            run: Box::new(|| drop(bignum_square_chain(10))),
        },
        GateWorkload {
            name: "bignum/harmonic-500",
            baseline_file: "BENCH_bignum.json",
            anchors: &["\"workload\": \"harmonic-500\""],
            field: "after_ms",
            run: Box::new(|| drop(bignum_harmonic(500))),
        },
    ];

    header("Perf-regression gate (baselines: committed BENCH_*.json)");
    println!("tolerance: measured ≤ baseline × {factor} + {slack_ms} ms   (best of 3 runs)");
    println!(
        "{:<28} {:>12} {:>12} {:>12}  status",
        "workload", "baseline ms", "measured ms", "allowed ms"
    );
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let mut rows: Vec<String> = Vec::new();
    let mut failed = false;
    for gate in &mut gates {
        let path = format!("{manifest_dir}/../../{}", gate.baseline_file);
        let content = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", gate.baseline_file));
        let Some(baseline) = json_number_after(&content, gate.anchors, gate.field) else {
            panic!(
                "no baseline for {} in {} (anchors {:?}, field {})",
                gate.name, gate.baseline_file, gate.anchors, gate.field
            );
        };
        (gate.run)(); // warm-up: thread-local memos, lazily compiled plans
        let measured = (0..3)
            .map(|_| time_ms(|| (gate.run)()))
            .fold(f64::INFINITY, f64::min);
        let allowed = baseline * factor + slack_ms;
        let ok = measured <= allowed;
        failed |= !ok;
        println!(
            "{:<28} {baseline:>12.2} {measured:>12.2} {allowed:>12.2}  {}",
            gate.name,
            if ok { "ok" } else { "REGRESSED" }
        );
        rows.push(format!(
            "  {{\"workload\": \"{}\", \"baseline_ms\": {baseline:.2}, \"measured_ms\": {measured:.2}, \
             \"allowed_ms\": {allowed:.2}, \"ok\": {ok}}}",
            gate.name
        ));
    }
    // Cache-effectiveness gate: the whole point of plan-then-execute is that
    // repeated counts hit the prepared caches. Re-run two plan-reuse
    // workloads on fresh plans and require their cache hit rates (always-on
    // accounting, no obs feature needed) to clear the bar: 16 points with
    // one distinct weight function / domain size ⇒ 15/16 = 93.75% ≥ 90%.
    let min_rate: f64 = env::var("PERF_GATE_MIN_HIT_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.90);
    println!(
        "\n{:<28} {:>12} {:>12}  status",
        "cache gate", "hit rate", "required"
    );
    for (gate_name, workload, family) in [
        (
            "cache/fo2-bind-hit-rate",
            "fo2/quad-binary-n-sweep",
            Method::Fo2,
        ),
        (
            "cache/ground-hit-rate",
            "ground/transitivity-weight-sweep",
            Method::Ground,
        ),
    ] {
        let (name, solver, sentence, points) = plan_reuse_workloads(16)
            .into_iter()
            .find(|(name, ..)| *name == workload)
            .expect("cache gate references a known plan-reuse workload");
        let plan = solver
            .plan(&Problem::new(sentence))
            .unwrap_or_else(|e| panic!("{name} plans: {e:?}"));
        assert_eq!(
            plan.method(),
            family,
            "{name} planned to an unexpected method"
        );
        for (n, w) in &points {
            let _ = plan.count(*n, w).expect("cache gate count succeeds");
        }
        let stats = plan.cache_stats();
        let rate = match family {
            Method::Fo2 => stats.fo2_bind_hit_rate(),
            _ => stats.ground_hit_rate(),
        }
        .unwrap_or(0.0);
        let ok = rate >= min_rate;
        failed |= !ok;
        println!(
            "{gate_name:<28} {:>11.1}% {:>11.1}%  {}",
            rate * 100.0,
            min_rate * 100.0,
            if ok { "ok" } else { "LOW" }
        );
        rows.push(format!(
            "  {{\"workload\": \"{gate_name}\", \"hit_rate\": {rate:.4}, \
             \"required\": {min_rate:.4}, \"ok\": {ok}}}"
        ));
    }

    // Budget-off guard gate: governing a solve must be free when no limits
    // are armed. Time the same warm plan through the ungoverned
    // `Plan::count` and through `Plan::count_with_limits` with
    // `ExecutionLimits::none()` (guard constructed, nothing armed) and
    // require the governed path within GUARD_GATE_FACTOR (default 1.01,
    // i.e. ≤1% relative overhead) plus GUARD_GATE_SLACK_MS of absolute
    // headroom for runner noise.
    let guard_factor: f64 = env::var("GUARD_GATE_FACTOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.01);
    let guard_slack_ms: f64 = env::var("GUARD_GATE_SLACK_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50.0);
    let guard_weights = standard_weights();
    let guard_plan = Solver::new()
        .plan(&Problem::new(catalog::table1_sentence()))
        .expect("table1 plans");
    let no_limits = ExecutionLimits::none();
    let ungoverned = || {
        let _ = guard_plan
            .count(30, &guard_weights)
            .expect("guard gate count succeeds");
    };
    let governed = || {
        let _ = guard_plan
            .count_with_limits(30, &guard_weights, &no_limits, None)
            .expect("guard gate governed count succeeds");
    };
    ungoverned(); // warm-up: both paths then share the same warm caches
    governed();
    let base_ms = (0..3)
        .map(|_| time_ms(ungoverned))
        .fold(f64::INFINITY, f64::min);
    let governed_ms = (0..3)
        .map(|_| time_ms(governed))
        .fold(f64::INFINITY, f64::min);
    let allowed = base_ms * guard_factor + guard_slack_ms;
    let ok = governed_ms <= allowed;
    failed |= !ok;
    println!(
        "\n{:<28} {:>12} {:>12} {:>12}  status",
        "guard gate (fo2/table1-30)", "ungoverned", "governed", "allowed ms"
    );
    println!(
        "{:<28} {base_ms:>12.2} {governed_ms:>12.2} {allowed:>12.2}  {}",
        "guard/budget-off-overhead",
        if ok { "ok" } else { "SLOW" }
    );
    rows.push(format!(
        "  {{\"workload\": \"guard/budget-off-overhead\", \"ungoverned_ms\": {base_ms:.2}, \
         \"governed_ms\": {governed_ms:.2}, \"allowed_ms\": {allowed:.2}, \"ok\": {ok}}}"
    ));

    // Serve overhead gate: k counts through an in-process wfomc-serve
    // daemon over loopback HTTP must stay within SERVE_GATE_FACTOR
    // (default 1.5, the serve PR's amortized-latency acceptance bar) of
    // the same k counts through a bare warm `Plan::count_default` loop,
    // plus SERVE_GATE_SLACK_MS of absolute headroom. The served time is
    // additionally held against the committed BENCH_serve.json baseline
    // (same k, same sentence, same n) under the standard factor/slack.
    let serve_factor: f64 = env::var("SERVE_GATE_FACTOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);
    let serve_slack_ms: f64 = env::var("SERVE_GATE_SLACK_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25.0);
    let (serve_k, serve_n) = (32usize, 12usize);
    let serve_sentence = table1_workload();
    let serve_plan = Problem::new(serve_sentence.clone())
        .plan()
        .expect("serve gate: table1 plans");
    let _ = serve_plan
        .count_default(serve_n)
        .expect("serve gate warm-up");
    let serve_bare = || {
        for _ in 0..serve_k {
            let _ = serve_plan
                .count_default(serve_n)
                .expect("serve gate bare count");
        }
    };
    let server = wfomc_serve::Server::bind(&wfomc_serve::ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        capacity: 8,
        registry_path: None,
    })
    .expect("serve gate binds loopback");
    let serve_handle = server.handle();
    let serve_addr = server.local_addr();
    let serve_daemon = std::thread::spawn(move || server.run());
    let reply = wfomc_serve::client::post(
        serve_addr,
        "/v1/plans",
        &format!("{{\"sentence\": \"{serve_sentence}\"}}"),
    )
    .expect("serve gate registers");
    assert_eq!(reply.status, 201, "serve gate register: {}", reply.body);
    let serve_id = reply
        .json()
        .expect("register body parses")
        .get("id")
        .and_then(|v| v.as_str().map(str::to_string))
        .expect("register returns an id");
    let count_path = format!("/v1/plans/{serve_id}/count");
    let count_body = format!("{{\"n\": {serve_n}}}");
    let serve_request = || {
        let reply = wfomc_serve::client::post(serve_addr, &count_path, &count_body)
            .expect("serve gate count request");
        assert_eq!(reply.status, 200, "serve gate count: {}", reply.body);
    };
    serve_request(); // warm-up: binds the served plan's weights once
    let serve_loop = || {
        for _ in 0..serve_k {
            serve_request();
        }
    };
    let serve_bare_ms = (0..3)
        .map(|_| time_ms(serve_bare))
        .fold(f64::INFINITY, f64::min);
    let served_ms = (0..3)
        .map(|_| time_ms(serve_loop))
        .fold(f64::INFINITY, f64::min);
    serve_handle.shutdown();
    serve_daemon
        .join()
        .expect("serve gate daemon thread")
        .expect("serve gate clean drain");
    let serve_allowed = serve_bare_ms * serve_factor + serve_slack_ms;
    let serve_baseline = {
        let path = format!("{manifest_dir}/../../BENCH_serve.json");
        let content = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline BENCH_serve.json: {e}"));
        json_number_after(
            &content,
            &["\"workload\": \"serve/table1-n12\", \"workers\": 1"],
            "served_ms",
        )
        .expect("BENCH_serve.json has the workers=1 served_ms baseline")
    };
    let baseline_allowed = serve_baseline * factor + slack_ms;
    let ok = served_ms <= serve_allowed && served_ms <= baseline_allowed;
    failed |= !ok;
    println!(
        "\n{:<28} {:>12} {:>12} {:>12}  status",
        "serve gate (table1-n12 k32)", "bare ms", "served ms", "allowed ms"
    );
    println!(
        "{:<28} {serve_bare_ms:>12.2} {served_ms:>12.2} {:>12.2}  {}",
        "serve/amortized-overhead",
        serve_allowed.min(baseline_allowed),
        if ok { "ok" } else { "SLOW" }
    );
    rows.push(format!(
        "  {{\"workload\": \"serve/amortized-overhead\", \"bare_ms\": {serve_bare_ms:.2}, \
         \"served_ms\": {served_ms:.2}, \"baseline_ms\": {serve_baseline:.2}, \
         \"allowed_ms\": {:.2}, \"ok\": {ok}}}",
        serve_allowed.min(baseline_allowed)
    ));

    // Lane-batching gate: the k=32 same-`n` weight sweep through
    // `Plan::count_batch_log` must stay ≥3× faster than the committed
    // per-point `count_batch` baseline (BENCH_lanes.json; the 32 exact n=30
    // traversals are NOT re-run — they would dominate the gate's wall
    // clock) and must not regress beyond the standard factor against the
    // committed lane time itself.
    let lane_points = lane_sweep_points(30, 32);
    let lane_plan = Problem::new(table1_workload())
        .plan()
        .expect("lane gate: table1 plans");
    let lane_run = || {
        for result in lane_plan.count_batch_log(&lane_points) {
            let _ = result.expect("lane gate point counts");
        }
    };
    lane_run(); // warm-up: binds the lane weight tables once
    let lane_ms = (0..3)
        .map(|_| time_ms(lane_run))
        .fold(f64::INFINITY, f64::min);
    let lanes_path = format!("{manifest_dir}/../../BENCH_lanes.json");
    let lanes_content = std::fs::read_to_string(&lanes_path)
        .unwrap_or_else(|e| panic!("cannot read baseline BENCH_lanes.json: {e}"));
    let lane_anchors: &[&str] = &["\"workload\": \"fo2-table1-30\", \"k\": 32"];
    let per_point_baseline = json_number_after(&lanes_content, lane_anchors, "per_point_ms")
        .expect("BENCH_lanes.json has the k=32 per_point_ms baseline");
    let lane_baseline = json_number_after(&lanes_content, lane_anchors, "lane_ms")
        .expect("BENCH_lanes.json has the k=32 lane_ms baseline");
    let speedup_allowed = per_point_baseline / 3.0 + slack_ms;
    let regress_allowed = lane_baseline * factor + slack_ms;
    let lane_allowed = speedup_allowed.min(regress_allowed);
    let ok = lane_ms <= lane_allowed;
    failed |= !ok;
    println!(
        "\n{:<28} {:>12} {:>12} {:>12}  status",
        "lane gate (table1-30 k32)", "per-pt base", "lane ms", "allowed ms"
    );
    println!(
        "{:<28} {per_point_baseline:>12.2} {lane_ms:>12.2} {lane_allowed:>12.2}  {}",
        "lanes/batch-speedup",
        if ok { "ok" } else { "SLOW" }
    );
    rows.push(format!(
        "  {{\"workload\": \"lanes/batch-speedup\", \"per_point_baseline_ms\": {per_point_baseline:.2}, \
         \"lane_baseline_ms\": {lane_baseline:.2}, \"lane_ms\": {lane_ms:.2}, \
         \"allowed_ms\": {lane_allowed:.2}, \"ok\": {ok}}}"
    ));

    // Scaling-efficiency check: with ≥2 cores, the work-stealing top-level
    // cell split must actually buy wall clock — the parallel exact count on
    // fo2/table1-30 must beat the serial one by SCALE_GATE_MIN_SPEEDUP
    // (default 1.05×) after SCALE_GATE_SLACK_MS of noise headroom. On a
    // 1-core container the comparison is meaningless, so it auto-skips with
    // a logged notice and the gate stays green.
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if cores < 2 {
        println!("\nscaling check skipped: available_parallelism() = {cores}");
        rows.push(format!(
            "  {{\"workload\": \"scaling/fo2-table1-30\", \"skipped\": true, \
             \"available_parallelism\": {cores}}}"
        ));
    } else {
        let min_speedup: f64 = env::var("SCALE_GATE_MIN_SPEEDUP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.05);
        let scale_slack_ms: f64 = env::var("SCALE_GATE_SLACK_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50.0);
        let prepared = Fo2Prepared::prepare(&table1_workload(), &table1_workload().vocabulary())
            .expect("scaling check: table1 prepares");
        let scale_weights = standard_weights();
        let _ = prepared.count(30, &scale_weights, false); // warm the binding
        let serial_ms = (0..3)
            .map(|_| time_ms(|| drop(prepared.count(30, &scale_weights, false))))
            .fold(f64::INFINITY, f64::min);
        let parallel_ms = (0..3)
            .map(|_| time_ms(|| drop(prepared.count(30, &scale_weights, true))))
            .fold(f64::INFINITY, f64::min);
        let allowed = serial_ms / min_speedup + scale_slack_ms;
        let ok = parallel_ms <= allowed;
        failed |= !ok;
        println!(
            "\n{:<28} {:>12} {:>12} {:>12}  status",
            format!("scaling gate ({cores} cores)"),
            "serial ms",
            "parallel ms",
            "allowed ms"
        );
        println!(
            "{:<28} {serial_ms:>12.2} {parallel_ms:>12.2} {allowed:>12.2}  {}",
            "scaling/fo2-table1-30",
            if ok { "ok" } else { "NO SCALING" }
        );
        rows.push(format!(
            "  {{\"workload\": \"scaling/fo2-table1-30\", \"cores\": {cores}, \
             \"serial_ms\": {serial_ms:.2}, \"parallel_ms\": {parallel_ms:.2}, \
             \"allowed_ms\": {allowed:.2}, \"ok\": {ok}}}"
        ));
    }

    // Warm-restart gate: booting a 20-plan registry from its wfomc-snap/v1
    // snapshots must be at least SNAP_GATE_FACTOR (default 10, the
    // warm-restart PR's acceptance bar) faster than replanning the same
    // registry from its JSONL log, plus SNAP_GATE_SLACK_MS of absolute
    // headroom. The warm boot is additionally held against the committed
    // BENCH_snap.json baseline under the standard factor/slack. The cold
    // boot is timed once (its cost already averages over 20 replans); the
    // warm boot is best of 3.
    let snap_factor: f64 = env::var("SNAP_GATE_FACTOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let snap_slack_ms: f64 = env::var("SNAP_GATE_SLACK_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25.0);
    let snap_plans = 20usize;
    let snap_dir = std::env::temp_dir().join(format!("wfomc-repro-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snap_dir);
    let snap_registry = snap_dir.join("registry.jsonl");
    {
        // The snap_time workload: distinct FO² sentences whose pair tables
        // enumerate 2^4 binary interpretations per cell pair when planned.
        let mut log = wfomc_serve::RegistryLog::new(&snap_registry);
        for k in 0..snap_plans {
            log.append(
                &format!(
                    "forall x. forall y. (A{k}(x) & E{k}(x,y)) | (B{k}(y) & F{k}(x,y)) \
                     | (C{k}(x) & G{k}(x,y)) | (A{k}(y) & H{k}(x,y))"
                ),
                &Weights::ones(),
            )
            .expect("snap gate: append registry log");
        }
    }
    let snap_config = wfomc_serve::ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        capacity: 256,
        registry_path: Some(snap_registry.clone()),
    };
    let snap_bind = || {
        let server = wfomc_serve::Server::bind(&snap_config).expect("snap gate binds loopback");
        assert_eq!(
            server.handle().plans(),
            snap_plans,
            "snap gate: boot replayed the whole log"
        );
    };
    let snap_cold_ms = time_ms(snap_bind); // no snapshots yet: replans + writes
    let snap_warm_ms = (0..3)
        .map(|_| time_ms(snap_bind))
        .fold(f64::INFINITY, f64::min);
    let _ = std::fs::remove_dir_all(&snap_dir);
    let snap_baseline = {
        let path = format!("{manifest_dir}/../../BENCH_snap.json");
        let content = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline BENCH_snap.json: {e}"));
        json_number_after(
            &content,
            &["\"workload\": \"snap/registry-20\""],
            "warm_boot_ms",
        )
        .expect("BENCH_snap.json has the registry-20 warm_boot_ms baseline")
    };
    let snap_allowed =
        (snap_cold_ms / snap_factor + snap_slack_ms).min(snap_baseline * factor + slack_ms);
    let ok = snap_warm_ms <= snap_allowed;
    failed |= !ok;
    println!(
        "\n{:<28} {:>12} {:>12} {:>12}  status",
        "snap gate (registry-20)", "cold ms", "warm ms", "allowed ms"
    );
    println!(
        "{:<28} {snap_cold_ms:>12.2} {snap_warm_ms:>12.2} {snap_allowed:>12.2}  {}",
        "snap/warm-boot-speedup",
        if ok { "ok" } else { "SLOW" }
    );
    rows.push(format!(
        "  {{\"workload\": \"snap/warm-boot-speedup\", \"cold_boot_ms\": {snap_cold_ms:.2}, \
         \"warm_boot_ms\": {snap_warm_ms:.2}, \"baseline_warm_ms\": {snap_baseline:.2}, \
         \"allowed_ms\": {snap_allowed:.2}, \"ok\": {ok}}}"
    ));

    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    let _ = std::fs::create_dir_all("target");
    if let Err(e) = std::fs::write("target/perf-gate.json", &json) {
        eprintln!("perf-gate: could not write target/perf-gate.json: {e}");
    }
    write_metrics_snapshot(
        "perf-gate",
        "PERF_GATE_METRICS_JSON",
        "target/metrics-perf-gate.json",
    );
    if failed {
        eprintln!(
            "perf-gate: FAILED — a workload regressed beyond {factor}× its committed baseline, \
             a plan-reuse cache hit rate fell below {:.0}%, \
             the budget-off governed path exceeded {guard_factor}× the ungoverned time, \
             the serve path exceeded {serve_factor}× the bare count loop, the lane batch \
             fell below 3× the committed per-point baseline, the parallel cell split \
             stopped scaling, or the snapshot-warm boot fell below {snap_factor}× the \
             cold replan. If the regression is expected (e.g. a slower but more capable \
             path), update the BENCH_*.json baselines in the same change; for a noisy \
             runner, raise PERF_GATE_FACTOR / PERF_GATE_SLACK_MS / GUARD_GATE_SLACK_MS / \
             SERVE_GATE_SLACK_MS / SCALE_GATE_SLACK_MS / SNAP_GATE_SLACK_MS or set \
             PERF_GATE_SKIP=1.",
            min_rate * 100.0
        );
        std::process::exit(1);
    }
    println!("perf-gate: ok");
}

/// E8 — Examples 1.1/1.2.
fn mln() {
    header("E8  MLN inference via the Example 1.2 reduction");
    let mln = smokers_mln();
    let engine = MlnEngine::new(&mln).unwrap();
    let q = exists(["x"], atom("Smokes", &["x"]));
    println!(
        "{:>3} {:>26} {:>22} {:>14}",
        "n", "Z(n) lifted", "ground-semantics check", "Pr[∃ smoker]"
    );
    for n in 1..=6 {
        let z = engine.partition_function(n).unwrap();
        let check = if n <= 2 {
            let b = partition_function_brute(&mln, n);
            if b == z {
                "ok".to_string()
            } else {
                "MISMATCH".to_string()
            }
        } else {
            "-".to_string()
        };
        let p = engine.probability(&q, n).unwrap();
        println!(
            "{n:>3} {:>26} {:>22} {:>14.6}",
            short(&z),
            check,
            approx(&p)
        );
    }
}

/// E12 — the generic evaluation algebra: one plan, three rings. Exact vs
/// log-space-float MLN inference, and Poly-symbolic vs interpolated
/// equality removal, with cross-checks.
fn algebra_with_sizes(mln_sizes: &[usize], eq_sizes: &[usize]) {
    header("E12  Evaluation algebras: exact · log-float · polynomial");
    let engine = MlnEngine::new(&smokers_mln()).unwrap();
    let q = exists(["x"], atom("Smokes", &["x"]));
    println!(
        "{:<26} {:>4} {:>12} {:>12} {:>9}",
        "workload", "n", "exact ms", "log-f64 ms", "speedup"
    );
    for &n in mln_sizes {
        // Warm the plan cache so both timings measure evaluation only.
        let _ = engine.probability(&q, 1).unwrap();
        let start = Instant::now();
        let exact = engine.probability(&q, n).unwrap();
        let exact_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let log = engine.probability_in(&q, n, &LogF64).unwrap();
        let log_ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(
            (approx(&exact) - log.to_f64()).abs() < 1e-6,
            "log-f64 marginal diverged at n = {n}"
        );
        println!(
            "{:<26} {n:>4} {exact_ms:>12.2} {log_ms:>12.3} {:>8.1}×",
            "mln marginal (smokers)",
            exact_ms / log_ms
        );
    }
    let sentence = forall(["x", "y"], or(vec![atom("R", &["x", "y"]), eq("x", "y")]));
    let voc = sentence.vocabulary();
    let weights = Weights::from_ints([("R", 2, 3)]);
    println!(
        "{:<26} {:>4} {:>12} {:>12} {:>9}",
        "workload", "n", "interp ms", "poly ms", "speedup"
    );
    for &n in eq_sizes {
        let start = Instant::now();
        let interpolated = wfomc_via_equality_removal_interpolated(&sentence, &voc, n, &weights);
        let interp_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let symbolic = wfomc_via_equality_removal(&sentence, &voc, n, &weights);
        let poly_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            symbolic, interpolated,
            "equality removal diverged at n = {n}"
        );
        println!(
            "{:<26} {n:>4} {interp_ms:>12.2} {poly_ms:>12.2} {:>8.1}×",
            "equality removal (Lemma 3.5)",
            interp_ms / poly_ms
        );
    }
}

/// E9 — Theorem 3.1 / Appendix B.
fn theta1_experiment() {
    header("E9  Appendix B: the Θ₁ encoding");
    for (name, tm) in [
        ("scanner (deterministic)", scanner_machine(1)),
        ("coin-flip (nondeterministic)", coin_flip_machine(1)),
    ] {
        let enc = theta1(&tm);
        println!(
            "{name:<30} FO{}  |Θ₁| = {:>6} AST nodes, {:>3} predicates",
            enc.sentence.distinct_variable_count(),
            enc.sentence.size(),
            enc.vocabulary.len()
        );
        print!("  #accepting(n): ");
        for n in 1..=6 {
            print!("n={n}:{}  ", tm.count_accepting(n));
        }
        println!();
    }
    let enc = theta1(&scanner_machine(1));
    let counted = wfomc::ground::fomc(&enc.sentence, 1);
    println!("ground check at n=1 (scanner): FOMC(Θ₁,1) = {counted} = 1!·1");
}

/// E10 — closed forms.
fn closed_forms() {
    header("E10  Introduction / §2 closed forms");
    println!(
        "{:>4} {:>24} {:>24} {:>24}",
        "n", "(2ⁿ−1)ⁿ", "(w+w̄)ⁿ−w̄ⁿ  (w=3,w̄=2)", "dual CQ count"
    );
    for n in [1usize, 2, 3, 4, 6, 8] {
        println!(
            "{n:>4} {:>24} {:>24} {:>24}",
            short(&closed_form::fomc_forall_exists_edge(n)),
            short(&closed_form::wfomc_exists_unary(
                n,
                &weight_int(3),
                &weight_int(2)
            )),
            short(&closed_form::fomc_table1_dual_cq(n))
        );
    }
}
