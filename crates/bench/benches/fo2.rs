//! E6 — Appendix C: the FO² cell algorithm. Polynomial scaling in the domain
//! size for fixed sentences, compared against the exponential grounded
//! pipeline, plus an ablation of the cell-pruning step (statistics of valid
//! cells and compositions summed are exposed through `Fo2Stats`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfomc::core::fo2::{wfomc_fo2, wfomc_fo2_with_stats};
use wfomc::ground::GroundSolver;
use wfomc::prelude::*;
use wfomc_bench::standard_weights;

fn bench_fo2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fo2");
    let weights = standard_weights();

    let sentences = vec![
        ("forall-exists", catalog::forall_exists_edge()),
        ("table1", catalog::table1_sentence()),
        ("spouse", catalog::spouse_constraint()),
        ("smokers", catalog::smokers_constraint()),
    ];

    for (name, sentence) in &sentences {
        let voc = sentence.vocabulary();
        for n in [6usize, 12, 30] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/lifted"), n),
                &n,
                |b, &n| b.iter(|| wfomc_fo2(sentence, &voc, n, &weights).unwrap()),
            );
        }
        group.bench_with_input(
            BenchmarkId::new(format!("{name}/grounded"), 3),
            &3,
            |b, &n| b.iter(|| GroundSolver::new().wfomc(sentence, &voc, n, &weights)),
        );
    }

    // Cell statistics (the cost drivers): report once as a benchmark of the
    // normalization + cell-construction pipeline alone (n = 1 keeps the
    // composition sum trivial).
    group.bench_function("normalization-and-cells/table1", |b| {
        let sentence = catalog::table1_sentence();
        let voc = sentence.vocabulary();
        b.iter(|| {
            wfomc_fo2_with_stats(&sentence, &voc, 1, &weights)
                .unwrap()
                .1
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_fo2
}
criterion_main!(benches);
