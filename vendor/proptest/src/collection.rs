//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy generating vectors of values from `element` with lengths in
/// `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy for `BTreeSet<S::Value>`.
///
/// Duplicates drawn from `element` are merged, so the generated set may be
/// smaller than the sampled size (the real proptest retries; for the random
/// structures generated in this workspace the distinction is irrelevant).
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.generate(rng);
        (0..target).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy generating ordered sets of values from `element` with at most
/// `size.end - 1` entries.
pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_vec_strategies_compose() {
        let mut rng = TestRng::for_test("nested");
        let clause = vec((0usize..6, crate::arbitrary::any::<bool>()), 0..4);
        let cnf = vec(clause, 0..8);
        for _ in 0..100 {
            let f = cnf.generate(&mut rng);
            assert!(f.len() < 8);
            for c in f {
                assert!(c.len() < 4);
                assert!(c.iter().all(|&(v, _)| v < 6));
            }
        }
    }

    #[test]
    fn btree_set_merges_duplicates() {
        let mut rng = TestRng::for_test("dups");
        let strat = btree_set(0usize..2, 3..4);
        for _ in 0..50 {
            let s = strat.generate(&mut rng);
            assert!(s.len() <= 2);
        }
    }
}
