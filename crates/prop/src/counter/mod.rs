//! Exact weighted model counters.
//!
//! Three interchangeable backends are provided:
//!
//! * [`WmcBackend::Enumerate`] — brute-force enumeration of all assignments.
//!   Simple and obviously correct; exponential in the number of variables.
//!   Used as the ground truth in tests and as a baseline in the
//!   `wmc_backends` ablation bench.
//! * [`WmcBackend::Dpll`] — a weighted DPLL search with unit propagation,
//!   connected-component decomposition and component caching. This is the
//!   default counter of the grounded WFOMC pipeline.
//! * [`WmcBackend::Circuit`] — knowledge compilation to a smoothed d-DNNF
//!   circuit (`wfomc-circuit`) by tracing the same DPLL search, then
//!   evaluating the circuit. For a single weight vector this costs slightly
//!   more than DPLL; its purpose is **compile-once / evaluate-many**: via
//!   [`circuit::CompiledWmc`], one compilation serves any number of weight
//!   vectors (each evaluation linear in circuit size), which is what the
//!   equality-removal interpolation and repeated-query serving paths use.
//!
//! All backends compute `WMC(F, w, w̄) = Σ_{θ ⊨ F} Π_i w-or-w̄(Xᵢ)` exactly,
//! with arbitrary (possibly negative) rational weights, over the universe
//! `0..max(cnf.num_vars, weights.len())` — variables beyond the weight table
//! count unweighted, table entries beyond the CNF contribute `w + w̄` each.

pub mod circuit;
mod dpll;
mod enumerate;

pub use circuit::{wmc_circuit, CompiledWmc};
pub use dpll::{wmc_dpll, wmc_dpll_guarded, wmc_dpll_guarded_in, wmc_dpll_in};
pub use enumerate::{
    wmc_enumerate, wmc_enumerate_in, wmc_formula, wmc_formula_guarded, wmc_formula_in,
    MAX_ENUMERATION_VARS,
};

use crate::cnf::Cnf;
use crate::formula::PropFormula;
use crate::tseitin::to_cnf;
use crate::weights::VarWeights;
use wfomc_guard::{Guard, Interrupt};
use wfomc_logic::algebra::{Algebra, VarPairs};
use wfomc_logic::weights::Weight;

/// Selects a weighted model counting backend.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WmcBackend {
    /// Brute-force enumeration of all assignments.
    Enumerate,
    /// Weighted DPLL with unit propagation, component decomposition and
    /// caching.
    #[default]
    Dpll,
    /// Knowledge compilation to a smoothed d-DNNF circuit, then linear
    /// evaluation; compile once with [`CompiledWmc`] to amortize over many
    /// weight vectors.
    Circuit,
}

/// Computes the weighted model count of a CNF with the chosen backend.
pub fn wmc(cnf: &Cnf, weights: &VarWeights, backend: WmcBackend) -> Weight {
    match backend {
        WmcBackend::Enumerate => wmc_enumerate(cnf, weights),
        WmcBackend::Dpll => wmc_dpll(cnf, weights),
        WmcBackend::Circuit => wmc_circuit(cnf, weights),
    }
}

/// Computes the weighted model count of an arbitrary propositional formula.
///
/// The enumerate backend evaluates the formula directly; the DPLL and
/// circuit backends first apply the count-preserving Tseitin transform.
pub fn wmc_formula_via(formula: &PropFormula, weights: &VarWeights, backend: WmcBackend) -> Weight {
    match backend {
        WmcBackend::Enumerate => wmc_formula(formula, weights),
        WmcBackend::Dpll => {
            let t = to_cnf(formula, weights);
            wmc_dpll(&t.cnf, &t.weights)
        }
        WmcBackend::Circuit => {
            let t = to_cnf(formula, weights);
            wmc_circuit(&t.cnf, &t.weights)
        }
    }
}

/// [`wmc_formula_via`] under a resource [`Guard`]: every backend ticks the
/// guard from its innermost loop, so deadlines, work caps and cancellation
/// interrupt mid-count. The guard's work unit is backend-specific
/// (assignments enumerated, DPLL sub-problems, compiler sub-problems).
pub fn wmc_formula_via_guarded(
    formula: &PropFormula,
    weights: &VarWeights,
    backend: WmcBackend,
    guard: &Guard,
) -> Result<Weight, Interrupt> {
    match backend {
        WmcBackend::Enumerate => wmc_formula_guarded(formula, weights, guard),
        WmcBackend::Dpll => {
            let t = to_cnf(formula, weights);
            wmc_dpll_guarded(&t.cnf, &t.weights, guard)
        }
        WmcBackend::Circuit => {
            let t = to_cnf(formula, weights);
            Ok(CompiledWmc::compile_guarded(&t.cnf, guard)?.wmc(&t.weights))
        }
    }
}

/// Unweighted model count of a CNF (all weights 1).
pub fn count_models(cnf: &Cnf, backend: WmcBackend) -> Weight {
    wmc(cnf, &VarWeights::ones(cnf.num_vars), backend)
}

/// [`wmc`] in an arbitrary [`Algebra`]: every backend runs the identical
/// weight-independent search/compilation and accumulates in the ring.
pub fn wmc_in<A: Algebra, W: VarPairs<A> + ?Sized>(
    cnf: &Cnf,
    algebra: &A,
    weights: &W,
    backend: WmcBackend,
) -> A::Elem {
    match backend {
        WmcBackend::Enumerate => wmc_enumerate_in(cnf, algebra, weights),
        WmcBackend::Dpll => wmc_dpll_in(cnf, algebra, weights),
        WmcBackend::Circuit => CompiledWmc::compile(cnf).wmc_in(algebra, weights),
    }
}

/// [`wmc_formula_via`] in an arbitrary [`Algebra`].
///
/// The Tseitin transform is weight-independent (definition variables carry
/// the pair `(1, 1)`, which is exactly what variables beyond the weight
/// table default to), so the encoding runs once on the formula alone and the
/// counters evaluate it in the ring.
pub fn wmc_formula_via_in<A: Algebra, W: VarPairs<A> + ?Sized>(
    formula: &PropFormula,
    algebra: &A,
    weights: &W,
    backend: WmcBackend,
) -> A::Elem {
    match backend {
        WmcBackend::Enumerate => wmc_formula_in(formula, algebra, weights),
        WmcBackend::Dpll | WmcBackend::Circuit => {
            let universe = formula.num_vars().max(weights.table_len());
            let t = to_cnf(formula, &VarWeights::ones(universe));
            match backend {
                WmcBackend::Dpll => wmc_dpll_in(&t.cnf, algebra, weights),
                _ => CompiledWmc::compile(&t.cnf).wmc_in(algebra, weights),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Lit;
    use proptest::prelude::*;
    use wfomc_logic::weights::{weight_int, weight_ratio};

    const ALL_BACKENDS: [WmcBackend; 3] =
        [WmcBackend::Enumerate, WmcBackend::Dpll, WmcBackend::Circuit];

    #[test]
    fn backends_agree_on_simple_cnf() {
        // (x0 ∨ x1) ∧ (¬x1 ∨ x2)
        let cnf = Cnf::new(
            3,
            vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::neg(1), Lit::pos(2)],
            ],
        );
        let w = VarWeights::ones(3);
        for backend in ALL_BACKENDS {
            // Truth-table check: assignments satisfying both clauses.
            assert_eq!(wmc(&cnf, &w, backend), weight_int(4), "{backend:?}");
        }
    }

    #[test]
    fn count_models_matches_known_value() {
        // x0 ∨ x1 has 3 models over 2 vars.
        let cnf = Cnf::new(2, vec![vec![Lit::pos(0), Lit::pos(1)]]);
        for backend in ALL_BACKENDS {
            assert_eq!(count_models(&cnf, backend), weight_int(3), "{backend:?}");
        }
    }

    #[test]
    fn formula_backends_agree() {
        let f = PropFormula::iff(
            PropFormula::var(0),
            PropFormula::or(PropFormula::var(1), PropFormula::not(PropFormula::var(2))),
        );
        let w = VarWeights::from_vecs(
            vec![weight_int(2), weight_ratio(1, 2), weight_int(3)],
            vec![weight_int(1), weight_int(1), weight_int(-1)],
        );
        let ground_truth = wmc_formula_via(&f, &w, WmcBackend::Enumerate);
        for backend in [WmcBackend::Dpll, WmcBackend::Circuit] {
            assert_eq!(
                wmc_formula_via(&f, &w, backend),
                ground_truth,
                "{backend:?}"
            );
        }
    }

    #[test]
    fn one_compilation_serves_many_weight_vectors() {
        // The equality-removal interpolation pattern: one CNF, many weight
        // vectors differing in a single variable's weight.
        let cnf = Cnf::new(
            4,
            vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::neg(1), Lit::pos(2)],
                vec![Lit::neg(0), Lit::pos(3)],
            ],
        );
        let compiled = CompiledWmc::compile(&cnf);
        for z in -3i64..=9 {
            let mut w = VarWeights::ones(4);
            w.set(1, weight_int(z), weight_int(1));
            w.set(3, weight_ratio(1, 2), weight_int(-2));
            assert_eq!(
                compiled.wmc(&w),
                wmc(&cnf, &w, WmcBackend::Enumerate),
                "z = {z}"
            );
        }
    }

    /// Random CNF generator for property tests.
    fn arb_cnf(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Cnf> {
        let clause = proptest::collection::vec((0..max_vars, any::<bool>()), 0..4);
        proptest::collection::vec(clause, 0..max_clauses).prop_map(move |raw| {
            let clauses = raw
                .into_iter()
                .map(|c| {
                    c.into_iter()
                        .map(|(v, pos)| Lit {
                            var: v,
                            positive: pos,
                        })
                        .collect()
                })
                .collect();
            Cnf::new(max_vars, clauses)
        })
    }

    /// Deterministic pseudo-random weights derived from the seed, including
    /// negative rationals.
    fn seeded_weights(num_vars: usize, seed: u64) -> VarWeights {
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        let mut s = seed as i64 + 1;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            weight_ratio((s % 5) - 1, 1 + (s % 4).unsigned_abs() as i64)
        };
        for _ in 0..num_vars {
            pos.push(next());
            neg.push(next());
        }
        VarWeights::from_vecs(pos, neg)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn backends_match_enumeration_on_random_cnfs(cnf in arb_cnf(6, 8)) {
            let w = VarWeights::ones(cnf.num_vars);
            let ground_truth = wmc(&cnf, &w, WmcBackend::Enumerate);
            prop_assert_eq!(wmc(&cnf, &w, WmcBackend::Dpll), ground_truth.clone());
            prop_assert_eq!(wmc(&cnf, &w, WmcBackend::Circuit), ground_truth);
        }

        #[test]
        fn backends_match_enumeration_with_weights(cnf in arb_cnf(5, 6), seed in 0u64..1000) {
            let w = seeded_weights(cnf.num_vars, seed);
            let ground_truth = wmc(&cnf, &w, WmcBackend::Enumerate);
            prop_assert_eq!(wmc(&cnf, &w, WmcBackend::Dpll), ground_truth.clone());
            prop_assert_eq!(wmc(&cnf, &w, WmcBackend::Circuit), ground_truth);
        }

        #[test]
        fn compiled_circuit_agrees_across_weight_sweeps(cnf in arb_cnf(5, 6), seed in 0u64..200) {
            // One compilation, several weight vectors — the compile-once /
            // evaluate-many contract, cross-checked against fresh DPLL runs.
            let compiled = CompiledWmc::compile(&cnf);
            for offset in 0..4 {
                let w = seeded_weights(cnf.num_vars, seed * 4 + offset);
                prop_assert_eq!(compiled.wmc(&w), wmc(&cnf, &w, WmcBackend::Dpll));
            }
        }
    }
}
