//! E1 — Table 1: the three WFOMC variants on Φ = ∀x∀y (R(x) ∨ S(x,y) ∨ T(y)).
//!
//! Series reproduced: the closed-form row, the lifted FO² computation of the
//! same quantity, the grounded baseline (exponential — only small n), and the
//! asymmetric variant via per-tuple weights (the row the paper marks #P-hard).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfomc::core::closed_form;
use wfomc::core::fo2::wfomc_fo2;
use wfomc::ground::{wfomc_asymmetric, GroundSolver};
use wfomc::prelude::*;
use wfomc_bench::{standard_weights, table1_workload};

fn bench_table1(c: &mut Criterion) {
    let sentence = table1_workload();
    let voc = sentence.vocabulary();
    let weights = standard_weights();

    let mut group = c.benchmark_group("table1");
    for n in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::new("closed-form", n), &n, |b, &n| {
            b.iter(|| closed_form::wfomc_table1(n, &weights))
        });
        group.bench_with_input(BenchmarkId::new("lifted-fo2", n), &n, |b, &n| {
            b.iter(|| wfomc_fo2(&sentence, &voc, n, &weights).unwrap())
        });
    }
    for n in [2usize, 3] {
        group.bench_with_input(BenchmarkId::new("grounded", n), &n, |b, &n| {
            b.iter(|| GroundSolver::new().wfomc(&sentence, &voc, n, &weights))
        });
        group.bench_with_input(BenchmarkId::new("asymmetric-grounded", n), &n, |b, &n| {
            b.iter(|| {
                wfomc_asymmetric(&sentence, &voc, n, |atom| {
                    let bump = atom.tuple.iter().sum::<usize>() as i64 + 1;
                    (weight_int(bump), weight_int(1))
                })
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_table1
}
criterion_main!(benches);
