//! # wfomc — Symmetric Weighted First-Order Model Counting
//!
//! A from-scratch Rust implementation of the algorithms, reductions and worked
//! examples of *Symmetric Weighted First-Order Model Counting* (Beame,
//! Van den Broeck, Gribkoff, Suciu — PODS 2015), packaged as a library for
//! exact lifted probabilistic inference.
//!
//! ## What you get
//!
//! * a first-order logic toolkit with exact rational weights
//!   ([`logic`], re-exported from `wfomc-logic`), plus a generic evaluation
//!   algebra (`logic::algebra`): every pipeline evaluates in exact
//!   rationals, sign-tracked log-space floats, or dense polynomials;
//! * propositional weighted model counting with three backends —
//!   enumeration, weighted DPLL, and d-DNNF knowledge compilation ([`prop`],
//!   [`circuit`]);
//! * Fagin's hypergraph acyclicity hierarchy ([`hypergraph`]);
//! * grounded baselines: brute-force enumeration and lineage + WMC
//!   ([`ground`]);
//! * the paper's lifted algorithms — Skolemization, the FO² cell algorithm,
//!   γ-acyclic conjunctive queries, the QS4 dynamic program — behind a single
//!   dispatching [`core::Solver`] ([`core`]);
//! * Markov Logic Networks with the Example 1.2 reduction to WFOMC ([`mln`]);
//! * the complexity reductions: counting Turing machines, the Θ₁ FO³
//!   encoding, #SAT → FO² FOMC, spectrum deciders ([`reductions`]).
//!
//! ## Quick start: plan once, count many
//!
//! The expensive part of symmetric WFOMC is analyzing the *sentence*
//! (Skolemization, cell decomposition, method selection); evaluating at a
//! domain size `n` and a weight function is the cheap, repeatable part. The
//! API is shaped around that split: describe a [`core::Problem`], let the
//! [`core::Solver`] analyze it **once** into a [`core::Plan`], then evaluate
//! the plan at as many `(n, weights)` points as you like.
//!
//! ```
//! use wfomc::prelude::*;
//!
//! // Φ = ∀x ∃y R(x,y): the introduction's example with (2ⁿ − 1)ⁿ models.
//! let phi = parse("forall x. exists y. R(x,y)").unwrap();
//! let problem = Problem::new(phi);
//! let plan = Solver::new().plan(&problem).unwrap();   // analysis happens here, once
//! assert_eq!(plan.method(), Method::Fo2);
//!
//! for n in 1..=8 {
//!     let report = plan.count(n, &Weights::ones()).unwrap();   // cheap per point
//!     let expected = weight_pow(&(weight_pow(&weight_int(2), n) - weight_int(1)), n);
//!     assert_eq!(report.value, expected);
//! }
//! println!("{}", plan.explain());   // what was prepared, and why
//! ```
//!
//! One-shot counting is still one call — [`core::Solver::wfomc`] /
//! [`core::Solver::fomc`] plan-then-count internally:
//!
//! ```
//! use wfomc::prelude::*;
//!
//! let phi = parse("forall x. exists y. R(x,y)").unwrap();
//! let report = Solver::new().fomc(&phi, 4).unwrap();
//! assert_eq!(report.value, weight_int(15 * 15 * 15 * 15));
//! assert_eq!(report.method, Method::Fo2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wfomc_circuit as circuit;
pub use wfomc_core as core;
pub use wfomc_ground as ground;
pub use wfomc_hypergraph as hypergraph;
pub use wfomc_logic as logic;
pub use wfomc_mln as mln;
pub use wfomc_prop as prop;
pub use wfomc_reductions as reductions;

/// One-stop import for applications and examples.
pub mod prelude {
    pub use wfomc_circuit::{CompileStats, CompiledCnf};
    pub use wfomc_core::closed_form;
    pub use wfomc_core::cq::CqMemo;
    pub use wfomc_core::cq::{chain_probability, gamma_acyclic_wfomc, query_hypergraph};
    pub use wfomc_core::fo2::wfomc_fo2;
    pub use wfomc_core::fo2::Fo2Prepared;
    pub use wfomc_core::normal::{
        remove_equality, remove_negation, skolemize, wfomc_via_equality_removal,
        wfomc_via_equality_removal_compiled, wfomc_via_equality_removal_interpolated,
        wfomc_via_equality_removal_with_oracle,
    };
    pub use wfomc_core::qs4::wfomc_qs4;
    pub use wfomc_core::{
        CancelToken, DegradePolicy, ExecutionLimits, LiftError, LimitsReport, Method, Plan,
        PlanReport, Problem, SolveError, Solver, SolverBuilder, SolverReport,
    };
    pub use wfomc_ground::{brute_force_fomc, brute_force_wfomc, CompiledWfomc, GroundSolver};
    pub use wfomc_hypergraph::{AcyclicityClass, Hypergraph};
    pub use wfomc_logic::algebra::{
        Algebra, AlgebraWeights, ElemWeights, Exact, LogF64, LogF64xN, LogWeight, LogWeightxN,
        Poly, VarPairs, LOG_LANES,
    };
    pub use wfomc_logic::builders::*;
    pub use wfomc_logic::catalog;
    pub use wfomc_logic::cq::ConjunctiveQuery;
    pub use wfomc_logic::parser::parse;
    pub use wfomc_logic::poly::Polynomial;
    pub use wfomc_logic::weights::{weight_int, weight_pow, weight_ratio, Weight, Weights};
    pub use wfomc_logic::{Formula, Predicate, Vocabulary};
    pub use wfomc_mln::{MarkovLogicNetwork, MlnEngine};
    pub use wfomc_prop::counter::CompiledWmc;
    pub use wfomc_prop::{PropFormula, WmcBackend};
    pub use wfomc_reductions::sharp_sat::sharp_sat_to_fomc;
    pub use wfomc_reductions::theta1::theta1;
    pub use wfomc_reductions::tm::{coin_flip_machine, scanner_machine, CountingTm};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn doc_example_compiles_and_runs() {
        let phi = parse("forall x. exists y. R(x,y)").unwrap();
        let report = Solver::new().fomc(&phi, 3).unwrap();
        assert_eq!(report.value, weight_int(343));
        assert_eq!(report.method, Method::Fo2);
    }

    #[test]
    fn plan_then_execute_through_the_prelude() {
        let phi = parse("forall x. exists y. R(x,y)").unwrap();
        let plan = Problem::new(phi).plan().unwrap();
        assert_eq!(plan.method(), Method::Fo2);
        // One plan, a batch of (n, weights) points.
        let points: Vec<(usize, Weights)> = (1..=4)
            .map(|n| (n, Weights::from_ints([("R", n as i64, 1)])))
            .collect();
        let reports = plan.count_batch(&points).unwrap();
        for ((n, w), report) in points.iter().zip(&reports) {
            let one_shot = Solver::new()
                .wfomc(plan.sentence(), plan.vocabulary(), *n, w)
                .unwrap();
            assert_eq!(report.value, one_shot.value, "n = {n}");
        }
        assert!(plan.explain().to_string().contains("fo2-cells"));
    }

    #[test]
    fn compile_once_evaluate_many_through_the_prelude() {
        // Ground + compile the Table 1 sentence once, then answer several
        // weighted queries from the same circuit, checking against the
        // dispatching solver.
        let phi = catalog::table1_sentence();
        let voc = phi.vocabulary();
        let compiled = CompiledWfomc::compile(&phi, &voc, 2);
        for s in 1..4i64 {
            let w = Weights::from_ints([("R", 2, 1), ("S", s, 1), ("T", 1, 1)]);
            let report = Solver::ground_only().wfomc(&phi, &voc, 2, &w).unwrap();
            assert_eq!(compiled.wfomc(&w), report.value, "s = {s}");
        }
    }

    #[test]
    fn prelude_reexports_are_usable_together() {
        // Parse, classify, count, and check against the closed form.
        let q = catalog::table1_dual_cq();
        let hg = query_hypergraph(&q);
        assert_eq!(hg.classify(), AcyclicityClass::Gamma);
        let count = gamma_acyclic_wfomc(&q, 3, &Weights::ones()).unwrap();
        assert_eq!(count, closed_form::fomc_table1_dual_cq(3));
    }
}
